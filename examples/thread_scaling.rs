//! Thread scaling — the Fig. 3 experiment in miniature, both real and
//! simulated.
//!
//! The real half runs the actual kernels under the dynamic scheduler at
//! increasing thread counts on this machine (results are exact whatever
//! the core count). The simulated half replays the same schedule on the
//! paper's 32-thread Xeon model and prints the efficiency ladder the
//! paper quotes (99 % / 88 % / 70 % at 4 / 16 / 32 threads).
//!
//! Run with: `cargo run --release --example thread_scaling`

use swhetero::core::prepare::shapes_from_lengths;
use swhetero::prelude::*;
use swhetero::seq::gen::generate_lengths;

fn main() {
    let alphabet = Alphabet::protein();

    // ---- real execution on this machine ------------------------------
    let seqs = generate_database(&DbSpec {
        n_seqs: 600,
        mean_len: 200.0,
        max_len: 1_500,
        seed: 2,
    });
    let db = PreparedDb::prepare(seqs, 16, &alphabet);
    let query = generate_query(375, 3);
    let engine = SearchEngine::paper_default();

    println!("real execution on this host (exactness is thread-count independent):");
    let mut reference = None;
    for threads in [1usize, 2, 4] {
        let res = engine.search(&query.residues, &db, &SearchConfig::best(threads));
        println!(
            "  {threads} thread(s): {} in {:.3}s",
            res.gcups(),
            res.elapsed.as_secs_f64()
        );
        match &reference {
            None => reference = Some(res.hits),
            Some(r) => assert_eq!(&res.hits, r, "results must not depend on threads"),
        }
    }

    // ---- simulated paper testbed --------------------------------------
    let lens = generate_lengths(&DbSpec::swissprot_scaled(0.25, 1));
    let model = CostModel::xeon();
    let shapes = shapes_from_lengths(&lens, model.device.lanes_i16(), 2000);
    println!("\nsimulated 2x Xeon E5-2670, intrinsic-SP, query length 2000:");
    let base = simulate_search(&model, &shapes, &SimConfig::best(1));
    for threads in [1u32, 2, 4, 8, 16, 32] {
        let r = simulate_search(&model, &shapes, &SimConfig::best(threads));
        println!(
            "  {threads:>2} threads: {:>5.1} GCUPS  (efficiency {:.2})",
            r.gcups,
            r.gcups / (threads as f64 * base.gcups)
        );
    }
}
