//! Heterogeneous execution — Algorithm 2 end to end.
//!
//! Functionally: the database is split by workload fraction, both shares
//! are searched, and the merged scores must be identical to a
//! single-device run. Timing-wise: the simulated Xeon + Phi pair sweeps
//! the split ratio and finds the paper's ~55 % optimum (Fig. 8).
//!
//! Run with: `cargo run --release --example hetero_search`

use swhetero::prelude::*;
use swhetero::seq::gen::generate_lengths;

fn main() {
    let alphabet = Alphabet::protein();

    // ---- functional half: exact scores under any split --------------
    let seqs = generate_database(&DbSpec {
        n_seqs: 1_000,
        mean_len: 250.0,
        max_len: 3_000,
        seed: 4,
    });
    let db = PreparedDb::prepare(seqs, 16, &alphabet);
    let query = generate_query(729, 5); // P21177-sized

    let engine = SearchEngine::paper_default();
    let reference = engine.search(&query.residues, &db, &SearchConfig::best(2));

    let hetero = HeteroEngine::new(engine);
    let plan = hetero.plan_split(&db, query.residues.len(), 0.55);
    println!(
        "split plan: {} batches to CPU, {} to accelerator ({:.0}% of cells)",
        plan.cpu.len(),
        plan.accel.len(),
        plan.accel_cell_fraction * 100.0
    );
    let merged = hetero.search(
        &query.residues,
        &db,
        &plan,
        &SearchConfig::best(2),
        &SearchConfig::best(2),
    );
    assert_eq!(merged.hits, reference.hits, "hetero merge must be exact");
    println!("hetero result set identical to single-device search ✓\n");

    // ---- timing half: the Fig. 8 sweep on the simulated testbed -----
    let lens = generate_lengths(&DbSpec::swissprot_scaled(0.25, 1));
    let xeon = CostModel::xeon();
    let phi = CostModel::phi();
    let cpu_cfg = SimConfig::streamed(32, 8);
    let phi_cfg = SimConfig::streamed(240, 8);

    println!("simulated heterogeneous sweep (query length 2000):");
    println!(
        "{:>10} {:>10} {:>10} {:>10}",
        "phi_share", "GCUPS", "cpu", "phi"
    );
    let mut best = (0.0, 0.0);
    for step in 0..=10 {
        let f = step as f64 / 10.0;
        let r = simulate_hetero((&xeon, &cpu_cfg), (&phi, &phi_cfg), &lens, 2000, f);
        if r.gcups > best.1 {
            best = (f, r.gcups);
        }
        println!(
            "{:>9.0}% {:>10.1} {:>10.1} {:>10.1}",
            f * 100.0,
            r.gcups,
            r.cpu_gcups,
            r.accel_gcups
        );
    }
    println!(
        "\noptimum: {:.1} GCUPS at {:.0}% Phi share (paper: 62.6 at 55%)",
        best.1,
        best.0 * 100.0
    );

    // Visualise the offload overlap at the optimum (Algorithm 2's
    // signal/wait structure): host compute runs while the device chews
    // its asynchronously-shipped share.
    use swhetero::device::offload::OffloadSim;
    use swhetero::device::PcieLink;
    let r = simulate_hetero((&xeon, &cpu_cfg), (&phi, &phi_cfg), &lens, 2000, best.0);
    let mut sim = OffloadSim::new(PcieLink::gen2_x16());
    let in_bytes: u64 = (lens.iter().map(|&l| l as u64).sum::<u64>() as f64 * best.0) as u64;
    let sig = sim.offload_async(
        in_bytes,
        r.accel_busy_s.max(0.001),
        4 * lens.len() as u64,
        "phi",
    );
    sim.host_compute(r.cpu_busy_s.max(0.001), "cpu");
    sim.wait(sig);
    println!(
        "\nAlgorithm 2 timeline at the optimum split:\n{}",
        sim.render_timeline(64)
    );
}
