//! Power-aware workload distribution — the paper's stated future work
//! (§V-C3), implemented.
//!
//! The paper observes that the Phi's 240 W TDP is double the Xeon chip's
//! 120 W and suggests exploring configurations "with lower consumption".
//! This example sweeps the split ratio and reports, for each point, both
//! the throughput and the energy efficiency, then picks the optimum under
//! three objectives: max GCUPS, max GCUPS/W, and max GCUPS subject to a
//! power cap.
//!
//! Run with: `cargo run --release --example power_aware`

use swhetero::prelude::*;
use swhetero::seq::gen::generate_lengths;

fn main() {
    let lens = generate_lengths(&DbSpec::swissprot_scaled(0.25, 1));
    let xeon = CostModel::xeon();
    let phi = CostModel::phi();
    let cpu_cfg = SimConfig::streamed(32, 8);
    let phi_cfg = SimConfig::streamed(240, 8);

    println!(
        "{:>10} {:>8} {:>8} {:>10} {:>10}",
        "phi_share", "GCUPS", "avg_W", "GCUPS/W", "joules"
    );
    let mut rows = Vec::new();
    for step in 0..=20 {
        let f = step as f64 / 20.0;
        let r = simulate_hetero((&xeon, &cpu_cfg), (&phi, &phi_cfg), &lens, 2000, f);
        let joules = r.cpu_energy.joules + r.accel_energy.joules;
        let avg_w = joules / r.seconds;
        println!(
            "{:>9.0}% {:>8.1} {:>8.0} {:>10.3} {:>10.0}",
            f * 100.0,
            r.gcups,
            avg_w,
            r.gcups_per_watt(),
            joules
        );
        rows.push((f, r.gcups, avg_w, r.gcups_per_watt()));
    }

    let best_perf = rows
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("rows");
    let best_eff = rows
        .iter()
        .max_by(|a, b| a.3.partial_cmp(&b.3).expect("finite"))
        .expect("rows");
    // Power cap: average draw under 400 W (e.g. a 1U node budget).
    let best_capped = rows
        .iter()
        .filter(|r| r.2 <= 400.0)
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));

    println!("\nobjective               split    GCUPS   GCUPS/W");
    println!(
        "max throughput        {:>6.0}%  {:>7.1}  {:>8.3}",
        best_perf.0 * 100.0,
        best_perf.1,
        best_perf.3
    );
    println!(
        "max efficiency        {:>6.0}%  {:>7.1}  {:>8.3}",
        best_eff.0 * 100.0,
        best_eff.1,
        best_eff.3
    );
    if let Some(c) = best_capped {
        println!(
            "max GCUPS @ <=400 W   {:>6.0}%  {:>7.1}  {:>8.3}",
            c.0 * 100.0,
            c.1,
            c.3
        );
    }
    println!(
        "\nconclusion: the throughput optimum and the efficiency optimum \
         need not coincide — the workload split is a power knob, as the \
         paper conjectured."
    );
}
