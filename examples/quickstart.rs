//! Quickstart: build a synthetic protein database, search it with the
//! paper's best kernel configuration, and print the top hits.
//!
//! Run with: `cargo run --release --example quickstart`

use swhetero::prelude::*;

fn main() {
    // 1. A Swiss-Prot-like synthetic database (2 000 sequences here; the
    //    real evaluation uses 541 561 — see the fig* binaries).
    let alphabet = Alphabet::protein();
    let spec = DbSpec {
        n_seqs: 2_000,
        mean_len: 355.4,
        max_len: 5_000,
        seed: 42,
    };
    let seqs = generate_database(&spec);
    println!("database: {} sequences", seqs.len());

    // 2. Preprocess: sort by length, pack into 16-lane batches (AVX i16).
    let db = PreparedDb::prepare(seqs, 16, &alphabet);
    println!("{}", db.stats);

    // 3. Search with BLOSUM62, gap open 10 / extend 2 (the paper's
    //    parameters), intrinsic-SP kernels with cache blocking, dynamic
    //    scheduling on 4 threads.
    let engine = SearchEngine::paper_default();
    let query = generate_query(464, 7); // P01008-sized query
    let results = engine.search(&query.residues, &db, &SearchConfig::best(4));

    // 4. Scores arrive sorted in descending order.
    println!(
        "\nsearched {} cells in {:.3}s — {}",
        results.cells.real,
        results.elapsed.as_secs_f64(),
        results.gcups()
    );
    println!("\ntop 10 hits:");
    for (rank, hit) in results.top(10).iter().enumerate() {
        println!(
            "{:>3}. score {:>5}  {}",
            rank + 1,
            hit.score,
            db.sorted.db().header(hit.id)
        );
    }
}
