//! Protein database search from FASTA, with alignment rendering — the
//! workload the paper's introduction motivates (aligning queries against
//! a reference protein database with full Smith-Waterman sensitivity).
//!
//! Demonstrates: FASTA parsing, planting a known homolog, exact search,
//! and traceback rendering of the best alignment.
//!
//! Run with: `cargo run --release --example protein_search`

use std::io::Cursor;
use swhetero::kernels::traceback::sw_align;
use swhetero::prelude::*;
use swhetero::seq::fasta::read_encoded;

fn main() {
    let alphabet = Alphabet::protein();

    // A miniature curated database: a few real-looking protein fragments
    // plus synthetic decoys. In production this would be Swiss-Prot.
    let fasta = b">sp|DEMO1|KINASE putative kinase domain
MGSNKSKPKDASQRRRSLEPAENVHGAGGGAFPASQTPSKPASADGHRGPSAAFAPAAAE
>sp|DEMO2|GLOBIN haemoglobin-like fragment
MVLSPADKTNVKAAWGKVGAHAGEYGAEALERMFLSFPTTKTYFPHFDLSHGSAQVKGHG
>sp|DEMO3|LYSOZYME lysozyme C fragment
MKALIVLGLVLLSVTVQGKVFERCELARTLKRLGMDGYRGISLANWMCLAKWESGYNTRA
";
    let mut db_seqs = read_encoded(Cursor::new(&fasta[..]), &alphabet).expect("valid FASTA");

    // Pad with synthetic decoys so the search is non-trivial.
    db_seqs.extend(generate_database(&DbSpec {
        n_seqs: 500,
        mean_len: 200.0,
        max_len: 800,
        seed: 9,
    }));
    let db = PreparedDb::prepare(db_seqs, 8, &alphabet);

    // The query: a mutated fragment of DEMO2 (globin) — a distant homolog
    // that only an exact SW search is guaranteed to rank first.
    let query_fasta = b">query globin-like, 12% mutated
MVLSPADKTNVRAAWGKVGAHAGEYGAEALERMFLSYPTTKTYFPHF
";
    let query = read_encoded(Cursor::new(&query_fasta[..]), &alphabet)
        .expect("valid FASTA")
        .remove(0);

    let engine = SearchEngine::paper_default();
    let results = engine.search(&query.residues, &db, &SearchConfig::best(2));

    println!(
        "query: {} ({} residues)",
        query.header,
        query.residues.len()
    );
    println!("database: {} sequences\n", db.n_seqs());
    println!("top 5 hits:");
    for (rank, hit) in results.top(5).iter().enumerate() {
        println!(
            "{:>3}. score {:>5}  {}",
            rank + 1,
            hit.score,
            db.sorted.db().header(hit.id)
        );
    }

    // Render the best alignment via affine-gap traceback.
    let best = results.hits[0];
    assert!(
        db.sorted.db().header(best.id).contains("DEMO2"),
        "the globin fragment must rank first"
    );
    let subject = db.sorted.db().seq(best.id);
    let alignment = sw_align(&query.residues, subject.residues, &engine.params)
        .expect("best hit has a positive score");
    println!(
        "\nbest alignment (score {}, query {}..{}, subject {}..{}):\n",
        alignment.score,
        alignment.query_range.0,
        alignment.query_range.1,
        alignment.subject_range.0,
        alignment.subject_range.1
    );
    println!(
        "{}",
        alignment.render(&query.residues, subject.residues, &alphabet)
    );
}
