//! Exact Smith-Waterman vs BLAST-like heuristic — the paper's §I
//! motivation, demonstrated.
//!
//! A remote homolog whose conserved domain shares *no identical 3-mer*
//! with the query is invisible to seed-and-extend, while exact SW ranks
//! it first. The heuristic, in exchange, skips ~90 % of the DP work on
//! unrelated sequences.
//!
//! Run with: `cargo run --release --example blast_vs_sw`

use swhetero::heuristic::{HeuristicEngine, HeuristicOpts};
use swhetero::kernels::SwParams;
use swhetero::prelude::*;
use swhetero::swdb::SequenceDatabase;

fn main() {
    let alphabet = Alphabet::protein();

    // Query: a periodic domain. Homolog: the same domain with every third
    // residue substituted — ~67 % identity, strong SW score, but not one
    // conserved 3-residue word for the seeder to find.
    let query = alphabet
        .encode_strict(b"MKVMKVMKVMKVMKVMKVMKVMKVMKVMKVMKVMKVMKVMKV")
        .unwrap();
    let homolog = alphabet
        .encode_strict(b"MKAMKAMKAMKAMKAMKAMKAMKAMKAMKAMKAMKAMKAMKA")
        .unwrap();

    let mut seqs = vec![EncodedSeq {
        header: "remote-homolog".into(),
        residues: homolog,
    }];
    seqs.extend(generate_database(&DbSpec {
        n_seqs: 300,
        mean_len: 150.0,
        max_len: 600,
        seed: 6,
    }));
    let n = seqs.len();

    // --- exact engine -------------------------------------------------
    let db = PreparedDb::prepare(seqs.clone(), 8, &alphabet);
    let exact = SearchEngine::paper_default();
    let res = exact.search(&query, &db, &SearchConfig::best(2));
    let top = res.hits[0];
    println!(
        "exact SW:   top hit = {} (score {})",
        db.sorted.db().header(top.id),
        top.score
    );
    assert!(db.sorted.db().header(top.id).contains("remote-homolog"));

    // --- heuristic engine ----------------------------------------------
    let flat = SequenceDatabase::from_sequences(seqs);
    let blast = HeuristicEngine {
        params: SwParams::paper_default(),
        opts: HeuristicOpts::default(),
    };
    let h = blast.search(&query, &flat);
    let found_homolog = h
        .hits
        .iter()
        .any(|x| flat.header(x.id).contains("remote-homolog"));
    println!(
        "heuristic:  {} candidates refined, {} of {} sequences skipped ({}% work saved)",
        h.hits.len(),
        h.skipped,
        n,
        (h.work_saved() * 100.0).round()
    );
    println!(
        "heuristic found the remote homolog: {found_homolog} \
         (no conserved 3-mer word survives the mutations)"
    );
    assert!(
        !found_homolog,
        "the demonstration depends on the seeder missing it"
    );

    println!(
        "\nThis is the sensitivity/speed trade-off the paper cites as the\n\
         reason to accelerate *exact* SW: the heuristic is ~10x cheaper\n\
         here but blind to this homolog. Run `cargo run --release -p \n\
         sw-bench --bin sensitivity` for the full mutation-rate sweep."
    );
}
