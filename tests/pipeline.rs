//! Integration tests spanning the whole workspace: FASTA → preprocess →
//! search → results, across kernel variants, lane widths and engines.

use std::io::Cursor;
use swhetero::kernels::scalar::sw_score_scalar;
use swhetero::prelude::*;
use swhetero::seq::fasta::read_encoded;
use swhetero::swdb::snapshot;

fn reference_ranking(query: &[u8], db: &PreparedDb, params: &SwParams) -> Vec<(u32, i64)> {
    let mut v: Vec<(u32, i64)> = db
        .sorted
        .db()
        .iter()
        .map(|(id, s)| (id.0, sw_score_scalar(query, s.residues, params)))
        .collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

#[test]
fn full_pipeline_matches_reference_at_all_lane_widths() {
    let alphabet = Alphabet::protein();
    let seqs = generate_database(&DbSpec {
        n_seqs: 120,
        mean_len: 150.0,
        max_len: 700,
        seed: 77,
    });
    let query = generate_query(222, 5);
    let engine = SearchEngine::paper_default();
    for lanes in [4usize, 8, 16, 32] {
        let db = PreparedDb::prepare(seqs.clone(), lanes, &alphabet);
        let expect = reference_ranking(&query.residues, &db, &engine.params);
        let res = engine.search(&query.residues, &db, &SearchConfig::best(2));
        let got: Vec<(u32, i64)> = res.hits.iter().map(|h| (h.id.0, h.score)).collect();
        assert_eq!(got, expect, "lanes = {lanes}");
    }
}

#[test]
fn fasta_snapshot_search_roundtrip() {
    // FASTA text → encode → snapshot bytes → reload → search: identical
    // hits either way.
    let alphabet = Alphabet::protein();
    let fasta = b">a first\nMKVLITRAWQESTNHY\n>b second\nMVLSPADKTNVKAAW\n>c third\nKVFERCELARTLKRLGMDGYRGISLANW\n";
    let seqs = read_encoded(Cursor::new(&fasta[..]), &alphabet).unwrap();
    let direct = PreparedDb::prepare(seqs.clone(), 4, &alphabet);

    let store = SequenceDatabase::from_sequences(seqs);
    let bytes = snapshot::write(&store);
    let reloaded = snapshot::read(&bytes).unwrap();
    let via_snapshot = PreparedDb::prepare(
        reloaded
            .iter()
            .map(|(id, v)| EncodedSeq {
                header: reloaded.header(id).into(),
                residues: v.residues.to_vec(),
            })
            .collect(),
        4,
        &alphabet,
    );

    let engine = SearchEngine::paper_default();
    let q = read_encoded(Cursor::new(&b">q\nMKVLITRAW\n"[..]), &alphabet)
        .unwrap()
        .remove(0);
    let r1 = engine.search(&q.residues, &direct, &SearchConfig::best(1));
    let r2 = engine.search(&q.residues, &via_snapshot, &SearchConfig::best(1));
    assert_eq!(r1.hits, r2.hits);
}

#[test]
fn hetero_engine_equals_single_engine_across_splits_and_variants() {
    let alphabet = Alphabet::protein();
    let seqs = generate_database(&DbSpec {
        n_seqs: 90,
        mean_len: 120.0,
        max_len: 500,
        seed: 8,
    });
    let db = PreparedDb::prepare(seqs, 8, &alphabet);
    let query = generate_query(189, 2);
    let engine = SearchEngine::paper_default();
    let expect = engine
        .search(&query.residues, &db, &SearchConfig::best(1))
        .hits;

    let hetero = HeteroEngine::new(engine);
    let cpu_cfg = SearchConfig::best(2).with_variant(KernelVariant {
        vec: Vectorization::Guided,
        profile: ProfileMode::Sequence,
        blocking: true,
    });
    let accel_cfg = SearchConfig::best(2);
    for frac in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let plan = hetero.plan_split(&db, query.residues.len(), frac);
        let res = hetero.search(&query.residues, &db, &plan, &cpu_cfg, &accel_cfg);
        assert_eq!(res.hits, expect, "frac = {frac}");
    }
}

#[test]
fn paper_query_set_runs_end_to_end() {
    // All 20 paper queries against a small synthetic database: results
    // complete, sorted, and cells accounted exactly.
    let alphabet = Alphabet::protein();
    let seqs = generate_database(&DbSpec {
        n_seqs: 60,
        mean_len: 100.0,
        max_len: 400,
        seed: 31,
    });
    let db = PreparedDb::prepare(seqs, 16, &alphabet);
    let engine = SearchEngine::paper_default();
    for q in generate_query_set(1) {
        let res = engine.search(&q.residues, &db, &SearchConfig::best(2));
        assert_eq!(res.hits.len(), 60, "query {}", q.header);
        assert!(res.hits.windows(2).all(|w| w[0].score >= w[1].score));
        assert_eq!(res.cells.real, db.total_cells(q.residues.len()));
    }
}

#[test]
fn score_overflow_rescued_end_to_end() {
    let alphabet = Alphabet::protein();
    let w = alphabet.encode_byte(b'W').unwrap();
    let mut seqs = generate_database(&DbSpec {
        n_seqs: 30,
        mean_len: 80.0,
        max_len: 300,
        seed: 4,
    });
    seqs.push(EncodedSeq {
        header: "titin-like".into(),
        residues: vec![w; 3500],
    });
    let db = PreparedDb::prepare(seqs, 8, &alphabet);
    let query = EncodedSeq {
        header: "q".into(),
        residues: vec![w; 3500],
    };
    let engine = SearchEngine::paper_default();
    let res = engine.search(&query.residues, &db, &SearchConfig::best(2));
    assert!(
        res.lanes_rescued >= 1,
        "the titin-like pair must saturate i16"
    );
    assert_eq!(res.hits[0].score, 3500 * 11, "rescued score must be exact");
    assert!(db.sorted.db().header(res.hits[0].id).contains("titin"));
}

#[test]
fn empty_database_is_handled() {
    let alphabet = Alphabet::protein();
    let db = PreparedDb::prepare(Vec::new(), 8, &alphabet);
    let engine = SearchEngine::paper_default();
    let query = generate_query(50, 1);
    let res = engine.search(&query.residues, &db, &SearchConfig::best(2));
    assert!(res.hits.is_empty());
    assert_eq!(res.cells.real, 0);
}

#[test]
fn single_sequence_database() {
    let alphabet = Alphabet::protein();
    let seqs = vec![EncodedSeq::from_text("only", b"MKVLITRAW", &alphabet).unwrap()];
    let db = PreparedDb::prepare(seqs, 32, &alphabet);
    let engine = SearchEngine::paper_default();
    let res = engine.search(
        &alphabet.encode_strict(b"MKVLITRAW").unwrap(),
        &db,
        &SearchConfig::best(1),
    );
    assert_eq!(res.hits.len(), 1);
    assert!(res.hits[0].score > 0);
}

#[test]
fn cross_variant_self_test_all_widths() {
    for lanes in [4usize, 8, 16, 32] {
        let report = swhetero::core::verify::self_test(lanes, 1);
        assert!(
            report.passed(),
            "lanes {lanes}: {:?}",
            report.first_mismatch
        );
    }
}
