//! Failure-injection / never-panic properties of every parser and
//! deserializer: arbitrary bytes must produce `Ok` or `Err`, never a
//! panic, and accepted inputs must round-trip.

use proptest::prelude::*;
use swhetero::prelude::*;
use swhetero::seq::fasta::{read_encoded, FastaReader};
use swhetero::seq::matrices::parser::parse_ncbi;
use swhetero::swdb::snapshot;
use swhetero::swdb::SequenceDatabase;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The FASTA reader never panics on arbitrary bytes.
    #[test]
    fn fasta_reader_never_panics(data in prop::collection::vec(any::<u8>(), 0..2000)) {
        let _ = FastaReader::new(&data[..]).collect::<Result<Vec<_>, _>>();
        let _ = read_encoded(&data[..], &Alphabet::protein());
    }

    /// The FASTA reader never panics on arbitrary ASCII text either (a
    /// denser source of almost-valid input).
    #[test]
    fn fasta_reader_never_panics_on_text(data in "[ -~\n\r]{0,800}") {
        let _ = read_encoded(data.as_bytes(), &Alphabet::protein());
    }

    /// Well-formed FASTA round-trips through write → read exactly.
    #[test]
    fn fasta_roundtrip(
        seqs in prop::collection::vec(
            ("[A-Za-z0-9_ ]{1,20}", prop::collection::vec(0u8..20, 1..200)),
            1..10,
        ),
        width in 1usize..100,
    ) {
        let a = Alphabet::protein();
        let originals: Vec<EncodedSeq> = seqs
            .iter()
            .map(|(h, r)| EncodedSeq { header: h.trim().to_string().into(), residues: r.clone() })
            .collect();
        // Headers must be non-empty after trimming for exact round-trip.
        prop_assume!(originals.iter().all(|s| !s.header.is_empty()));
        let mut w = swhetero::seq::FastaWriter::new(Vec::new()).with_width(width);
        for s in &originals {
            w.write(s, &a).unwrap();
        }
        let bytes = w.into_inner().unwrap();
        let back = read_encoded(&bytes[..], &a).unwrap();
        prop_assert_eq!(back, originals);
    }

    /// The snapshot reader never panics on arbitrary bytes.
    #[test]
    fn snapshot_reader_never_panics(data in prop::collection::vec(any::<u8>(), 0..4000)) {
        let _ = snapshot::read(&data);
    }

    /// Snapshots round-trip for arbitrary databases, and every corruption
    /// of a single byte either still parses or fails cleanly.
    #[test]
    fn snapshot_roundtrip_and_corruption(
        seqs in prop::collection::vec(
            ("[a-z]{1,10}", prop::collection::vec(0u8..24, 1..50)),
            0..8,
        ),
        flip_at in any::<prop::sample::Index>(),
        flip_to in any::<u8>(),
    ) {
        let db = SequenceDatabase::from_sequences(
            seqs.iter()
                .map(|(h, r)| EncodedSeq { header: h.clone().into(), residues: r.clone() })
                .collect(),
        );
        let bytes = snapshot::write(&db);
        prop_assert_eq!(snapshot::read(&bytes).unwrap(), db);
        if !bytes.is_empty() {
            let mut corrupt = bytes.clone();
            let ix = flip_at.index(corrupt.len());
            corrupt[ix] = flip_to;
            let _ = snapshot::read(&corrupt); // must not panic
        }
    }

    /// The NCBI matrix parser never panics on arbitrary text.
    #[test]
    fn matrix_parser_never_panics(text in "[ -~\n]{0,1500}") {
        let _ = parse_ncbi("fuzz", &text, &Alphabet::protein());
        let _ = parse_ncbi("fuzz", &text, &Alphabet::dna());
    }

    /// Lenient encoding accepts any alphabetic text; strict rejects
    /// exactly the non-canonical letters.
    #[test]
    fn encoding_agreement(text in "[A-Za-z]{1,200}") {
        let a = Alphabet::protein();
        let lenient = a.encode_lenient(text.as_bytes()).unwrap();
        prop_assert_eq!(lenient.len(), text.len());
        match a.encode_strict(text.as_bytes()) {
            Ok(strict) => prop_assert_eq!(strict, lenient),
            Err(e) => {
                // The reported byte really is outside the canonical set.
                if let SeqError::InvalidResidue { byte, .. } = e {
                    prop_assert!(a.encode_byte(byte).is_none());
                } else {
                    prop_assert!(false, "unexpected error kind: {e}");
                }
            }
        }
    }
}

use swhetero::seq::SeqError;

/// Hand-picked hostile FASTA inputs fail with line-accurate errors.
#[test]
fn fasta_error_line_numbers() {
    let cases: [(&[u8], usize); 3] = [
        (b"garbage\n>ok\nMKV\n", 1),
        (b">a\nMKV\n\nstillsequence\n>b\nWW\n", 0), // continuation, fine
        (b">empty\n>next\nMKV\n", 2),
    ];
    let (data, line) = cases[0];
    match read_encoded(data, &Alphabet::protein()) {
        Err(SeqError::Fasta { line: l, .. }) => assert_eq!(l, line),
        other => panic!("expected FASTA error, got {other:?}"),
    }
    // Case 1 parses fine: bare text after a record continues the sequence.
    assert!(read_encoded(cases[1].0, &Alphabet::protein()).is_ok());
    let (data, line) = cases[2];
    match read_encoded(data, &Alphabet::protein()) {
        Err(SeqError::Fasta { line: l, .. }) => assert_eq!(l, line),
        other => panic!("expected FASTA error, got {other:?}"),
    }
}
