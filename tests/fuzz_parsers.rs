//! Failure-injection / never-panic properties of every parser and
//! deserializer: arbitrary bytes must produce `Ok` or `Err`, never a
//! panic, and accepted inputs must round-trip. Driven by seeded
//! pseudo-random case loops (the offline dependency budget excludes
//! proptest); every case is replayable from the seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use swhetero::prelude::*;
use swhetero::seq::fasta::{read_encoded, FastaReader};
use swhetero::seq::matrices::parser::parse_ncbi;
use swhetero::seq::SeqError;
use swhetero::swdb::snapshot;
use swhetero::swdb::SequenceDatabase;

fn bytes(rng: &mut SmallRng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..max_len.max(1));
    (0..len).map(|_| rng.gen::<u8>()).collect()
}

fn text_from(rng: &mut SmallRng, charset: &[u8], max_len: usize) -> String {
    let len = rng.gen_range(0..max_len.max(1));
    (0..len)
        .map(|_| charset[rng.gen_range(0..charset.len())] as char)
        .collect()
}

/// Printable ASCII plus newline/carriage return — a denser source of
/// almost-valid parser input than raw bytes.
fn ascii_text(rng: &mut SmallRng, max_len: usize) -> String {
    let charset: Vec<u8> = (b' '..=b'~').chain([b'\n', b'\r']).collect();
    text_from(rng, &charset, max_len)
}

/// The FASTA reader never panics on arbitrary bytes.
#[test]
fn fasta_reader_never_panics() {
    let mut rng = SmallRng::seed_from_u64(0xFA57);
    for _ in 0..64 {
        let data = bytes(&mut rng, 2000);
        let _ = FastaReader::new(&data[..]).collect::<Result<Vec<_>, _>>();
        let _ = read_encoded(&data[..], &Alphabet::protein());
    }
}

/// The FASTA reader never panics on arbitrary ASCII text either.
#[test]
fn fasta_reader_never_panics_on_text() {
    let mut rng = SmallRng::seed_from_u64(0xFA58);
    for _ in 0..64 {
        let data = ascii_text(&mut rng, 800);
        let _ = read_encoded(data.as_bytes(), &Alphabet::protein());
    }
}

/// Well-formed FASTA round-trips through write → read exactly.
#[test]
fn fasta_roundtrip() {
    let a = Alphabet::protein();
    let header_charset = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_ ";
    let mut rng = SmallRng::seed_from_u64(0xF07A);
    for case in 0..64 {
        let n = rng.gen_range(1usize..10);
        let originals: Vec<EncodedSeq> = (0..n)
            .map(|_| {
                // Headers must be non-empty after trimming for exact
                // round-trip, so anchor them with a letter.
                let mut header = String::from("h");
                header.push_str(&text_from(&mut rng, header_charset, 19));
                let len = rng.gen_range(1usize..200);
                let residues = (0..len).map(|_| rng.gen_range(0u8..20)).collect();
                EncodedSeq {
                    header: header.trim().to_string().into(),
                    residues,
                }
            })
            .collect();
        let width = rng.gen_range(1usize..100);
        let mut w = swhetero::seq::FastaWriter::new(Vec::new()).with_width(width);
        for s in &originals {
            w.write(s, &a).unwrap();
        }
        let bytes = w.into_inner().unwrap();
        let back = read_encoded(&bytes[..], &a).unwrap();
        assert_eq!(back, originals, "case {case} width {width}");
    }
}

/// The snapshot reader never panics on arbitrary bytes.
#[test]
fn snapshot_reader_never_panics() {
    let mut rng = SmallRng::seed_from_u64(0x54A9);
    for _ in 0..64 {
        let data = bytes(&mut rng, 4000);
        let _ = snapshot::read(&data);
    }
}

/// Snapshots round-trip for arbitrary databases, and every corruption
/// of a single byte either still parses or fails cleanly.
#[test]
fn snapshot_roundtrip_and_corruption() {
    let mut rng = SmallRng::seed_from_u64(0x54AA);
    for case in 0..64 {
        let n = rng.gen_range(0usize..8);
        let seqs: Vec<EncodedSeq> = (0..n)
            .map(|_| {
                let header = text_from(&mut rng, b"abcdefghijklmnopqrstuvwxyz", 10);
                let header = if header.is_empty() {
                    "x".to_string()
                } else {
                    header
                };
                let len = rng.gen_range(1usize..50);
                let residues = (0..len).map(|_| rng.gen_range(0u8..24)).collect();
                EncodedSeq {
                    header: header.into(),
                    residues,
                }
            })
            .collect();
        let db = SequenceDatabase::from_sequences(seqs);
        let bytes = snapshot::write(&db);
        assert_eq!(snapshot::read(&bytes).unwrap(), db, "case {case}");
        if !bytes.is_empty() {
            let mut corrupt = bytes.clone();
            let ix = rng.gen_range(0..corrupt.len());
            corrupt[ix] = rng.gen::<u8>();
            let _ = snapshot::read(&corrupt); // must not panic
        }
    }
}

/// The NCBI matrix parser never panics on arbitrary text.
#[test]
fn matrix_parser_never_panics() {
    let mut rng = SmallRng::seed_from_u64(0x9CB1);
    let charset: Vec<u8> = (b' '..=b'~').chain([b'\n']).collect();
    for _ in 0..64 {
        let text = text_from(&mut rng, &charset, 1500);
        let _ = parse_ncbi("fuzz", &text, &Alphabet::protein());
        let _ = parse_ncbi("fuzz", &text, &Alphabet::dna());
    }
}

/// Lenient encoding accepts any alphabetic text; strict rejects
/// exactly the non-canonical letters.
#[test]
fn encoding_agreement() {
    let a = Alphabet::protein();
    let letters = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
    let mut rng = SmallRng::seed_from_u64(0xE9C0);
    for case in 0..64 {
        let len = rng.gen_range(1usize..200);
        let text: String = (0..len)
            .map(|_| letters[rng.gen_range(0..letters.len())] as char)
            .collect();
        let lenient = a.encode_lenient(text.as_bytes()).unwrap();
        assert_eq!(lenient.len(), text.len(), "case {case}");
        match a.encode_strict(text.as_bytes()) {
            Ok(strict) => assert_eq!(strict, lenient, "case {case}"),
            Err(e) => {
                // The reported byte really is outside the canonical set.
                if let SeqError::InvalidResidue { byte, .. } = e {
                    assert!(a.encode_byte(byte).is_none(), "case {case}");
                } else {
                    panic!("case {case}: unexpected error kind: {e}");
                }
            }
        }
    }
}

/// Hand-picked hostile FASTA inputs fail with line-accurate errors.
#[test]
fn fasta_error_line_numbers() {
    let cases: [(&[u8], usize); 3] = [
        (b"garbage\n>ok\nMKV\n", 1),
        (b">a\nMKV\n\nstillsequence\n>b\nWW\n", 0), // continuation, fine
        (b">empty\n>next\nMKV\n", 2),
    ];
    let (data, line) = cases[0];
    match read_encoded(data, &Alphabet::protein()) {
        Err(SeqError::Fasta { line: l, .. }) => assert_eq!(l, line),
        other => panic!("expected FASTA error, got {other:?}"),
    }
    // Case 1 parses fine: bare text after a record continues the sequence.
    assert!(read_encoded(cases[1].0, &Alphabet::protein()).is_ok());
    let (data, line) = cases[2];
    match read_encoded(data, &Alphabet::protein()) {
        Err(SeqError::Fasta { line: l, .. }) => assert_eq!(l, line),
        other => panic!("expected FASTA error, got {other:?}"),
    }
}
