//! Integration tests of the figure-level claims: each paper figure's
//! qualitative shape must hold in the simulation, at a reduced database
//! scale so the suite stays fast.

use swhetero::core::prepare::shapes_from_lengths;
use swhetero::prelude::*;
use swhetero::seq::gen::generate_lengths;
use swhetero::seq::swissprot::QUERY_SET;

fn lens() -> Vec<u32> {
    generate_lengths(&DbSpec::swissprot_scaled(0.15, 1))
}

fn variant(vec: Vectorization, profile: ProfileMode) -> KernelVariant {
    KernelVariant {
        vec,
        profile,
        blocking: true,
    }
}

fn sim(model: &CostModel, v: KernelVariant, threads: u32, qlen: usize, lens: &[u32]) -> f64 {
    let shapes = shapes_from_lengths(lens, model.device.lanes_i16(), qlen);
    let cfg = SimConfig {
        variant: v,
        ..SimConfig::streamed(threads, 8)
    };
    simulate_search(model, &shapes, &cfg).gcups
}

/// Fig. 3 shape: on the Xeon, rates are ordered
/// no-vec ≪ simd-QP < simd-SP and intrinsic-QP < intrinsic-SP, and every
/// variant scales with threads.
#[test]
fn fig3_variant_ordering_and_scaling() {
    let model = CostModel::xeon();
    let l = lens();
    let order = [
        variant(Vectorization::NoVec, ProfileMode::Sequence),
        variant(Vectorization::Guided, ProfileMode::Query),
        variant(Vectorization::Guided, ProfileMode::Sequence),
        variant(Vectorization::Intrinsic, ProfileMode::Sequence),
    ];
    let rates: Vec<f64> = order
        .iter()
        .map(|&v| sim(&model, v, 32, 2000, &l))
        .collect();
    assert!(
        rates.windows(2).all(|w| w[0] < w[1]),
        "Fig 3 ordering violated: {rates:?}"
    );
    // Thread scaling is monotone for the best variant.
    let best = variant(Vectorization::Intrinsic, ProfileMode::Sequence);
    let mut last = 0.0;
    for t in [1u32, 2, 4, 8, 16, 32] {
        let g = sim(&model, best, t, 2000, &l);
        assert!(g > last, "thread scaling broke at {t}: {g} <= {last}");
        last = g;
    }
}

/// Fig. 4 shape: on the Xeon, QP variants are well below SP (no vector
/// gather on AVX), and SP rates rise with query length.
#[test]
fn fig4_qp_sp_gap_and_rising_sp() {
    let model = CostModel::xeon();
    let l = lens();
    let qp = variant(Vectorization::Intrinsic, ProfileMode::Query);
    let sp = variant(Vectorization::Intrinsic, ProfileMode::Sequence);
    for qlen in [144usize, 1000, 5478] {
        assert!(
            sim(&model, qp, 32, qlen, &l) < sim(&model, sp, 32, qlen, &l),
            "QP must trail SP at query length {qlen}"
        );
    }
    let short = sim(&model, sp, 32, 144, &l);
    let long = sim(&model, sp, 32, 5478, &l);
    assert!(
        long > short,
        "SP must rise with query length ({short} -> {long})"
    );
}

/// Fig. 5 shape: Phi rates at 240 threads keep the paper's ordering with
/// a *small* intrinsic QP/SP gap (hardware gather) and a large
/// guided/intrinsic gap.
#[test]
fn fig5_phi_orderings() {
    let model = CostModel::phi();
    let l = lens();
    let s_qp = sim(
        &model,
        variant(Vectorization::Guided, ProfileMode::Query),
        240,
        2000,
        &l,
    );
    let s_sp = sim(
        &model,
        variant(Vectorization::Guided, ProfileMode::Sequence),
        240,
        2000,
        &l,
    );
    let i_qp = sim(
        &model,
        variant(Vectorization::Intrinsic, ProfileMode::Query),
        240,
        2000,
        &l,
    );
    let i_sp = sim(
        &model,
        variant(Vectorization::Intrinsic, ProfileMode::Sequence),
        240,
        2000,
        &l,
    );
    assert!(
        s_qp < s_sp && s_sp < i_qp && i_qp < i_sp,
        "{s_qp} {s_sp} {i_qp} {i_sp}"
    );
    // Guided is under half of intrinsic on the Phi ("hand-vectorization
    // [has] more impact ... than in Intel Xeon").
    assert!(s_sp < 0.5 * i_sp);
    // Thread scaling 30 → 240 grows by well over 3×.
    let g30 = sim(
        &model,
        variant(Vectorization::Intrinsic, ProfileMode::Sequence),
        30,
        2000,
        &l,
    );
    assert!(i_sp > 3.0 * g30, "Phi scaling 30→240: {g30} -> {i_sp}");
}

/// Fig. 6 shape: on the Phi every vectorized variant rises with query
/// length.
#[test]
fn fig6_phi_rising_with_query_length() {
    let model = CostModel::phi();
    let l = lens();
    for v in [
        variant(Vectorization::Intrinsic, ProfileMode::Sequence),
        variant(Vectorization::Intrinsic, ProfileMode::Query),
        variant(Vectorization::Guided, ProfileMode::Sequence),
    ] {
        let short = sim(&model, v, 240, 144, &l);
        let long = sim(&model, v, 240, 5478, &l);
        assert!(long >= short * 0.98, "{v}: {short} -> {long}");
    }
}

/// Fig. 7 shape: blocking gains nothing for short queries, is decisive
/// for long ones, and matters far more on the Phi than on the Xeon.
#[test]
fn fig7_blocking_shape() {
    let l = lens();
    let blocked = KernelVariant::best();
    let unblocked = KernelVariant {
        blocking: false,
        ..blocked
    };
    let xeon = CostModel::xeon();
    let phi = CostModel::phi();

    // Short query: no difference anywhere.
    let pb = sim(&phi, blocked, 240, 144, &l);
    let pu = sim(&phi, unblocked, 240, 144, &l);
    assert!(
        (pb - pu).abs() / pb < 0.01,
        "short-query blocking gap: {pb} vs {pu}"
    );

    // Long query: both devices lose without blocking, the Phi much more.
    let xeon_loss = 1.0 - sim(&xeon, unblocked, 32, 5478, &l) / sim(&xeon, blocked, 32, 5478, &l);
    let phi_loss = 1.0 - sim(&phi, unblocked, 240, 5478, &l) / sim(&phi, blocked, 240, 5478, &l);
    assert!(xeon_loss > 0.01, "xeon must lose something: {xeon_loss}");
    assert!(
        phi_loss > 2.0 * xeon_loss,
        "phi loss {phi_loss} vs xeon {xeon_loss}"
    );
}

/// Fig. 8 shape: the split sweep has an interior optimum near 55 % Phi
/// share whose rate approaches the sum of the endpoints.
#[test]
fn fig8_split_sweep_shape() {
    let l = lens();
    let xeon = CostModel::xeon();
    let phi = CostModel::phi();
    let cpu_cfg = SimConfig::streamed(32, 8);
    let phi_cfg = SimConfig::streamed(240, 8);
    let sweep: Vec<(f64, f64)> = (0..=10)
        .map(|i| {
            let f = i as f64 / 10.0;
            let r = simulate_hetero((&xeon, &cpu_cfg), (&phi, &phi_cfg), &l, 2000, f);
            (f, r.gcups)
        })
        .collect();
    let (best_f, best_g) = sweep
        .iter()
        .cloned()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty");
    let cpu_only = sweep[0].1;
    let phi_only = sweep[10].1;
    assert!((0.4..=0.7).contains(&best_f), "optimum at {best_f}");
    assert!(best_g > cpu_only && best_g > phi_only);
    assert!(
        best_g > 0.85 * (cpu_only + phi_only),
        "{best_g} vs {cpu_only}+{phi_only}"
    );
}

/// The paper's 20-query set drives all per-length figures; make sure the
/// simulated per-query sweep runs for every length.
#[test]
fn per_query_sweep_covers_paper_set() {
    let model = CostModel::xeon();
    let l = lens();
    for q in QUERY_SET {
        let g = sim(&model, KernelVariant::best(), 32, q.len as usize, &l);
        assert!(g > 5.0, "query {} ({}): {g}", q.accession, q.len);
    }
}

/// Scheduling ablation (§IV prose): dynamic > guided > static on the
/// pooled workload.
#[test]
fn scheduling_ablation_ordering() {
    let model = CostModel::xeon();
    let l = lens();
    let shapes = shapes_from_lengths(&l, 16, 2000);
    let run = |policy: Policy| {
        let cfg = SimConfig {
            policy,
            ..SimConfig::best(32)
        };
        simulate_search(&model, &shapes, &cfg).gcups
    };
    let stat = run(Policy::Static);
    let guided = run(Policy::guided());
    let dynamic = run(Policy::dynamic());
    assert!(
        dynamic >= guided * 0.999,
        "dynamic {dynamic} vs guided {guided}"
    );
    assert!(guided > stat, "guided {guided} vs static {stat}");
    assert!(
        dynamic > 1.05 * stat,
        "dynamic must beat static significantly"
    );
}
