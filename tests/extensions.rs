//! Integration tests of the extension features: DNA search, dual
//! precision, banded refinement, the heuristic comparator, alignment
//! statistics and the pooled multi-query engine.

use swhetero::core::stats::KarlinParams;
use swhetero::heuristic::{HeuristicEngine, HeuristicOpts};
use swhetero::kernels::banded::sw_banded;
use swhetero::kernels::scalar::sw_score_scalar;
use swhetero::prelude::*;
use swhetero::swdb::SequenceDatabase;

/// The engine is alphabet-generic: DNA search with a match/mismatch
/// matrix end to end.
#[test]
fn dna_search_end_to_end() {
    let dna = Alphabet::dna();
    let matrix = SubstMatrix::match_mismatch(&dna, 5, -4);
    let params = SwParams::new(matrix, GapPenalty::new(10, 2));
    let engine = SearchEngine::new(params.clone());

    let seqs: Vec<EncodedSeq> = [
        &b"ACGTACGTACGTACGT"[..],
        &b"TTTTTTTTTTTT"[..],
        &b"ACGTACGAACGT"[..],
        &b"GGGGCCCCGGGG"[..],
    ]
    .iter()
    .enumerate()
    .map(|(i, s)| EncodedSeq::from_text(&format!("d{i}"), s, &dna).unwrap())
    .collect();
    let db = PreparedDb::prepare(seqs.clone(), 4, &dna);
    let query = dna.encode_strict(b"ACGTACGTACGT").unwrap();
    let res = engine.search(&query, &db, &SearchConfig::best(2));

    // Reference check for every sequence.
    for hit in &res.hits {
        let expect = sw_score_scalar(&query, db.sorted.db().seq(hit.id).residues, &params);
        assert_eq!(hit.score, expect);
    }
    // The perfect prefix match ranks first.
    assert_eq!(res.hits[0].id.0, 0);
    assert_eq!(res.hits[0].score, 12 * 5);
}

/// Dual precision through the public engine equals plain precision on a
/// workload with a mix of small, medium and saturating scores.
#[test]
fn adaptive_precision_engine_equivalence() {
    let a = Alphabet::protein();
    let w = a.encode_byte(b'W').unwrap();
    let mut seqs = generate_database(&DbSpec::tiny(31));
    seqs.push(EncodedSeq {
        header: "mid".into(),
        residues: vec![w; 60],
    });
    seqs.push(EncodedSeq {
        header: "giant".into(),
        residues: vec![w; 3100],
    });
    let db = PreparedDb::prepare(seqs, 8, &a);
    let query = EncodedSeq {
        header: "q".into(),
        residues: vec![w; 3100],
    };
    let engine = SearchEngine::paper_default();
    let plain = engine.search(
        &query.residues,
        &db,
        &SearchConfig::best(2).with_variant(KernelVariant {
            vec: Vectorization::Intrinsic,
            profile: ProfileMode::Sequence,
            blocking: false,
        }),
    );
    let adaptive = engine.search(
        &query.residues,
        &db,
        &SearchConfig {
            adaptive_precision: true,
            ..SearchConfig::best(2).with_variant(KernelVariant {
                vec: Vectorization::Intrinsic,
                profile: ProfileMode::Sequence,
                blocking: false,
            })
        },
    );
    assert_eq!(plain.hits, adaptive.hits);
    assert_eq!(adaptive.hits[0].score, 3100 * 11);
}

/// Banded SW with the band centred by a heuristic HSP reproduces the
/// exact score of a gapless homolog at a fraction of the work.
#[test]
fn banded_heuristic_pipeline() {
    let a = Alphabet::protein();
    let query = a
        .encode_strict(b"MKVLITRAWQESTNHYFPGDMKVLITRAWQESTNHYFPGD")
        .unwrap();
    // Subject: query embedded at offset 10 in junk.
    let mut subject = a.encode_strict(&[b'P'; 10]).unwrap();
    subject.extend_from_slice(&query);
    subject.extend(a.encode_strict(&[b'G'; 10]).unwrap());

    let params = SwParams::paper_default();
    let exact = sw_score_scalar(&query, &subject, &params);
    // Band centred on the true diagonal (+10) with a tiny radius.
    assert_eq!(sw_banded(&query, &subject, &params, 10, 2), exact);

    // Through the heuristic engine with banded refinement.
    let db = SequenceDatabase::from_sequences(vec![EncodedSeq {
        header: "s".into(),
        residues: subject.clone(),
    }]);
    let engine = HeuristicEngine {
        params: params.clone(),
        opts: HeuristicOpts {
            band_radius: Some(8),
            ..Default::default()
        },
    };
    let res = engine.search(&query, &db);
    assert_eq!(res.hits[0].score, exact);
    assert!(res.refine_cells < (query.len() * subject.len()) as u64 / 2);
}

/// Heuristic hits are always a subset of the exact engine's ranking with
/// identical scores for surfaced candidates.
#[test]
fn heuristic_scores_match_exact_engine() {
    let a = Alphabet::protein();
    let seqs = generate_database(&DbSpec {
        n_seqs: 80,
        mean_len: 120.0,
        max_len: 400,
        seed: 3,
    });
    let query = generate_query(200, 17).residues;
    let exact_engine = SearchEngine::paper_default();
    let db = PreparedDb::prepare(seqs.clone(), 8, &a);
    let exact = exact_engine.search(&query, &db, &SearchConfig::best(2));
    let by_id: std::collections::HashMap<u32, i64> =
        exact.hits.iter().map(|h| (h.id.0, h.score)).collect();

    let flat = SequenceDatabase::from_sequences(seqs);
    let heuristic = HeuristicEngine {
        params: SwParams::paper_default(),
        opts: HeuristicOpts {
            min_hsp_score: 15,
            ..Default::default()
        },
    };
    let h = heuristic.search(&query, &flat);
    for hit in &h.hits {
        assert_eq!(hit.score, by_id[&hit.id.0], "refined scores must be exact");
    }
}

/// E-values integrate consistently with engine scores: the top hit of a
/// planted-homolog search is overwhelmingly significant, random decoys
/// are not.
#[test]
fn evalues_separate_signal_from_noise() {
    let a = Alphabet::protein();
    let query = generate_query(300, 5);
    let mut seqs = generate_database(&DbSpec {
        n_seqs: 100,
        mean_len: 300.0,
        max_len: 900,
        seed: 9,
    });
    seqs.push(query.clone()); // plant an identical copy
    let db = PreparedDb::prepare(seqs, 8, &a);
    let engine = SearchEngine::paper_default();
    let res = engine.search(&query.residues, &db, &SearchConfig::best(2));
    let karlin = KarlinParams::gapped_approx(&engine.params.matrix);
    let db_res = db.stats.total_residues;

    let top_e = karlin.evalue(res.hits[0].score, query.residues.len(), db_res);
    assert!(
        top_e < 1e-100,
        "self-hit E-value must be negligible: {top_e}"
    );
    // Median decoy has E-value around or above 1 (not significant).
    let mid = res.hits[res.hits.len() / 2];
    let mid_e = karlin.evalue(mid.score, query.residues.len(), db_res);
    assert!(
        mid_e > 1e-4,
        "typical decoy must not look significant: {mid_e}"
    );
    // Bit scores order like raw scores.
    assert!(karlin.bit_score(res.hits[0].score) > karlin.bit_score(mid.score));
}

/// Pooled multi-query search over the whole paper query set matches
/// per-query searches.
#[test]
fn pooled_query_set_matches_individual() {
    let a = Alphabet::protein();
    let seqs = generate_database(&DbSpec {
        n_seqs: 40,
        mean_len: 100.0,
        max_len: 300,
        seed: 8,
    });
    let db = PreparedDb::prepare(seqs, 16, &a);
    let engine = SearchEngine::paper_default();
    let queries: Vec<EncodedSeq> = generate_query_set(3).into_iter().take(6).collect();
    let refs: Vec<&[u8]> = queries.iter().map(|q| q.residues.as_slice()).collect();
    let pooled = engine.search_many(&refs, &db, &SearchConfig::best(4));
    for (q, pooled_res) in queries.iter().zip(&pooled) {
        let single = engine.search(&q.residues, &db, &SearchConfig::best(1));
        assert_eq!(pooled_res.hits, single.hits, "query {}", q.header);
    }
}

/// BLASTX-style workflow: a DNA query translated in six frames and
/// searched against a protein database; the frame carrying the real
/// coding sequence wins.
#[test]
fn translated_dna_search_finds_coding_frame() {
    use swhetero::seq::translate::six_frames;
    let protein = Alphabet::protein();
    let dna = Alphabet::dna();

    // A protein target and synthetic decoys.
    let target = protein.encode_strict(b"MKWLNEHRAGDFERQSTVYK").unwrap();
    let mut seqs = vec![EncodedSeq {
        header: "target".into(),
        residues: target.clone(),
    }];
    seqs.extend(generate_database(&DbSpec {
        n_seqs: 50,
        mean_len: 60.0,
        max_len: 200,
        seed: 2,
    }));
    let db = PreparedDb::prepare(seqs, 8, &protein);

    // A DNA query encoding the target on the minus strand: take a real
    // coding sequence for the target and reverse-complement it.
    // Build the coding DNA by picking one codon per residue via brute
    // force over the codon table.
    let mut coding = Vec::new();
    'outer: for &aa in &target {
        for b1 in 0..4u8 {
            for b2 in 0..4u8 {
                for b3 in 0..4u8 {
                    let t = swhetero::seq::translate::translate_codon(b1, b2, b3);
                    if protein.encode_byte(t) == Some(aa) {
                        coding.extend_from_slice(&[b1, b2, b3]);
                        continue 'outer;
                    }
                }
            }
        }
        panic!("no codon for residue {aa}");
    }
    let dna_query = swhetero::seq::dna::reverse_complement(&coding);
    let _ = dna;

    // Search each frame; the -1 frame must contain the full-score hit.
    let engine = SearchEngine::paper_default();
    let self_score: i64 = target
        .iter()
        .map(|&r| engine.params.matrix.score(r, r) as i64)
        .sum();
    let mut best_frame = ("", 0i64);
    for (label, frame_protein) in six_frames(&dna_query, &protein) {
        if frame_protein.is_empty() {
            continue;
        }
        let res = engine.search(&frame_protein, &db, &SearchConfig::best(1));
        if res.hits[0].score > best_frame.1 {
            best_frame = (label, res.hits[0].score);
        }
    }
    assert_eq!(best_frame.0, "-1", "the coding frame is the minus strand");
    assert_eq!(
        best_frame.1, self_score,
        "frame search recovers the exact protein hit"
    );
}

/// Alignment-mode relationships hold through the public API.
#[test]
fn alignment_mode_relationships() {
    use swhetero::kernels::modes::{nw_score_global, sw_score_semi_global};
    use swhetero::kernels::scalar::sw_score_scalar;
    let a = Alphabet::protein();
    let p = SwParams::paper_default();
    let q = a.encode_strict(b"MKVLITRAWQ").unwrap();
    let s = a.encode_strict(b"GGGMKVLITRAWQGGG").unwrap();
    let local = sw_score_scalar(&q, &s, &p);
    let semi = sw_score_semi_global(&q, &s, &p);
    let global = nw_score_global(&q, &s, &p);
    assert_eq!(local, semi, "embedded query: local == semi-global");
    assert!(global < semi, "global pays for the flanks");
}

/// The KNL projection presets behave like devices (sanity of the future
/// study's inputs).
#[test]
fn knl_presets_are_coherent() {
    use swhetero::device::presets;
    let knc = presets::xeon_phi_60c();
    let knl = presets::xeon_phi_knl_7210();
    assert!(knl.max_threads() > knc.max_threads());
    assert!(knl.pcie.is_none(), "KNL is self-hosted");
    // Out-of-order single-thread issue is no longer halved.
    let p1 = knl.place_threads(64);
    assert!(knl.issue_eff(p1) >= 1.0);
    let costs = presets::knl_costs();
    assert!(costs.cpv_intr_sp < presets::phi_costs().cpv_intr_sp);
}
