//! Property-style tests of the core invariants, driven by seeded
//! pseudo-random case loops (the offline dependency budget excludes
//! proptest; every case here is deterministic and replayable from the
//! seed in the failure message).
//!
//! The central property is cross-variant score equivalence: every kernel
//! the paper evaluates must return exactly the scalar-reference score.
//! Around it: mathematical invariants of Smith-Waterman itself, of the
//! preprocessing/scheduling substrates, and of the dynamic dual-pool
//! scheduler (which must reproduce the static split's results exactly).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use swhetero::kernels::blocked::{sw_blocked_qp, BlockedWorkspace};
use swhetero::kernels::guided::{sw_guided_qp, sw_guided_sp, GuidedWorkspace};
use swhetero::kernels::intertask::{sw_lanes_qp, sw_lanes_sp, Workspace};
use swhetero::kernels::scalar::sw_score_scalar;
use swhetero::kernels::striped::sw_striped_pair;
use swhetero::kernels::traceback::sw_align;
use swhetero::prelude::*;
use swhetero::swdb::batch::pad_code;
use swhetero::swdb::LaneBatch;

fn residues(rng: &mut SmallRng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(1..max_len);
    (0..len).map(|_| rng.gen_range(0u8..20)).collect()
}

fn gap_params(rng: &mut SmallRng) -> SwParams {
    let open = rng.gen_range(0i32..12);
    let extend = rng.gen_range(1i32..4);
    SwParams::new(SubstMatrix::blosum62(), GapPenalty::new(open, extend))
}

/// All vector kernels equal the scalar reference on random batches.
#[test]
fn all_kernels_agree_with_scalar() {
    let a = Alphabet::protein();
    let mut rng = SmallRng::seed_from_u64(0xA11E);
    for case in 0..48 {
        let query = residues(&mut rng, 48);
        let n_subjects = rng.gen_range(1usize..8);
        let subjects: Vec<Vec<u8>> = (0..n_subjects).map(|_| residues(&mut rng, 64)).collect();
        let params = gap_params(&mut rng);
        let refs: Vec<(SeqId, &[u8])> = subjects
            .iter()
            .enumerate()
            .map(|(i, s)| (SeqId(i as u32), s.as_slice()))
            .collect();
        let batch = LaneBatch::pack(8, &refs, pad_code(&a));
        let qp = QueryProfile::build(&query, &params.matrix, &a);
        let sp = SequenceProfile::build(&batch, &params.matrix, &a);

        let mut iws = Workspace::<8>::new();
        let mut gws = GuidedWorkspace::new();
        let mut bws = BlockedWorkspace::<8>::new();
        let o1 = sw_lanes_qp::<8>(&qp, &batch, &params.gap, &mut iws);
        let o2 = sw_lanes_sp::<8>(&query, &sp, &batch, &params.gap, &mut iws);
        let o3 = sw_guided_qp(&qp, &batch, &params.gap, &mut gws);
        let o4 = sw_guided_sp(&query, &sp, &batch, &params.gap, &mut gws);
        let o5 = sw_blocked_qp::<8>(&qp, &batch, &params.gap, 7, &mut bws);

        for (lane, s) in subjects.iter().enumerate() {
            let expect = sw_score_scalar(&query, s, &params);
            assert_eq!(
                o1.scores[lane], expect,
                "case {case} lane {lane} intrinsic-QP"
            );
            assert_eq!(
                o2.scores[lane], expect,
                "case {case} lane {lane} intrinsic-SP"
            );
            assert_eq!(o3.scores[lane], expect, "case {case} lane {lane} guided-QP");
            assert_eq!(o4.scores[lane], expect, "case {case} lane {lane} guided-SP");
            assert_eq!(
                o5.scores[lane], expect,
                "case {case} lane {lane} blocked-QP"
            );
            // Striped (intra-task) agrees too.
            assert_eq!(
                sw_striped_pair::<8>(&query, s, &params).score,
                expect,
                "case {case} lane {lane} striped"
            );
        }
    }
}

/// SW score is symmetric under a symmetric matrix.
#[test]
fn score_symmetric() {
    let mut rng = SmallRng::seed_from_u64(0x5E11);
    for case in 0..48 {
        let a = residues(&mut rng, 40);
        let b = residues(&mut rng, 40);
        let params = gap_params(&mut rng);
        assert_eq!(
            sw_score_scalar(&a, &b, &params),
            sw_score_scalar(&b, &a, &params),
            "case {case}"
        );
    }
}

/// Local alignment scores are never negative and never exceed the
/// perfect-diagonal upper bound.
#[test]
fn score_bounds() {
    let params = SwParams::paper_default();
    let mut rng = SmallRng::seed_from_u64(0xB0B0);
    for case in 0..48 {
        let a = residues(&mut rng, 40);
        let b = residues(&mut rng, 40);
        let s = sw_score_scalar(&a, &b, &params);
        assert!(s >= 0, "case {case}: negative score {s}");
        let bound = a.len().min(b.len()) as i64 * params.matrix.max_score() as i64;
        assert!(s <= bound, "case {case}: score {s} exceeds bound {bound}");
    }
}

/// Appending residues to the subject never lowers the score
/// (local alignment can only gain candidate segments).
#[test]
fn subject_extension_monotone() {
    let params = SwParams::paper_default();
    let mut rng = SmallRng::seed_from_u64(0x40F0);
    for case in 0..48 {
        let q = residues(&mut rng, 30);
        let s = residues(&mut rng, 30);
        let extra = residues(&mut rng, 10);
        let base = sw_score_scalar(&q, &s, &params);
        let mut longer = s.clone();
        longer.extend_from_slice(&extra);
        assert!(sw_score_scalar(&q, &longer, &params) >= base, "case {case}");
    }
}

/// Self-alignment equals the sum of diagonal scores (all BLOSUM62
/// diagonals are positive, so the perfect path has no reason to stop).
#[test]
fn self_alignment_is_diagonal_sum() {
    let params = SwParams::paper_default();
    let mut rng = SmallRng::seed_from_u64(0xD1A6);
    for case in 0..48 {
        let q = residues(&mut rng, 40);
        let expect: i64 = q.iter().map(|&r| params.matrix.score(r, r) as i64).sum();
        assert_eq!(sw_score_scalar(&q, &q, &params), expect, "case {case}");
    }
}

/// Traceback consistency: recomputing the alignment path's score
/// reproduces the reported score, and ranges are in bounds.
#[test]
fn traceback_consistent() {
    let mut rng = SmallRng::seed_from_u64(0x7BAC);
    for case in 0..48 {
        let q = residues(&mut rng, 32);
        let s = residues(&mut rng, 32);
        let params = gap_params(&mut rng);
        if let Some(al) = sw_align(&q, &s, &params) {
            assert_eq!(al.recompute_score(&q, &s, &params), al.score, "case {case}");
            assert_eq!(al.score, sw_score_scalar(&q, &s, &params), "case {case}");
            assert!(al.query_range.1 <= q.len(), "case {case}");
            assert!(al.subject_range.1 <= s.len(), "case {case}");
            assert!(al.query_range.0 <= al.query_range.1, "case {case}");
        } else {
            assert_eq!(sw_score_scalar(&q, &s, &params), 0, "case {case}");
        }
    }
}

/// Engine-level: hits cover every sequence exactly once and come back
/// sorted, for random small databases.
#[test]
fn engine_hit_set_is_a_sorted_permutation() {
    let alphabet = Alphabet::protein();
    let engine = SearchEngine::paper_default();
    let mut rng = SmallRng::seed_from_u64(0xE46E);
    for case in 0..24u64 {
        let n = rng.gen_range(1usize..25);
        let mut g = swhetero::seq::gen::SwissProtGen::new(50.0, case);
        let seqs: Vec<EncodedSeq> = (0..n)
            .map(|i| g.sequence(&format!("s{i}"), rng.gen_range(1u32..60)))
            .collect();
        let db = PreparedDb::prepare(seqs, 4, &alphabet);
        let query = g.sequence("q", 30);
        let res = engine.search(&query.residues, &db, &SearchConfig::best(1));
        assert_eq!(res.hits.len(), n, "case {case}");
        let mut ids: Vec<u32> = res.hits.iter().map(|h| h.id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..n as u32).collect::<Vec<_>>(), "case {case}");
        assert!(
            res.hits.windows(2).all(|w| w[0].score >= w[1].score),
            "case {case}"
        );
    }
}

/// The dynamic dual-pool scheduler returns hit lists *identical* to the
/// static-split search — same ids, same scores, same order — for random
/// databases, seed fractions, and worker counts.
#[test]
fn dynamic_scheduler_matches_static_split() {
    let alphabet = Alphabet::protein();
    let hetero = HeteroEngine::new(SearchEngine::paper_default());
    let mut rng = SmallRng::seed_from_u64(0xDC4A);
    for case in 0..16u64 {
        let n = rng.gen_range(1usize..40);
        let mut g = swhetero::seq::gen::SwissProtGen::new(60.0, case);
        let seqs: Vec<EncodedSeq> = (0..n)
            .map(|i| g.sequence(&format!("s{i}"), rng.gen_range(1u32..120)))
            .collect();
        let db = PreparedDb::prepare(seqs, 4, &alphabet);
        let query = g.sequence("q", rng.gen_range(8u32..64)).residues;
        let frac = rng.gen_range(0.0f64..1.0);
        let plan = hetero.plan_split(&db, query.len(), frac);
        let cfg = SearchConfig::best(1);
        let static_res = hetero.search(&query, &db, &plan, &cfg, &cfg);
        let cpu_workers = rng.gen_range(1usize..4);
        let accel_workers = rng.gen_range(1usize..4);
        let dyn_cfg = HeteroSearchConfig::best(cpu_workers, accel_workers);
        let dynamic = hetero.search_dynamic(&query, &db, &plan, &dyn_cfg);
        assert_eq!(
            dynamic.results.hits, static_res.hits,
            "case {case}: frac {frac:.3}, workers {cpu_workers}+{accel_workers}"
        );
    }
}

/// Batching invariant: every sequence appears in exactly one batch,
/// padding is never counted as real cells.
#[test]
fn batching_conserves_sequences() {
    let alphabet = Alphabet::protein();
    let mut rng = SmallRng::seed_from_u64(0xBA7C);
    for case in 0..32 {
        let n = rng.gen_range(1usize..40);
        let lanes = rng.gen_range(1usize..33);
        let mut g = swhetero::seq::gen::SwissProtGen::new(50.0, 3);
        let seqs: Vec<EncodedSeq> = (0..n)
            .map(|i| g.sequence(&format!("s{i}"), rng.gen_range(1u32..200)))
            .collect();
        let total_res: u64 = seqs.iter().map(|s| s.len() as u64).sum();
        let sorted = SortedDb::new(SequenceDatabase::from_sequences(seqs));
        let batches = LaneBatcher::new(lanes, &alphabet).batch(&sorted);
        let seen: usize = batches.iter().map(|b| b.real_lanes()).sum();
        assert_eq!(seen, n, "case {case}");
        let real: u64 = batches.iter().map(|b| b.real_cells(1)).sum();
        assert_eq!(real, total_res, "case {case}");
        let padded: u64 = batches.iter().map(|b| b.padded_cells(1)).sum();
        assert!(padded >= real, "case {case}");
    }
}

/// Scheduling invariant: for any cost vector and worker count, the
/// simulated makespan respects the lower bound and conserves work.
#[test]
fn desim_respects_bounds() {
    use swhetero::sched::desim::{makespan_lower_bound, simulate};
    let mut rng = SmallRng::seed_from_u64(0xDE51);
    for case in 0..32 {
        let n = rng.gen_range(1usize..200);
        let costs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0f64..10.0)).collect();
        let workers = rng.gen_range(1usize..64);
        for policy in [Policy::Static, Policy::dynamic(), Policy::guided()] {
            let r = simulate(&costs, workers, policy);
            let total: f64 = costs.iter().sum();
            assert!(
                (r.total_busy() - total).abs() < 1e-6 * total.max(1.0),
                "case {case}"
            );
            assert!(
                r.makespan >= makespan_lower_bound(&costs, workers) - 1e-9,
                "case {case}: makespan below bound"
            );
            assert!(r.makespan <= total + 1e-9, "case {case}");
        }
    }
}

/// Split invariant: for any fraction, the two shares partition the
/// lengths and accel takes the suffix of the sorted order.
#[test]
fn hetero_split_partitions() {
    use swhetero::core::simulate::split_lengths;
    let mut rng = SmallRng::seed_from_u64(0x5B11);
    for case in 0..48 {
        let n = rng.gen_range(1usize..300);
        let lens: Vec<u32> = (0..n).map(|_| rng.gen_range(1u32..5000)).collect();
        let frac = rng.gen_range(0.0f64..1.0);
        let (cpu, accel) = split_lengths(&lens, frac);
        assert_eq!(cpu.len() + accel.len(), lens.len(), "case {case}");
        let total: u64 = lens.iter().map(|&l| l as u64).sum();
        let got: u64 = cpu.iter().chain(accel.iter()).map(|&l| l as u64).sum();
        assert_eq!(got, total, "case {case}");
        // Every accel sequence is at least as long as every cpu sequence
        // (suffix of the sorted order).
        if let (Some(&cpu_max), Some(&accel_min)) = (cpu.last(), accel.first()) {
            assert!(accel_min >= cpu_max, "case {case}");
        }
    }
}
