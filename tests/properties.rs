//! Property-based tests (proptest) of the core invariants.
//!
//! The central property is cross-variant score equivalence: every kernel
//! the paper evaluates must return exactly the scalar-reference score.
//! Around it: mathematical invariants of Smith-Waterman itself and of the
//! preprocessing/scheduling substrates.

use proptest::prelude::*;
use swhetero::kernels::blocked::{sw_blocked_qp, BlockedWorkspace};
use swhetero::kernels::guided::{sw_guided_qp, sw_guided_sp, GuidedWorkspace};
use swhetero::kernels::intertask::{sw_lanes_qp, sw_lanes_sp, Workspace};
use swhetero::kernels::scalar::sw_score_scalar;
use swhetero::kernels::striped::sw_striped_pair;
use swhetero::kernels::traceback::sw_align;
use swhetero::prelude::*;
use swhetero::swdb::batch::pad_code;
use swhetero::swdb::LaneBatch;

fn residues(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..20, 1..max_len)
}

fn gap_params() -> impl Strategy<Value = SwParams> {
    (0i32..12, 1i32..4).prop_map(|(open, extend)| {
        SwParams::new(SubstMatrix::blosum62(), GapPenalty::new(open, extend))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All vector kernels equal the scalar reference on random batches.
    #[test]
    fn all_kernels_agree_with_scalar(
        query in residues(48),
        subjects in prop::collection::vec(residues(64), 1..8),
        params in gap_params(),
    ) {
        let a = Alphabet::protein();
        let refs: Vec<(SeqId, &[u8])> = subjects
            .iter()
            .enumerate()
            .map(|(i, s)| (SeqId(i as u32), s.as_slice()))
            .collect();
        let batch = LaneBatch::pack(8, &refs, pad_code(&a));
        let qp = QueryProfile::build(&query, &params.matrix, &a);
        let sp = SequenceProfile::build(&batch, &params.matrix, &a);

        let mut iws = Workspace::<8>::new();
        let mut gws = GuidedWorkspace::new();
        let mut bws = BlockedWorkspace::<8>::new();
        let o1 = sw_lanes_qp::<8>(&qp, &batch, &params.gap, &mut iws);
        let o2 = sw_lanes_sp::<8>(&query, &sp, &batch, &params.gap, &mut iws);
        let o3 = sw_guided_qp(&qp, &batch, &params.gap, &mut gws);
        let o4 = sw_guided_sp(&query, &sp, &batch, &params.gap, &mut gws);
        let o5 = sw_blocked_qp::<8>(&qp, &batch, &params.gap, 7, &mut bws);

        for (lane, s) in subjects.iter().enumerate() {
            let expect = sw_score_scalar(&query, s, &params);
            prop_assert_eq!(o1.scores[lane], expect);
            prop_assert_eq!(o2.scores[lane], expect);
            prop_assert_eq!(o3.scores[lane], expect);
            prop_assert_eq!(o4.scores[lane], expect);
            prop_assert_eq!(o5.scores[lane], expect);
            // Striped (intra-task) agrees too.
            prop_assert_eq!(sw_striped_pair::<8>(&query, s, &params).score, expect);
        }
    }

    /// SW score is symmetric under a symmetric matrix.
    #[test]
    fn score_symmetric(a in residues(40), b in residues(40), params in gap_params()) {
        prop_assert_eq!(
            sw_score_scalar(&a, &b, &params),
            sw_score_scalar(&b, &a, &params)
        );
    }

    /// Local alignment scores are never negative and never exceed the
    /// perfect-diagonal upper bound.
    #[test]
    fn score_bounds(a in residues(40), b in residues(40)) {
        let params = SwParams::paper_default();
        let s = sw_score_scalar(&a, &b, &params);
        prop_assert!(s >= 0);
        let bound = a.len().min(b.len()) as i64 * params.matrix.max_score() as i64;
        prop_assert!(s <= bound, "score {} exceeds bound {}", s, bound);
    }

    /// Appending residues to the subject never lowers the score
    /// (local alignment can only gain candidate segments).
    #[test]
    fn subject_extension_monotone(
        q in residues(30),
        s in residues(30),
        extra in residues(10),
    ) {
        let params = SwParams::paper_default();
        let base = sw_score_scalar(&q, &s, &params);
        let mut longer = s.clone();
        longer.extend_from_slice(&extra);
        prop_assert!(sw_score_scalar(&q, &longer, &params) >= base);
    }

    /// Self-alignment equals the sum of diagonal scores (all BLOSUM62
    /// diagonals are positive, so the perfect path has no reason to stop).
    #[test]
    fn self_alignment_is_diagonal_sum(q in residues(40)) {
        let params = SwParams::paper_default();
        let expect: i64 = q.iter().map(|&r| params.matrix.score(r, r) as i64).sum();
        prop_assert_eq!(sw_score_scalar(&q, &q, &params), expect);
    }

    /// Traceback consistency: recomputing the alignment path's score
    /// reproduces the reported score, and ranges are in bounds.
    #[test]
    fn traceback_consistent(q in residues(32), s in residues(32), params in gap_params()) {
        if let Some(al) = sw_align(&q, &s, &params) {
            prop_assert_eq!(al.recompute_score(&q, &s, &params), al.score);
            prop_assert_eq!(al.score, sw_score_scalar(&q, &s, &params));
            prop_assert!(al.query_range.1 <= q.len());
            prop_assert!(al.subject_range.1 <= s.len());
            prop_assert!(al.query_range.0 <= al.query_range.1);
        } else {
            prop_assert_eq!(sw_score_scalar(&q, &s, &params), 0);
        }
    }

    /// Engine-level: hits cover every sequence exactly once and come back
    /// sorted, for random small databases.
    #[test]
    fn engine_hit_set_is_a_sorted_permutation(
        lens in prop::collection::vec(1usize..60, 1..25),
        seed in 0u64..1000,
    ) {
        let alphabet = Alphabet::protein();
        let mut g = swhetero::seq::gen::SwissProtGen::new(50.0, seed);
        let seqs: Vec<EncodedSeq> = lens
            .iter()
            .enumerate()
            .map(|(i, &l)| g.sequence(&format!("s{i}"), l as u32))
            .collect();
        let n = seqs.len();
        let db = PreparedDb::prepare(seqs, 4, &alphabet);
        let engine = SearchEngine::paper_default();
        let query = g.sequence("q", 30);
        let res = engine.search(&query.residues, &db, &SearchConfig::best(1));
        prop_assert_eq!(res.hits.len(), n);
        let mut ids: Vec<u32> = res.hits.iter().map(|h| h.id.0).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..n as u32).collect::<Vec<_>>());
        prop_assert!(res.hits.windows(2).all(|w| w[0].score >= w[1].score));
    }

    /// Batching invariant: every sequence appears in exactly one batch,
    /// padding is never counted as real cells.
    #[test]
    fn batching_conserves_sequences(
        lens in prop::collection::vec(1usize..200, 1..40),
        lanes in 1usize..33,
    ) {
        let alphabet = Alphabet::protein();
        let mut g = swhetero::seq::gen::SwissProtGen::new(50.0, 3);
        let seqs: Vec<EncodedSeq> = lens
            .iter()
            .enumerate()
            .map(|(i, &l)| g.sequence(&format!("s{i}"), l as u32))
            .collect();
        let total_res: u64 = seqs.iter().map(|s| s.len() as u64).sum();
        let sorted = SortedDb::new(SequenceDatabase::from_sequences(seqs));
        let batches = LaneBatcher::new(lanes, &alphabet).batch(&sorted);
        let seen: usize = batches.iter().map(|b| b.real_lanes()).sum();
        prop_assert_eq!(seen, lens.len());
        let real: u64 = batches.iter().map(|b| b.real_cells(1)).sum();
        prop_assert_eq!(real, total_res);
        let padded: u64 = batches.iter().map(|b| b.padded_cells(1)).sum();
        prop_assert!(padded >= real);
    }

    /// Scheduling invariant: for any cost vector and worker count, the
    /// simulated makespan respects the lower bound and conserves work.
    #[test]
    fn desim_respects_bounds(
        costs in prop::collection::vec(0.0f64..10.0, 1..200),
        workers in 1usize..64,
    ) {
        use swhetero::sched::desim::{makespan_lower_bound, simulate};
        for policy in [Policy::Static, Policy::dynamic(), Policy::guided()] {
            let r = simulate(&costs, workers, policy);
            let total: f64 = costs.iter().sum();
            prop_assert!((r.total_busy() - total).abs() < 1e-6 * total.max(1.0));
            prop_assert!(r.makespan >= makespan_lower_bound(&costs, workers) - 1e-9);
            prop_assert!(r.makespan <= total + 1e-9);
        }
    }

    /// Split invariant: for any fraction, the two shares partition the
    /// lengths and their residue counts bracket the requested fraction.
    #[test]
    fn hetero_split_partitions(
        lens in prop::collection::vec(1u32..5000, 1..300),
        frac in 0.0f64..1.0,
    ) {
        use swhetero::core::simulate::split_lengths;
        let (cpu, accel) = split_lengths(&lens, frac);
        prop_assert_eq!(cpu.len() + accel.len(), lens.len());
        let total: u64 = lens.iter().map(|&l| l as u64).sum();
        let got: u64 = cpu.iter().chain(accel.iter()).map(|&l| l as u64).sum();
        prop_assert_eq!(got, total);
        // Every accel sequence is at least as long as every cpu sequence
        // (suffix of the sorted order).
        if let (Some(&cpu_max), Some(&accel_min)) = (cpu.last(), accel.first()) {
            prop_assert!(accel_min >= cpu_max);
        }
    }
}
