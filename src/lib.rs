//! # swhetero — Smith-Waterman on heterogeneous systems
//!
//! A Rust reproduction of Rucci, De Giusti, Naiouf, Botella, García,
//! Prieto-Matías: *"Smith-Waterman Algorithm on Heterogeneous Systems: A
//! Case Study"* (IEEE CLUSTER 2014) — exact protein database search with
//! inter-task SIMD kernels, query/sequence substitution profiles, cache
//! blocking, OpenMP-style scheduling, and CPU + coprocessor execution.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`seq`] — alphabets, FASTA, substitution matrices, synthetic
//!   Swiss-Prot generator.
//! * [`swdb`] — database preprocessing: sorting, lane batching, profiles.
//! * [`kernels`] — the alignment kernels (scalar reference, guided,
//!   explicit-lane, blocked, striped) and adaptive precision.
//! * [`device`] — simulated device models of the paper's testbed, the
//!   calibrated cost model, the offload runtime and the energy model.
//! * [`sched`] — static/dynamic/guided scheduling, simulated and real.
//! * [`core`] — the assembled pipeline: `SearchEngine` (Algorithm 1)
//!   and `HeteroEngine` (Algorithm 2), plus figure simulation.
//!
//! ## Quickstart
//!
//! ```
//! use swhetero::prelude::*;
//!
//! // A synthetic Swiss-Prot-like database and a query.
//! let alphabet = Alphabet::protein();
//! let seqs = generate_database(&DbSpec::tiny(42));
//! let db = PreparedDb::prepare(seqs, 8, &alphabet);
//! let query = generate_query(100, 7);
//!
//! // Search with the paper's best configuration (intrinsic-SP, blocked).
//! let engine = SearchEngine::paper_default();
//! let results = engine.search(&query.residues, &db, &SearchConfig::best(2));
//!
//! assert_eq!(results.hits.len(), db.n_seqs());
//! assert!(results.hits.windows(2).all(|w| w[0].score >= w[1].score));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use sw_core as core;
pub use sw_device as device;
pub use sw_heuristic as heuristic;
pub use sw_kernels as kernels;
pub use sw_sched as sched;
pub use sw_seq as seq;
pub use sw_swdb as swdb;

/// The most common imports in one place.
pub mod prelude {
    pub use sw_core::{
        simulate_hetero, simulate_search, HeteroEngine, HeteroSearchConfig, Hit, PreparedDb,
        SearchConfig, SearchEngine, SearchResults, SimConfig,
    };
    pub use sw_device::{CostModel, DeviceSpec};
    pub use sw_kernels::{Gcups, KernelVariant, ProfileMode, SwParams, Vectorization};
    pub use sw_sched::Policy;
    pub use sw_seq::gen::{generate_database, generate_query, generate_query_set, DbSpec};
    pub use sw_seq::{Alphabet, EncodedSeq, FastaReader, GapPenalty, SeqId, SubstMatrix};
    pub use sw_swdb::{LaneBatcher, QueryProfile, SequenceDatabase, SequenceProfile, SortedDb};
}
