//! Schema validation for exported traces — what CI runs against real
//! trace output: JSONL well-formedness, monotonic timestamps, balanced
//! span begin/end per worker track, and Prometheus text parseability.
//!
//! The JSONL checker is deliberately a line-shape validator, not a full
//! JSON parser: the format is ours (one flat object per line, no nested
//! strings with braces), so brace/quote balance plus required-key
//! extraction is both sufficient and dependency-free.

use std::collections::HashMap;

/// Summary of a successfully validated JSONL trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonlReport {
    /// Event lines validated (header excluded).
    pub events: usize,
    /// Distinct (query, device, worker) tracks seen.
    pub tracks: usize,
    /// Spans successfully matched begin→end.
    pub spans: usize,
    /// Distinct query ids seen (1 for a solo run).
    pub queries: usize,
}

fn shape_ok(line: &str) -> bool {
    if !(line.starts_with('{') && line.ends_with('}')) {
        return false;
    }
    let mut depth = 0i32;
    let mut quotes = 0usize;
    let mut prev = '\0';
    for c in line.chars() {
        match c {
            '"' if prev != '\\' => quotes += 1,
            '{' => depth += 1,
            '}' => depth -= 1,
            _ => {}
        }
        if depth < 0 {
            return false;
        }
        prev = c;
    }
    depth == 0 && quotes.is_multiple_of(2)
}

/// Extract an unsigned integer field `"key":123` from a flat JSON line.
pub fn field_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let digits: String = line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Extract a string field `"key":"value"` from a flat JSON line.
pub fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":\"");
    let at = line.find(&needle)? + needle.len();
    let end = line[at..].find('"')?;
    Some(&line[at..at + end])
}

/// Validate a JSONL trace export: header line with the right schema,
/// well-formed event lines carrying `t_us`/`device`/`worker`/`ph`/`ev`,
/// globally non-decreasing timestamps, and balanced `B`/`E` spans per
/// (query, device, worker) track. The `query` field is optional and
/// defaults to 0 (pre-daemon exports), so legacy traces still validate;
/// when present it keys span balance, which is what lets a merged
/// export of concurrent searches pass even though their worker indices
/// collide.
pub fn validate_jsonl(text: &str) -> Result<JsonlReport, String> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or("empty trace")?;
    if !shape_ok(header) {
        return Err(format!("malformed header line: {header}"));
    }
    match field_str(header, "schema") {
        Some(s) if s == crate::SCHEMA => {}
        Some(s) => return Err(format!("schema {s:?}, expected {:?}", crate::SCHEMA)),
        None => return Err("header missing schema".to_string()),
    }

    let mut events = 0usize;
    let mut spans = 0usize;
    let mut last_t = 0u64;
    // Per-track stack of open span names, keyed (query, device, worker).
    let mut open: HashMap<(u64, u64, u64), Vec<String>> = HashMap::new();
    for (i, line) in lines {
        let n = i + 1; // 1-based for messages
        if line.is_empty() {
            continue;
        }
        if !shape_ok(line) {
            return Err(format!("line {n}: malformed JSON shape"));
        }
        let t = field_u64(line, "t_us").ok_or(format!("line {n}: missing t_us"))?;
        let query = field_u64(line, "query").unwrap_or(0);
        let device = field_u64(line, "device").ok_or(format!("line {n}: missing device"))?;
        let worker = field_u64(line, "worker").ok_or(format!("line {n}: missing worker"))?;
        let ph = field_str(line, "ph").ok_or(format!("line {n}: missing ph"))?;
        let ev = field_str(line, "ev").ok_or(format!("line {n}: missing ev"))?;
        if t < last_t {
            return Err(format!("line {n}: timestamp {t} < previous {last_t}"));
        }
        last_t = t;
        let stack = open.entry((query, device, worker)).or_default();
        match ph {
            "B" => stack.push(ev.to_string()),
            "E" => match stack.pop() {
                Some(b) if b == ev => spans += 1,
                Some(b) => {
                    return Err(format!("line {n}: span end {ev:?} closes open {b:?}"));
                }
                None => return Err(format!("line {n}: span end {ev:?} with no open span")),
            },
            "I" | "C" => {}
            other => return Err(format!("line {n}: unknown phase {other:?}")),
        }
        events += 1;
    }
    for ((q, d, w), stack) in &open {
        if let Some(name) = stack.last() {
            return Err(format!("track q{q} {d}/{w}: span {name:?} never ended"));
        }
    }
    let mut queries: Vec<u64> = open.keys().map(|&(q, _, _)| q).collect();
    queries.sort_unstable();
    queries.dedup();
    Ok(JsonlReport {
        events,
        tracks: open.len(),
        spans,
        queries: queries.len(),
    })
}

/// Validate a Prometheus text-exposition snapshot: every non-comment
/// line must be `name{labels} value` (or `name value`) with a parseable
/// float value. Returns the sample count.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value) = line
            .rsplit_once(' ')
            .ok_or(format!("line {n}: no value separator"))?;
        let metric = match name_part.split_once('{') {
            Some((m, rest)) => {
                if !rest.ends_with('}') {
                    return Err(format!("line {n}: unclosed label set"));
                }
                m
            }
            None => name_part,
        };
        if metric.is_empty()
            || !metric
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {n}: bad metric name {metric:?}"));
        }
        if value != "+Inf" && value != "-Inf" && value != "NaN" && value.parse::<f64>().is_err() {
            return Err(format!("line {n}: unparseable value {value:?}"));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples".to_string());
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export;
    use crate::{EventKind, Tracer};

    fn traced_jsonl() -> String {
        let tr = Tracer::full();
        let mut j = tr.worker(0, 0);
        j.emit_at(0, EventKind::QueueWaitBegin);
        j.emit_at(4, EventKind::QueueWaitEnd { us: 4 });
        j.emit_at(
            5,
            EventKind::ChunkStart {
                lease: 0,
                lo: 0,
                hi: 2,
            },
        );
        j.emit_at(
            9,
            EventKind::ChunkFinish {
                lease: 0,
                lo: 0,
                hi: 2,
                cells: 64,
            },
        );
        drop(j);
        export::jsonl(&tr.timeline())
    }

    #[test]
    fn real_export_validates() {
        let text = traced_jsonl();
        let rep = validate_jsonl(&text).expect("valid");
        assert_eq!(rep.events, 4);
        assert_eq!(rep.tracks, 1);
        assert_eq!(rep.spans, 2);
    }

    #[test]
    fn merged_two_query_export_validates_with_colliding_workers() {
        // Same (device, worker) on both queries: span balance must key on
        // the query tag or the interleaved spans would cross-close.
        let t1 = Tracer::for_query(crate::TraceLevel::Full, 64, 1);
        let t2 = Tracer::for_query(crate::TraceLevel::Full, 64, 2);
        let mut j1 = t1.worker(0, 0);
        let mut j2 = t2.worker(0, 0);
        j1.emit_at(
            0,
            EventKind::ChunkStart {
                lease: 0,
                lo: 0,
                hi: 1,
            },
        );
        j2.emit_at(1, EventKind::QueueWaitBegin);
        j1.emit_at(
            2,
            EventKind::ChunkFinish {
                lease: 0,
                lo: 0,
                hi: 1,
                cells: 8,
            },
        );
        j2.emit_at(3, EventKind::QueueWaitEnd { us: 2 });
        drop(j1);
        drop(j2);
        let merged = crate::Timeline::merge([t1.timeline(), t2.timeline()]);
        let rep = validate_jsonl(&export::jsonl(&merged)).expect("valid");
        assert_eq!(rep.events, 4);
        assert_eq!(rep.tracks, 2);
        assert_eq!(rep.spans, 2);
        assert_eq!(rep.queries, 2);
    }

    #[test]
    fn legacy_lines_without_query_default_to_query_zero() {
        let text = traced_jsonl().replace("\"query\":0,", "");
        let rep = validate_jsonl(&text).expect("legacy trace still valid");
        assert_eq!(rep.queries, 1);
        assert_eq!(rep.spans, 2);
    }

    #[test]
    fn rejects_regressing_timestamps() {
        let text = traced_jsonl().replace("\"t_us\":9", "\"t_us\":1");
        let err = validate_jsonl(&text).unwrap_err();
        assert!(err.contains("timestamp"), "{err}");
    }

    #[test]
    fn rejects_unbalanced_span() {
        let mut text = traced_jsonl();
        // Drop the ChunkFinish line.
        text = text
            .lines()
            .filter(|l| !l.contains("\"cells\""))
            .map(|l| format!("{l}\n"))
            .collect();
        let err = validate_jsonl(&text).unwrap_err();
        assert!(err.contains("never ended"), "{err}");
    }

    #[test]
    fn rejects_mismatched_span_names() {
        let text = traced_jsonl().replace(
            "\"ph\":\"E\",\"ev\":\"chunk\"",
            "\"ph\":\"E\",\"ev\":\"zz\"",
        );
        assert!(validate_jsonl(&text).is_err());
    }

    #[test]
    fn rejects_malformed_line_and_wrong_schema() {
        let text = format!("{}not json\n", traced_jsonl());
        assert!(validate_jsonl(&text).is_err());
        let text = traced_jsonl().replace("sw-trace/1", "sw-trace/0");
        assert!(validate_jsonl(&text).unwrap_err().contains("schema"));
    }

    #[test]
    fn prometheus_roundtrip_validates() {
        let tr = Tracer::full();
        drop(tr.worker(0, 0));
        let text = export::prometheus(
            &tr.timeline(),
            &[crate::DeviceCounters {
                device: 0,
                cells: 10,
                ..Default::default()
            }],
            0,
        );
        let n = validate_prometheus(&text).expect("valid");
        assert!(n > 5);
    }

    #[test]
    fn prometheus_rejects_garbage() {
        assert!(validate_prometheus("sw_cells_total{device=\"cpu\"} notanumber\n").is_err());
        assert!(validate_prometheus("").is_err());
        assert!(validate_prometheus("bad metric name} 1\n").is_err());
    }

    #[test]
    fn field_helpers() {
        let line = "{\"t_us\":42,\"ev\":\"chunk\"}";
        assert_eq!(field_u64(line, "t_us"), Some(42));
        assert_eq!(field_str(line, "ev"), Some("chunk"));
        assert_eq!(field_u64(line, "missing"), None);
    }
}
