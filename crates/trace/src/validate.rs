//! Schema validation for exported traces — what CI runs against real
//! trace output: JSONL well-formedness, monotonic timestamps, balanced
//! span begin/end per worker track, and Prometheus text parseability.
//!
//! The JSONL checker is deliberately a line-shape validator, not a full
//! JSON parser: the format is ours (one flat object per line, no nested
//! strings with braces), so brace/quote balance plus required-key
//! extraction is both sufficient and dependency-free.

use std::collections::HashMap;

/// Summary of a successfully validated JSONL trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonlReport {
    /// Event lines validated (header excluded).
    pub events: usize,
    /// Distinct (query, device, worker) tracks seen.
    pub tracks: usize,
    /// Spans successfully matched begin→end.
    pub spans: usize,
    /// Distinct query ids seen (1 for a solo run).
    pub queries: usize,
}

fn shape_ok(line: &str) -> bool {
    if !(line.starts_with('{') && line.ends_with('}')) {
        return false;
    }
    let mut depth = 0i32;
    let mut quotes = 0usize;
    let mut prev = '\0';
    for c in line.chars() {
        match c {
            '"' if prev != '\\' => quotes += 1,
            '{' => depth += 1,
            '}' => depth -= 1,
            _ => {}
        }
        if depth < 0 {
            return false;
        }
        prev = c;
    }
    depth == 0 && quotes.is_multiple_of(2)
}

/// Extract an unsigned integer field `"key":123` from a flat JSON line.
pub fn field_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let digits: String = line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Extract a string field `"key":"value"` from a flat JSON line.
pub fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":\"");
    let at = line.find(&needle)? + needle.len();
    let end = line[at..].find('"')?;
    Some(&line[at..at + end])
}

/// Validate a JSONL trace export: header line with the right schema,
/// well-formed event lines carrying `t_us`/`device`/`worker`/`ph`/`ev`,
/// globally non-decreasing timestamps, and balanced `B`/`E` spans per
/// (query, device, worker) track. The `query` field is optional and
/// defaults to 0 (pre-daemon exports), so legacy traces still validate;
/// when present it keys span balance, which is what lets a merged
/// export of concurrent searches pass even though their worker indices
/// collide.
pub fn validate_jsonl(text: &str) -> Result<JsonlReport, String> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or("empty trace")?;
    if !shape_ok(header) {
        return Err(format!("malformed header line: {header}"));
    }
    match field_str(header, "schema") {
        Some(s) if s == crate::SCHEMA => {}
        Some(s) => return Err(format!("schema {s:?}, expected {:?}", crate::SCHEMA)),
        None => return Err("header missing schema".to_string()),
    }

    let mut events = 0usize;
    let mut spans = 0usize;
    let mut last_t = 0u64;
    // Per-track stack of open span names, keyed (query, device, worker).
    let mut open: HashMap<(u64, u64, u64), Vec<String>> = HashMap::new();
    for (i, line) in lines {
        let n = i + 1; // 1-based for messages
        if line.is_empty() {
            continue;
        }
        if !shape_ok(line) {
            return Err(format!("line {n}: malformed JSON shape"));
        }
        let t = field_u64(line, "t_us").ok_or(format!("line {n}: missing t_us"))?;
        let query = field_u64(line, "query").unwrap_or(0);
        let device = field_u64(line, "device").ok_or(format!("line {n}: missing device"))?;
        let worker = field_u64(line, "worker").ok_or(format!("line {n}: missing worker"))?;
        let ph = field_str(line, "ph").ok_or(format!("line {n}: missing ph"))?;
        let ev = field_str(line, "ev").ok_or(format!("line {n}: missing ev"))?;
        if t < last_t {
            return Err(format!("line {n}: timestamp {t} < previous {last_t}"));
        }
        last_t = t;
        let stack = open.entry((query, device, worker)).or_default();
        match ph {
            "B" => stack.push(ev.to_string()),
            "E" => match stack.pop() {
                Some(b) if b == ev => spans += 1,
                Some(b) => {
                    return Err(format!("line {n}: span end {ev:?} closes open {b:?}"));
                }
                None => return Err(format!("line {n}: span end {ev:?} with no open span")),
            },
            "I" | "C" => {}
            other => return Err(format!("line {n}: unknown phase {other:?}")),
        }
        events += 1;
    }
    for ((q, d, w), stack) in &open {
        if let Some(name) = stack.last() {
            return Err(format!("track q{q} {d}/{w}: span {name:?} never ended"));
        }
    }
    let mut queries: Vec<u64> = open.keys().map(|&(q, _, _)| q).collect();
    queries.sort_unstable();
    queries.dedup();
    Ok(JsonlReport {
        events,
        tracks: open.len(),
        spans,
        queries: queries.len(),
    })
}

/// Validate a Prometheus text-exposition snapshot: every non-comment
/// line must be `name{labels} value` (or `name value`) with a parseable
/// float value. Returns the sample count.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value) = line
            .rsplit_once(' ')
            .ok_or(format!("line {n}: no value separator"))?;
        let metric = match name_part.split_once('{') {
            Some((m, rest)) => {
                if !rest.ends_with('}') {
                    return Err(format!("line {n}: unclosed label set"));
                }
                m
            }
            None => name_part,
        };
        if metric.is_empty()
            || !metric
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {n}: bad metric name {metric:?}"));
        }
        if value != "+Inf" && value != "-Inf" && value != "NaN" && value.parse::<f64>().is_err() {
            return Err(format!("line {n}: unparseable value {value:?}"));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples".to_string());
    }
    Ok(samples)
}

/// Summary of a successfully validated Prometheus snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromReport {
    /// Metric families declared (`# HELP` + `# TYPE` pairs).
    pub families: usize,
    /// Samples validated.
    pub samples: usize,
}

fn metric_name_ok(s: &str) -> bool {
    !s.is_empty()
        && s.chars().enumerate().all(|(i, c)| {
            c == '_' || c == ':' || c.is_ascii_alphabetic() || (i > 0 && c.is_ascii_digit())
        })
}

/// Parse a label body (`k="v",k2="v2"` — the text between `{` and `}`)
/// into pairs, enforcing exposition-format escaping: only `\\`, `\"`
/// and `\n` are legal in label values.
fn parse_labels(n: usize, body: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest
            .find("=\"")
            .ok_or(format!("line {n}: label without =\" in {body:?}"))?;
        let name = &rest[..eq];
        if !metric_name_ok(name) || name.contains(':') {
            return Err(format!("line {n}: bad label name {name:?}"));
        }
        let mut val = String::new();
        let mut end = None;
        let mut chars = rest[eq + 2..].char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, e @ ('\\' | '"' | 'n'))) => {
                        val.push('\\');
                        val.push(e);
                    }
                    other => {
                        return Err(format!(
                            "line {n}: illegal escape {:?} in label value",
                            other.map(|(_, c)| c)
                        ));
                    }
                },
                '"' => {
                    end = Some(eq + 2 + i);
                    break;
                }
                _ => val.push(c),
            }
        }
        let end = end.ok_or(format!("line {n}: unterminated label value"))?;
        out.push((name.to_string(), val));
        rest = &rest[end + 1..];
        match rest.strip_prefix(',') {
            Some(r) if !r.is_empty() => rest = r,
            Some(_) => return Err(format!("line {n}: trailing comma in label set")),
            None if rest.is_empty() => {}
            None => return Err(format!("line {n}: junk after label value: {rest:?}")),
        }
    }
    Ok(out)
}

fn parse_sample_value(n: usize, s: &str) -> Result<f64, String> {
    let v = match s {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        _ => s
            .parse::<f64>()
            .map_err(|_| format!("line {n}: unparseable value {s:?}"))?,
    };
    if v.is_nan() {
        return Err(format!("line {n}: NaN sample value"));
    }
    Ok(v)
}

/// Strict Prometheus text-exposition validator — what the exporter
/// tests and CI run against both the per-search snapshot
/// ([`crate::export::prometheus`]) and the daemon-lifetime snapshot
/// (`sw-serve`'s obs plane). Beyond the line-shape check of
/// [`validate_prometheus`], it enforces:
///
/// - every family is declared with `# HELP` *then* `# TYPE`, and every
///   `# HELP` has a matching `# TYPE`;
/// - declared types are `counter` / `gauge` / `histogram` only;
/// - every sample belongs to a declared family (histogram samples are
///   attributed by stripping `_bucket` / `_sum` / `_count`);
/// - label sets parse with legal names and legal value escapes
///   (`\\`, `\"`, `\n`);
/// - counter families end in `_total` and carry non-negative finite
///   values (counter monotonicity within one snapshot: cumulative
///   histogram buckets never decrease, counters never go negative);
/// - per histogram series (family + labels minus `le`): `le` bounds
///   strictly increase and terminate at `+Inf`, cumulative bucket
///   counts are non-decreasing, `_count` equals the `+Inf` bucket, and
///   `_sum` is present;
/// - no sample anywhere is NaN.
pub fn validate_prometheus_strict(text: &str) -> Result<PromReport, String> {
    use std::collections::BTreeMap;

    let mut help: HashMap<String, usize> = HashMap::new();
    let mut types: HashMap<String, String> = HashMap::new();
    let mut samples = 0usize;
    #[derive(Default)]
    struct HistSeries {
        buckets: Vec<(f64, f64)>, // (le, cumulative count) in file order
        sum: Option<f64>,
        count: Option<f64>,
    }
    let mut hists: BTreeMap<(String, String), HistSeries> = BTreeMap::new();

    for (i, raw) in text.lines().enumerate() {
        let n = i + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, doc) = rest
                .split_once(' ')
                .ok_or(format!("line {n}: HELP without text"))?;
            if !metric_name_ok(name) || doc.is_empty() {
                return Err(format!("line {n}: malformed HELP for {name:?}"));
            }
            if help.insert(name.to_string(), n).is_some() {
                return Err(format!("line {n}: duplicate HELP for {name}"));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, ty) = rest
                .split_once(' ')
                .ok_or(format!("line {n}: TYPE without kind"))?;
            if !matches!(ty, "counter" | "gauge" | "histogram") {
                return Err(format!("line {n}: unknown type {ty:?} for {name}"));
            }
            if !help.contains_key(name) {
                return Err(format!("line {n}: TYPE {name} precedes its HELP"));
            }
            if types.insert(name.to_string(), ty.to_string()).is_some() {
                return Err(format!("line {n}: duplicate TYPE for {name}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }

        let (name_part, value_str) = line
            .rsplit_once(' ')
            .ok_or(format!("line {n}: no value separator"))?;
        let (name, labels) = match name_part.split_once('{') {
            Some((m, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or(format!("line {n}: unclosed label set"))?;
                (m, parse_labels(n, body)?)
            }
            None => (name_part, Vec::new()),
        };
        if !metric_name_ok(name) {
            return Err(format!("line {n}: bad metric name {name:?}"));
        }
        let value = parse_sample_value(n, value_str)?;
        samples += 1;

        // Attribute the sample to its declared family.
        let hist_base = |suffix: &str| {
            name.strip_suffix(suffix)
                .filter(|b| types.get(*b).map(String::as_str) == Some("histogram"))
        };
        let series_key = |labels: &[(String, String)], drop_le: bool| {
            let mut kv: Vec<String> = labels
                .iter()
                .filter(|(k, _)| !(drop_le && k == "le"))
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            kv.sort();
            kv.join(",")
        };
        if let Some(base) = hist_base("_bucket") {
            let le = labels
                .iter()
                .find(|(k, _)| k == "le")
                .ok_or(format!("line {n}: histogram bucket without le label"))?;
            let bound = parse_sample_value(n, &le.1)?;
            hists
                .entry((base.to_string(), series_key(&labels, true)))
                .or_default()
                .buckets
                .push((bound, value));
        } else if let Some(base) = hist_base("_sum") {
            hists
                .entry((base.to_string(), series_key(&labels, false)))
                .or_default()
                .sum = Some(value);
        } else if let Some(base) = hist_base("_count") {
            hists
                .entry((base.to_string(), series_key(&labels, false)))
                .or_default()
                .count = Some(value);
        } else {
            match types.get(name).map(String::as_str) {
                Some("counter") => {
                    if !name.ends_with("_total") {
                        return Err(format!("line {n}: counter {name} does not end in _total"));
                    }
                    if !(value.is_finite() && value >= 0.0) {
                        return Err(format!("line {n}: counter {name} value {value} not a non-negative finite number"));
                    }
                }
                Some("gauge") => {}
                Some("histogram") => {
                    return Err(format!(
                        "line {n}: bare sample {name} for a histogram family"
                    ));
                }
                Some(_) | None => {
                    return Err(format!("line {n}: sample {name} has no declared TYPE"));
                }
            }
        }
    }

    for name in help.keys() {
        if !types.contains_key(name) {
            return Err(format!("HELP {name} has no TYPE"));
        }
    }
    for ((family, series), h) in &hists {
        let at = format!("histogram {family}{{{series}}}");
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_cum = -1.0;
        for &(le, cum) in &h.buckets {
            if le <= prev_le {
                return Err(format!("{at}: le bounds not strictly increasing"));
            }
            if cum < prev_cum {
                return Err(format!("{at}: cumulative bucket counts decrease"));
            }
            if !(cum.is_finite() && cum >= 0.0) {
                return Err(format!("{at}: bucket count {cum} invalid"));
            }
            prev_le = le;
            prev_cum = cum;
        }
        match h.buckets.last() {
            Some(&(le, cum)) if le.is_infinite() => {
                if h.count != Some(cum) {
                    return Err(format!("{at}: _count does not equal the +Inf bucket"));
                }
            }
            _ => return Err(format!("{at}: missing terminal +Inf bucket")),
        }
        if h.sum.is_none() {
            return Err(format!("{at}: missing _sum"));
        }
    }
    if samples == 0 {
        return Err("no samples".to_string());
    }
    Ok(PromReport {
        families: types.len(),
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export;
    use crate::{EventKind, Tracer};

    fn traced_jsonl() -> String {
        let tr = Tracer::full();
        let mut j = tr.worker(0, 0);
        j.emit_at(0, EventKind::QueueWaitBegin);
        j.emit_at(4, EventKind::QueueWaitEnd { us: 4 });
        j.emit_at(
            5,
            EventKind::ChunkStart {
                lease: 0,
                lo: 0,
                hi: 2,
            },
        );
        j.emit_at(
            9,
            EventKind::ChunkFinish {
                lease: 0,
                lo: 0,
                hi: 2,
                cells: 64,
            },
        );
        drop(j);
        export::jsonl(&tr.timeline())
    }

    #[test]
    fn real_export_validates() {
        let text = traced_jsonl();
        let rep = validate_jsonl(&text).expect("valid");
        assert_eq!(rep.events, 4);
        assert_eq!(rep.tracks, 1);
        assert_eq!(rep.spans, 2);
    }

    #[test]
    fn merged_two_query_export_validates_with_colliding_workers() {
        // Same (device, worker) on both queries: span balance must key on
        // the query tag or the interleaved spans would cross-close.
        let t1 = Tracer::for_query(crate::TraceLevel::Full, 64, 1);
        let t2 = Tracer::for_query(crate::TraceLevel::Full, 64, 2);
        let mut j1 = t1.worker(0, 0);
        let mut j2 = t2.worker(0, 0);
        j1.emit_at(
            0,
            EventKind::ChunkStart {
                lease: 0,
                lo: 0,
                hi: 1,
            },
        );
        j2.emit_at(1, EventKind::QueueWaitBegin);
        j1.emit_at(
            2,
            EventKind::ChunkFinish {
                lease: 0,
                lo: 0,
                hi: 1,
                cells: 8,
            },
        );
        j2.emit_at(3, EventKind::QueueWaitEnd { us: 2 });
        drop(j1);
        drop(j2);
        let merged = crate::Timeline::merge([t1.timeline(), t2.timeline()]);
        let rep = validate_jsonl(&export::jsonl(&merged)).expect("valid");
        assert_eq!(rep.events, 4);
        assert_eq!(rep.tracks, 2);
        assert_eq!(rep.spans, 2);
        assert_eq!(rep.queries, 2);
    }

    #[test]
    fn legacy_lines_without_query_default_to_query_zero() {
        let text = traced_jsonl().replace("\"query\":0,", "");
        let rep = validate_jsonl(&text).expect("legacy trace still valid");
        assert_eq!(rep.queries, 1);
        assert_eq!(rep.spans, 2);
    }

    #[test]
    fn rejects_regressing_timestamps() {
        let text = traced_jsonl().replace("\"t_us\":9", "\"t_us\":1");
        let err = validate_jsonl(&text).unwrap_err();
        assert!(err.contains("timestamp"), "{err}");
    }

    #[test]
    fn rejects_unbalanced_span() {
        let mut text = traced_jsonl();
        // Drop the ChunkFinish line.
        text = text
            .lines()
            .filter(|l| !l.contains("\"cells\""))
            .map(|l| format!("{l}\n"))
            .collect();
        let err = validate_jsonl(&text).unwrap_err();
        assert!(err.contains("never ended"), "{err}");
    }

    #[test]
    fn rejects_mismatched_span_names() {
        let text = traced_jsonl().replace(
            "\"ph\":\"E\",\"ev\":\"chunk\"",
            "\"ph\":\"E\",\"ev\":\"zz\"",
        );
        assert!(validate_jsonl(&text).is_err());
    }

    #[test]
    fn rejects_malformed_line_and_wrong_schema() {
        let text = format!("{}not json\n", traced_jsonl());
        assert!(validate_jsonl(&text).is_err());
        let text = traced_jsonl().replace("sw-trace/1", "sw-trace/0");
        assert!(validate_jsonl(&text).unwrap_err().contains("schema"));
    }

    #[test]
    fn prometheus_roundtrip_validates() {
        let tr = Tracer::full();
        drop(tr.worker(0, 0));
        let text = export::prometheus(
            &tr.timeline(),
            &[crate::DeviceCounters {
                device: 0,
                cells: 10,
                ..Default::default()
            }],
            0,
        );
        let n = validate_prometheus(&text).expect("valid");
        assert!(n > 5);
    }

    fn traced_prometheus() -> String {
        let tr = Tracer::full();
        let mut j = tr.worker(0, 0);
        j.emit_at(0, EventKind::QueueWaitBegin);
        j.emit_at(4, EventKind::QueueWaitEnd { us: 4 });
        j.emit_at(
            5,
            EventKind::ChunkStart {
                lease: 0,
                lo: 0,
                hi: 2,
            },
        );
        j.emit_at(
            9,
            EventKind::ChunkFinish {
                lease: 0,
                lo: 0,
                hi: 2,
                cells: 64,
            },
        );
        j.emit_at(
            10,
            EventKind::CheckpointWritten {
                seq: 1,
                tasks_done: 2,
                bytes: 128,
            },
        );
        drop(j);
        export::prometheus_with_isa(
            &tr.timeline(),
            &[crate::DeviceCounters {
                device: 0,
                cells: 64,
                chunks: 1,
                busy_secs: 0.001,
                ..Default::default()
            }],
            0,
            "avx2",
        )
    }

    #[test]
    fn strict_validator_passes_real_per_search_snapshot() {
        let text = traced_prometheus();
        let rep = validate_prometheus_strict(&text).expect("valid");
        assert!(rep.families >= 15, "families = {}", rep.families);
        assert!(rep.samples >= 30, "samples = {}", rep.samples);
        // The weak validator must also still accept it (back-compat).
        validate_prometheus(&text).expect("weak validator agrees");
    }

    #[test]
    fn strict_validator_rejects_structural_defects() {
        let ok = "# HELP m_total things\n# TYPE m_total counter\nm_total 3\n";
        validate_prometheus_strict(ok).expect("minimal counter family");

        // TYPE before HELP.
        let t = "# TYPE m_total counter\n# HELP m_total things\nm_total 3\n";
        assert!(validate_prometheus_strict(t)
            .unwrap_err()
            .contains("precedes"));
        // Sample without any declaration.
        assert!(validate_prometheus_strict("orphan 1\n")
            .unwrap_err()
            .contains("no declared TYPE"));
        // HELP with no TYPE.
        let t = "# HELP a_total x\n# TYPE a_total counter\na_total 1\n# HELP lonely y\n";
        assert!(validate_prometheus_strict(t)
            .unwrap_err()
            .contains("no TYPE"));
        // Counter family not ending in _total.
        let t = "# HELP m things\n# TYPE m counter\nm 3\n";
        assert!(validate_prometheus_strict(t)
            .unwrap_err()
            .contains("_total"));
        // Negative counter.
        let t = "# HELP m_total things\n# TYPE m_total counter\nm_total -1\n";
        assert!(validate_prometheus_strict(t)
            .unwrap_err()
            .contains("non-negative"));
        // NaN sample.
        let t = "# HELP g stuff\n# TYPE g gauge\ng NaN\n";
        assert!(validate_prometheus_strict(t).unwrap_err().contains("NaN"));
        // Unknown type.
        let t = "# HELP m stuff\n# TYPE m summary\nm 1\n";
        assert!(validate_prometheus_strict(t)
            .unwrap_err()
            .contains("unknown type"));
        // Illegal label escape.
        let t = "# HELP g stuff\n# TYPE g gauge\ng{tenant=\"a\\tb\"} 1\n";
        assert!(validate_prometheus_strict(t)
            .unwrap_err()
            .contains("escape"));
    }

    #[test]
    fn strict_validator_rejects_histogram_defects() {
        let decl = "# HELP h_us lat\n# TYPE h_us histogram\n";
        let good = format!(
            "{decl}h_us_bucket{{le=\"10\"}} 1\nh_us_bucket{{le=\"+Inf\"}} 2\nh_us_sum 12\nh_us_count 2\n"
        );
        validate_prometheus_strict(&good).expect("well-formed histogram");

        // Missing +Inf terminal bucket.
        let t = format!("{decl}h_us_bucket{{le=\"10\"}} 1\nh_us_sum 12\nh_us_count 1\n");
        assert!(validate_prometheus_strict(&t).unwrap_err().contains("+Inf"));
        // le bounds out of order.
        let t = format!(
            "{decl}h_us_bucket{{le=\"10\"}} 1\nh_us_bucket{{le=\"5\"}} 1\nh_us_bucket{{le=\"+Inf\"}} 2\nh_us_sum 1\nh_us_count 2\n"
        );
        assert!(validate_prometheus_strict(&t)
            .unwrap_err()
            .contains("strictly increasing"));
        // Cumulative counts decreasing.
        let t = format!(
            "{decl}h_us_bucket{{le=\"10\"}} 3\nh_us_bucket{{le=\"+Inf\"}} 2\nh_us_sum 1\nh_us_count 2\n"
        );
        assert!(validate_prometheus_strict(&t)
            .unwrap_err()
            .contains("decrease"));
        // _count disagrees with the +Inf bucket.
        let t = format!(
            "{decl}h_us_bucket{{le=\"10\"}} 1\nh_us_bucket{{le=\"+Inf\"}} 2\nh_us_sum 1\nh_us_count 7\n"
        );
        assert!(validate_prometheus_strict(&t)
            .unwrap_err()
            .contains("_count"));
        // _sum missing.
        let t = format!("{decl}h_us_bucket{{le=\"+Inf\"}} 0\nh_us_count 0\n");
        assert!(validate_prometheus_strict(&t).unwrap_err().contains("_sum"));
    }

    #[test]
    fn prometheus_rejects_garbage() {
        assert!(validate_prometheus("sw_cells_total{device=\"cpu\"} notanumber\n").is_err());
        assert!(validate_prometheus("").is_err());
        assert!(validate_prometheus("bad metric name} 1\n").is_err());
    }

    #[test]
    fn field_helpers() {
        let line = "{\"t_us\":42,\"ev\":\"chunk\"}";
        assert_eq!(field_u64(line, "t_us"), Some(42));
        assert_eq!(field_str(line, "ev"), Some("chunk"));
        assert_eq!(field_u64(line, "missing"), None);
    }
}
