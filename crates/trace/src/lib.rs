//! # sw-trace — per-worker event journal and run timeline
//!
//! The paper's whole argument (§VI) rests on *observing* the realised
//! workload distribution across heterogeneous devices. This crate is the
//! diagnostic substrate for that: a lock-cheap, per-worker ring-buffered
//! event journal with monotonic timestamps relative to a run epoch,
//! drained into a run [`Timeline`], plus three exporters
//! ([`export::jsonl`], [`export::chrome_trace`], [`export::prometheus`])
//! and a schema validator ([`validate`]).
//!
//! Design constraints:
//!
//! * **Lock-cheap.** Each worker owns its [`WorkerJournal`]; emission is
//!   a bounds check and a ring push — no shared lock. The only lock is
//!   taken once per worker, when the journal drains into the tracer on
//!   drop.
//! * **Zero-cost when disabled.** A disabled tracer hands out journals
//!   whose every method is a single `Option` branch: no clock read, no
//!   allocation, no ring.
//! * **Simulator parity.** [`WorkerJournal::emit_at`] takes an explicit
//!   microsecond timestamp so discrete-event simulations (`sw-sched`'s
//!   desim, `sw-device`'s offload sim) produce the same schema as real
//!   runs.
//!
//! The schema is versioned as [`SCHEMA`] (`sw-trace/1`); exporters stamp
//! it into their output and [`validate::validate_jsonl`] checks it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod export;
pub mod validate;

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Trace schema version stamped into every export.
pub const SCHEMA: &str = "sw-trace/1";

/// Default per-worker ring capacity (events). At ~56 bytes per event a
/// full ring is ~3.5 MiB per worker — generous for any run we do while
/// still bounded.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// How much detail a tracer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceLevel {
    /// Record nothing; journals are no-ops.
    #[default]
    Off,
    /// Record instant and counter events only (lease lifecycle, retire,
    /// rebalance, recompute) — skips begin/end spans.
    Lite,
    /// Record everything, including chunk / queue-wait spans.
    Full,
}

impl TraceLevel {
    /// Parse a CLI-style level name (`off` / `lite` / `full`).
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s {
            "off" => Some(TraceLevel::Off),
            "lite" => Some(TraceLevel::Lite),
            "full" => Some(TraceLevel::Full),
            _ => None,
        }
    }
}

/// Chrome-trace phase of an event kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span begin (`B`).
    Begin,
    /// Span end (`E`).
    End,
    /// Instant event (`I`).
    Instant,
    /// Counter sample (`C`).
    Counter,
}

impl Phase {
    /// The single-letter Chrome trace phase code.
    pub fn code(self) -> char {
        match self {
            Phase::Begin => 'B',
            Phase::End => 'E',
            Phase::Instant => 'I',
            Phase::Counter => 'C',
        }
    }
}

/// Everything the journal can record. Payload fields are the minimum
/// needed to reconstruct scheduler decisions offline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A worker received a chunk from the supervisor (instant; `attempts`
    /// > 0 marks a re-execution of previously failed work).
    ChunkClaim {
        /// Lease id of the claim.
        lease: u64,
        /// First task index (inclusive).
        lo: usize,
        /// Last task index (exclusive).
        hi: usize,
        /// Prior failed attempts on this range.
        attempts: u32,
    },
    /// Chunk execution span begin.
    ChunkStart {
        /// Lease id being executed.
        lease: u64,
        /// First task index (inclusive).
        lo: usize,
        /// Last task index (exclusive).
        hi: usize,
    },
    /// Chunk execution span end.
    ChunkFinish {
        /// Lease id that finished.
        lease: u64,
        /// First task index (inclusive).
        lo: usize,
        /// Last task index (exclusive).
        hi: usize,
        /// DP cells computed by the chunk.
        cells: u64,
    },
    /// Queue-wait span begin (worker is idle, polling for work).
    QueueWaitBegin,
    /// Queue-wait span end; `us` is the measured wait.
    QueueWaitEnd {
        /// Wait duration in microseconds.
        us: u64,
    },
    /// Supervisor registered a lease for a claimed range.
    LeaseGranted {
        /// New lease id.
        lease: u64,
        /// First task index (inclusive).
        lo: usize,
        /// Last task index (exclusive).
        hi: usize,
    },
    /// Supervisor reclaimed an expired lease from a (presumed dead)
    /// worker. Emitted on the reclaiming worker's track; `victim` is the
    /// device that held the lease.
    LeaseLost {
        /// The reclaimed lease id.
        lease: u64,
        /// Device pool that held the lease.
        victim: usize,
    },
    /// A failed or reclaimed range went back on the requeue.
    LeaseRequeued {
        /// Lease id the range was requeued from.
        lease: u64,
        /// First requeued task index (inclusive).
        lo: usize,
        /// Last requeued task index (exclusive).
        hi: usize,
        /// Attempt count the requeued range carries.
        attempts: u32,
    },
    /// Worker is backing off before retrying previously failed work.
    RetryBackoff {
        /// Attempt number driving the backoff.
        attempts: u32,
        /// Backoff sleep in milliseconds.
        backoff_ms: u64,
    },
    /// A device pool exhausted its failure budget and was retired.
    PoolRetired {
        /// The retired device.
        device: usize,
    },
    /// Async offload submitted to the device link.
    OffloadSignal {
        /// Bytes moved host→device for this offload.
        bytes: u64,
    },
    /// Host completed a wait on an offload signal.
    OffloadWait {
        /// Microseconds the host was blocked.
        us: u64,
    },
    /// A bounded wait on an offload signal timed out.
    OffloadTimeout {
        /// The timeout budget that expired, in microseconds.
        us: u64,
    },
    /// Saturated lanes were recomputed at a wider precision.
    OverflowRecompute {
        /// Element width that saturated (bits).
        from_bits: u8,
        /// Element width of the exact recompute (bits).
        to_bits: u8,
        /// Lanes recomputed.
        lanes: u64,
    },
    /// The split estimator produced a new accel share for fresh chunks.
    SplitRebalance {
        /// Accel share of remaining work, in [0, 1].
        share: f64,
    },
    /// A durable-search checkpoint file was written.
    CheckpointWritten {
        /// Monotone checkpoint sequence number within the run.
        seq: u64,
        /// Tasks whose results the checkpoint covers.
        tasks_done: u64,
        /// Bytes written to the checkpoint file.
        bytes: u64,
    },
    /// A durable search resumed from a checkpoint.
    ResumeLoaded {
        /// Tasks the loaded checkpoint already covered.
        tasks_done: u64,
    },
    /// A graceful drain was requested: workers finish in-flight chunks
    /// and exit so a final checkpoint can be written.
    DrainStarted,
}

impl EventKind {
    /// Stable event name. Begin/end pairs of one span share a name and
    /// are distinguished by [`EventKind::phase`].
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::ChunkClaim { .. } => "chunk_claim",
            EventKind::ChunkStart { .. } | EventKind::ChunkFinish { .. } => "chunk",
            EventKind::QueueWaitBegin | EventKind::QueueWaitEnd { .. } => "queue_wait",
            EventKind::LeaseGranted { .. } => "lease_granted",
            EventKind::LeaseLost { .. } => "lease_lost",
            EventKind::LeaseRequeued { .. } => "lease_requeued",
            EventKind::RetryBackoff { .. } => "retry_backoff",
            EventKind::PoolRetired { .. } => "pool_retired",
            EventKind::OffloadSignal { .. } => "offload_signal",
            EventKind::OffloadWait { .. } => "offload_wait",
            EventKind::OffloadTimeout { .. } => "offload_timeout",
            EventKind::OverflowRecompute { .. } => "overflow_recompute",
            EventKind::SplitRebalance { .. } => "split_rebalance",
            EventKind::CheckpointWritten { .. } => "checkpoint_written",
            EventKind::ResumeLoaded { .. } => "resume_loaded",
            EventKind::DrainStarted => "drain_started",
        }
    }

    /// The Chrome-trace phase this kind maps to.
    pub fn phase(&self) -> Phase {
        match self {
            EventKind::ChunkStart { .. } | EventKind::QueueWaitBegin => Phase::Begin,
            EventKind::ChunkFinish { .. } | EventKind::QueueWaitEnd { .. } => Phase::End,
            EventKind::SplitRebalance { .. } => Phase::Counter,
            _ => Phase::Instant,
        }
    }

    /// True for span (begin/end) phases — the events a `Lite` tracer
    /// drops.
    pub fn is_span(&self) -> bool {
        matches!(self.phase(), Phase::Begin | Phase::End)
    }

    /// Append the payload as JSON object members (leading comma
    /// included; empty for payload-free kinds).
    pub fn write_args_json(&self, out: &mut String) {
        match *self {
            EventKind::ChunkClaim {
                lease,
                lo,
                hi,
                attempts,
            } => {
                let _ = write!(
                    out,
                    ",\"lease\":{lease},\"lo\":{lo},\"hi\":{hi},\"attempts\":{attempts}"
                );
            }
            EventKind::ChunkStart { lease, lo, hi } => {
                let _ = write!(out, ",\"lease\":{lease},\"lo\":{lo},\"hi\":{hi}");
            }
            EventKind::ChunkFinish {
                lease,
                lo,
                hi,
                cells,
            } => {
                let _ = write!(
                    out,
                    ",\"lease\":{lease},\"lo\":{lo},\"hi\":{hi},\"cells\":{cells}"
                );
            }
            EventKind::QueueWaitBegin => {}
            EventKind::QueueWaitEnd { us } => {
                let _ = write!(out, ",\"us\":{us}");
            }
            EventKind::LeaseGranted { lease, lo, hi } => {
                let _ = write!(out, ",\"lease\":{lease},\"lo\":{lo},\"hi\":{hi}");
            }
            EventKind::LeaseLost { lease, victim } => {
                let _ = write!(out, ",\"lease\":{lease},\"victim\":{victim}");
            }
            EventKind::LeaseRequeued {
                lease,
                lo,
                hi,
                attempts,
            } => {
                let _ = write!(
                    out,
                    ",\"lease\":{lease},\"lo\":{lo},\"hi\":{hi},\"attempts\":{attempts}"
                );
            }
            EventKind::RetryBackoff {
                attempts,
                backoff_ms,
            } => {
                let _ = write!(out, ",\"attempts\":{attempts},\"backoff_ms\":{backoff_ms}");
            }
            EventKind::PoolRetired { device } => {
                let _ = write!(out, ",\"device\":{device}");
            }
            EventKind::OffloadSignal { bytes } => {
                let _ = write!(out, ",\"bytes\":{bytes}");
            }
            EventKind::OffloadWait { us } | EventKind::OffloadTimeout { us } => {
                let _ = write!(out, ",\"us\":{us}");
            }
            EventKind::OverflowRecompute {
                from_bits,
                to_bits,
                lanes,
            } => {
                let _ = write!(
                    out,
                    ",\"from_bits\":{from_bits},\"to_bits\":{to_bits},\"lanes\":{lanes}"
                );
            }
            EventKind::SplitRebalance { share } => {
                let _ = write!(out, ",\"share\":{share:.6}");
            }
            EventKind::CheckpointWritten {
                seq,
                tasks_done,
                bytes,
            } => {
                let _ = write!(
                    out,
                    ",\"seq\":{seq},\"tasks_done\":{tasks_done},\"bytes\":{bytes}"
                );
            }
            EventKind::ResumeLoaded { tasks_done } => {
                let _ = write!(out, ",\"tasks_done\":{tasks_done}");
            }
            EventKind::DrainStarted => {}
        }
    }
}

/// One timestamped journal entry. `t_us` is microseconds since the run
/// epoch (or simulated time for desim-produced timelines).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Microseconds since the run epoch.
    pub t_us: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The drained journal of one worker: its identity plus its events in
/// emission order.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerTrack {
    /// Query id of the search this track belongs to (`0` for solo runs;
    /// daemons assign a distinct id per request so merged timelines of
    /// concurrent searches stay separable).
    pub query: u64,
    /// Device pool the worker belonged to.
    pub device: usize,
    /// Worker index within the pool.
    pub worker: usize,
    /// Events in emission order (ring-bounded; oldest dropped first).
    pub events: Vec<Event>,
    /// Events discarded because the ring was full.
    pub dropped: u64,
}

/// Shared state behind an enabled [`Tracer`].
#[derive(Debug)]
struct Shared {
    /// Per-tracer run epoch: every search gets its own zero point, so a
    /// daemon's concurrent requests never share clock state.
    epoch: Instant,
    /// Query id stamped on every track this tracer drains.
    query: u64,
    level: TraceLevel,
    capacity: usize,
    drained: Mutex<Vec<WorkerTrack>>,
}

fn unpoison<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Run-scoped trace collector. Cheap to clone (an `Arc` under the hood);
/// hand one [`WorkerJournal`] to each worker and call
/// [`Tracer::timeline`] after all journals dropped.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Option<Arc<Shared>>,
}

impl Tracer {
    /// A tracer that records nothing; every journal it hands out is a
    /// no-op.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// A tracer recording at `level` with the given per-worker ring
    /// capacity (clamped to ≥ 16). `TraceLevel::Off` yields a disabled
    /// tracer. Query id 0 — the solo-run convention.
    pub fn new(level: TraceLevel, ring_capacity: usize) -> Tracer {
        Tracer::for_query(level, ring_capacity, 0)
    }

    /// Like [`Tracer::new`] but stamping `query` on every drained track,
    /// so exports of concurrent searches can be told apart. Each call
    /// takes a fresh epoch: timestamps are relative to *this* search's
    /// start, never to another request's.
    pub fn for_query(level: TraceLevel, ring_capacity: usize, query: u64) -> Tracer {
        if level == TraceLevel::Off {
            return Tracer::disabled();
        }
        Tracer {
            inner: Some(Arc::new(Shared {
                epoch: Instant::now(),
                query,
                level,
                capacity: ring_capacity.max(16),
                drained: Mutex::new(Vec::new()),
            })),
        }
    }

    /// A full-detail tracer with the default ring capacity.
    pub fn full() -> Tracer {
        Tracer::new(TraceLevel::Full, DEFAULT_RING_CAPACITY)
    }

    /// The query id stamped on this tracer's tracks (0 when disabled).
    pub fn query_id(&self) -> u64 {
        match &self.inner {
            Some(s) => s.query,
            None => 0,
        }
    }

    /// True when this tracer records events.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since the run epoch (0 when disabled).
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            Some(s) => s.epoch.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    /// Create the journal for worker `worker` of device pool `device`.
    pub fn worker(&self, device: usize, worker: usize) -> WorkerJournal {
        WorkerJournal {
            shared: self.inner.clone(),
            device,
            worker,
            ring: match &self.inner {
                Some(s) => VecDeque::with_capacity(s.capacity.min(1024)),
                None => VecDeque::new(),
            },
            dropped: 0,
        }
    }

    /// Open a per-task span on this tracer: a one-task chunk attributed
    /// to `(device, worker-lane = task's db-batch index or similar)`.
    ///
    /// This is how a *shared* multi-query region produces *per-query*
    /// timelines: the region's executor traces into the region tracer as
    /// usual, while each task closure additionally opens a `task_span`
    /// on the tracer of the query that owns the task. The span flushes on
    /// `finish`, so each task lands as its own track and concurrent tasks
    /// of one query never interleave events within a track.
    pub fn task_span(&self, device: usize, worker: usize, task: usize) -> TaskSpan {
        let journal = self.worker(device, worker);
        let begin = journal.stamp();
        TaskSpan {
            journal,
            begin,
            task,
        }
    }

    /// Drain every flushed journal into a [`Timeline`]. Tracks are
    /// ordered by (device, worker); journals still alive are not
    /// included, so drop (or [`WorkerJournal::flush`]) them first.
    pub fn timeline(&self) -> Timeline {
        let mut tracks = match &self.inner {
            Some(s) => std::mem::take(&mut *unpoison(s.drained.lock())),
            None => Vec::new(),
        };
        tracks.sort_by_key(|t| (t.query, t.device, t.worker));
        Timeline { tracks }
    }
}

/// A worker-owned event buffer. All emission paths are branch-then-push;
/// the shared tracer lock is touched only on [`WorkerJournal::flush`] /
/// drop.
#[derive(Debug, Default)]
pub struct WorkerJournal {
    shared: Option<Arc<Shared>>,
    device: usize,
    worker: usize,
    ring: VecDeque<Event>,
    dropped: u64,
}

/// An opaque begin-timestamp returned by [`WorkerJournal::stamp`], fed
/// back to [`WorkerJournal::span_from`] to close a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamp(u64);

impl Stamp {
    const DISABLED: Stamp = Stamp(u64::MAX);

    /// Build a stamp from an explicit epoch-relative microsecond time
    /// (for simulated clocks).
    pub fn at_us(t_us: u64) -> Stamp {
        Stamp(t_us)
    }
}

impl WorkerJournal {
    /// A journal that records nothing (what a disabled tracer hands out).
    pub fn disabled() -> WorkerJournal {
        WorkerJournal::default()
    }

    /// True when emissions are recorded.
    pub fn enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Device pool this journal reports for.
    pub fn device(&self) -> usize {
        self.device
    }

    /// Microseconds since the run epoch (0 when disabled).
    pub fn now_us(&self) -> u64 {
        match &self.shared {
            Some(s) => s.epoch.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    fn push(&mut self, ev: Event) {
        let cap = match &self.shared {
            Some(s) => s.capacity,
            None => return,
        };
        if self.ring.len() == cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ev);
    }

    /// Record `kind` at the current clock. No-op when disabled, or when
    /// a `Lite` tracer is given a span event.
    pub fn emit(&mut self, kind: EventKind) {
        let Some(s) = &self.shared else { return };
        if s.level == TraceLevel::Lite && kind.is_span() {
            return;
        }
        let t_us = s.epoch.elapsed().as_micros() as u64;
        self.push(Event { t_us, kind });
    }

    /// Record `kind` at an explicit epoch-relative time — the simulator
    /// entry point (desim / offload sim feed their virtual clocks here).
    pub fn emit_at(&mut self, t_us: u64, kind: EventKind) {
        let Some(s) = &self.shared else { return };
        if s.level == TraceLevel::Lite && kind.is_span() {
            return;
        }
        self.push(Event { t_us, kind });
    }

    /// Take a begin timestamp for a later [`WorkerJournal::span_from`].
    /// Costs one clock read when enabled, nothing when disabled.
    pub fn stamp(&self) -> Stamp {
        match &self.shared {
            Some(s) => Stamp(s.epoch.elapsed().as_micros() as u64),
            None => Stamp::DISABLED,
        }
    }

    /// Close a span opened at `begin`: emits `begin_kind` at the stamp
    /// time and `end_kind` now. No-op when the stamp came from a
    /// disabled journal.
    pub fn span_from(&mut self, begin: Stamp, begin_kind: EventKind, end_kind: EventKind) {
        if begin == Stamp::DISABLED || self.shared.is_none() {
            return;
        }
        let end = self.now_us();
        self.emit_at(begin.0.min(end), begin_kind);
        self.emit_at(end, end_kind);
    }

    /// Microseconds elapsed since `begin` (0 when disabled).
    pub fn since_us(&self, begin: Stamp) -> u64 {
        if begin == Stamp::DISABLED {
            return 0;
        }
        self.now_us().saturating_sub(begin.0)
    }

    /// Push the buffered events into the tracer. Called automatically on
    /// drop; call explicitly to drain mid-run.
    pub fn flush(&mut self) {
        let Some(s) = &self.shared else { return };
        if self.ring.is_empty() && self.dropped == 0 {
            return;
        }
        let track = WorkerTrack {
            query: s.query,
            device: self.device,
            worker: self.worker,
            events: self.ring.drain(..).collect(),
            dropped: std::mem::take(&mut self.dropped),
        };
        unpoison(s.drained.lock()).push(track);
    }
}

impl Drop for WorkerJournal {
    fn drop(&mut self) {
        self.flush();
    }
}

/// An open per-task span from [`Tracer::task_span`]: one task of a shared
/// multi-query region, traced onto the owning query's own tracer (and
/// therefore its own epoch and query tag). Dropping without
/// [`TaskSpan::finish`] records nothing — an abandoned task leaves no
/// half-open span behind.
pub struct TaskSpan {
    journal: WorkerJournal,
    begin: Stamp,
    task: usize,
}

impl TaskSpan {
    /// Close the span: emits a balanced `chunk_start`/`chunk_finish` pair
    /// covering task range `[task, task+1)` and flushes the track.
    pub fn finish(mut self, lease: u64, cells: u64) {
        let (lo, hi) = (self.task, self.task + 1);
        self.journal.span_from(
            self.begin,
            EventKind::ChunkStart { lease, lo, hi },
            EventKind::ChunkFinish {
                lease,
                lo,
                hi,
                cells,
            },
        );
        self.journal.flush();
    }
}

thread_local! {
    static CURRENT: RefCell<Option<WorkerJournal>> = const { RefCell::new(None) };
}

/// Install `journal` as this thread's ambient journal (used by layers —
/// e.g. kernels — that have no journal parameter). Returns the previous
/// occupant, if any.
pub fn install(journal: WorkerJournal) -> Option<WorkerJournal> {
    CURRENT.with(|c| c.borrow_mut().replace(journal))
}

/// Remove and return this thread's ambient journal.
pub fn uninstall() -> Option<WorkerJournal> {
    CURRENT.with(|c| c.borrow_mut().take())
}

/// Install `journal` for a scope, keeping whatever was already installed
/// and restoring it when the guard is consumed or dropped. This is how a
/// nested search (one engine calling into another on the same thread,
/// e.g. a daemon worker) avoids silently flushing the outer search's
/// journal: [`install`] alone would hand the previous occupant back to a
/// caller that usually discards it.
pub fn install_scoped(journal: WorkerJournal) -> AmbientScope {
    AmbientScope {
        previous: install(journal),
        active: true,
    }
}

/// RAII guard returned by [`install_scoped`]: restores the previously
/// installed ambient journal on [`AmbientScope::take`] or drop.
#[derive(Debug)]
pub struct AmbientScope {
    previous: Option<WorkerJournal>,
    active: bool,
}

impl AmbientScope {
    /// Uninstall and return the scoped journal, restoring the previous
    /// occupant. Returns a disabled journal if something else already
    /// took the slot.
    pub fn take(mut self) -> WorkerJournal {
        let current = uninstall().unwrap_or_default();
        if let Some(prev) = self.previous.take() {
            install(prev);
        }
        self.active = false;
        current
    }
}

impl Drop for AmbientScope {
    fn drop(&mut self) {
        if self.active {
            // Unwind path: flush the scoped journal, put the outer one back.
            drop(uninstall());
            if let Some(prev) = self.previous.take() {
                install(prev);
            }
        }
    }
}

/// Emit `kind` on the ambient journal, if one is installed. A single
/// thread-local read when none is — safe to call from hot paths that are
/// themselves rare (overflow rescue, device faults).
pub fn emit_current(kind: EventKind) {
    CURRENT.with(|c| {
        if let Some(j) = c.borrow_mut().as_mut() {
            j.emit(kind);
        }
    });
}

/// End-of-run aggregate counters for one device pool, fed to the
/// Prometheus exporter. Callers build these from whatever metrics sink
/// they already report through, so exported counters match printed ones
/// exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeviceCounters {
    /// Device pool index.
    pub device: usize,
    /// Workers the pool ran.
    pub workers: usize,
    /// Tasks completed.
    pub tasks: u64,
    /// Chunks completed.
    pub chunks: u64,
    /// DP cells computed.
    pub cells: u64,
    /// Summed busy time, seconds.
    pub busy_secs: f64,
    /// Summed queue-wait time, seconds.
    pub queue_wait_secs: f64,
    /// Chunks that succeeded on a retry.
    pub retries: u64,
    /// Ranges pushed back onto the requeue.
    pub requeues: u64,
    /// Leases reclaimed after expiry.
    pub lost_leases: u64,
    /// Failures charged against the pool.
    pub failures: u64,
    /// Pool retired (failure budget exhausted).
    pub degraded: bool,
    /// Saturated lanes recomputed at wider precision.
    pub overflow_recomputes: u64,
}

/// Conventional label for a device pool index (`cpu` / `accel` /
/// `devN`).
pub fn device_label(device: usize) -> String {
    match device {
        0 => "cpu".to_string(),
        1 => "accel".to_string(),
        n => format!("dev{n}"),
    }
}

/// A completed run's trace: one [`WorkerTrack`] per worker, sorted by
/// (device, worker).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    /// Per-worker event tracks.
    pub tracks: Vec<WorkerTrack>,
}

impl Timeline {
    /// Merge the timelines of several (possibly concurrent) searches
    /// into one, sorted by (query, device, worker). Each source timeline
    /// keeps its own epoch-relative timestamps; the query id tagged on
    /// every track is what keeps the merged export separable.
    pub fn merge(parts: impl IntoIterator<Item = Timeline>) -> Timeline {
        let mut tracks: Vec<WorkerTrack> = parts.into_iter().flat_map(|tl| tl.tracks).collect();
        tracks.sort_by_key(|t| (t.query, t.device, t.worker));
        Timeline { tracks }
    }

    /// Merge per-search timelines whose epochs started at different
    /// daemon times onto one shared clock: each part's events are
    /// shifted forward by its `offset_us` (the daemon-relative instant
    /// its epoch began) before merging. This is how the serve layer's
    /// slow-query dump aligns a job's epoch-relative trace with the
    /// daemon-lifetime timestamps in the ops log.
    pub fn merge_with_offsets(parts: impl IntoIterator<Item = (Timeline, u64)>) -> Timeline {
        Timeline::merge(parts.into_iter().map(|(mut tl, offset_us)| {
            for track in &mut tl.tracks {
                for ev in &mut track.events {
                    ev.t_us = ev.t_us.saturating_add(offset_us);
                }
            }
            tl
        }))
    }

    /// The distinct query ids present, ascending.
    pub fn query_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.tracks.iter().map(|t| t.query).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// A timeline containing only the tracks of `query` — how one
    /// request's trace is pulled back out of a merged daemon export.
    pub fn for_query(&self, query: u64) -> Timeline {
        Timeline {
            tracks: self
                .tracks
                .iter()
                .filter(|t| t.query == query)
                .cloned()
                .collect(),
        }
    }

    /// Total events across all tracks.
    pub fn total_events(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }

    /// Total ring-dropped events across all tracks.
    pub fn total_dropped(&self) -> u64 {
        self.tracks.iter().map(|t| t.dropped).sum()
    }

    /// All events flattened to `(device, worker, event)` and sorted by
    /// timestamp (ties keep track order, so per-track emission order is
    /// preserved).
    pub fn events_sorted(&self) -> Vec<(usize, usize, Event)> {
        self.events_sorted_q()
            .into_iter()
            .map(|(_, d, w, ev)| (d, w, ev))
            .collect()
    }

    /// Like [`Timeline::events_sorted`] but carrying the query id:
    /// `(query, device, worker, event)`. The exporters use this so every
    /// emitted line can name the search it came from.
    pub fn events_sorted_q(&self) -> Vec<(u64, usize, usize, Event)> {
        let mut all: Vec<(u64, usize, usize, Event)> = Vec::with_capacity(self.total_events());
        for t in &self.tracks {
            for ev in &t.events {
                all.push((t.query, t.device, t.worker, *ev));
            }
        }
        all.sort_by_key(|(_, _, _, ev)| ev.t_us);
        all
    }

    /// The split-estimator rebalance series as `(t_us, accel_share)`.
    pub fn rebalances(&self) -> Vec<(u64, f64)> {
        let mut out: Vec<(u64, f64)> = self
            .events_sorted()
            .into_iter()
            .filter_map(|(_, _, ev)| match ev.kind {
                EventKind::SplitRebalance { share } => Some((ev.t_us, share)),
                _ => None,
            })
            .collect();
        out.sort_by_key(|&(t, _)| t);
        out
    }

    /// Durations (µs) of all closed spans named `name`, labelled with
    /// the emitting device. Unbalanced begins are ignored.
    pub fn span_durations_us(&self, name: &str) -> Vec<(usize, u64)> {
        let mut out = Vec::new();
        for t in &self.tracks {
            let mut stack: Vec<u64> = Vec::new();
            for ev in &t.events {
                if ev.kind.name() != name {
                    continue;
                }
                match ev.kind.phase() {
                    Phase::Begin => stack.push(ev.t_us),
                    Phase::End => {
                        if let Some(b) = stack.pop() {
                            out.push((t.device, ev.t_us.saturating_sub(b)));
                        }
                    }
                    _ => {}
                }
            }
        }
        out
    }

    /// Count events whose name is `name`.
    pub fn count(&self, name: &str) -> usize {
        self.tracks
            .iter()
            .flat_map(|t| &t.events)
            .filter(|ev| ev.kind.name() == name)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_with_offsets_rebases_epochs_onto_one_clock() {
        let part = |query: u64, stamps: &[u64]| Timeline {
            tracks: vec![WorkerTrack {
                query,
                device: 0,
                worker: 0,
                events: stamps
                    .iter()
                    .map(|&t_us| Event {
                        t_us,
                        kind: EventKind::QueueWaitBegin,
                    })
                    .collect(),
                dropped: 0,
            }],
        };
        // Two jobs, each with epoch-relative stamps [10, 20], admitted
        // 1000us apart on the daemon clock.
        let merged =
            Timeline::merge_with_offsets([(part(1, &[10, 20]), 500), (part(2, &[10, 20]), 1500)]);
        let stamps: Vec<(u64, u64)> = merged
            .tracks
            .iter()
            .flat_map(|t| t.events.iter().map(move |ev| (t.query, ev.t_us)))
            .collect();
        assert_eq!(stamps, vec![(1, 510), (1, 520), (2, 1510), (2, 1520)]);
        // Overflow-proof: a huge offset saturates rather than wrapping.
        let huge = Timeline::merge_with_offsets([(part(3, &[u64::MAX - 5]), 100)]);
        assert_eq!(huge.tracks[0].events[0].t_us, u64::MAX);
    }

    #[test]
    fn task_spans_keep_shared_batch_queries_separable() {
        // Two queries share one device region; each task of the region
        // opens a task_span on its owner's tracer. Every event must land
        // on its owner's timeline with its owner's query tag, and each
        // per-query export must validate (balanced spans) on its own.
        let tr_a = Tracer::for_query(TraceLevel::Full, 64, 7);
        let tr_b = Tracer::for_query(TraceLevel::Full, 64, 8);
        for task in 0..4usize {
            let owner = if task % 2 == 0 { &tr_a } else { &tr_b };
            let span = owner.task_span(1, task % 2, task);
            span.finish(task as u64, 100 + task as u64);
        }
        // An abandoned span (query cancelled mid-batch) records nothing.
        drop(tr_a.task_span(1, 0, 99));
        for (tr, query) in [(&tr_a, 7u64), (&tr_b, 8)] {
            let tl = tr.timeline();
            assert_eq!(tl.query_ids(), vec![query]);
            assert_eq!(tl.count("chunk"), 4, "2 begin + 2 end events");
            let text = export::jsonl(&tl);
            let report =
                validate::validate_jsonl(&text).unwrap_or_else(|e| panic!("query {query}: {e}"));
            assert_eq!(report.queries, 1, "one query id per export");
            assert_eq!(report.spans, 2);
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tr = Tracer::disabled();
        assert!(!tr.is_enabled());
        let mut j = tr.worker(0, 0);
        assert!(!j.enabled());
        j.emit(EventKind::QueueWaitBegin);
        let s = j.stamp();
        j.span_from(
            s,
            EventKind::ChunkStart {
                lease: 0,
                lo: 0,
                hi: 1,
            },
            EventKind::ChunkFinish {
                lease: 0,
                lo: 0,
                hi: 1,
                cells: 10,
            },
        );
        drop(j);
        let tl = tr.timeline();
        assert_eq!(tl.total_events(), 0);
        assert!(tl.tracks.is_empty());
    }

    #[test]
    fn off_level_is_disabled() {
        assert!(!Tracer::new(TraceLevel::Off, 128).is_enabled());
    }

    #[test]
    fn events_flow_into_timeline_sorted() {
        let tr = Tracer::full();
        let mut a = tr.worker(1, 0);
        let mut b = tr.worker(0, 0);
        a.emit_at(
            5,
            EventKind::LeaseGranted {
                lease: 1,
                lo: 0,
                hi: 2,
            },
        );
        b.emit_at(
            3,
            EventKind::LeaseGranted {
                lease: 0,
                lo: 2,
                hi: 4,
            },
        );
        drop(a);
        drop(b);
        let tl = tr.timeline();
        assert_eq!(tl.tracks.len(), 2);
        // Sorted by (device, worker).
        assert_eq!(tl.tracks[0].device, 0);
        assert_eq!(tl.tracks[1].device, 1);
        let evs = tl.events_sorted();
        assert_eq!(evs.len(), 2);
        assert!(evs[0].2.t_us <= evs[1].2.t_us);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let tr = Tracer::new(TraceLevel::Full, 16);
        let mut j = tr.worker(0, 0);
        for i in 0..20u64 {
            j.emit_at(
                i,
                EventKind::RetryBackoff {
                    attempts: 1,
                    backoff_ms: i,
                },
            );
        }
        drop(j);
        let tl = tr.timeline();
        assert_eq!(tl.tracks[0].events.len(), 16);
        assert_eq!(tl.tracks[0].dropped, 4);
        // Oldest dropped: first surviving event is t=4.
        assert_eq!(tl.tracks[0].events[0].t_us, 4);
    }

    #[test]
    fn lite_level_skips_spans_keeps_instants() {
        let tr = Tracer::new(TraceLevel::Lite, 64);
        let mut j = tr.worker(0, 0);
        j.emit(EventKind::ChunkStart {
            lease: 0,
            lo: 0,
            hi: 1,
        });
        j.emit(EventKind::LeaseLost {
            lease: 0,
            victim: 1,
        });
        j.emit(EventKind::SplitRebalance { share: 0.5 });
        drop(j);
        let tl = tr.timeline();
        assert_eq!(tl.total_events(), 2);
        assert_eq!(tl.count("lease_lost"), 1);
        assert_eq!(tl.count("chunk"), 0);
    }

    #[test]
    fn span_helper_emits_balanced_pair() {
        let tr = Tracer::full();
        let mut j = tr.worker(0, 3);
        let s = j.stamp();
        std::thread::sleep(std::time::Duration::from_millis(1));
        j.span_from(
            s,
            EventKind::ChunkStart {
                lease: 7,
                lo: 0,
                hi: 4,
            },
            EventKind::ChunkFinish {
                lease: 7,
                lo: 0,
                hi: 4,
                cells: 99,
            },
        );
        drop(j);
        let tl = tr.timeline();
        let durs = tl.span_durations_us("chunk");
        assert_eq!(durs.len(), 1);
        assert!(durs[0].1 >= 1000, "span shorter than the sleep");
    }

    #[test]
    fn ambient_journal_roundtrip() {
        let tr = Tracer::full();
        assert!(install(tr.worker(1, 0)).is_none());
        emit_current(EventKind::OverflowRecompute {
            from_bits: 16,
            to_bits: 64,
            lanes: 2,
        });
        let j = uninstall().expect("journal back");
        assert!(uninstall().is_none());
        drop(j);
        let tl = tr.timeline();
        assert_eq!(tl.count("overflow_recompute"), 1);
        // With nothing installed, emit_current is a no-op.
        emit_current(EventKind::QueueWaitBegin);
    }

    #[test]
    fn rebalance_series_is_time_ordered() {
        let tr = Tracer::full();
        let mut j = tr.worker(0, 0);
        j.emit_at(9, EventKind::SplitRebalance { share: 0.7 });
        j.emit_at(2, EventKind::SplitRebalance { share: 0.4 });
        drop(j);
        let r = tr.timeline().rebalances();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0], (2, 0.4));
        assert_eq!(r[1], (9, 0.7));
    }

    #[test]
    fn query_tagged_timelines_merge_separably() {
        let t1 = Tracer::for_query(TraceLevel::Full, 64, 1);
        let t2 = Tracer::for_query(TraceLevel::Full, 64, 2);
        assert_eq!(t1.query_id(), 1);
        let mut j1 = t1.worker(0, 0);
        let mut j2 = t2.worker(0, 0);
        j1.emit_at(10, EventKind::DrainStarted);
        j2.emit_at(5, EventKind::SplitRebalance { share: 0.5 });
        j2.emit_at(7, EventKind::DrainStarted);
        drop(j1);
        drop(j2);
        let merged = Timeline::merge([t1.timeline(), t2.timeline()]);
        assert_eq!(merged.query_ids(), vec![1, 2]);
        assert_eq!(merged.tracks[0].query, 1);
        let only2 = merged.for_query(2);
        assert_eq!(only2.total_events(), 2);
        assert_eq!(only2.count("drain_started"), 1);
        assert_eq!(merged.count("drain_started"), 2);
        let q = merged.events_sorted_q();
        assert_eq!(q.len(), 3);
        assert_eq!(q[0].0, 2, "earliest event is query 2's t=5");
    }

    #[test]
    fn scoped_install_restores_the_outer_journal() {
        let outer_tr = Tracer::for_query(TraceLevel::Full, 64, 1);
        let inner_tr = Tracer::for_query(TraceLevel::Full, 64, 2);
        assert!(install(outer_tr.worker(0, 0)).is_none());
        {
            let scope = install_scoped(inner_tr.worker(0, 0));
            emit_current(EventKind::DrainStarted);
            let inner = scope.take();
            drop(inner);
        }
        // The outer journal is back and still collects.
        emit_current(EventKind::QueueWaitBegin);
        drop(uninstall().expect("outer journal restored"));
        assert_eq!(inner_tr.timeline().count("drain_started"), 1);
        let outer_tl = outer_tr.timeline();
        assert_eq!(outer_tl.count("queue_wait"), 1);
        assert_eq!(outer_tl.count("drain_started"), 0, "no cross-query bleed");
    }

    #[test]
    fn scoped_install_drop_path_restores_on_unwind() {
        let outer_tr = Tracer::full();
        let inner_tr = Tracer::full();
        assert!(install(outer_tr.worker(0, 0)).is_none());
        {
            let _scope = install_scoped(inner_tr.worker(1, 0));
            emit_current(EventKind::DrainStarted);
            // Guard dropped without take(): unwind path.
        }
        drop(uninstall().expect("outer journal restored after drop"));
        assert_eq!(inner_tr.timeline().count("drain_started"), 1);
    }

    #[test]
    fn trace_level_parses() {
        assert_eq!(TraceLevel::parse("off"), Some(TraceLevel::Off));
        assert_eq!(TraceLevel::parse("lite"), Some(TraceLevel::Lite));
        assert_eq!(TraceLevel::parse("full"), Some(TraceLevel::Full));
        assert_eq!(TraceLevel::parse("verbose"), None);
    }
}
