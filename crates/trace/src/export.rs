//! Timeline exporters: JSONL event log, Chrome trace-event JSON
//! (Perfetto / `chrome://tracing`), and a Prometheus-style text
//! snapshot with a windowed GCUPS time-series.
//!
//! All three are hand-rolled string formatting — the workspace builds
//! offline and its `serde` is a no-op shim, so nothing here derives
//! serialization.

use crate::{device_label, DeviceCounters, EventKind, Phase, Timeline, SCHEMA};
use std::fmt::Write as _;

/// Fixed histogram bucket upper bounds (µs) for chunk latency and
/// queue wait. Chosen to straddle the µs-to-100ms range the dual-pool
/// scheduler actually produces; the exporter adds `+Inf`.
pub const HIST_BUCKETS_US: [u64; 9] = [
    50, 100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 1_000_000,
];

/// Default window width for the GCUPS time-series (µs).
pub const DEFAULT_GCUPS_WINDOW_US: u64 = 50_000;

/// Export the timeline as JSON Lines: a header line carrying the schema
/// version, then one event object per line in global timestamp order.
///
/// Event lines carry `t_us`, `query` (the id of the search that emitted
/// the event — `0` for solo runs), `device`, `worker`, `ph` (Chrome
/// phase letter), `ev` (stable event name) and the kind's payload
/// fields. The query tag is what keeps a merged export of concurrent
/// daemon searches separable: filter on it and each per-search stream
/// reads exactly like a solo run's.
pub fn jsonl(tl: &Timeline) -> String {
    let mut out = String::with_capacity(64 * (tl.total_events() + 1));
    let _ = writeln!(
        out,
        "{{\"schema\":\"{}\",\"tracks\":{},\"dropped\":{}}}",
        SCHEMA,
        tl.tracks.len(),
        tl.total_dropped()
    );
    for (query, device, worker, ev) in tl.events_sorted_q() {
        let _ = write!(
            out,
            "{{\"t_us\":{},\"query\":{},\"device\":{},\"worker\":{},\"ph\":\"{}\",\"ev\":\"{}\"",
            ev.t_us,
            query,
            device,
            worker,
            ev.kind.phase().code(),
            ev.kind.name()
        );
        ev.kind.write_args_json(&mut out);
        out.push_str("}\n");
    }
    out
}

fn chrome_args(kind: &EventKind) -> String {
    // Reuse the JSONL payload writer: it emits `,"k":v` members, which
    // become an args object by trimming the leading comma.
    let mut buf = String::new();
    kind.write_args_json(&mut buf);
    if buf.is_empty() {
        "{}".to_string()
    } else {
        format!("{{{}}}", &buf[1..])
    }
}

/// Chrome-trace process id for a (query, device) pair.
///
/// Solo runs (query 0) keep the historical `pid = device + 1`; each
/// additional concurrent query gets its own pid block so Perfetto
/// renders one process group per (search, device pool) and interleaved
/// runs never share a lane. The block stride bounds devices per query at
/// 64 — far above the dual-pool reality.
fn chrome_pid(query: u64, device: usize) -> u64 {
    query * 64 + device as u64 + 1
}

/// Export the timeline in Chrome trace-event format (JSON object with a
/// `traceEvents` array), loadable in Perfetto or `chrome://tracing`.
///
/// Each (query, device pool) pair becomes a process (see [`chrome_pid`];
/// solo runs keep `pid = device + 1`) so its worker lanes group
/// together; each worker is a named thread track. Span kinds map to
/// `B`/`E` pairs, instants to `I`, and the split estimator's rebalances
/// to a `C` counter track (`accel_share`).
pub fn chrome_trace(tl: &Timeline) -> String {
    let mut out = String::with_capacity(96 * (tl.total_events() + 8));
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"schema\":\"");
    out.push_str(SCHEMA);
    out.push_str("\"},\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |out: &mut String, line: String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(&line);
    };

    // Metadata: name each (query, device pool) process and each worker
    // thread. Query 0 keeps the bare pool name so solo-run traces look
    // exactly as before; concurrent queries are prefixed `qN`.
    let mut seen_pools: Vec<(u64, usize)> = Vec::new();
    for t in &tl.tracks {
        if !seen_pools.contains(&(t.query, t.device)) {
            seen_pools.push((t.query, t.device));
            let pool_name = if t.query == 0 {
                format!("{} pool", device_label(t.device))
            } else {
                format!("q{} {} pool", t.query, device_label(t.device))
            };
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"M\",\"pid\":{},\"name\":\"process_name\",\"args\":{{\"name\":\"{pool_name}\"}}}}",
                    chrome_pid(t.query, t.device)
                ),
            );
        }
        push(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"pid\":{},\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"{} worker {}\"}}}}",
                chrome_pid(t.query, t.device),
                t.worker,
                device_label(t.device),
                t.worker
            ),
        );
    }

    for (query, device, worker, ev) in tl.events_sorted_q() {
        let pid = chrome_pid(query, device);
        let line = match ev.kind.phase() {
            Phase::Counter => format!(
                "{{\"ph\":\"C\",\"pid\":{},\"tid\":{},\"ts\":{},\"name\":\"{}\",\"args\":{}}}",
                pid,
                worker,
                ev.t_us,
                "accel_share",
                chrome_args(&ev.kind)
            ),
            Phase::Instant => format!(
                "{{\"ph\":\"I\",\"s\":\"t\",\"pid\":{},\"tid\":{},\"ts\":{},\"name\":\"{}\",\"args\":{}}}",
                pid,
                worker,
                ev.t_us,
                ev.kind.name(),
                chrome_args(&ev.kind)
            ),
            ph => format!(
                "{{\"ph\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{},\"name\":\"{}\",\"args\":{}}}",
                ph.code(),
                pid,
                worker,
                ev.t_us,
                ev.kind.name(),
                chrome_args(&ev.kind)
            ),
        };
        push(&mut out, line);
    }
    out.push_str("\n]}\n");
    out
}

/// A fixed-bucket histogram over `u64` observations — the primitive
/// behind every Prometheus histogram this workspace emits: the
/// per-search chunk-latency/queue-wait families here, and the
/// daemon-lifetime request-phase families in `sw-serve`'s obs plane.
/// Bucket upper bounds are borrowed `'static` tables (one shared table
/// serves every instance); [`Histogram::write_prom`] renders the
/// cumulative `_bucket`/`_sum`/`_count` triplet with the `+Inf`
/// terminal bucket the exposition format requires.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: &'static [u64],
    counts: Vec<u64>,
    sum: u64,
    n: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new(&HIST_BUCKETS_US)
    }
}

impl Histogram {
    /// Empty histogram over `bounds` (ascending upper bounds; the
    /// overflow `+Inf` bucket is implicit).
    pub fn new(bounds: &'static [u64]) -> Self {
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            sum: 0,
            n: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.n += 1;
    }

    /// Fold another histogram in (same bucket table — merging across
    /// epochs/workers only makes sense over identical bounds).
    ///
    /// # Panics
    /// Panics when the bucket tables differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "histogram merge needs identical bucket bounds"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.n += other.n;
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Append the Prometheus exposition triplet: cumulative `_bucket`
    /// series ending in `+Inf`, then `_sum` and `_count`. `labels` is a
    /// pre-rendered label body (`device="cpu"` — no braces) shared by
    /// every sample, or `""` for a label-free family.
    pub fn write_prom(&self, out: &mut String, metric: &str, labels: &str) {
        let sep = if labels.is_empty() { "" } else { "," };
        let mut cum = 0u64;
        for (i, &b) in self.bounds.iter().enumerate() {
            cum += self.counts[i];
            let _ = writeln!(out, "{metric}_bucket{{{labels}{sep}le=\"{b}\"}} {cum}");
        }
        cum += self.counts[self.bounds.len()];
        let _ = writeln!(out, "{metric}_bucket{{{labels}{sep}le=\"+Inf\"}} {cum}");
        if labels.is_empty() {
            let _ = writeln!(out, "{metric}_sum {}", self.sum);
            let _ = writeln!(out, "{metric}_count {}", self.n);
        } else {
            let _ = writeln!(out, "{metric}_sum{{{labels}}} {}", self.sum);
            let _ = writeln!(out, "{metric}_count{{{labels}}} {}", self.n);
        }
    }

    fn write(&self, out: &mut String, metric: &str, device: usize) {
        self.write_prom(out, metric, &format!("device=\"{}\"", device_label(device)));
    }
}

fn counter_line(out: &mut String, metric: &str, help: &str, rows: &[(usize, u64)]) {
    let _ = writeln!(out, "# HELP {metric} {help}");
    let _ = writeln!(out, "# TYPE {metric} counter");
    for &(device, v) in rows {
        let _ = writeln!(out, "{metric}{{device=\"{}\"}} {v}", device_label(device));
    }
}

/// [`prometheus`] plus a `sw_kernel_isa_info{isa="..."} 1` gauge naming
/// the instruction set the run's intrinsic kernels executed on, so a
/// scrape can tell an AVX2 run from a forced-portable one.
pub fn prometheus_with_isa(
    tl: &Timeline,
    counters: &[DeviceCounters],
    gcups_window_us: u64,
    isa: &str,
) -> String {
    let mut out = prometheus(tl, counters, gcups_window_us);
    let _ = writeln!(
        out,
        "# HELP sw_kernel_isa_info instruction set of the run's intrinsic kernels"
    );
    let _ = writeln!(out, "# TYPE sw_kernel_isa_info gauge");
    let _ = writeln!(out, "sw_kernel_isa_info{{isa=\"{isa}\"}} 1");
    out
}

/// Export a Prometheus text-exposition snapshot.
///
/// Counters (cells, chunks, tasks, retries, requeues, lost leases,
/// failures, overflow recomputes) come from `counters` — the same
/// aggregates the caller prints — so the snapshot matches printed
/// metrics exactly. Histograms (chunk latency, queue wait) and the
/// windowed per-device GCUPS time-series are derived from the timeline;
/// `gcups_window_us` sets the window width (0 picks
/// [`DEFAULT_GCUPS_WINDOW_US`]).
pub fn prometheus(tl: &Timeline, counters: &[DeviceCounters], gcups_window_us: u64) -> String {
    let window = if gcups_window_us == 0 {
        DEFAULT_GCUPS_WINDOW_US
    } else {
        gcups_window_us
    };
    let mut out = String::with_capacity(4096);
    let _ = writeln!(out, "# HELP sw_trace_info trace schema version marker");
    let _ = writeln!(out, "# TYPE sw_trace_info gauge");
    let _ = writeln!(out, "sw_trace_info{{schema=\"{SCHEMA}\"}} 1");

    let row = |f: fn(&DeviceCounters) -> u64| -> Vec<(usize, u64)> {
        counters.iter().map(|c| (c.device, f(c))).collect()
    };
    counter_line(
        &mut out,
        "sw_cells_total",
        "DP cells computed",
        &row(|c| c.cells),
    );
    counter_line(
        &mut out,
        "sw_chunks_total",
        "chunks completed",
        &row(|c| c.chunks),
    );
    counter_line(
        &mut out,
        "sw_tasks_total",
        "tasks completed",
        &row(|c| c.tasks),
    );
    counter_line(
        &mut out,
        "sw_retries_total",
        "chunks that succeeded on a retry",
        &row(|c| c.retries),
    );
    counter_line(
        &mut out,
        "sw_requeues_total",
        "ranges pushed back onto the requeue",
        &row(|c| c.requeues),
    );
    counter_line(
        &mut out,
        "sw_lost_leases_total",
        "leases reclaimed after expiry",
        &row(|c| c.lost_leases),
    );
    counter_line(
        &mut out,
        "sw_failures_total",
        "failures charged against the pool",
        &row(|c| c.failures),
    );
    counter_line(
        &mut out,
        "sw_overflow_recomputes_total",
        "saturated lanes recomputed at wider precision",
        &row(|c| c.overflow_recomputes),
    );

    // Durability counters, derived from the timeline (checkpointing is a
    // run-level activity, not a per-device one).
    for (metric, name, help) in [
        (
            "sw_checkpoints_written_total",
            "checkpoint_written",
            "checkpoint files written by the durable executor",
        ),
        (
            "sw_resumes_total",
            "resume_loaded",
            "runs resumed from a checkpoint",
        ),
        (
            "sw_drains_total",
            "drain_started",
            "graceful drains requested (signal or threshold)",
        ),
    ] {
        let _ = writeln!(out, "# HELP {metric} {help}");
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {}", tl.count(name));
    }

    let _ = writeln!(out, "# HELP sw_busy_seconds summed worker busy time");
    let _ = writeln!(out, "# TYPE sw_busy_seconds gauge");
    for c in counters {
        let _ = writeln!(
            out,
            "sw_busy_seconds{{device=\"{}\"}} {:.6}",
            device_label(c.device),
            c.busy_secs
        );
    }
    let _ = writeln!(
        out,
        "# HELP sw_queue_wait_seconds summed worker queue-wait time"
    );
    let _ = writeln!(out, "# TYPE sw_queue_wait_seconds gauge");
    for c in counters {
        let _ = writeln!(
            out,
            "sw_queue_wait_seconds{{device=\"{}\"}} {:.6}",
            device_label(c.device),
            c.queue_wait_secs
        );
    }
    let _ = writeln!(out, "# HELP sw_degraded pool retired after failure budget");
    let _ = writeln!(out, "# TYPE sw_degraded gauge");
    for c in counters {
        let _ = writeln!(
            out,
            "sw_degraded{{device=\"{}\"}} {}",
            device_label(c.device),
            u64::from(c.degraded)
        );
    }

    // Realised split fraction: each device's share of total cells.
    let total_cells: u64 = counters.iter().map(|c| c.cells).sum();
    let _ = writeln!(
        out,
        "# HELP sw_split_fraction realised fraction of DP cells"
    );
    let _ = writeln!(out, "# TYPE sw_split_fraction gauge");
    for c in counters {
        let frac = if total_cells == 0 {
            0.0
        } else {
            c.cells as f64 / total_cells as f64
        };
        let _ = writeln!(
            out,
            "sw_split_fraction{{device=\"{}\"}} {:.6}",
            device_label(c.device),
            frac
        );
    }

    // Whole-run GCUPS per device (cells / busy / 1e9).
    let _ = writeln!(
        out,
        "# HELP sw_gcups whole-run billions of DP cell updates per second"
    );
    let _ = writeln!(out, "# TYPE sw_gcups gauge");
    for c in counters {
        let g = if c.busy_secs > 0.0 {
            c.cells as f64 / c.busy_secs / 1e9
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "sw_gcups{{device=\"{}\"}} {:.6}",
            device_label(c.device),
            g
        );
    }

    // Histograms from the timeline.
    let mut chunk_hist: Vec<(usize, Histogram)> = Vec::new();
    for (device, us) in tl.span_durations_us("chunk") {
        hist_for(&mut chunk_hist, device).record(us);
    }
    let mut wait_hist: Vec<(usize, Histogram)> = Vec::new();
    for t in &tl.tracks {
        for ev in &t.events {
            if let EventKind::QueueWaitEnd { us } = ev.kind {
                hist_for(&mut wait_hist, t.device).record(us);
            }
        }
    }
    let _ = writeln!(out, "# HELP sw_chunk_latency_us chunk execution latency");
    let _ = writeln!(out, "# TYPE sw_chunk_latency_us histogram");
    for (device, h) in &chunk_hist {
        h.write(&mut out, "sw_chunk_latency_us", *device);
    }
    let _ = writeln!(out, "# HELP sw_queue_wait_us worker queue-wait latency");
    let _ = writeln!(out, "# TYPE sw_queue_wait_us histogram");
    for (device, h) in &wait_hist {
        h.write(&mut out, "sw_queue_wait_us", *device);
    }

    // GCUPS time-series: cells of chunks *finishing* inside each window,
    // divided by the window width. A coarse but honest throughput curve.
    let mut windows: Vec<(usize, u64, u64)> = Vec::new(); // (device, window_idx, cells)
    for t in &tl.tracks {
        for ev in &t.events {
            if let EventKind::ChunkFinish { cells, .. } = ev.kind {
                let idx = ev.t_us / window;
                match windows
                    .iter_mut()
                    .find(|(d, w, _)| *d == t.device && *w == idx)
                {
                    Some(slot) => slot.2 += cells,
                    None => windows.push((t.device, idx, cells)),
                }
            }
        }
    }
    windows.sort_by_key(|&(d, w, _)| (d, w));
    let _ = writeln!(
        out,
        "# HELP sw_gcups_window GCUPS over fixed windows ({window} us wide)"
    );
    let _ = writeln!(out, "# TYPE sw_gcups_window gauge");
    let window_secs = window as f64 / 1e6;
    for (device, idx, cells) in windows {
        let _ = writeln!(
            out,
            "sw_gcups_window{{device=\"{}\",start_us=\"{}\"}} {:.6}",
            device_label(device),
            idx * window,
            cells as f64 / window_secs / 1e9
        );
    }
    out
}

fn hist_for(v: &mut Vec<(usize, Histogram)>, device: usize) -> &mut Histogram {
    if let Some(pos) = v.iter().position(|(d, _)| *d == device) {
        return &mut v[pos].1;
    }
    v.push((device, Histogram::default()));
    &mut v.last_mut().expect("just pushed").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Tracer, WorkerTrack};

    fn sample_timeline() -> Timeline {
        let tr = Tracer::full();
        let mut cpu = tr.worker(0, 0);
        let mut acc = tr.worker(1, 0);
        cpu.emit_at(0, EventKind::QueueWaitBegin);
        cpu.emit_at(10, EventKind::QueueWaitEnd { us: 10 });
        cpu.emit_at(
            10,
            EventKind::ChunkStart {
                lease: 0,
                lo: 0,
                hi: 4,
            },
        );
        cpu.emit_at(
            200,
            EventKind::ChunkFinish {
                lease: 0,
                lo: 0,
                hi: 4,
                cells: 4_000,
            },
        );
        acc.emit_at(
            5,
            EventKind::LeaseGranted {
                lease: 1,
                lo: 4,
                hi: 8,
            },
        );
        acc.emit_at(50, EventKind::SplitRebalance { share: 0.625 });
        acc.emit_at(
            60,
            EventKind::LeaseLost {
                lease: 1,
                victim: 1,
            },
        );
        drop(cpu);
        drop(acc);
        tr.timeline()
    }

    #[test]
    fn jsonl_has_header_and_one_line_per_event() {
        let tl = sample_timeline();
        let text = jsonl(&tl);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + tl.total_events());
        assert!(lines[0].contains("\"schema\":\"sw-trace/1\""));
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "line {line}");
        }
        // Global timestamp order.
        let ts: Vec<u64> = lines[1..]
            .iter()
            .map(|l| {
                let at = l.find("\"t_us\":").expect("t_us") + 7;
                l[at..]
                    .chars()
                    .take_while(char::is_ascii_digit)
                    .collect::<String>()
                    .parse()
                    .expect("number")
            })
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn chrome_trace_groups_tracks_and_balances_spans() {
        let text = chrome_trace(&sample_timeline());
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("\"name\":\"process_name\""));
        assert!(text.contains("cpu pool"));
        assert!(text.contains("accel pool"));
        assert!(text.contains("\"name\":\"thread_name\""));
        assert_eq!(text.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(text.matches("\"ph\":\"E\"").count(), 2);
        assert!(text.contains("\"ph\":\"C\""));
        assert!(text.contains("accel_share"));
        // CPU events carry pid 1, accel pid 2.
        assert!(text.contains("\"pid\":1"));
        assert!(text.contains("\"pid\":2"));
    }

    #[test]
    fn prometheus_counters_match_input_and_histograms_fill() {
        let tl = sample_timeline();
        let counters = [
            DeviceCounters {
                device: 0,
                workers: 1,
                tasks: 4,
                chunks: 1,
                cells: 4_000,
                busy_secs: 0.000_19,
                retries: 0,
                requeues: 0,
                lost_leases: 0,
                failures: 0,
                degraded: false,
                overflow_recomputes: 2,
                queue_wait_secs: 0.000_01,
            },
            DeviceCounters {
                device: 1,
                workers: 1,
                lost_leases: 1,
                requeues: 1,
                failures: 1,
                ..DeviceCounters::default()
            },
        ];
        let text = prometheus(&tl, &counters, 1_000);
        assert!(text.contains("sw_cells_total{device=\"cpu\"} 4000"));
        assert!(text.contains("sw_lost_leases_total{device=\"accel\"} 1"));
        assert!(text.contains("sw_requeues_total{device=\"accel\"} 1"));
        assert!(text.contains("sw_overflow_recomputes_total{device=\"cpu\"} 2"));
        assert!(text.contains("sw_split_fraction{device=\"cpu\"} 1.000000"));
        assert!(text.contains("sw_chunk_latency_us_count{device=\"cpu\"} 1"));
        assert!(text.contains("sw_queue_wait_us_count{device=\"cpu\"} 1"));
        // The 190 µs chunk lands in the le=500 bucket cumulatively.
        assert!(text.contains("sw_chunk_latency_us_bucket{device=\"cpu\",le=\"500\"} 1"));
        // GCUPS window: 4000 cells finishing in window starting at 0.
        assert!(text.contains("sw_gcups_window{device=\"cpu\",start_us=\"0\"}"));
        assert!(text.contains("sw_trace_info{schema=\"sw-trace/1\"} 1"));
    }

    #[test]
    fn prometheus_empty_run_is_well_formed() {
        let tl = Timeline { tracks: vec![] };
        let text = prometheus(&tl, &[], 0);
        assert!(text.contains("sw_trace_info"));
        assert!(crate::validate::validate_prometheus(&text).is_ok());
    }

    #[test]
    fn prometheus_isa_gauge() {
        let tl = Timeline { tracks: vec![] };
        let text = prometheus_with_isa(&tl, &[], 0, "avx2");
        assert!(
            text.contains("sw_kernel_isa_info{isa=\"avx2\"} 1"),
            "{text}"
        );
        assert!(crate::validate::validate_prometheus(&text).is_ok());
    }

    #[test]
    fn interleaved_two_query_export_stays_separable() {
        // Two concurrent searches, each with its own tracer (own epoch,
        // own query id), emitting interleaved timestamps.
        let t1 = Tracer::for_query(crate::TraceLevel::Full, 64, 1);
        let t2 = Tracer::for_query(crate::TraceLevel::Full, 64, 2);
        let mut j1 = t1.worker(0, 0);
        let mut j2 = t2.worker(0, 0);
        for (i, (a, b)) in [(0u64, 3u64), (10, 12), (20, 21)].iter().enumerate() {
            let lease = i as u64;
            j1.emit_at(
                *a,
                EventKind::ChunkStart {
                    lease,
                    lo: 0,
                    hi: 1,
                },
            );
            j1.emit_at(
                a + 5,
                EventKind::ChunkFinish {
                    lease,
                    lo: 0,
                    hi: 1,
                    cells: 100,
                },
            );
            j2.emit_at(
                *b,
                EventKind::ChunkStart {
                    lease,
                    lo: 1,
                    hi: 2,
                },
            );
            j2.emit_at(
                b + 4,
                EventKind::ChunkFinish {
                    lease,
                    lo: 1,
                    hi: 2,
                    cells: 200,
                },
            );
        }
        drop(j1);
        drop(j2);
        let merged = Timeline::merge([t1.timeline(), t2.timeline()]);
        assert!(crate::validate::validate_jsonl(&jsonl(&merged)).is_ok());

        // Every event line names its query, and filtering on the tag
        // reconstructs each solo stream exactly.
        let text = jsonl(&merged);
        let q1_lines: Vec<&str> = text
            .lines()
            .skip(1)
            .filter(|l| l.contains("\"query\":1,"))
            .collect();
        let q2_lines: Vec<&str> = text
            .lines()
            .skip(1)
            .filter(|l| l.contains("\"query\":2,"))
            .collect();
        assert_eq!(q1_lines.len(), 6);
        assert_eq!(q2_lines.len(), 6);
        assert_eq!(q1_lines.len() + q2_lines.len(), text.lines().count() - 1);
        assert!(q1_lines.iter().all(|l| l.contains("\"hi\":1")));
        assert!(q2_lines.iter().all(|l| l.contains("\"hi\":2")));

        // Chrome export: distinct process groups per query, labelled.
        let chrome = chrome_trace(&merged);
        assert!(chrome.contains("q1 cpu pool"));
        assert!(chrome.contains("q2 cpu pool"));
        assert!(chrome.contains(&format!("\"pid\":{}", chrome_pid(1, 0))));
        assert!(chrome.contains(&format!("\"pid\":{}", chrome_pid(2, 0))));

        // Per-query projection matches a solo export of the same run.
        let solo1 = merged.for_query(1);
        assert_eq!(solo1.total_events(), 6);
        assert_eq!(solo1.span_durations_us("chunk").len(), 3);
    }

    #[test]
    fn solo_run_chrome_pids_are_unchanged() {
        assert_eq!(chrome_pid(0, 0), 1);
        assert_eq!(chrome_pid(0, 1), 2);
        assert_ne!(chrome_pid(1, 0), chrome_pid(0, 1), "no pid collisions");
    }

    #[test]
    fn histogram_overflow_bucket() {
        let mut h = Histogram::default();
        h.record(2_000_000); // beyond the last bound → +Inf bucket only
        let mut s = String::new();
        h.write(&mut s, "m", 0);
        assert!(s.contains("m_bucket{device=\"cpu\",le=\"1000000\"} 0"));
        assert!(s.contains("m_bucket{device=\"cpu\",le=\"+Inf\"} 1"));
        assert!(s.contains("m_sum{device=\"cpu\"} 2000000"));
    }

    #[test]
    fn unbalanced_span_is_ignored_in_durations() {
        let tl = Timeline {
            tracks: vec![WorkerTrack {
                query: 0,
                device: 0,
                worker: 0,
                events: vec![crate::Event {
                    t_us: 1,
                    kind: EventKind::ChunkStart {
                        lease: 0,
                        lo: 0,
                        hi: 1,
                    },
                }],
                dropped: 0,
            }],
        };
        assert!(tl.span_durations_us("chunk").is_empty());
    }
}
