//! Offline stand-in for the subset of `rand` this workspace uses.
//!
//! The workspace builds in environments with no crates.io access, so the
//! real `rand` cannot be fetched. Every caller only needs a deterministic
//! seeded generator (`SmallRng::seed_from_u64`) with `gen`, `gen_range`
//! and `gen_bool` — this crate provides exactly that, backed by
//! xoshiro256** seeded through SplitMix64 (the same construction the real
//! `SmallRng` documents). Streams differ from upstream `rand`, which is
//! fine: no test or generator in this workspace depends on upstream's
//! exact stream, only on determinism per seed.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable generators (API-compatible subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct from a `u64` seed; the stream is fully determined by it.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "standard" distribution by
/// [`Rng::gen`] (`f64` in `[0, 1)`, integers over their full range).
pub trait Standard: Sized {
    /// Sample one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u8 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

/// Ranges usable with [`Rng::gen_range`]. Generic over the produced type
/// (like the real `rand`) so integer-literal ranges infer their type from
/// the call site.
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let span = (e as i128 - s as i128 + 1) as u128;
                (s as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Random generators (API-compatible subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample(self) < p
    }
}

/// Generator namespace mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256**).
    ///
    /// Not cryptographically secure — test/synthetic-data use only, like
    /// the real `rand::rngs::SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_within_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let u = r.gen_range(0..20u8);
            assert!(u < 20);
            let w = r.gen_range(1..=8usize);
            assert!((1..=8).contains(&w));
            let f = r.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.03, "{hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        SmallRng::seed_from_u64(0).gen_range(5..5);
    }

    #[test]
    fn full_range_ints_cover_extremes_eventually() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..10_000 {
            seen[r.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
