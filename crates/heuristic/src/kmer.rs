//! k-mer indexing of the query — BLAST's hash table of word positions.

/// Hash table mapping each k-mer of the query to its positions.
///
/// Keys are dense base-|Σ| encodings of the k residues, so lookup is one
/// vector index. Protein BLAST uses k = 3 (the paper quotes k = 11 for
/// DNA); with |Σ| = 24 the table has 24³ = 13 824 buckets.
#[derive(Debug, Clone)]
pub struct KmerIndex {
    k: usize,
    alphabet: usize,
    /// `buckets[key]` = query positions where this k-mer starts.
    buckets: Vec<Vec<u32>>,
}

impl KmerIndex {
    /// Index `query` (encoded residues) with word length `k` over an
    /// alphabet of `alphabet` codes.
    ///
    /// # Panics
    /// Panics if `k` is 0 or the table size would overflow.
    pub fn build(query: &[u8], k: usize, alphabet: usize) -> Self {
        assert!(k >= 1, "word length must be at least 1");
        let size = alphabet
            .checked_pow(k as u32)
            .expect("k-mer key space must fit usize");
        assert!(
            size <= 1 << 28,
            "k too large for a dense table (use k <= 6 for proteins)"
        );
        let mut buckets = vec![Vec::new(); size];
        if query.len() >= k {
            for i in 0..=(query.len() - k) {
                let key = Self::key_of(&query[i..i + k], alphabet);
                buckets[key].push(i as u32);
            }
        }
        KmerIndex {
            k,
            alphabet,
            buckets,
        }
    }

    /// Dense key of a k-residue window.
    #[inline]
    fn key_of(window: &[u8], alphabet: usize) -> usize {
        window
            .iter()
            .fold(0usize, |acc, &c| acc * alphabet + c as usize)
    }

    /// Word length `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Query positions of the k-mer starting at `subject[j..j+k]`, or an
    /// empty slice.
    #[inline]
    pub fn hits(&self, subject_window: &[u8]) -> &[u32] {
        debug_assert_eq!(subject_window.len(), self.k);
        &self.buckets[Self::key_of(subject_window, self.alphabet)]
    }

    /// Total indexed positions (query length − k + 1).
    pub fn n_positions(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_seq::Alphabet;

    fn enc(s: &[u8]) -> Vec<u8> {
        Alphabet::protein().encode_strict(s).unwrap()
    }

    #[test]
    fn indexes_every_position() {
        let q = enc(b"MKVLITRAW");
        let ix = KmerIndex::build(&q, 3, 24);
        assert_eq!(ix.n_positions(), 7);
    }

    #[test]
    fn finds_exact_words() {
        let q = enc(b"MKVLITMKV");
        let ix = KmerIndex::build(&q, 3, 24);
        let probe = enc(b"MKV");
        assert_eq!(ix.hits(&probe), &[0, 6]);
        let absent = enc(b"WWW");
        assert!(ix.hits(&absent).is_empty());
    }

    #[test]
    fn query_shorter_than_k() {
        let q = enc(b"MK");
        let ix = KmerIndex::build(&q, 3, 24);
        assert_eq!(ix.n_positions(), 0);
    }

    #[test]
    fn k1_indexes_residues() {
        let q = enc(b"AAW");
        let ix = KmerIndex::build(&q, 1, 24);
        let a = enc(b"A");
        let w = enc(b"W");
        assert_eq!(ix.hits(&a), &[0, 1]);
        assert_eq!(ix.hits(&w), &[2]);
    }

    #[test]
    #[should_panic(expected = "k too large")]
    fn oversized_k_rejected() {
        let q = enc(b"MKVLITRAW");
        KmerIndex::build(&q, 9, 24);
    }
}
