//! X-drop ungapped seed extension — BLAST's first extension stage
//! ("first without gaps", as the paper describes it).

use sw_seq::SubstMatrix;

/// An ungapped high-scoring segment pair (HSP) found by extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hsp {
    /// Ungapped score of the segment.
    pub score: i64,
    /// Query range `[start, end)`.
    pub query_range: (usize, usize),
    /// Subject range `[start, end)`.
    pub subject_range: (usize, usize),
}

/// Extend a seed at `(qi, sj)` (aligned positions) in both directions,
/// stopping when the running score drops more than `x_drop` below the
/// best seen (the classic X-drop rule).
pub fn xdrop_extend(
    query: &[u8],
    subject: &[u8],
    qi: usize,
    sj: usize,
    k: usize,
    matrix: &SubstMatrix,
    x_drop: i64,
) -> Hsp {
    debug_assert!(qi + k <= query.len() && sj + k <= subject.len());
    // Score of the seed word itself.
    let mut score: i64 = (0..k)
        .map(|t| matrix.score(query[qi + t], subject[sj + t]) as i64)
        .sum();

    // Extend right from the end of the word.
    let mut best = score;
    let (mut q_end, mut s_end) = (qi + k, sj + k);
    {
        let (mut qe, mut se) = (q_end, s_end);
        let mut run = score;
        while qe < query.len() && se < subject.len() {
            run += matrix.score(query[qe], subject[se]) as i64;
            qe += 1;
            se += 1;
            if run > best {
                best = run;
                q_end = qe;
                s_end = se;
            } else if run < best - x_drop {
                break;
            }
        }
    }
    score = best;

    // Extend left from the start of the word.
    let (mut q_start, mut s_start) = (qi, sj);
    {
        let (mut qs, mut ss) = (qi, sj);
        let mut run = score;
        while qs > 0 && ss > 0 {
            qs -= 1;
            ss -= 1;
            run += matrix.score(query[qs], subject[ss]) as i64;
            if run > best {
                best = run;
                q_start = qs;
                s_start = ss;
            } else if run < best - x_drop {
                break;
            }
        }
    }

    Hsp {
        score: best,
        query_range: (q_start, q_end),
        subject_range: (s_start, s_end),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_seq::Alphabet;

    fn enc(s: &[u8]) -> Vec<u8> {
        Alphabet::protein().encode_strict(s).unwrap()
    }

    fn m() -> SubstMatrix {
        SubstMatrix::blosum62()
    }

    #[test]
    fn extends_perfect_match_fully() {
        let q = enc(b"MKVLITRAW");
        let s = enc(b"MKVLITRAW");
        // Seed at the middle word.
        let hsp = xdrop_extend(&q, &s, 3, 3, 3, &m(), 20);
        assert_eq!(hsp.query_range, (0, 9));
        assert_eq!(hsp.subject_range, (0, 9));
        let self_score: i64 = q.iter().map(|&c| m().score(c, c) as i64).sum();
        assert_eq!(hsp.score, self_score);
    }

    #[test]
    fn xdrop_stops_at_junk() {
        // Motif flanked by hostile residues: extension must stop at the
        // motif boundary.
        let q = enc(b"MKVLIT");
        let s = enc(b"PPPPMKVLITPPPP");
        let hsp = xdrop_extend(&q, &s, 0, 4, 3, &m(), 10);
        assert_eq!(hsp.query_range, (0, 6));
        assert_eq!(hsp.subject_range, (4, 10));
    }

    #[test]
    fn offset_seed_extends_correctly() {
        let q = enc(b"AAMKVLITAA");
        let s = enc(b"GGMKVLITGG");
        let hsp = xdrop_extend(&q, &s, 2, 2, 3, &m(), 6);
        // The MKVLIT core must be inside the HSP.
        assert!(hsp.query_range.0 <= 2 && hsp.query_range.1 >= 8);
        let core: i64 = enc(b"MKVLIT").iter().map(|&c| m().score(c, c) as i64).sum();
        assert!(hsp.score >= core);
    }

    #[test]
    fn seed_at_sequence_edges() {
        let q = enc(b"MKV");
        let s = enc(b"MKV");
        let hsp = xdrop_extend(&q, &s, 0, 0, 3, &m(), 10);
        assert_eq!(hsp.query_range, (0, 3));
        let mm = m();
        assert_eq!(
            hsp.score,
            q.iter().map(|&c| mm.score(c, c) as i64).sum::<i64>()
        );
    }

    #[test]
    fn larger_xdrop_extends_further() {
        // A gap of mismatches between two match blocks: small X gives the
        // first block only, large X bridges to both.
        let q = enc(b"WWWWWPPWWWWW");
        let s = enc(b"WWWWWGGWWWWW");
        let small = xdrop_extend(&q, &s, 0, 0, 3, &m(), 3);
        let large = xdrop_extend(&q, &s, 0, 0, 3, &m(), 40);
        assert!(large.query_range.1 > small.query_range.1);
        assert!(large.score > small.score);
    }
}
