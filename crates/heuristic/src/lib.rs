//! # sw-heuristic — BLAST-like seed-and-extend search
//!
//! The paper's introduction motivates exact Smith-Waterman by contrasting
//! it with heuristics: *"BLAST … increase[s] speed at the cost of reduced
//! sensitivity. This algorithm keeps the position of each k-length
//! subsequence (k-mer) of a query sequence in a hash table … and scans
//! the reference database sequences looking for k-mer identical matches,
//! which are the so-called seeds. Once those seeds have been identified,
//! BLAST performs seed extensions … (first without gaps), and then it
//! refines them using again the classic SW algorithm."*
//!
//! This crate implements exactly that seed-and-extend structure so the
//! speed/sensitivity trade-off can be *measured* against the exact
//! engine (`cargo run -p sw-bench --bin sensitivity`):
//!
//! 1. [`kmer::KmerIndex`] — hash table of the query's k-mers (exact
//!    seeding; BLAST's neighbourhood words are a documented
//!    simplification away).
//! 2. [`extend`] — X-drop ungapped extension of each seed into an HSP.
//! 3. [`search::HeuristicEngine`] — database scan: candidate pairs whose
//!    best HSP clears a threshold are re-scored with the *exact* SW
//!    kernel; everything else is skipped (that skip is where both the
//!    speed and the lost sensitivity come from).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod extend;
pub mod kmer;
pub mod search;

pub use kmer::KmerIndex;
pub use search::{HeuristicEngine, HeuristicHit, HeuristicOpts, HeuristicResults};
