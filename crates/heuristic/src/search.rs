//! The seed-and-extend database scan, with exact-SW refinement of
//! surviving candidates.

use crate::extend::xdrop_extend;
use crate::kmer::KmerIndex;
use serde::{Deserialize, Serialize};
use sw_kernels::scalar::{sw_score_scalar, SwParams};
use sw_seq::SeqId;
use sw_swdb::SequenceDatabase;

/// Tuning knobs of the heuristic (BLASTP-flavoured defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeuristicOpts {
    /// Word length `k` (BLASTP uses 3).
    pub k: usize,
    /// X-drop bound for ungapped extension.
    pub x_drop: i64,
    /// Minimum ungapped HSP score to trigger exact SW refinement.
    pub min_hsp_score: i64,
    /// Refine with banded SW of this radius around the best HSP diagonal
    /// instead of the full matrix (`None` = full exact SW). Banded scores
    /// are lower bounds that converge to exact as the radius grows.
    pub band_radius: Option<usize>,
}

impl Default for HeuristicOpts {
    fn default() -> Self {
        HeuristicOpts {
            k: 3,
            x_drop: 16,
            min_hsp_score: 38,
            band_radius: None,
        }
    }
}

/// One refined hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeuristicHit {
    /// Database sequence id.
    pub id: SeqId,
    /// Exact Smith-Waterman score of the refined pair.
    pub score: i64,
    /// Best ungapped HSP score that triggered refinement.
    pub hsp_score: i64,
}

/// Outcome of a heuristic search, with the work accounting needed for the
/// speed/sensitivity comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeuristicResults {
    /// Refined hits, sorted by descending exact score.
    pub hits: Vec<HeuristicHit>,
    /// Sequences whose best HSP missed the threshold (skipped — the
    /// source of both speedup and lost sensitivity).
    pub skipped: u64,
    /// DP cells actually spent in SW refinement.
    pub refine_cells: u64,
    /// DP cells a full exact search would have spent.
    pub exhaustive_cells: u64,
}

impl HeuristicResults {
    /// Fraction of exhaustive DP work avoided (the heuristic's speedup
    /// proxy, ignoring the cheap scan itself).
    pub fn work_saved(&self) -> f64 {
        if self.exhaustive_cells == 0 {
            0.0
        } else {
            1.0 - self.refine_cells as f64 / self.exhaustive_cells as f64
        }
    }
}

/// BLAST-like search engine.
///
/// ```
/// use sw_heuristic::HeuristicEngine;
/// use sw_seq::{Alphabet, EncodedSeq};
/// use sw_swdb::SequenceDatabase;
///
/// let a = Alphabet::protein();
/// let target = EncodedSeq::from_text("hit", b"MKVLITRAWQESTNHY", &a).unwrap();
/// let decoy = EncodedSeq::from_text("decoy", b"PPPPGGGGPPPPGGGG", &a).unwrap();
/// let db = SequenceDatabase::from_sequences(vec![target.clone(), decoy]);
///
/// let engine = HeuristicEngine::paper_default();
/// let res = engine.search(&target.residues, &db);
/// assert_eq!(res.hits.len(), 1, "only the real homolog is refined");
/// assert_eq!(res.skipped, 1);
/// ```
#[derive(Debug, Clone)]
pub struct HeuristicEngine {
    /// Scoring parameters shared with the exact engine.
    pub params: SwParams,
    /// Heuristic knobs.
    pub opts: HeuristicOpts,
}

impl HeuristicEngine {
    /// Engine with the paper's scoring parameters and default knobs.
    pub fn paper_default() -> Self {
        HeuristicEngine {
            params: SwParams::paper_default(),
            opts: HeuristicOpts::default(),
        }
    }

    /// Scan `db` for `query`, refining candidate pairs with exact SW.
    pub fn search(&self, query: &[u8], db: &SequenceDatabase) -> HeuristicResults {
        let k = self.opts.k;
        let index = KmerIndex::build(query, k, self.params.matrix.len());
        let mut hits = Vec::new();
        let mut skipped = 0u64;
        let mut refine_cells = 0u64;
        let mut exhaustive_cells = 0u64;

        for (id, subject) in db.iter() {
            let s = subject.residues;
            exhaustive_cells += (query.len() * s.len()) as u64;
            if s.len() < k || query.len() < k {
                skipped += 1;
                continue;
            }
            // Seed scan with per-diagonal suppression: one extension per
            // (diagonal band) per subject, the standard one-hit policy.
            let mut best_hsp = 0i64;
            let mut best_diag = 0i64;
            // diagonal d = j - i  ∈ [-(m-1), n-1]; remember the subject
            // column up to which each diagonal is already covered.
            let m = query.len();
            let mut covered = vec![0u32; m + s.len()];
            for j in 0..=(s.len() - k) {
                let window = &s[j..j + k];
                for &qi in index.hits(window) {
                    let qi = qi as usize;
                    let diag = j + m - qi; // shifted to be non-negative
                    if (covered[diag] as usize) > j {
                        continue; // this diagonal already extended past here
                    }
                    let hsp =
                        xdrop_extend(query, s, qi, j, k, &self.params.matrix, self.opts.x_drop);
                    covered[diag] = hsp.subject_range.1 as u32;
                    if hsp.score > best_hsp {
                        best_hsp = hsp.score;
                        best_diag = j as i64 - qi as i64;
                    }
                }
            }
            if best_hsp >= self.opts.min_hsp_score {
                // Refinement "using again the classic SW algorithm" —
                // full-matrix by default, banded around the HSP diagonal
                // when configured.
                let score = match self.opts.band_radius {
                    None => {
                        refine_cells += (query.len() * s.len()) as u64;
                        sw_score_scalar(query, s, &self.params)
                    }
                    Some(r) => {
                        refine_cells += (query.len() * (2 * r + 1).min(s.len())) as u64;
                        sw_kernels::banded::sw_banded(query, s, &self.params, best_diag, r)
                    }
                };
                hits.push(HeuristicHit {
                    id,
                    score,
                    hsp_score: best_hsp,
                });
            } else {
                skipped += 1;
            }
        }
        hits.sort_by(|a, b| b.score.cmp(&a.score).then(a.id.cmp(&b.id)));
        HeuristicResults {
            hits,
            skipped,
            refine_cells,
            exhaustive_cells,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_seq::gen::{generate_database, DbSpec, SwissProtGen};
    use sw_seq::{Alphabet, EncodedSeq};

    fn enc(s: &[u8]) -> Vec<u8> {
        Alphabet::protein().encode_strict(s).unwrap()
    }

    fn db_of(seqs: Vec<EncodedSeq>) -> SequenceDatabase {
        SequenceDatabase::from_sequences(seqs)
    }

    #[test]
    fn finds_exact_copy() {
        let a = Alphabet::protein();
        let mut g = SwissProtGen::new(200.0, 1);
        let target = g.sequence("target", 120);
        let mut seqs: Vec<EncodedSeq> =
            (0..30).map(|i| g.sequence(&format!("d{i}"), 150)).collect();
        seqs.push(target.clone());
        let db = db_of(seqs);
        let engine = HeuristicEngine::paper_default();
        let res = engine.search(&target.residues, &db);
        assert!(!res.hits.is_empty());
        assert_eq!(res.hits[0].id.0, 30, "the planted copy must rank first");
        let _ = a;
    }

    #[test]
    fn skips_unrelated_sequences() {
        // Random 20-residue alphabet sequences rarely share a high-scoring
        // ungapped 3-mer extension with an unrelated query.
        let mut g = SwissProtGen::new(200.0, 7);
        let query = g.sequence("q", 100);
        let seqs: Vec<EncodedSeq> = (0..50).map(|i| g.sequence(&format!("d{i}"), 200)).collect();
        let db = db_of(seqs);
        let res = HeuristicEngine::paper_default().search(&query.residues, &db);
        assert!(
            res.skipped > 25,
            "most random pairs must be skipped, got {}",
            res.skipped
        );
        assert!(res.work_saved() > 0.5);
    }

    #[test]
    fn refined_scores_are_exact() {
        let mut g = SwissProtGen::new(200.0, 3);
        let target = g.sequence("t", 90);
        let db = db_of(vec![target.clone()]);
        let engine = HeuristicEngine::paper_default();
        let res = engine.search(&target.residues, &db);
        let exact = sw_score_scalar(&target.residues, &target.residues, &engine.params);
        assert_eq!(res.hits[0].score, exact);
        assert!(res.hits[0].hsp_score <= exact);
    }

    #[test]
    fn misses_heavily_mutated_homolog() {
        // The sensitivity gap the paper's introduction warns about: a
        // distant homolog with no conserved 3-mer word is invisible to
        // seed-and-extend even though exact SW still scores it well.
        let a = Alphabet::protein();
        // Query: MKV repeated; homolog: every 3rd residue mutated so no
        // exact 3-mer survives.
        let query = enc(b"MKVMKVMKVMKVMKVMKVMKVMKVMKVMKV");
        let homolog = enc(b"MKAMKAMKAMKAMKAMKAMKAMKAMKAMKA");
        let db = db_of(vec![EncodedSeq {
            header: "hom".into(),
            residues: homolog.clone(),
        }]);
        let engine = HeuristicEngine::paper_default();
        let res = engine.search(&query, &db);
        let exact = sw_score_scalar(&query, &homolog, &engine.params);
        assert!(exact >= 100, "SW still finds a strong alignment: {exact}");
        // The heuristic skipped it (no seed word survives: MKA != MKV,
        // KAM != KVM, AMK != VMK).
        assert!(res.hits.is_empty(), "heuristic must miss: {:?}", res.hits);
        assert_eq!(res.skipped, 1);
        let _ = a;
    }

    #[test]
    fn empty_and_short_inputs() {
        let db = db_of(vec![EncodedSeq {
            header: "s".into(),
            residues: enc(b"MK"),
        }]);
        let engine = HeuristicEngine::paper_default();
        let res = engine.search(&enc(b"MKVLITRAW"), &db);
        assert!(res.hits.is_empty());
        assert_eq!(res.skipped, 1);
    }

    #[test]
    fn recall_improves_with_lower_threshold() {
        // Synthetic homolog family at a fixed mutation rate: lowering the
        // HSP threshold can only find more of them.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut g = SwissProtGen::new(200.0, 11);
        let mut rng = SmallRng::seed_from_u64(5);
        let query = g.sequence("q", 150);
        let mut seqs = Vec::new();
        for i in 0..40 {
            // 30 % point mutations.
            let mut hom = query.residues.clone();
            for r in hom.iter_mut() {
                if rng.gen_bool(0.3) {
                    *r = rng.gen_range(0..20);
                }
            }
            seqs.push(EncodedSeq {
                header: format!("hom{i}").into(),
                residues: hom,
            });
        }
        let db = db_of(seqs);
        let strict = HeuristicEngine {
            params: SwParams::paper_default(),
            opts: HeuristicOpts {
                min_hsp_score: 60,
                ..Default::default()
            },
        };
        let lenient = HeuristicEngine {
            params: SwParams::paper_default(),
            opts: HeuristicOpts {
                min_hsp_score: 20,
                ..Default::default()
            },
        };
        let r_strict = strict.search(&query.residues, &db);
        let r_lenient = lenient.search(&query.residues, &db);
        assert!(r_lenient.hits.len() >= r_strict.hits.len());
        assert!(r_lenient.hits.len() > 30, "30% mutants are easy at k=3");
    }

    #[test]
    fn banded_refinement_converges_to_exact() {
        let mut g = SwissProtGen::new(200.0, 21);
        let target = g.sequence("t", 120);
        let db = db_of(vec![target.clone()]);
        let full = HeuristicEngine::paper_default();
        let exact = full.search(&target.residues, &db).hits[0].score;
        let banded_wide = HeuristicEngine {
            params: SwParams::paper_default(),
            opts: HeuristicOpts {
                band_radius: Some(200),
                ..Default::default()
            },
        };
        assert_eq!(
            banded_wide.search(&target.residues, &db).hits[0].score,
            exact
        );
        // Narrow bands are lower bounds and cost less work.
        let banded_narrow = HeuristicEngine {
            params: SwParams::paper_default(),
            opts: HeuristicOpts {
                band_radius: Some(4),
                ..Default::default()
            },
        };
        let narrow = banded_narrow.search(&target.residues, &db);
        assert!(narrow.hits[0].score <= exact);
        assert!(narrow.hits[0].score > 0);
        assert!(narrow.refine_cells < (target.residues.len() * target.residues.len()) as u64);
    }

    #[test]
    fn work_accounting_consistent() {
        let seqs = generate_database(&DbSpec::tiny(9));
        let total: u64 = seqs.iter().map(|s| s.len() as u64).sum();
        let db = db_of(seqs);
        let mut g = SwissProtGen::new(100.0, 2);
        let query = g.sequence("q", 80);
        let res = HeuristicEngine::paper_default().search(&query.residues, &db);
        assert_eq!(res.exhaustive_cells, 80 * total);
        assert!(res.refine_cells <= res.exhaustive_cells);
        assert_eq!(res.hits.len() + res.skipped as usize, db.len());
    }
}
