//! Whole-process crash/resume harness.
//!
//! The in-process matrix (`sw-core/tests/resume.rs`) interrupts runs
//! cooperatively; this harness kills the real `swsearch` binary the hard
//! way — `--kill-after-chunks` aborts the process mid-search exactly as
//! SIGKILL would, destructors and all — and then asserts the resumed
//! search completes with a hit list identical to an uninterrupted run.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_swsearch")
}

fn work_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swsearch-crash-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("work dir");
    dir
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("spawn swsearch")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

/// The `merged N hits; top K:` block — the user-visible hit list.
fn hit_lines(text: &str) -> Vec<String> {
    text.lines()
        .skip_while(|l| !l.starts_with("merged"))
        .map(str::to_string)
        .collect()
}

struct Fixture {
    db: String,
    query: String,
    dir: PathBuf,
}

fn fixture() -> Fixture {
    let dir = work_dir();
    let db = dir.join("db.fasta").to_string_lossy().into_owned();
    let query = dir.join("query.fasta").to_string_lossy().into_owned();
    let o = run(&[
        "gendb",
        "--seqs",
        "240",
        "--out",
        &db,
        "--seed",
        "7",
        "--mean-len",
        "150",
    ]);
    assert!(o.status.success(), "{}", stdout(&o));
    // Query = the first line of the first db record. Generated lengths
    // are log-normal with a heavy tail, so a fresh `gendb --seqs 1` can
    // draw a pathologically long query; a fixed 60-residue slice keeps
    // the unoptimized test binary fast and deterministic.
    let db_text = std::fs::read_to_string(&db).expect("read db");
    let head: Vec<&str> = db_text.lines().take(2).collect();
    std::fs::write(&query, format!("{}\n{}\n", head[0], head[1])).expect("write query");
    Fixture { db, query, dir }
}

fn hetero_args<'a>(f: &'a Fixture, ckpt: &'a str) -> Vec<&'a str> {
    vec![
        "hetero",
        "--query",
        &f.query,
        "--db",
        &f.db,
        "--dynamic",
        "--threads",
        "2",
        "--accel-threads",
        "1",
        "--lanes",
        "4",
        "--frac",
        "0.5",
        "--top",
        "5",
        "--checkpoint",
        ckpt,
        "--checkpoint-interval-chunks",
        "1",
    ]
}

#[test]
fn killed_process_resumes_to_identical_hits() {
    let f = fixture();

    // Reference: one uninterrupted durable run.
    let ckpt_ref = f.dir.join("ref.ckpt").to_string_lossy().into_owned();
    let o = run(&hetero_args(&f, &ckpt_ref));
    assert!(o.status.success(), "{}", stdout(&o));
    let reference = hit_lines(&stdout(&o));
    assert!(!reference.is_empty(), "{}", stdout(&o));
    assert!(
        !Path::new(&ckpt_ref).exists(),
        "clean run must delete its checkpoint"
    );

    // Kill the process at scattered points through the run (240 seqs at
    // 4 lanes = 60 batches; adaptive chunks are 1–15 batches, so every
    // run commits comfortably more than 10 chunks). One point varies by
    // PID so repeated CI runs sample different crash sites.
    let varied = (std::process::id() % 7 + 2).to_string();
    for kill_at in ["1", "3", "6", "10", varied.as_str()] {
        let ckpt = f
            .dir
            .join(format!("kill{kill_at}.ckpt"))
            .to_string_lossy()
            .into_owned();
        let mut args = hetero_args(&f, &ckpt);
        args.extend_from_slice(&["--kill-after-chunks", kill_at]);
        let o = run(&args);
        assert!(
            !o.status.success(),
            "kill@{kill_at}: the process must die mid-run: {}",
            stdout(&o)
        );
        assert!(
            Path::new(&ckpt).exists(),
            "kill@{kill_at}: a checkpoint survives the crash"
        );

        let mut args = hetero_args(&f, &ckpt);
        args.push("--resume");
        let o = run(&args);
        let text = stdout(&o);
        assert!(o.status.success(), "kill@{kill_at}: resume failed: {text}");
        assert!(
            text.contains("# resume: loaded"),
            "kill@{kill_at}: resume must load prior progress: {text}"
        );
        assert_eq!(
            hit_lines(&text),
            reference,
            "kill@{kill_at}: resumed hits differ from the uninterrupted run:\n{text}"
        );
        assert!(
            !Path::new(&ckpt).exists(),
            "kill@{kill_at}: completion deletes the checkpoint"
        );
    }
}

#[test]
fn resumed_run_exports_a_valid_trace() {
    let f = fixture();
    let ckpt = f.dir.join("traced.ckpt").to_string_lossy().into_owned();
    let trace = f.dir.join("resumed.jsonl").to_string_lossy().into_owned();
    let metrics = f.dir.join("resumed.prom").to_string_lossy().into_owned();

    let mut args = hetero_args(&f, &ckpt);
    args.extend_from_slice(&["--kill-after-chunks", "6"]);
    let o = run(&args);
    assert!(!o.status.success(), "{}", stdout(&o));
    assert!(Path::new(&ckpt).exists());

    let mut args = hetero_args(&f, &ckpt);
    args.extend_from_slice(&["--resume", "--trace-out", &trace, "--metrics-out", &metrics]);
    let o = run(&args);
    let text = stdout(&o);
    assert!(o.status.success(), "{text}");
    assert!(text.contains("# resume: loaded"), "{text}");

    // The resumed run's own trace must carry the resume marker and pass
    // the same validation CI applies to every exported artifact.
    let jtext = std::fs::read_to_string(&trace).expect("trace file");
    assert!(jtext.contains("\"resume_loaded\""), "{jtext}");
    let o = run(&["trace-check", "--trace", &trace, "--metrics", &metrics]);
    let checked = stdout(&o);
    assert!(o.status.success(), "{checked}");
    assert_eq!(checked.matches(": OK (").count(), 2, "{checked}");
}

#[test]
fn resume_with_swapped_database_is_refused() {
    let f = fixture();
    let ckpt = f.dir.join("swap.ckpt").to_string_lossy().into_owned();
    let mut args = hetero_args(&f, &ckpt);
    args.extend_from_slice(&["--kill-after-chunks", "4"]);
    let o = run(&args);
    assert!(!o.status.success(), "{}", stdout(&o));
    assert!(Path::new(&ckpt).exists());

    // A different database under the same path → typed refusal, not a
    // silently wrong merge.
    let other_db = f.dir.join("other.fasta").to_string_lossy().into_owned();
    let o = run(&[
        "gendb",
        "--seqs",
        "240",
        "--out",
        &other_db,
        "--seed",
        "8",
        "--mean-len",
        "150",
    ]);
    assert!(o.status.success());
    let f2 = Fixture {
        db: other_db,
        query: f.query.clone(),
        dir: f.dir.clone(),
    };
    let mut args = hetero_args(&f2, &ckpt);
    args.push("--resume");
    let o = run(&args);
    let text = stdout(&o);
    assert_eq!(o.status.code(), Some(1), "{text}");
    assert!(
        text.contains("checkpoint does not belong to this search")
            && text.contains("database digest"),
        "{text}"
    );
}
