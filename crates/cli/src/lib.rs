//! Library half of `swsearch` — argument parsing and command execution,
//! separated from `main.rs` so everything is unit-testable.

#![warn(missing_docs)]
// `deny`, not `forbid`: the signal-handler registration in `signals` is
// the one scoped, documented exception.
#![deny(unsafe_code)]

pub mod args;
pub mod commands;
pub mod fleet;
pub mod signals;

pub use args::{Command, ParseError};

/// Parse argv (without the program name) and run the command, writing
/// human-readable output to `out`. Returns the process exit code.
pub fn run<W: std::io::Write>(argv: &[String], out: &mut W) -> i32 {
    match args::parse(argv) {
        Ok(cmd) => match commands::execute(cmd, out) {
            Ok(()) => 0,
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
                1
            }
        },
        Err(e) => {
            let _ = writeln!(out, "error: {e}\n");
            let _ = writeln!(out, "{}", args::USAGE);
            2
        }
    }
}
