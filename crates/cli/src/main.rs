//! `swsearch` binary entry point.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    std::process::exit(sw_cli::run(&argv, &mut out));
}
