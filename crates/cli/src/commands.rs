//! Command execution for `swsearch`.

use crate::args::{Command, SearchOpts, USAGE};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use sw_core::{
    simulate_hetero, simulate_search, PreparedDb, SearchConfig, SearchEngine, SimConfig,
};
use sw_device::CostModel;
use sw_kernels::scalar::SwParams;
use sw_kernels::traceback::sw_align;
use sw_seq::gen::{generate_database, generate_lengths, DbSpec};
use sw_seq::{Alphabet, EncodedSeq, FastaWriter, GapPenalty, SubstMatrix};

/// Boxed error for command execution.
pub type CmdError = Box<dyn std::error::Error>;

fn load_sequences(path: &str, alphabet: &Alphabet) -> Result<Vec<EncodedSeq>, CmdError> {
    if path.ends_with(".swdb") {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let db = sw_swdb::snapshot::read(&bytes)?;
        Ok(db
            .iter()
            .map(|(id, v)| EncodedSeq {
                header: db.header(id).into(),
                residues: v.residues.to_vec(),
            })
            .collect())
    } else {
        Ok(sw_seq::fasta::read_encoded(
            BufReader::new(File::open(path)?),
            alphabet,
        )?)
    }
}

/// [`load_sequences`], optionally in quarantine mode: malformed FASTA
/// records are skipped (with a printed per-issue summary) instead of
/// aborting the command. Snapshots have no quarantine — their integrity
/// is checked structurally on read.
fn load_sequences_quarantined<W: Write>(
    path: &str,
    alphabet: &Alphabet,
    quarantine: bool,
    out: &mut W,
) -> Result<Vec<EncodedSeq>, CmdError> {
    if !quarantine || path.ends_with(".swdb") {
        return load_sequences(path, alphabet);
    }
    let (seqs, report) =
        sw_seq::read_encoded_quarantined(BufReader::new(File::open(path)?), alphabet)?;
    if !report.is_clean() {
        writeln!(out, "# quarantine {path}: {report}")?;
    }
    Ok(seqs)
}

fn params_from(opts: &SearchOpts) -> Result<SwParams, CmdError> {
    let matrix = if opts.dna {
        sw_seq::dna::dna_matrix(opts.match_score, opts.mismatch, -2)
    } else {
        SubstMatrix::by_name(&opts.matrix)
            .ok_or_else(|| format!("unknown matrix '{}'", opts.matrix))?
    };
    Ok(SwParams::new(
        matrix,
        GapPenalty::new(opts.open, opts.extend),
    ))
}

fn alphabet_from(opts: &SearchOpts) -> Alphabet {
    if opts.dna {
        Alphabet::dna()
    } else {
        Alphabet::protein()
    }
}

/// The kernel ISA the process starts with: `SW_KERNEL_ISA` read exactly
/// once, here, at first use — the library layers never touch the
/// environment, so a daemon's concurrent requests all see one frozen
/// value (plus whatever explicit `--kernel-isa` a request carries). An
/// unknown or unsupported override falls back to hardware detection
/// rather than erroring: the variable is a preference, `--kernel-isa`
/// is the contract.
pub fn startup_kernel_isa() -> sw_kernels::KernelIsa {
    static STARTUP_ISA: std::sync::OnceLock<sw_kernels::KernelIsa> = std::sync::OnceLock::new();
    *STARTUP_ISA.get_or_init(|| match std::env::var("SW_KERNEL_ISA") {
        Ok(name) => match sw_kernels::KernelIsa::from_name(&name) {
            Some(isa) if isa.is_available() => isa,
            _ => {
                eprintln!(
                    "# WARNING: SW_KERNEL_ISA={name} is unknown or unsupported here; \
                     using detected ISA"
                );
                sw_kernels::KernelIsa::detect()
            }
        },
        Err(_) => sw_kernels::KernelIsa::detect(),
    })
}

/// Resolve `--kernel-isa` against the host: auto uses the startup
/// resolution (environment override or detected best), a forced ISA
/// must actually be supported here.
fn isa_from(opts: &SearchOpts) -> Result<sw_kernels::KernelIsa, CmdError> {
    match opts.kernel_isa {
        None => Ok(startup_kernel_isa()),
        Some(isa) if isa.is_available() => Ok(isa),
        Some(isa) => Err(format!(
            "--kernel-isa {isa}: this host does not support {isa} \
             (detected: {})",
            sw_kernels::KernelIsa::detect()
        )
        .into()),
    }
}

/// Execute one parsed command, writing output to `out`.
pub fn execute<W: Write>(cmd: Command, out: &mut W) -> Result<(), CmdError> {
    match cmd {
        Command::Help => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        Command::Search { query, db, opts } => cmd_search(&query, &db, &opts, out),
        Command::SearchShards {
            query,
            manifest,
            shard_dir,
            top,
            drill,
            net_fault,
            net_fault_seed,
            placement,
            coord_journal,
            resume_coord,
            metrics_out,
            json,
            opts,
        } => cmd_search_shards(
            &query,
            &manifest,
            shard_dir.as_deref(),
            top,
            FabricOpts {
                drill,
                net_fault,
                net_fault_seed,
                placement,
                coord_journal,
                resume_coord,
                metrics_out,
            },
            json,
            &opts,
            out,
        ),
        Command::ShardPrepare {
            db,
            out: dir,
            shards,
            replicas,
            endpoints,
        } => cmd_shard_prepare(&db, &dir, shards, replicas, endpoints.as_deref(), out),
        Command::MakeDb {
            input,
            output,
            quarantine,
        } => cmd_makedb(&input, &output, quarantine, out),
        Command::GenDb {
            seqs,
            output,
            seed,
            mean_len,
        } => cmd_gendb(seqs, &output, seed, mean_len, out),
        Command::Stats { db } => cmd_stats(&db, out),
        Command::SelfTest { lanes, scale } => cmd_selftest(lanes, scale, out),
        Command::Simulate {
            device,
            threads,
            query_len,
            frac,
            variant,
            db_scale,
        } => cmd_simulate(&device, threads, query_len, frac, variant, db_scale, out),
        Command::Align {
            query,
            subject,
            opts,
        } => cmd_align(&query, &subject, &opts, out),
        Command::TraceCheck { trace, metrics } => {
            cmd_trace_check(trace.as_deref(), metrics.as_deref(), out)
        }
        Command::Bench {
            seqs,
            query_len,
            threads,
            lanes,
        } => cmd_bench(seqs, query_len, threads, lanes, out),
        Command::Hetero {
            query,
            db,
            frac,
            dynamic,
            accel_threads,
            min_chunk,
            inject_fault,
            accel_timeout_ms,
            failure_budget,
            trace_out,
            metrics_out,
            trace_level,
            checkpoint,
            checkpoint_dir,
            checkpoint_interval,
            resume,
            kill_after_chunks,
            opts,
        } => cmd_hetero(
            &query,
            &db,
            frac,
            dynamic,
            accel_threads,
            min_chunk,
            HeteroDrill {
                inject_fault,
                accel_timeout_ms,
                failure_budget,
                kill_after_chunks,
            },
            HeteroTraceOpts {
                trace_out,
                metrics_out,
                level: trace_level,
            },
            HeteroDurability {
                checkpoint,
                checkpoint_dir,
                interval_chunks: checkpoint_interval,
                resume,
            },
            &opts,
            out,
        ),
        Command::Serve {
            db,
            socket,
            max_concurrent,
            tenant_quota,
            batch_window_ms,
            accel_threads,
            checkpoint_dir,
            trace_dir,
            registry_out,
            log_level,
            log_file,
            slow_query_ms,
            metrics_file,
            metrics_interval_ms,
            request_timeout_ms,
            shard_worker,
            opts,
        } => cmd_serve(
            &db,
            &socket,
            ServeTuning {
                max_concurrent,
                tenant_quota,
                batch_window_ms,
                accel_threads,
                checkpoint_dir,
                trace_dir,
                registry_out,
                log_level,
                log_file,
                slow_query_ms,
                metrics_file,
                metrics_interval_ms,
                request_timeout_ms,
                shard_worker,
            },
            &opts,
            out,
        ),
        Command::Submit {
            socket,
            query,
            tenant,
            status,
            cancel,
            stats,
            shutdown,
            metrics,
            health,
            drill,
            top,
            json,
            connect_retries,
            connect_backoff_ms,
        } => cmd_submit(
            &socket,
            SubmitOp {
                query,
                tenant,
                status,
                cancel,
                stats,
                shutdown,
                metrics,
                health,
                drill,
                top,
                json,
                connect_retries,
                connect_backoff_ms,
            },
            out,
        ),
    }
}

fn cmd_search<W: Write>(
    query_path: &str,
    db_path: &str,
    opts: &SearchOpts,
    out: &mut W,
) -> Result<(), CmdError> {
    let alphabet = alphabet_from(opts);
    let mut queries = load_sequences_quarantined(query_path, &alphabet, opts.quarantine, out)?;
    if opts.both_strands {
        if !opts.dna {
            return Err("--both-strands requires --dna".into());
        }
        let minus: Vec<EncodedSeq> = queries
            .iter()
            .map(|q| EncodedSeq {
                header: format!("{} (minus strand)", q.header).into(),
                residues: sw_seq::dna::reverse_complement(&q.residues),
            })
            .collect();
        queries.extend(minus);
    }
    let db_seqs = load_sequences_quarantined(db_path, &alphabet, opts.quarantine, out)?;
    if db_seqs.is_empty() {
        return Err("database holds no sequences".into());
    }
    let params = params_from(opts)?;
    let prepared = PreparedDb::prepare(db_seqs, opts.lanes, &alphabet);
    let engine = SearchEngine::new(params.clone());
    let isa = isa_from(opts)?;
    let config = SearchConfig {
        variant: opts.variant,
        threads: opts.threads.max(1),
        policy: sw_sched::Policy::dynamic(),
        block_rows: None,
        adaptive_precision: opts.adaptive,
        isa,
    };
    writeln!(
        out,
        "# swsearch: {} quer{} vs {} sequences ({} residues), {} [{}] isa {}",
        queries.len(),
        if queries.len() == 1 { "y" } else { "ies" },
        prepared.stats.n_seqs,
        prepared.stats.total_residues,
        params.matrix.name,
        opts.variant,
        isa,
    )?;
    let karlin = if opts.dna {
        // Uniform base composition for nucleotide statistics.
        let lambda =
            sw_core::stats::ungapped_lambda(&params.matrix, &[0.25, 0.25, 0.25, 0.25, 0.0])
                .ok_or("DNA scoring has no valid Karlin lambda")?;
        sw_core::stats::KarlinParams {
            lambda: lambda * 0.85,
            k: 0.041,
        }
    } else {
        sw_core::stats::KarlinParams::gapped_approx(&params.matrix)
    };
    for q in &queries {
        let res = engine.search(&q.residues, &prepared, &config);
        writeln!(
            out,
            "\nquery {} (len {}): {} in {:.3}s",
            q.header,
            q.len(),
            res.gcups(),
            res.elapsed.as_secs_f64()
        )?;
        let reports = sw_core::report::report_top_hits(
            &q.residues,
            &prepared,
            &res,
            &params,
            &karlin,
            opts.top,
        );
        if opts.tabular {
            for r in &reports {
                writeln!(out, "{}", r.tabular(&q.header))?;
            }
        } else {
            writeln!(
                out,
                "{:>6}  {:>8}  {:>7}  {:>9}  {:>6}  subject",
                "rank", "score", "bits", "E-value", "ident%"
            )?;
            for (rank, r) in reports.iter().enumerate() {
                writeln!(
                    out,
                    "{:>6}  {:>8}  {:>7.1}  {:>9.2e}  {:>6}  {}",
                    rank + 1,
                    r.score,
                    r.bits,
                    r.evalue,
                    r.stats
                        .as_ref()
                        .map(|s| format!("{:.1}", s.pct_identity()))
                        .unwrap_or_else(|| "-".into()),
                    r.header
                )?;
                if opts.align {
                    if let Some(alignment) = &r.alignment {
                        let subject = prepared.sorted.db().seq(r.id);
                        for line in alignment
                            .render(&q.residues, subject.residues, &alphabet)
                            .lines()
                        {
                            writeln!(out, "          {line}")?;
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

fn cmd_makedb<W: Write>(
    input: &str,
    output: &str,
    quarantine: bool,
    out: &mut W,
) -> Result<(), CmdError> {
    let alphabet = Alphabet::protein();
    let seqs = load_sequences_quarantined(input, &alphabet, quarantine, out)?;
    let db = sw_swdb::SequenceDatabase::from_sequences(seqs);
    let bytes = sw_swdb::snapshot::write(&db);
    File::create(output)?.write_all(&bytes)?;
    writeln!(
        out,
        "wrote {} sequences ({} residues) to {output} ({} bytes)",
        db.len(),
        db.total_residues(),
        bytes.len()
    )?;
    Ok(())
}

fn cmd_shard_prepare<W: Write>(
    db_path: &str,
    out_dir: &str,
    n_shards: usize,
    replicas: usize,
    endpoint_pool: Option<&str>,
    out: &mut W,
) -> Result<(), CmdError> {
    use sw_swdb::shard;
    let alphabet = Alphabet::protein();
    let seqs = load_sequences(db_path, &alphabet)?;
    if seqs.is_empty() {
        return Err("database holds no sequences".into());
    }
    let db = sw_swdb::SequenceDatabase::from_sequences(seqs);
    // Shards are cut from the length-sorted order — the order the
    // search engine actually walks — so `shard base + in-shard id` is
    // a stable global index, and the sorted parent snapshot written
    // alongside is the byte-identical reference for an unsharded run.
    let sorted = shard::length_sorted(&db);
    let parent_digest = sw_swdb::snapshot::content_digest(&sorted);
    let dir = std::path::Path::new(out_dir);
    std::fs::create_dir_all(dir)?;
    File::create(dir.join("parent.swdb"))?.write_all(&sw_swdb::snapshot::write(&sorted))?;
    let ranges = shard::plan_shards(&sorted, n_shards);
    let count = ranges.len() as u64;
    let mut entries = Vec::new();
    for (i, range) in ranges.iter().enumerate() {
        let piece = shard::slice(&sorted, *range);
        let meta = sw_swdb::ShardMeta {
            index: i as u64,
            count,
            base: range.0 as u64,
            parent_digest,
        };
        let file = shard::shard_file_name(i as u64);
        File::create(dir.join(&file))?.write_all(&shard::write_shard(&meta, &piece))?;
        let digest = sw_swdb::snapshot::content_digest(&piece);
        writeln!(
            out,
            "# shard {i}: {} seqs, base {}, digest {digest:016x} -> {file}",
            piece.len(),
            range.0
        )?;
        entries.push(shard::ShardEntry {
            index: i as u64,
            file,
            base: range.0 as u64,
            n_seqs: piece.len() as u64,
            digest,
        });
    }
    let manifest = sw_swdb::ShardManifest {
        parent_digest,
        shards: entries,
    };
    std::fs::write(dir.join("shards.manifest"), manifest.render())?;
    // Replication asked for (or an explicit endpoint pool): emit the
    // placement plan the coordinator walks on failover. Endpoints may
    // mix tcp:// and unix socket names; they are validated here so a
    // typo dies at prepare time, not mid-search.
    if replicas > 1 || endpoint_pool.is_some() {
        let pool: Vec<String> = endpoint_pool
            .map(|p| p.split(',').map(str::to_string).collect())
            .unwrap_or_default();
        for ep in &pool {
            sw_serve::Endpoint::parse(ep).map_err(|e| format!("--endpoints: {e}"))?;
        }
        let plan = sw_swdb::PlacementPlan::assign(parent_digest, count, replicas as u64, &pool);
        std::fs::write(dir.join("placement.plan"), plan.render())?;
        writeln!(
            out,
            "# wrote placement.plan: {replicas} replica(s) per shard over {}",
            if pool.is_empty() {
                "per-replica sockets".to_string()
            } else {
                format!("{} pooled endpoint(s)", pool.len())
            }
        )?;
    }
    writeln!(
        out,
        "# wrote {count} shards + sorted parent ({} seqs, digest {parent_digest:016x}) \
         + shards.manifest to {out_dir}",
        sorted.len()
    )?;
    Ok(())
}

/// Fabric knobs carried from the `search --shards` arg parse: drills,
/// placement, coordinator durability and observability.
struct FabricOpts {
    drill: Option<String>,
    net_fault: Option<String>,
    net_fault_seed: Option<u64>,
    placement: Option<String>,
    coord_journal: Option<String>,
    resume_coord: bool,
    metrics_out: Option<String>,
}

#[allow(clippy::too_many_arguments)]
fn cmd_search_shards<W: Write>(
    query_path: &str,
    manifest_path: &str,
    shard_dir: Option<&str>,
    top: usize,
    fabric: FabricOpts,
    json: bool,
    opts: &SearchOpts,
    out: &mut W,
) -> Result<(), CmdError> {
    use std::process::{Command as Proc, Stdio};
    use std::time::Duration;
    use sw_sched::{NetFaultInjector, NetFaultPlan};
    use sw_serve::{coord, CoordConfig, CoordDrill, Endpoint, NetTransport, ShardSpec};
    let manifest_text = std::fs::read_to_string(manifest_path)?;
    let manifest = sw_swdb::ShardManifest::parse(&manifest_text)
        .map_err(|e| format!("{manifest_path}: {e}"))?;
    let manifest_dir = std::path::Path::new(manifest_path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .map(|p| p.to_path_buf())
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let run_dir = shard_dir
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| manifest_dir.clone());
    std::fs::create_dir_all(&run_dir)?;
    let ckpt_dir = run_dir.join("ckpt");
    std::fs::create_dir_all(&ckpt_dir)?;
    let query_fasta = std::fs::read_to_string(query_path)?;

    // Placement: an explicit --placement file, or placement.plan next
    // to the manifest when shard-prepare wrote one. Relative unix
    // socket names resolve against the run dir (where this
    // coordinator's sockets live); tcp:// endpoints pass through.
    let placement_path = fabric
        .placement
        .clone()
        .map(std::path::PathBuf::from)
        .or_else(|| {
            let p = manifest_dir.join("placement.plan");
            p.exists().then_some(p)
        });
    let plan = placement_path
        .map(|p| -> Result<sw_swdb::PlacementPlan, CmdError> {
            let plan = sw_swdb::PlacementPlan::parse(&std::fs::read_to_string(&p)?)
                .map_err(|e| format!("{}: {e}", p.display()))?;
            if plan.parent_digest != manifest.parent_digest {
                return Err(format!(
                    "{}: placement parent digest {:016x} does not match manifest {:016x}",
                    p.display(),
                    plan.parent_digest,
                    manifest.parent_digest
                )
                .into());
            }
            if plan.entries.len() != manifest.shards.len() {
                return Err(format!(
                    "{}: placement covers {} shards, manifest has {}",
                    p.display(),
                    plan.entries.len(),
                    manifest.shards.len()
                )
                .into());
            }
            Ok(plan)
        })
        .transpose()?;
    let resolve = |ep: &str| -> Result<Endpoint, CmdError> {
        match Endpoint::parse(ep).map_err(|e| format!("placement endpoint: {e}"))? {
            Endpoint::Unix(p) if p.is_relative() => Ok(Endpoint::Unix(run_dir.join(p))),
            other => Ok(other),
        }
    };
    let specs: Vec<ShardSpec> = manifest
        .shards
        .iter()
        .map(|e| -> Result<ShardSpec, CmdError> {
            let endpoints = match &plan {
                Some(plan) => plan.entries[e.index as usize]
                    .endpoints
                    .iter()
                    .map(|ep| resolve(ep))
                    .collect::<Result<Vec<_>, _>>()?,
                None => vec![Endpoint::Unix(
                    run_dir.join(format!("shard-{}.sock", e.index)),
                )],
            };
            Ok(ShardSpec {
                index: e.index,
                endpoints,
                expect_digest: Some(e.digest),
            })
        })
        .collect::<Result<Vec<_>, _>>()?;

    // Worker daemons are this same binary re-invoked as
    // `serve --shard-worker`; stdout/stderr land in the run dir so a
    // wedged or killed worker leaves a trail. The fleet guard owns
    // every process spawned here — its Drop tears them down on every
    // exit path, including typed-fatal coordinator errors that used to
    // leak the whole fleet.
    let exe = std::env::current_exe()?;
    let threads = opts.threads.max(1);
    let fleet = crate::fleet::WorkerFleet::new();
    let spawn_at = |spec: &ShardSpec, endpoint: &Endpoint| -> Result<(), String> {
        let entry = manifest
            .shards
            .iter()
            .find(|e| e.index == spec.index)
            .ok_or("shard missing from manifest")?;
        let replica = spec
            .endpoints
            .iter()
            .position(|e| e == endpoint)
            .unwrap_or(0);
        let log = File::create(run_dir.join(format!("worker-{}-r{replica}.log", spec.index)))
            .map_err(|e| e.to_string())?;
        let mut proc = Proc::new(&exe);
        proc.arg("serve")
            .arg("--shard-worker")
            .arg("--db")
            .arg(manifest_dir.join(&entry.file));
        match endpoint {
            Endpoint::Unix(path) => {
                // A crashed worker leaves its socket file behind; the
                // new one must be able to bind.
                let _ = std::fs::remove_file(path);
                proc.arg("--socket").arg(path);
            }
            tcp => {
                proc.arg("--listen").arg(tcp.to_string());
            }
        }
        let child = proc
            .arg("--checkpoint-dir")
            .arg(&ckpt_dir)
            .arg("--threads")
            .arg(threads.to_string())
            .stdout(Stdio::from(log.try_clone().map_err(|e| e.to_string())?))
            .stderr(Stdio::from(log))
            .spawn()
            .map_err(|e| format!("spawn worker {} at {endpoint}: {e}", spec.index))?;
        fleet.adopt(spec.index, endpoint, child);
        Ok(())
    };
    let listening = |ep: &Endpoint| ep.connect(Duration::from_millis(250)).is_ok();
    let respawn = |spec: &ShardSpec, attempt: u32| -> Result<(), String> {
        let endpoint = spec.endpoint_for(attempt);
        if listening(endpoint) {
            return Ok(());
        }
        spawn_at(spec, endpoint)
    };
    // Boot every replica whose endpoint is not already serving; daemons
    // a previous coordinator (or an operator) left running are reused
    // and NOT shut down afterwards.
    let mut booted = 0u64;
    for spec in &specs {
        for endpoint in &spec.endpoints {
            if !listening(endpoint) {
                spawn_at(spec, endpoint)?;
                booted += 1;
            }
        }
    }
    if !json {
        writeln!(
            out,
            "# sharded search: {} shards ({booted} booted), parent digest {:016x}",
            specs.len(),
            manifest.parent_digest
        )?;
    }

    let faults = match (&fabric.net_fault, fabric.net_fault_seed) {
        (Some(spec), _) => Some(NetFaultInjector::new(NetFaultPlan::parse(spec)?)),
        (None, Some(seed)) => Some(NetFaultInjector::new(NetFaultPlan::seeded(
            seed,
            specs.len(),
            specs.len() as u64,
        ))),
        (None, None) => None,
    };
    let journal_path = fabric
        .coord_journal
        .clone()
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| run_dir.join("coord.journal"));
    let coord_drill = CoordDrill {
        faults: faults.as_ref(),
        journal: Some(journal_path),
        resume: fabric.resume_coord,
    };
    let mut cfg = CoordConfig::new(top);
    cfg.drill = fabric.drill.clone();
    cfg.parent_digest = manifest.parent_digest;
    let result = coord::search_sharded_durable(
        &specs,
        &query_fasta,
        &cfg,
        &respawn,
        &NetTransport,
        &coord_drill,
    );
    let outcome = result.map_err(|e| format!("sharded search: {e}"))?;
    if let Some(path) = &fabric.metrics_out {
        std::fs::write(
            path,
            sw_serve::coord_prometheus(
                specs.len() as u64,
                outcome.requeues,
                outcome.failovers,
                outcome.net_retries,
                outcome.journal_skipped,
            ),
        )?;
    }
    if json {
        // Re-rendered wire hit lines, byte-identical to what an
        // unsharded `submit --json` run over the sorted parent prints
        // for the same query — the CI merge check diffs exactly this.
        for h in &outcome.hits {
            writeln!(
                out,
                "{{\"rank\":{},\"score\":{},\"id\":{},\"header\":\"{}\"}}",
                h.rank,
                h.score,
                h.id,
                sw_serve::json::escape(&h.header)
            )?;
        }
        return Ok(());
    }
    for (i, r) in outcome.reports.iter().enumerate() {
        writeln!(
            out,
            "# shard {i}: {} attempt{}, {} resume{}, {} hits",
            r.attempts,
            if r.attempts == 1 { "" } else { "s" },
            r.resumes,
            if r.resumes == 1 { "" } else { "s" },
            r.hits
        )?;
    }
    if outcome.requeues > 0 {
        writeln!(
            out,
            "# {} shard execution(s) requeued ({} replica failover(s))",
            outcome.requeues, outcome.failovers
        )?;
    }
    if outcome.net_retries > 0 {
        writeln!(
            out,
            "# {} connect retr(y/ies) absorbed",
            outcome.net_retries
        )?;
    }
    if outcome.journal_skipped > 0 {
        writeln!(
            out,
            "# {} shard(s) resumed from the coordinator journal",
            outcome.journal_skipped
        )?;
    }
    writeln!(out, "merged top {}: {} hits", top, outcome.hits.len())?;
    for h in &outcome.hits {
        writeln!(out, "{:>6}  {:>8}  {}", h.rank, h.score, h.header)?;
    }
    Ok(())
}

fn cmd_gendb<W: Write>(
    seqs: u32,
    output: &str,
    seed: u64,
    mean_len: f64,
    out: &mut W,
) -> Result<(), CmdError> {
    let spec = DbSpec {
        n_seqs: seqs,
        mean_len,
        max_len: 35_213,
        seed,
    };
    let generated = generate_database(&spec);
    if output.ends_with(".swdb") {
        let db = sw_swdb::SequenceDatabase::from_sequences(generated);
        File::create(output)?.write_all(&sw_swdb::snapshot::write(&db))?;
    } else {
        let alphabet = Alphabet::protein();
        let mut w = FastaWriter::new(BufWriter::new(File::create(output)?));
        for s in &generated {
            w.write(s, &alphabet)?;
        }
        w.into_inner()?.flush()?;
    }
    writeln!(
        out,
        "generated {seqs} synthetic sequences (seed {seed}) into {output}"
    )?;
    Ok(())
}

fn cmd_stats<W: Write>(db_path: &str, out: &mut W) -> Result<(), CmdError> {
    let alphabet = Alphabet::protein();
    let seqs = load_sequences(db_path, &alphabet)?;
    let db = sw_swdb::SequenceDatabase::from_sequences(seqs);
    let stats = sw_swdb::DbStats::compute(&db);
    writeln!(out, "{stats}")?;
    Ok(())
}

fn cmd_selftest<W: Write>(lanes: usize, scale: u32, out: &mut W) -> Result<(), CmdError> {
    writeln!(
        out,
        "running cross-variant self-test at {lanes} lanes (scale {scale})..."
    )?;
    let report = sw_core::verify::self_test(lanes, scale);
    writeln!(
        out,
        "{} variants, {} score comparisons",
        report.variants_checked, report.comparisons
    )?;
    match report.first_mismatch {
        None => {
            writeln!(out, "PASS: all variants agree with the scalar reference")?;
            Ok(())
        }
        Some(m) => Err(format!("FAIL: {m}").into()),
    }
}

fn cmd_simulate<W: Write>(
    device: &str,
    threads: u32,
    query_len: usize,
    frac: f64,
    variant: sw_kernels::KernelVariant,
    db_scale: f64,
    out: &mut W,
) -> Result<(), CmdError> {
    let spec = if (db_scale - 1.0).abs() < 1e-12 {
        DbSpec::swissprot_full(1)
    } else {
        DbSpec::swissprot_scaled(db_scale, 1)
    };
    let lens = generate_lengths(&spec);
    writeln!(
        out,
        "# simulated Swiss-Prot-like workload: {} sequences, query length {query_len}",
        lens.len()
    )?;
    let report_one = |model: &CostModel, t: u32, out: &mut W| -> Result<(), CmdError> {
        let t = if t == 0 {
            model.device.max_threads()
        } else {
            t
        };
        let shapes =
            sw_core::prepare::shapes_from_lengths(&lens, model.device.lanes_i16(), query_len);
        let cfg = SimConfig {
            variant,
            threads: t,
            replicas: 8,
            ..SimConfig::best(t)
        };
        let r = simulate_search(model, &shapes, &cfg);
        writeln!(
            out,
            "{:<18} {:>4} threads  {variant:<14} {:>7.1} GCUPS  (efficiency {:.2})",
            model.device.name.as_ref(),
            t,
            r.gcups,
            r.efficiency
        )?;
        Ok(())
    };
    match device {
        "xeon" => report_one(
            &CostModel::xeon(),
            if threads == 0 { 32 } else { threads },
            out,
        ),
        "phi" => report_one(
            &CostModel::phi(),
            if threads == 0 { 240 } else { threads },
            out,
        ),
        "hetero" => {
            let xeon = CostModel::xeon();
            let phi = CostModel::phi();
            let cpu_cfg = SimConfig {
                variant,
                replicas: 8,
                ..SimConfig::best(32)
            };
            let phi_cfg = SimConfig {
                variant,
                replicas: 8,
                ..SimConfig::best(240)
            };
            let r = simulate_hetero((&xeon, &cpu_cfg), (&phi, &phi_cfg), &lens, query_len, frac);
            writeln!(
                out,
                "hetero (Phi share {:.0}%): {:.1} GCUPS  (CPU {:.1} + Phi {:.1}; {:.3} GCUPS/W)",
                100.0 * frac,
                r.gcups,
                r.cpu_gcups,
                r.accel_gcups,
                r.gcups_per_watt()
            )?;
            Ok(())
        }
        other => Err(format!("unknown device '{other}'").into()),
    }
}

/// Fault-drill knobs for `cmd_hetero` (all off by default).
struct HeteroDrill {
    inject_fault: Option<sw_sched::FaultSpec>,
    accel_timeout_ms: Option<u64>,
    failure_budget: u32,
    kill_after_chunks: Option<u64>,
}

/// Trace and metrics outputs for `cmd_hetero` (all off by default).
struct HeteroTraceOpts {
    trace_out: Option<String>,
    metrics_out: Option<String>,
    level: sw_trace::TraceLevel,
}

/// Checkpoint/resume knobs for `cmd_hetero` (all off by default).
struct HeteroDurability {
    checkpoint: Option<String>,
    checkpoint_dir: Option<String>,
    interval_chunks: u64,
    resume: bool,
}

impl HeteroDurability {
    fn enabled(&self) -> bool {
        self.checkpoint.is_some() || self.checkpoint_dir.is_some()
    }

    /// Where checkpoint state lives, for messages and resume hints.
    fn location(&self) -> (&'static str, &str) {
        match (&self.checkpoint, &self.checkpoint_dir) {
            (Some(p), _) => ("--checkpoint", p.as_str()),
            (None, Some(d)) => ("--checkpoint-dir", d.as_str()),
            (None, None) => ("--checkpoint", ""),
        }
    }
}

/// Print the realised schedule, per-device metrics and recovery lines of
/// a completed dynamic run, then export its trace artifacts if asked.
fn report_dynamic_outcome<W: Write>(
    outcome: &sw_core::DynamicSearchOutcome,
    n_batches: usize,
    plan_accel_fraction: f64,
    trace: &HeteroTraceOpts,
    gcups_window_us: u64,
    isa: sw_kernels::KernelIsa,
    out: &mut W,
) -> Result<(), CmdError> {
    writeln!(
        out,
        "# dynamic dual-pool: pools met at batch {} of {}; accel took {:.1}% of cells \
         (plan seeded {:.1}%)",
        outcome.boundary,
        n_batches,
        outcome.accel_cell_fraction * 100.0,
        plan_accel_fraction * 100.0
    )?;
    for (label, m) in [("cpu  ", &outcome.cpu), ("accel", &outcome.accel)] {
        writeln!(
            out,
            "#   {label}: {} workers, {} tasks in {} chunks, busy {:.3}s \
             (queue wait {:.3}s), {} cells, {:.2} GCUPS",
            m.workers,
            m.tasks,
            m.chunks,
            m.busy.as_secs_f64(),
            m.queue_wait.as_secs_f64(),
            m.cells,
            m.gcups()
        )?;
        if m.retries + m.requeues + m.lost_leases + m.failures > 0 || m.degraded {
            writeln!(
                out,
                "#   {label}: recovery: {} retries, {} requeues, {} lost leases, \
                 {} failures{}",
                m.retries,
                m.requeues,
                m.lost_leases,
                m.failures,
                if m.degraded { " [pool retired]" } else { "" }
            )?;
        }
    }
    if outcome.results.degraded {
        writeln!(
            out,
            "# DEGRADED: a device pool was retired mid-run; the surviving pool \
             completed the queue (results are exact)"
        )?;
    }
    if let Some(tl) = &outcome.timeline {
        if let Some(path) = &trace.trace_out {
            // Extension picks the format: `.jsonl` is the line-oriented
            // event log, anything else is Chrome trace JSON (Perfetto).
            let rendered = if path.ends_with(".jsonl") {
                sw_trace::export::jsonl(tl)
            } else {
                sw_trace::export::chrome_trace(tl)
            };
            std::fs::write(path, rendered)?;
            writeln!(
                out,
                "# trace: {} events ({} dropped) written to {path}",
                tl.total_events(),
                tl.total_dropped()
            )?;
        }
        if let Some(path) = &trace.metrics_out {
            let prom = sw_trace::export::prometheus_with_isa(
                tl,
                &outcome.device_counters(),
                gcups_window_us,
                isa.name(),
            );
            std::fs::write(path, prom)?;
            writeln!(out, "# metrics: prometheus snapshot written to {path}")?;
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn cmd_hetero<W: Write>(
    query_path: &str,
    db_path: &str,
    frac: f64,
    dynamic: bool,
    accel_threads: usize,
    min_chunk: usize,
    drill: HeteroDrill,
    trace: HeteroTraceOpts,
    durable: HeteroDurability,
    opts: &SearchOpts,
    out: &mut W,
) -> Result<(), CmdError> {
    use sw_core::{DurableOptions, HeteroEngine, HeteroSearchConfig, RecoveryConfig, TraceConfig};
    use sw_sched::{FaultInjector, FaultPlan};
    if drill.inject_fault.is_some() && !dynamic {
        return Err("--inject-fault requires --dynamic (the static split has no recovery)".into());
    }
    if !durable.enabled() && (durable.resume || drill.kill_after_chunks.is_some()) {
        return Err(
            "--resume/--kill-after-chunks need --checkpoint <path> or --checkpoint-dir <dir>"
                .into(),
        );
    }
    if durable.enabled() && !dynamic {
        return Err(
            "--checkpoint/--checkpoint-dir require --dynamic (the static split has no \
             chunk progress to save)"
                .into(),
        );
    }
    let tracing_requested = trace.trace_out.is_some() || trace.metrics_out.is_some();
    if tracing_requested && !dynamic {
        return Err(
            "--trace-out/--metrics-out require --dynamic (the static split emits no events)".into(),
        );
    }
    if tracing_requested && trace.level == sw_trace::TraceLevel::Off {
        return Err("--trace-out/--metrics-out need --trace-level lite or full".into());
    }
    let alphabet = alphabet_from(opts);
    let queries = load_sequences_quarantined(query_path, &alphabet, opts.quarantine, out)?;
    let q = queries.first().ok_or("query file holds no sequences")?;
    let db_seqs = load_sequences_quarantined(db_path, &alphabet, opts.quarantine, out)?;
    if db_seqs.is_empty() {
        return Err("database holds no sequences".into());
    }
    let params = params_from(opts)?;
    let prepared = PreparedDb::prepare(db_seqs, opts.lanes, &alphabet);
    let engine = SearchEngine::new(params);
    let hetero = HeteroEngine::new(engine);
    let plan = hetero.plan_split(&prepared, q.len(), frac);
    let isa = isa_from(opts)?;
    writeln!(
        out,
        "# Algorithm 2: {} batches to host, {} to accelerator ({:.1}% of cells), isa {isa}",
        plan.cpu.len(),
        plan.accel.len(),
        plan.accel_cell_fraction * 100.0
    )?;
    let cfg = SearchConfig {
        variant: opts.variant,
        threads: opts.threads.max(1),
        policy: sw_sched::Policy::dynamic(),
        block_rows: None,
        adaptive_precision: opts.adaptive,
        isa,
    };
    let res = if dynamic {
        let dyn_cfg = HeteroSearchConfig {
            cpu: cfg,
            accel: SearchConfig {
                threads: accel_threads.max(1),
                ..cfg
            },
            min_chunk,
            recovery: RecoveryConfig {
                accel_timeout_ms: drill.accel_timeout_ms,
                failure_budget: drill.failure_budget,
                ..RecoveryConfig::default()
            },
            trace: TraceConfig {
                level: trace.level,
                ..TraceConfig::default()
            },
        };
        let mut injector = match &drill.inject_fault {
            Some(spec) => {
                writeln!(
                    out,
                    "# fault drill: injecting {:?} at accel chunk {} (hits stay exact)",
                    spec.kind, spec.chunk
                )?;
                FaultInjector::new(FaultPlan::single(*spec))
            }
            None => FaultInjector::none(),
        };
        if let Some(n) = drill.kill_after_chunks {
            writeln!(
                out,
                "# crash drill: the process will abort after {n} committed chunk(s)"
            )?;
            injector = injector.with_kill_after_chunks(n);
        }
        let outcome = if durable.enabled() {
            // Durable run: graceful drain on SIGINT/SIGTERM, periodic
            // checkpoints, optional resume.
            let (ckpt_flag, ckpt_where) = durable.location();
            crate::signals::install_drain_handlers();
            let dopts = DurableOptions {
                checkpoint_path: durable.checkpoint.as_deref().map(std::path::Path::new),
                checkpoint_dir: durable.checkpoint_dir.as_deref().map(std::path::Path::new),
                interval_chunks: durable.interval_chunks,
                drain: Some(&crate::signals::DRAIN),
                resume: durable.resume,
            };
            let d = hetero
                .search_dynamic_resumable(
                    &q.residues,
                    &prepared,
                    &plan,
                    &dyn_cfg,
                    &injector,
                    &dopts,
                )
                .map_err(|e| format!("durable dynamic search failed: {e}"))?;
            if d.resumes > 0 {
                writeln!(
                    out,
                    "# resume: loaded {} of {} batches from {ckpt_where} (resume #{})",
                    d.resumed_tasks, d.n_batches, d.resumes
                )?;
            }
            if d.checkpoint_write_failures > 0 {
                writeln!(
                    out,
                    "# WARNING: {} periodic checkpoint write(s) failed; the search \
                     continued but a crash in that window would lose that progress",
                    d.checkpoint_write_failures
                )?;
            }
            match d.outcome {
                Some(outcome) => outcome,
                None => {
                    // Drained on a signal: the final checkpoint has every
                    // committed chunk. Tell the user how to pick it up.
                    writeln!(
                        out,
                        "# drained: {} of {} batches committed ({} checkpoint write(s) \
                         this segment); state saved to {ckpt_where}",
                        d.tasks_done, d.n_batches, d.checkpoints_written
                    )?;
                    writeln!(
                        out,
                        "# resume with: swsearch hetero --query {query_path} --db {db_path} \
                         --dynamic {ckpt_flag} {ckpt_where} --resume"
                    )?;
                    return Ok(());
                }
            }
        } else {
            hetero
                .search_dynamic_supervised(&q.residues, &prepared, &plan, &dyn_cfg, &injector)
                .map_err(|e| format!("dynamic search failed beyond recovery: {e}"))?
        };
        report_dynamic_outcome(
            &outcome,
            prepared.batches.len(),
            plan.accel_cell_fraction,
            &trace,
            dyn_cfg.trace.effective_gcups_window_us(),
            isa,
            out,
        )?;
        outcome.results
    } else {
        hetero.search(&q.residues, &prepared, &plan, &cfg, &cfg)
    };
    writeln!(
        out,
        "merged {} hits; top {}:",
        res.hits.len(),
        opts.top.min(res.hits.len())
    )?;
    for (rank, hit) in res.top(opts.top).iter().enumerate() {
        writeln!(
            out,
            "{:>6}  {:>8}  {}",
            rank + 1,
            hit.score,
            prepared.sorted.db().header(hit.id)
        )?;
    }
    // Simulated wall-clock of the same split on the paper's testbed.
    let lens: Vec<u32> = (0..prepared.n_seqs())
        .map(|r| prepared.sorted.len_at(r) as u32)
        .collect();
    let xeon = sw_core::SimConfig::streamed(32, 8);
    let phi = sw_core::SimConfig::streamed(240, 8);
    let sim = sw_core::simulate_hetero(
        (&CostModel::xeon(), &xeon),
        (&CostModel::phi(), &phi),
        &lens,
        q.len(),
        frac,
    );
    writeln!(
        out,
        "simulated on the paper's testbed: {:.1} GCUPS at this split",
        sim.gcups
    )?;
    Ok(())
}

fn cmd_trace_check<W: Write>(
    trace: Option<&str>,
    metrics: Option<&str>,
    out: &mut W,
) -> Result<(), CmdError> {
    if let Some(path) = trace {
        let text = std::fs::read_to_string(path)?;
        let report =
            sw_trace::validate::validate_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
        writeln!(
            out,
            "{path}: OK ({} events, {} tracks, {} balanced spans)",
            report.events, report.tracks, report.spans
        )?;
    }
    if let Some(path) = metrics {
        let text = std::fs::read_to_string(path)?;
        let report = sw_trace::validate::validate_prometheus_strict(&text)
            .map_err(|e| format!("{path}: {e}"))?;
        writeln!(
            out,
            "{path}: OK ({} families, {} samples)",
            report.families, report.samples
        )?;
    }
    Ok(())
}

fn cmd_bench<W: Write>(
    seqs: u32,
    query_len: u32,
    threads: usize,
    lanes: usize,
    out: &mut W,
) -> Result<(), CmdError> {
    use sw_kernels::{KernelVariant, ProfileMode, Vectorization};
    let alphabet = Alphabet::protein();
    let spec = DbSpec {
        n_seqs: seqs,
        mean_len: 355.4,
        max_len: 5_000,
        seed: 42,
    };
    let prepared = PreparedDb::prepare(generate_database(&spec), lanes, &alphabet);
    let query = sw_seq::gen::generate_query(query_len, 7);
    let engine = SearchEngine::paper_default();
    writeln!(
        out,
        "# host benchmark: {} seqs ({} residues), query {}, {} threads, {} lanes",
        prepared.stats.n_seqs, prepared.stats.total_residues, query_len, threads, lanes
    )?;
    for (label, vec, profile) in [
        ("no-vec-SP", Vectorization::NoVec, ProfileMode::Sequence),
        ("simd-SP", Vectorization::Guided, ProfileMode::Sequence),
        ("intrinsic-QP", Vectorization::Intrinsic, ProfileMode::Query),
        (
            "intrinsic-SP",
            Vectorization::Intrinsic,
            ProfileMode::Sequence,
        ),
    ] {
        let cfg = SearchConfig {
            variant: sw_kernels::KernelVariant {
                vec,
                profile,
                blocking: true,
            },
            threads: threads.max(1),
            policy: sw_sched::Policy::dynamic(),
            block_rows: None,
            adaptive_precision: false,
            isa: startup_kernel_isa(),
        };
        let res = engine.search(&query.residues, &prepared, &cfg);
        writeln!(out, "{label:<14} {}", res.gcups())?;
        let _ = KernelVariant::best();
    }
    Ok(())
}

/// Daemon knobs carried from the `serve` arg parse to `cmd_serve`.
struct ServeTuning {
    max_concurrent: usize,
    tenant_quota: usize,
    batch_window_ms: u64,
    accel_threads: usize,
    checkpoint_dir: Option<String>,
    trace_dir: Option<String>,
    registry_out: Option<String>,
    log_level: sw_serve::LogLevel,
    log_file: Option<String>,
    slow_query_ms: Option<u64>,
    metrics_file: Option<String>,
    metrics_interval_ms: u64,
    request_timeout_ms: u64,
    shard_worker: bool,
}

fn cmd_serve<W: Write>(
    db_path: &str,
    socket: &str,
    tuning: ServeTuning,
    opts: &SearchOpts,
    out: &mut W,
) -> Result<(), CmdError> {
    use sw_core::{HeteroEngine, HeteroSearchConfig, RecoveryConfig, TraceConfig};
    let alphabet = alphabet_from(opts);
    // Load once, stay resident. Snapshots get an explicit content
    // digest in the banner — the integrity anchor every job's
    // checkpoint fingerprint chains back to.
    let (db_seqs, digest, shard_role) = if tuning.shard_worker {
        // Shard worker: the db is one SWSHRD1 shard. The digest is the
        // shard's own snapshot digest (checkpoint fingerprints stay
        // per-shard), the role carries the global offset so every hit
        // id the daemon reports is already global.
        let mut bytes = Vec::new();
        File::open(db_path)?.read_to_end(&mut bytes)?;
        let (meta, db) = sw_swdb::shard::read_shard(&bytes)?;
        let digest = sw_swdb::snapshot::content_digest(&db);
        let seqs = db
            .iter()
            .map(|(id, v)| EncodedSeq {
                header: db.header(id).into(),
                residues: v.residues.to_vec(),
            })
            .collect();
        let role = sw_serve::ShardRole {
            index: meta.index,
            count: meta.count,
            base: meta.base,
        };
        (seqs, Some(digest), Some(role))
    } else if db_path.ends_with(".swdb") {
        let mut bytes = Vec::new();
        File::open(db_path)?.read_to_end(&mut bytes)?;
        let db = sw_swdb::snapshot::read(&bytes)?;
        let digest = sw_swdb::snapshot::content_digest(&db);
        let seqs = db
            .iter()
            .map(|(id, v)| EncodedSeq {
                header: db.header(id).into(),
                residues: v.residues.to_vec(),
            })
            .collect();
        (seqs, Some(digest), None)
    } else {
        (
            load_sequences_quarantined(db_path, &alphabet, opts.quarantine, out)?,
            None,
            None,
        )
    };
    if db_seqs.is_empty() {
        return Err("database holds no sequences".into());
    }
    let params = params_from(opts)?;
    let prepared = PreparedDb::prepare(db_seqs, opts.lanes, &alphabet);
    let isa = isa_from(opts)?;
    let cfg = SearchConfig {
        variant: opts.variant,
        threads: opts.threads.max(1),
        policy: sw_sched::Policy::dynamic(),
        block_rows: None,
        adaptive_precision: opts.adaptive,
        isa,
    };
    let base = HeteroSearchConfig {
        cpu: cfg,
        accel: SearchConfig {
            threads: tuning.accel_threads.max(1),
            ..cfg
        },
        min_chunk: 1,
        recovery: RecoveryConfig::default(),
        trace: TraceConfig::default(),
    };
    let engine = HeteroEngine::new(SearchEngine::new(params));
    let listen = sw_serve::Endpoint::parse(socket).map_err(|e| format!("--listen: {e}"))?;
    let mut config = sw_serve::ServeConfig::at(listen);
    config.max_concurrent = tuning.max_concurrent;
    config.tenant_quota = tuning.tenant_quota;
    config.batch_window_ms = tuning.batch_window_ms;
    config.checkpoint_dir = tuning.checkpoint_dir.map(Into::into);
    config.trace_dir = tuning.trace_dir.map(Into::into);
    config.registry_out = tuning.registry_out.map(Into::into);
    config.default_top = opts.top;
    config.log_level = tuning.log_level;
    config.log_file = tuning.log_file.map(Into::into);
    config.slow_query_ms = tuning.slow_query_ms;
    config.metrics_file = tuning.metrics_file.map(Into::into);
    config.metrics_interval_ms = tuning.metrics_interval_ms;
    config.snapshot_digest = digest;
    config.request_timeout_ms = tuning.request_timeout_ms;
    config.shard = shard_role;
    crate::signals::install_drain_handlers();
    writeln!(
        out,
        "# sw-serve: {} sequences ({} residues) resident{}{}, isa {isa}",
        prepared.stats.n_seqs,
        prepared.stats.total_residues,
        match digest {
            Some(d) => format!(", snapshot digest {d:016x}"),
            None => String::new(),
        },
        match shard_role {
            Some(r) => format!(", shard {}/{} (base {})", r.index, r.count, r.base),
            None => String::new(),
        }
    )?;
    writeln!(
        out,
        "# listening on {socket} (batches of {}, tenant quota {}, window {} ms)",
        config.max_concurrent, config.tenant_quota, config.batch_window_ms
    )?;
    let stats = sw_serve::serve(
        &engine,
        &prepared,
        &alphabet,
        &base,
        &config,
        &crate::signals::SERVE_DRAIN,
    )
    .map_err(|e| format!("serve: {e}"))?;
    writeln!(
        out,
        "# serve: drained; {} jobs ({} done, {} failed, {} cancelled, {} rejected)",
        stats.total, stats.done, stats.failed, stats.cancelled, stats.rejected
    )?;
    Ok(())
}

/// One client operation carried from the `submit` arg parse to
/// `cmd_submit` (exactly one of
/// query/status/cancel/stats/shutdown/metrics/health).
struct SubmitOp {
    query: Option<String>,
    tenant: String,
    status: Option<u64>,
    cancel: Option<u64>,
    stats: bool,
    shutdown: bool,
    metrics: bool,
    health: bool,
    drill: Option<String>,
    top: usize,
    json: bool,
    connect_retries: u32,
    connect_backoff_ms: u64,
}

fn cmd_submit<W: Write>(socket: &str, op: SubmitOp, out: &mut W) -> Result<(), CmdError> {
    use sw_serve::{client, Endpoint, RetryPolicy};
    let endpoint = Endpoint::parse(socket).map_err(|e| format!("--socket: {e}"))?;
    let policy = RetryPolicy {
        retries: op.connect_retries,
        backoff_ms: op.connect_backoff_ms.max(1),
        seed: std::process::id() as u64,
    };
    let request = |line: &str| -> Result<Vec<String>, CmdError> {
        let (lines, _) = client::request_endpoint_retry(&endpoint, line, &policy)?;
        Ok(lines)
    };
    if op.metrics {
        // Raw Prometheus text: many lines, pass through untouched.
        for line in request(&client::metrics_request())? {
            writeln!(out, "{line}")?;
        }
        return Ok(());
    }
    if op.health {
        // One JSON line; exit status doubles as the readiness probe.
        let lines = request(&client::health_request())?;
        let line = lines.first().ok_or("empty response")?;
        writeln!(out, "{line}")?;
        return if sw_serve::json::field_bool(line, "ready") == Some(true) {
            Ok(())
        } else {
            Err("daemon not ready".into())
        };
    }
    if let Some(query_path) = &op.query {
        let fasta = std::fs::read_to_string(query_path)?;
        let req = client::submit_request(&op.tenant, &fasta, op.top, op.drill.as_deref());
        let lines = request(&req)?;
        let outcome = client::parse_submit_response(&lines).map_err(|e| format!("submit: {e}"))?;
        if op.json {
            // Raw wire lines, one JSON object per line; the outcome is
            // still parsed above so rejects and failures keep their
            // non-zero exit status.
            for line in &lines {
                writeln!(out, "{line}")?;
            }
            return match outcome.state.as_str() {
                "done" | "cancelled" => Ok(()),
                other => Err(format!(
                    "job {} {other}: {}",
                    outcome.job,
                    outcome.error.as_deref().unwrap_or("no detail")
                )
                .into()),
            };
        }
        match outcome.state.as_str() {
            "done" => {
                writeln!(
                    out,
                    "job {} done: {} hits{}{}",
                    outcome.job,
                    outcome.hits.len(),
                    if outcome.resumes > 0 {
                        format!(
                            " (resumed from checkpoint, segment #{})",
                            outcome.resumes + 1
                        )
                    } else {
                        String::new()
                    },
                    if outcome.batch > 1 {
                        format!(" (region shared by {} queries)", outcome.batch)
                    } else {
                        String::new()
                    }
                )?;
                for h in &outcome.hits {
                    writeln!(out, "{:>6}  {:>8}  {}", h.rank, h.score, h.header)?;
                }
                Ok(())
            }
            "cancelled" => {
                writeln!(
                    out,
                    "job {} cancelled; progress is checkpointed — resubmit the same \
                     query to resume",
                    outcome.job
                )?;
                Ok(())
            }
            other => Err(format!(
                "job {} {other}: {}",
                outcome.job,
                outcome.error.as_deref().unwrap_or("no detail")
            )
            .into()),
        }
    } else {
        let req = if let Some(id) = op.status {
            client::status_request(id)
        } else if let Some(id) = op.cancel {
            client::cancel_request(id)
        } else if op.stats {
            client::stats_request()
        } else {
            // The parser guarantees exactly one operation flag.
            debug_assert!(op.shutdown);
            client::shutdown_request()
        };
        let lines = request(&req)?;
        let line = lines.first().ok_or("empty response")?;
        if sw_serve::json::field_bool(line, "ok") == Some(false) {
            return Err(sw_serve::json::field_str(line, "error")
                .unwrap_or_else(|| "request failed".to_string())
                .into());
        }
        // status/stats/shutdown answers are already one JSON line, so
        // --json and the default rendering coincide.
        writeln!(out, "{line}")?;
        Ok(())
    }
}

fn cmd_align<W: Write>(
    query_path: &str,
    subject_path: &str,
    opts: &SearchOpts,
    out: &mut W,
) -> Result<(), CmdError> {
    let alphabet = Alphabet::protein();
    let params = params_from(opts)?;
    let queries = load_sequences(query_path, &alphabet)?;
    let subjects = load_sequences(subject_path, &alphabet)?;
    let q = queries.first().ok_or("query file holds no sequences")?;
    let s = subjects.first().ok_or("subject file holds no sequences")?;
    match sw_align(&q.residues, &s.residues, &params) {
        Some(a) => {
            writeln!(
                out,
                "score {}  query {}..{}  subject {}..{}",
                a.score, a.query_range.0, a.query_range.1, a.subject_range.0, a.subject_range.1
            )?;
            writeln!(out, "{}", a.render(&q.residues, &s.residues, &alphabet))?;
        }
        None => writeln!(out, "no local alignment (score 0)")?,
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn run_str(cmdline: &str) -> (i32, String) {
        let argv: Vec<String> = cmdline.split_whitespace().map(String::from).collect();
        let mut out = Vec::new();
        let code = crate::run(&argv, &mut out);
        (code, String::from_utf8(out).unwrap())
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("swsearch-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_prints_usage() {
        let (code, text) = run_str("help");
        assert_eq!(code, 0);
        assert!(text.contains("USAGE"));
    }

    #[test]
    fn unknown_command_exits_2() {
        let (code, text) = run_str("bogus");
        assert_eq!(code, 2);
        assert!(text.contains("unknown command"));
    }

    #[test]
    fn gendb_stats_roundtrip_fasta() {
        let path = tmp("gen1.fasta");
        let (code, _) = run_str(&format!(
            "gendb --seqs 50 --out {path} --seed 3 --mean-len 80"
        ));
        assert_eq!(code, 0);
        let (code, text) = run_str(&format!("stats --db {path}"));
        assert_eq!(code, 0);
        assert!(text.contains("sequences:      50"), "{text}");
    }

    #[test]
    fn makedb_snapshot_roundtrip() {
        let fasta = tmp("gen2.fasta");
        let snap = tmp("gen2.swdb");
        run_str(&format!(
            "gendb --seqs 30 --out {fasta} --seed 5 --mean-len 60"
        ));
        let (code, text) = run_str(&format!("makedb --in {fasta} --out {snap}"));
        assert_eq!(code, 0, "{text}");
        let (code, text) = run_str(&format!("stats --db {snap}"));
        assert_eq!(code, 0);
        assert!(text.contains("sequences:      30"), "{text}");
    }

    #[test]
    fn end_to_end_search_finds_planted_hit() {
        // Build a small db and use one of its own sequences as the query:
        // the top hit must be that sequence with its self-score.
        let db_path = tmp("gen3.fasta");
        run_str(&format!(
            "gendb --seqs 40 --out {db_path} --seed 9 --mean-len 100"
        ));
        // Extract sequence 0 as the query.
        let alphabet = Alphabet::protein();
        let seqs = load_sequences(&db_path, &alphabet).unwrap();
        let q_path = tmp("query3.fasta");
        let mut w = FastaWriter::new(std::fs::File::create(&q_path).unwrap());
        w.write(&seqs[7], &alphabet).unwrap();
        w.into_inner().unwrap();

        let (code, text) = run_str(&format!(
            "search --query {q_path} --db {db_path} --lanes 8 --top 3"
        ));
        assert_eq!(code, 0, "{text}");
        let first_hit_line = text
            .lines()
            .find(|l| l.trim_start().starts_with("1 "))
            .unwrap_or_else(|| panic!("no hit line in output:\n{text}"));
        assert!(
            first_hit_line.contains(seqs[7].header.as_ref()),
            "top hit must be the query itself:\n{text}"
        );
    }

    #[test]
    fn search_variants_give_same_top_hit() {
        let db_path = tmp("gen4.fasta");
        run_str(&format!(
            "gendb --seqs 25 --out {db_path} --seed 11 --mean-len 90"
        ));
        let alphabet = Alphabet::protein();
        let seqs = load_sequences(&db_path, &alphabet).unwrap();
        let q_path = tmp("query4.fasta");
        let mut w = FastaWriter::new(std::fs::File::create(&q_path).unwrap());
        w.write(&seqs[3], &alphabet).unwrap();
        w.into_inner().unwrap();
        let mut first: Option<String> = None;
        for v in ["no-vec-qp", "simd-sp", "intrinsic-qp", "intrinsic-sp"] {
            let (code, text) = run_str(&format!(
                "search --query {q_path} --db {db_path} --lanes 4 --variant {v} --top 1"
            ));
            assert_eq!(code, 0, "{v}: {text}");
            let hit = text
                .lines()
                .find(|l| l.trim_start().starts_with("1 "))
                .unwrap()
                .to_string();
            match &first {
                None => first = Some(hit),
                Some(f) => assert_eq!(&hit, f, "variant {v} disagrees"),
            }
        }
    }

    #[test]
    fn align_command_renders() {
        let alphabet = Alphabet::protein();
        let qp = tmp("q5.fasta");
        let sp = tmp("s5.fasta");
        std::fs::write(&qp, ">q\nMKVLITRAW\n").unwrap();
        std::fs::write(&sp, ">s\nPPPMKVLITRAWPPP\n").unwrap();
        let _ = alphabet;
        let (code, text) = run_str(&format!("align --query {qp} --subject {sp}"));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("MKVLITRAW"));
        assert!(text.contains("|||||||||"));
    }

    #[test]
    fn tabular_output_format() {
        let db_path = tmp("gen6.fasta");
        run_str(&format!(
            "gendb --seqs 20 --out {db_path} --seed 2 --mean-len 80"
        ));
        let alphabet = Alphabet::protein();
        let seqs = load_sequences(&db_path, &alphabet).unwrap();
        let q_path = tmp("query6.fasta");
        let mut w = FastaWriter::new(std::fs::File::create(&q_path).unwrap());
        w.write(&seqs[0], &alphabet).unwrap();
        w.into_inner().unwrap();
        let (code, text) = run_str(&format!(
            "search --query {q_path} --db {db_path} --lanes 4 --top 3 --tabular"
        ));
        assert_eq!(code, 0, "{text}");
        let tab_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.matches('\t').count() == 11)
            .collect();
        assert_eq!(tab_lines.len(), 3, "three 12-column rows:\n{text}");
        assert!(tab_lines[0].contains("100.0"), "self hit is 100% identical");
    }

    #[test]
    fn dna_search_both_strands() {
        let db_path = tmp("dna1.fasta");
        std::fs::write(
            &db_path,
            ">plus exact plus-strand target\nTTTTACGTACGTACCGGTTTTT\n>minus reverse-complement target\nTTTTACCGGTACGTACGTTTTT\n>junk\nGGGGGGGGCCCCCCCC\n",
        )
        .unwrap();
        let q_path = tmp("dnaq1.fasta");
        std::fs::write(&q_path, ">q\nACGTACGTACCGGT\n").unwrap();
        let (code, text) = run_str(&format!(
            "search --query {q_path} --db {db_path} --dna --both-strands --lanes 4 --top 2"
        ));
        assert_eq!(code, 0, "{text}");
        // Plus-strand block finds 'plus'; minus-strand block finds 'minus'.
        assert!(text.contains("plus exact"), "{text}");
        assert!(text.contains("(minus strand)"), "{text}");
        assert!(text.contains("minus reverse-complement"), "{text}");
    }

    #[test]
    fn both_strands_requires_dna() {
        let db_path = tmp("dna2.fasta");
        std::fs::write(&db_path, ">a\nMKV\n").unwrap();
        let q_path = tmp("dnaq2.fasta");
        std::fs::write(&q_path, ">q\nMKV\n").unwrap();
        let (code, text) = run_str(&format!(
            "search --query {q_path} --db {db_path} --both-strands"
        ));
        assert_eq!(code, 1);
        assert!(text.contains("--both-strands requires --dna"), "{text}");
    }

    #[test]
    fn selftest_command_passes() {
        let (code, text) = run_str("selftest --lanes 4");
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("PASS"));
    }

    #[test]
    fn hetero_command_matches_search() {
        let db_path = tmp("het1.fasta");
        run_str(&format!(
            "gendb --seqs 30 --out {db_path} --seed 4 --mean-len 90"
        ));
        let alphabet = Alphabet::protein();
        let seqs = load_sequences(&db_path, &alphabet).unwrap();
        let q_path = tmp("hetq1.fasta");
        let mut w = FastaWriter::new(std::fs::File::create(&q_path).unwrap());
        w.write(&seqs[5], &alphabet).unwrap();
        w.into_inner().unwrap();
        let (code, text) = run_str(&format!(
            "hetero --query {q_path} --db {db_path} --frac 0.5 --lanes 4 --top 1"
        ));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("Algorithm 2"), "{text}");
        assert!(text.contains("GCUPS at this split"), "{text}");
        // Top hit is the planted query itself.
        let hit_line = text
            .lines()
            .find(|l| l.trim_start().starts_with("1 "))
            .unwrap();
        assert!(hit_line.contains(seqs[5].header.as_ref()), "{text}");
    }

    #[test]
    fn hetero_dynamic_reports_metrics_and_same_hits() {
        let db_path = tmp("het2.fasta");
        run_str(&format!(
            "gendb --seqs 30 --out {db_path} --seed 4 --mean-len 90"
        ));
        let alphabet = Alphabet::protein();
        let seqs = load_sequences(&db_path, &alphabet).unwrap();
        let q_path = tmp("hetq2.fasta");
        let mut w = FastaWriter::new(std::fs::File::create(&q_path).unwrap());
        w.write(&seqs[5], &alphabet).unwrap();
        w.into_inner().unwrap();
        let common = format!("--query {q_path} --db {db_path} --frac 0.5 --lanes 4 --top 3");
        let (code, stat) = run_str(&format!("hetero {common}"));
        assert_eq!(code, 0, "{stat}");
        let (code, dynamic) = run_str(&format!(
            "hetero {common} --dynamic --threads 2 --accel-threads 2"
        ));
        assert_eq!(code, 0, "{dynamic}");
        // Per-device metrics lines reach the user.
        assert!(dynamic.contains("dynamic dual-pool"), "{dynamic}");
        assert!(
            dynamic.contains("cpu  :") && dynamic.contains("accel:"),
            "{dynamic}"
        );
        assert!(dynamic.contains("GCUPS"), "{dynamic}");
        // The hit list is identical to the static split's.
        let hits = |text: &str| -> Vec<String> {
            text.lines()
                .skip_while(|l| !l.starts_with("merged"))
                .skip(1)
                .take(3)
                .map(str::to_string)
                .collect()
        };
        assert_eq!(
            hits(&stat),
            hits(&dynamic),
            "\nstatic:\n{stat}\ndynamic:\n{dynamic}"
        );
    }

    #[test]
    fn hetero_fault_drill_recovers_with_identical_hits() {
        // Enough real work per batch (~50 batches at lanes 4) that the
        // accel pool always reaches its first chunk before the CPU pool
        // drains the queue — the kill-pool fault then reliably fires.
        let db_path = tmp("het3.fasta");
        run_str(&format!(
            "gendb --seqs 200 --out {db_path} --seed 4 --mean-len 300"
        ));
        let alphabet = Alphabet::protein();
        let seqs = load_sequences(&db_path, &alphabet).unwrap();
        let q_path = tmp("hetq3.fasta");
        let mut w = FastaWriter::new(std::fs::File::create(&q_path).unwrap());
        w.write(&seqs[5], &alphabet).unwrap();
        w.into_inner().unwrap();
        let common = format!(
            "--query {q_path} --db {db_path} --frac 0.5 --lanes 4 --top 3 \
             --dynamic --threads 2 --accel-threads 1"
        );
        let (code, clean) = run_str(&format!("hetero {common}"));
        assert_eq!(code, 0, "{clean}");
        let (code, drilled) = run_str(&format!("hetero {common} --inject-fault kill-pool@0"));
        assert_eq!(code, 0, "{drilled}");
        assert!(drilled.contains("fault drill"), "{drilled}");
        assert!(drilled.contains("DEGRADED"), "{drilled}");
        assert!(drilled.contains("[pool retired]"), "{drilled}");
        // Recovery costs time, never correctness: same hit list either way.
        let hits = |text: &str| -> Vec<String> {
            text.lines()
                .skip_while(|l| !l.starts_with("merged"))
                .skip(1)
                .take(3)
                .map(str::to_string)
                .collect()
        };
        assert_eq!(
            hits(&clean),
            hits(&drilled),
            "\nclean:\n{clean}\ndrilled:\n{drilled}"
        );
    }

    #[test]
    fn hetero_trace_outputs_validate_and_match_printed_counters() {
        // One fault-injected dynamic run exporting both artifacts: the
        // JSONL log must validate and show the recovery sequence in
        // order, and the Prometheus counters must equal the numbers the
        // CLI itself printed (they share `device_counters()` as source).
        let db_path = tmp("het5.fasta");
        run_str(&format!(
            "gendb --seqs 200 --out {db_path} --seed 4 --mean-len 300"
        ));
        let alphabet = Alphabet::protein();
        let seqs = load_sequences(&db_path, &alphabet).unwrap();
        let q_path = tmp("hetq5.fasta");
        let mut w = FastaWriter::new(std::fs::File::create(&q_path).unwrap());
        w.write(&seqs[5], &alphabet).unwrap();
        w.into_inner().unwrap();
        let trace_jsonl = tmp("het5.trace.jsonl");
        let prom_path = tmp("het5.metrics.prom");
        let common = format!(
            "--query {q_path} --db {db_path} --frac 0.5 --lanes 4 --top 1 \
             --dynamic --threads 2 --accel-threads 1"
        );
        let (code, text) = run_str(&format!(
            "hetero {common} --inject-fault kill@0 \
             --trace-out {trace_jsonl} --metrics-out {prom_path}"
        ));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("# trace:"), "{text}");
        assert!(text.contains("# metrics:"), "{text}");
        assert!(
            text.contains("recovery:"),
            "kill@0 must cost a retry: {text}"
        );

        let jtext = std::fs::read_to_string(&trace_jsonl).unwrap();
        let report = sw_trace::validate::validate_jsonl(&jtext).unwrap();
        assert!(report.events > 0 && report.spans > 0, "{report:?}");
        let lines: Vec<&str> = jtext.lines().collect();
        let lost = lines
            .iter()
            .position(|l| l.contains("\"lease_lost\""))
            .unwrap_or_else(|| panic!("no lease_lost event:\n{jtext}"));
        let requeued = lines
            .iter()
            .position(|l| l.contains("\"lease_requeued\""))
            .unwrap_or_else(|| panic!("no lease_requeued event:\n{jtext}"));
        let reexec = lines
            .iter()
            .position(|l| l.contains("\"chunk_claim\"") && l.contains("\"attempts\":1"))
            .unwrap_or_else(|| panic!("no re-execution claim:\n{jtext}"));
        assert!(
            lost <= requeued && requeued < reexec,
            "recovery events out of order: lost@{lost} requeued@{requeued} reexec@{reexec}"
        );

        let ptext = std::fs::read_to_string(&prom_path).unwrap();
        sw_trace::validate::validate_prometheus(&ptext).unwrap();
        // Sum a counter over both device labels.
        let prom_total = |name: &str| -> u64 {
            let prefix = format!("{name}{{");
            ptext
                .lines()
                .filter(|l| l.starts_with(&prefix))
                .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
                .sum()
        };
        // Totals from the printed "#   <pool>: recovery: ..." lines.
        let mut printed = [0u64; 4]; // retries, requeues, lost leases, failures
        for l in text.lines().filter(|l| l.contains("recovery:")) {
            let nums: Vec<u64> = l
                .split(|c: char| !c.is_ascii_digit())
                .filter(|s| !s.is_empty())
                .map(|s| s.parse().unwrap())
                .collect();
            assert_eq!(nums.len(), 4, "unexpected recovery line: {l}");
            for (slot, n) in printed.iter_mut().zip(nums) {
                *slot += n;
            }
        }
        assert_eq!(prom_total("sw_retries_total"), printed[0], "{ptext}");
        assert_eq!(prom_total("sw_requeues_total"), printed[1], "{ptext}");
        assert_eq!(prom_total("sw_lost_leases_total"), printed[2], "{ptext}");
        assert_eq!(prom_total("sw_failures_total"), printed[3], "{ptext}");

        // trace-check accepts both artifacts.
        let (code, checked) = run_str(&format!(
            "trace-check --trace {trace_jsonl} --metrics {prom_path}"
        ));
        assert_eq!(code, 0, "{checked}");
        assert_eq!(checked.matches(": OK (").count(), 2, "{checked}");

        // A non-.jsonl path gets Chrome trace JSON with per-worker tracks.
        let trace_json = tmp("het5.trace.json");
        let (code, text) = run_str(&format!("hetero {common} --trace-out {trace_json}"));
        assert_eq!(code, 0, "{text}");
        let ctext = std::fs::read_to_string(&trace_json).unwrap();
        assert!(ctext.starts_with('{'), "{ctext}");
        assert!(ctext.contains("\"traceEvents\""), "{ctext}");
    }

    #[test]
    fn hetero_trace_requires_dynamic() {
        let (code, text) = run_str("hetero --query q --db d --trace-out t.json");
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("require --dynamic"), "{text}");
        let (code, text) = run_str("hetero --query q --db d --metrics-out m.prom");
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("require --dynamic"), "{text}");
    }

    #[test]
    fn trace_check_rejects_garbage() {
        let bad = tmp("garbage.jsonl");
        std::fs::write(&bad, "this is not a trace\n").unwrap();
        let (code, text) = run_str(&format!("trace-check --trace {bad}"));
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("error"), "{text}");
    }

    #[test]
    fn hetero_fault_drill_requires_dynamic() {
        let (code, text) = run_str("hetero --query q --db d --inject-fault kill@0");
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("requires --dynamic"), "{text}");
    }

    #[test]
    fn quarantine_skips_bad_records_and_reports() {
        let db_path = tmp("quar1.fasta");
        // Record 2 has an illegal residue, record 3 is empty; 1 and 4 are
        // clean. Default mode aborts; --quarantine keeps the clean ones.
        std::fs::write(
            &db_path,
            ">ok1\nMKVLITRAW\n>bad residue\nMKV1LIT\n>empty\n>ok2\nWARTILVKM\n",
        )
        .unwrap();
        let q_path = tmp("quarq1.fasta");
        std::fs::write(&q_path, ">q\nMKVLITRAW\n").unwrap();

        let (code, text) = run_str(&format!("search --query {q_path} --db {db_path}"));
        assert_eq!(code, 1, "default mode must abort: {text}");
        let (code, text) = run_str(&format!(
            "search --query {q_path} --db {db_path} --quarantine --lanes 4 --top 2"
        ));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("# quarantine"), "{text}");
        assert!(text.contains("2 records kept"), "{text}");
        assert!(text.contains("ok1"), "clean records still searched: {text}");

        // makedb honors the same flag.
        let snap = tmp("quar1.swdb");
        let (code, text) = run_str(&format!("makedb --in {db_path} --out {snap}"));
        assert_eq!(code, 1, "{text}");
        let (code, text) = run_str(&format!("makedb --in {db_path} --out {snap} --quarantine"));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("wrote 2 sequences"), "{text}");
    }

    #[test]
    fn hetero_checkpoint_requires_dynamic() {
        let (code, text) = run_str("hetero --query q --db d --checkpoint c.ckpt");
        assert_eq!(code, 1, "{text}");
        assert!(
            text.contains("--checkpoint/--checkpoint-dir require --dynamic"),
            "{text}"
        );
        let (code, text) = run_str("hetero --query q --db d --dynamic --kill-after-chunks 2");
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("need --checkpoint"), "{text}");
    }

    #[test]
    fn hetero_durable_clean_run_completes_and_cleans_up() {
        let db_path = tmp("dur1.fasta");
        run_str(&format!(
            "gendb --seqs 30 --out {db_path} --seed 4 --mean-len 90"
        ));
        let alphabet = Alphabet::protein();
        let seqs = load_sequences(&db_path, &alphabet).unwrap();
        let q_path = tmp("durq1.fasta");
        let mut w = FastaWriter::new(std::fs::File::create(&q_path).unwrap());
        w.write(&seqs[5], &alphabet).unwrap();
        w.into_inner().unwrap();
        let ckpt = tmp("dur1.ckpt");
        let common = format!("--query {q_path} --db {db_path} --frac 0.5 --lanes 4 --top 3");
        let (code, plain) = run_str(&format!(
            "hetero {common} --dynamic --threads 2 --accel-threads 2"
        ));
        assert_eq!(code, 0, "{plain}");
        let (code, durable) = run_str(&format!(
            "hetero {common} --dynamic --threads 2 --accel-threads 2 \
             --checkpoint {ckpt} --checkpoint-interval-chunks 1"
        ));
        assert_eq!(code, 0, "{durable}");
        assert!(
            !std::path::Path::new(&ckpt).exists(),
            "completed run deletes its checkpoint"
        );
        // Same hit list with and without checkpointing.
        let hits = |text: &str| -> Vec<String> {
            text.lines()
                .skip_while(|l| !l.starts_with("merged"))
                .skip(1)
                .take(3)
                .map(str::to_string)
                .collect()
        };
        assert_eq!(
            hits(&plain),
            hits(&durable),
            "\nplain:\n{plain}\ndurable:\n{durable}"
        );
    }

    #[test]
    fn bench_command_runs() {
        let (code, text) = run_str("bench --seqs 100 --query-len 80 --lanes 8");
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("intrinsic-SP"), "{text}");
        assert!(text.contains("GCUPS"), "{text}");
    }

    #[test]
    fn simulate_xeon_reports_paper_rate() {
        let (code, text) = run_str("simulate --device xeon --db-scale 0.05 --query-len 2000");
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("GCUPS"), "{text}");
    }

    #[test]
    fn missing_file_is_clean_error() {
        let (code, text) = run_str("stats --db /nonexistent/x.fasta");
        assert_eq!(code, 1);
        assert!(text.contains("error"));
    }

    #[test]
    fn submit_json_mode_streams_wire_lines() {
        // An in-process daemon exercises the client-side --json /
        // --metrics / --health paths end to end: raw line-delimited
        // JSON on submit and stats, a validator-clean scrape, and the
        // health probe's exit status.
        let fasta = tmp("servejson.fasta");
        let snap = tmp("servejson.swdb");
        run_str(&format!(
            "gendb --seqs 30 --out {fasta} --seed 21 --mean-len 80"
        ));
        let (code, text) = run_str(&format!("makedb --in {fasta} --out {snap}"));
        assert_eq!(code, 0, "{text}");
        let alphabet = Alphabet::protein();
        let seqs = load_sequences(&fasta, &alphabet).unwrap();
        let q_path = tmp("servejson-q.fasta");
        let mut w = FastaWriter::new(std::fs::File::create(&q_path).unwrap());
        w.write(&seqs[2], &alphabet).unwrap();
        w.into_inner().unwrap();

        let socket = tmp("servejson.sock");
        let _ = std::fs::remove_file(&socket);
        let serve_line = format!("serve --db {snap} --socket {socket} --log-level off");
        let daemon = std::thread::spawn(move || run_str(&serve_line));
        let mut ready = false;
        for _ in 0..400 {
            if run_str(&format!("submit --socket {socket} --health")).0 == 0 {
                ready = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        assert!(ready, "daemon never became ready");

        // --json on the submit path: every output line is one JSON
        // object, ack first, end marker last.
        let (code, text) = run_str(&format!(
            "submit --socket {socket} --query {q_path} --tenant acme --json"
        ));
        assert_eq!(code, 0, "{text}");
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 3, "ack + state + end at minimum:\n{text}");
        for l in &lines {
            assert!(
                l.starts_with('{') && l.ends_with('}'),
                "not a JSON line: {l}"
            );
        }
        assert_eq!(sw_serve::json::field_bool(lines[0], "ok"), Some(true));
        assert_eq!(
            sw_serve::json::field_str(lines[1], "state").as_deref(),
            Some("done")
        );
        assert_eq!(
            sw_serve::json::field_bool(lines.last().unwrap(), "end"),
            Some(true)
        );

        // --json on stats: one JSON line carrying cumulative counters.
        let (code, text) = run_str(&format!("submit --socket {socket} --stats --json"));
        assert_eq!(code, 0, "{text}");
        let line = text.lines().next().unwrap();
        assert_eq!(
            sw_serve::json::field_u64(line, "done_total"),
            Some(1),
            "{line}"
        );

        // --metrics passes the Prometheus scrape through verbatim.
        let (code, text) = run_str(&format!("submit --socket {socket} --metrics"));
        assert_eq!(code, 0);
        sw_trace::validate::validate_prometheus_strict(&text).unwrap();

        let (code, _) = run_str(&format!("submit --socket {socket} --shutdown"));
        assert_eq!(code, 0);
        let (code, text) = daemon.join().unwrap();
        assert_eq!(code, 0, "{text}");
    }

    #[test]
    fn parse_then_execute_consistency() {
        // `parse` output feeds `execute` directly; spot-check the koppeling.
        let argv: Vec<String> = "gendb --seqs 10 --out /tmp/swsearch-tests/k.fasta"
            .split_whitespace()
            .map(String::from)
            .collect();
        let cmd = parse(&argv).unwrap();
        let mut out = Vec::new();
        execute(cmd, &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("generated 10"));
    }
}
