//! SIGINT/SIGTERM → graceful drain.
//!
//! Durable runs (`hetero --dynamic --checkpoint`) and the `serve` daemon
//! install a handler that flips a process-wide [`DrainSignal`] instead
//! of letting the default disposition kill the process: workers finish
//! their in-flight chunks, a final checkpoint is written, and the CLI
//! prints how to resume. The handler body is a single atomic store —
//! async-signal-safe by construction. `SIGKILL` (which cannot be caught)
//! is covered by the same checkpoint files via the periodic write
//! interval; the crash-resume harness exercises that path with
//! `--kill-after-chunks`.
//!
//! Registration is guarded by a [`std::sync::Once`]: the raw
//! `signal(2)` calls run exactly once per process no matter how many
//! searches start. A daemon that launches a search per request would
//! otherwise re-arm the handler on every job — harmless today, but a
//! landmine the moment anything else (a test harness, an embedding
//! application) installs its own disposition in between. Per-job drains
//! do not go through this module at all: each job gets a
//! [`DrainSignal::scoped`] child of [`DRAIN`], so cancelling one job
//! never signals the process and a process signal still drains every
//! job.
//!
//! This is the one place in the crate allowed to use `unsafe`: the
//! `signal(2)` registration itself.

use sw_sched::DrainSignal;

/// The process-wide drain switch watched by durable searches; parent of
/// every per-job scoped signal handed out by [`job_drain`].
pub static DRAIN: DrainSignal = DrainSignal::new();

/// A fresh per-job drain signal scoped under the process-wide [`DRAIN`]:
/// requesting it drains that one job; a SIGINT/SIGTERM on the process
/// drains it too.
pub fn job_drain() -> DrainSignal {
    DrainSignal::scoped(&DRAIN)
}

/// The `serve` daemon's shutdown signal, scoped under [`DRAIN`]: a
/// `submit --shutdown` requests it without touching process signal
/// state, and a SIGINT/SIGTERM still shuts the daemon down through the
/// parent. Per-job drains inside the daemon are scoped under this in
/// turn, so the chain job → daemon → process drains at every level.
pub static SERVE_DRAIN: DrainSignal = DrainSignal::scoped(&DRAIN);

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: one atomic store, no allocation, no locks.
        super::DRAIN.request();
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // POSIX `signal(2)` from the C runtime std already links.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub fn install() {
        let h = on_signal as extern "C" fn(i32) as usize;
        // SAFETY: `signal` is registering an async-signal-safe handler
        // (a lone atomic store); the handler address stays valid for the
        // life of the process.
        unsafe {
            signal(SIGINT, h);
            signal(SIGTERM, h);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// Non-unix hosts keep the default disposition; `--checkpoint` still
    /// works through periodic writes, only the graceful-drain-on-signal
    /// path is absent.
    pub fn install() {}
}

/// Route SIGINT/SIGTERM to [`DRAIN`] for the rest of the process.
/// Idempotent: the underlying `signal(2)` registration runs exactly
/// once per process, so concurrent searches in a daemon can all call
/// this without re-arming the handler.
pub fn install_drain_handlers() {
    static REGISTER: std::sync::Once = std::sync::Once::new();
    REGISTER.call_once(imp::install);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_is_idempotent_and_drain_starts_unset() {
        install_drain_handlers();
        install_drain_handlers();
        assert!(!DRAIN.is_requested(), "install must not trip the drain");
    }

    #[test]
    fn job_drain_is_scoped_under_the_process_signal() {
        let a = job_drain();
        let b = job_drain();
        a.request();
        assert!(a.is_requested());
        assert!(!b.is_requested(), "cancelling one job leaves the rest");
        assert!(
            !DRAIN.is_requested(),
            "job cancel never signals the process"
        );
    }
}
