//! SIGINT/SIGTERM → graceful drain.
//!
//! Durable runs (`hetero --dynamic --checkpoint`) install a handler that
//! flips a process-wide [`DrainSignal`] instead of letting the default
//! disposition kill the process: workers finish their in-flight chunks,
//! a final checkpoint is written, and the CLI prints how to resume. The
//! handler body is a single atomic store — async-signal-safe by
//! construction. `SIGKILL` (which cannot be caught) is covered by the
//! same checkpoint files via the periodic write interval; the
//! crash-resume harness exercises that path with `--kill-after-chunks`.
//!
//! This is the one place in the crate allowed to use `unsafe`: the
//! `signal(2)` registration itself.

use sw_sched::DrainSignal;

/// The process-wide drain switch watched by durable searches.
pub static DRAIN: DrainSignal = DrainSignal::new();

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: one atomic store, no allocation, no locks.
        super::DRAIN.request();
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // POSIX `signal(2)` from the C runtime std already links.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub fn install() {
        let h = on_signal as extern "C" fn(i32) as usize;
        // SAFETY: `signal` is registering an async-signal-safe handler
        // (a lone atomic store); the handler address stays valid for the
        // life of the process.
        unsafe {
            signal(SIGINT, h);
            signal(SIGTERM, h);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// Non-unix hosts keep the default disposition; `--checkpoint` still
    /// works through periodic writes, only the graceful-drain-on-signal
    /// path is absent.
    pub fn install() {}
}

/// Route SIGINT/SIGTERM to [`DRAIN`] for the rest of the process.
/// Idempotent; called by durable searches before the pools start.
pub fn install_drain_handlers() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_is_idempotent_and_drain_starts_unset() {
        install_drain_handlers();
        install_drain_handlers();
        assert!(!DRAIN.is_requested(), "install must not trip the drain");
    }
}
