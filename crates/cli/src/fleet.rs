//! RAII ownership of spawned shard-worker processes.
//!
//! `search --shards` boots worker daemons it may later need to tear
//! down. The original implementation tore them down inline after the
//! search — which leaked every spawned process on any early-return
//! path (a spawn error halfway through boot, a write error on the
//! banner, a typed-fatal coordinator exit like `WrongShard`). Owning
//! the children in a guard whose `Drop` does the teardown makes every
//! exit path — `?`, panic, success — equivalent.

use std::collections::BTreeSet;
use std::process::Child;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use sw_serve::{coord, Endpoint};

/// How long `Drop` waits for politely-shut-down workers to exit before
/// escalating to SIGKILL.
const DRAIN_WAIT: Duration = Duration::from_secs(5);

/// Every worker process this coordinator spawned, plus the endpoints to
/// ask nicely on before killing. Workers that were already listening
/// when the coordinator started are never adopted and never touched.
#[derive(Default)]
pub struct WorkerFleet {
    inner: Mutex<FleetInner>,
}

#[derive(Default)]
struct FleetInner {
    children: Vec<Child>,
    endpoints: Vec<Endpoint>,
    owned_shards: BTreeSet<u64>,
}

impl WorkerFleet {
    /// An empty fleet.
    pub fn new() -> Self {
        WorkerFleet::default()
    }

    /// Take ownership of a just-spawned worker: `Drop` will shut it
    /// down. Endpoints are deduplicated — a respawn of the same worker
    /// gets one shutdown request, not two.
    pub fn adopt(&self, shard: u64, endpoint: &Endpoint, child: Child) {
        let mut inner = self.inner.lock().unwrap();
        inner.children.push(child);
        if !inner.endpoints.contains(endpoint) {
            inner.endpoints.push(endpoint.clone());
        }
        inner.owned_shards.insert(shard);
    }

    /// True when this fleet spawned at least one worker for `shard`.
    pub fn owns(&self, shard: u64) -> bool {
        self.inner.lock().unwrap().owned_shards.contains(&shard)
    }

    /// Number of processes spawned so far (respawns count).
    pub fn spawned(&self) -> usize {
        self.inner.lock().unwrap().children.len()
    }
}

impl Drop for WorkerFleet {
    fn drop(&mut self) {
        let inner = self.inner.get_mut().unwrap();
        // Ask every owned endpoint to drain; a worker that already died
        // (or never finished booting) just fails the connect.
        for ep in &inner.endpoints {
            let _ = coord::shutdown_worker(ep);
        }
        let deadline = Instant::now() + DRAIN_WAIT;
        for child in &mut inner.children {
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    // Drain window exhausted (or wait failed): a leaked
                    // daemon outlives the CLI forever, a killed one
                    // loses nothing — checkpoints survive on disk.
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::process::{Command, Stdio};

    /// Regression for the spawned-worker leak: a fleet dropped on an
    /// early-return path (here: no daemon ever listened, the polite
    /// shutdown cannot succeed) must still reap every child it spawned.
    #[test]
    fn dropped_fleet_kills_unresponsive_children() {
        let fleet = WorkerFleet::new();
        let mut pids = Vec::new();
        for shard in 0..2u64 {
            let child = Command::new("sleep")
                .arg("600")
                .stdout(Stdio::null())
                .spawn()
                .expect("spawn sleep");
            pids.push(child.id());
            let ep = Endpoint::Unix(format!("/nonexistent/shard-{shard}.sock").into());
            fleet.adopt(shard, &ep, child);
        }
        assert!(fleet.owns(0) && fleet.owns(1) && !fleet.owns(2));
        assert_eq!(fleet.spawned(), 2);
        let start = Instant::now();
        drop(fleet);
        // Children are reaped by wait(), so a lingering /proc entry
        // means a genuinely live (leaked) process.
        for pid in pids {
            assert!(
                !std::path::Path::new(&format!("/proc/{pid}")).exists(),
                "worker {pid} leaked past fleet drop"
            );
        }
        assert!(
            start.elapsed() < DRAIN_WAIT + Duration::from_secs(10),
            "teardown must be bounded"
        );
    }

    #[test]
    fn adopting_same_endpoint_twice_keeps_one_shutdown_target() {
        let fleet = WorkerFleet::new();
        let ep = Endpoint::Unix("/tmp/x.sock".into());
        for _ in 0..2 {
            let child = Command::new("true").spawn().expect("spawn");
            fleet.adopt(0, &ep, child);
        }
        assert_eq!(fleet.spawned(), 2);
        assert_eq!(fleet.inner.lock().unwrap().endpoints.len(), 1);
    }
}
