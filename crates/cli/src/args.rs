//! Hand-rolled argument parsing for `swsearch` (no external CLI crates —
//! the dependency budget is documented in DESIGN.md).

use std::fmt;
use std::time::Duration;
use sw_kernels::{KernelIsa, KernelVariant, ProfileMode, Vectorization};
use sw_sched::{FaultKind, FaultSpec, DEVICE_ACCEL};

/// Usage text shown on parse errors and `--help`.
pub const USAGE: &str = "\
swsearch — Smith-Waterman protein database search (Rucci et al., CLUSTER 2014 reproduction)

USAGE:
  swsearch search   --query <fasta> --db <fasta|swdb> [options]
  swsearch search   --query <fasta> --shards <manifest> [--top <k>] [options]
  swsearch makedb   --in <fasta> --out <swdb>
  swsearch shard-prepare --db <fasta|swdb> --out <dir> --shards <n>
                    [--replicas <r>] [--endpoints <ep,ep,...>]
  swsearch gendb    --seqs <n> --out <fasta|swdb> [--seed <u64>] [--mean-len <f>]
  swsearch stats    --db <fasta|swdb>
  swsearch selftest [--lanes <4|8|16|32>] [--scale <n>]
  swsearch simulate --device <xeon|phi|hetero> [--threads <n>] [--query-len <m>]
                    [--frac <0..1>] [--variant <v>] [--db-scale <0..1>]
  swsearch align    --query <fasta> --subject <fasta> [--matrix <name>] [--open <q>] [--extend <r>]
  swsearch bench    [--seqs <n>] [--query-len <m>] [--threads <t>] [--lanes <l>]
  swsearch hetero   --query <fasta> --db <fasta|swdb> [--frac <0..1>]
                    [--dynamic] [--accel-threads <n>] [--min-chunk <n>]
                    [--checkpoint <path> | --checkpoint-dir <dir>] [--resume] [options]
  swsearch serve    --db <swdb|fasta> (--socket <path> | --listen <endpoint>)
                    [--threads <n>]
                    [--accel-threads <n>] [--max-concurrent <n>]
                    [--tenant-quota <n>] [--batch-window-ms <ms>]
                    [--checkpoint-dir <dir>]
                    [--trace-dir <dir>] [--registry-out <path>] [--lanes <n>]
                    [--log-level <l>] [--log-file <path>]
                    [--slow-query-ms <ms>] [--metrics-file <path>]
                    [--metrics-interval-ms <ms>] [--request-timeout-ms <ms>]
                    [--shard-worker]
  swsearch submit   --socket <endpoint> (--query <fasta> | --status <job> |
                    --cancel <job> | --stats | --metrics | --health |
                    --shutdown) [--tenant <name>] [--top <k>] [--json]
                    [--connect-retries <n>] [--connect-backoff-ms <ms>]
  swsearch trace-check [--trace <jsonl>] [--metrics <prom>]

SEARCH OPTIONS:
  --matrix <name>     BLOSUM45/50/62/80 or PAM250 (default BLOSUM62)
  --open <q>          gap open penalty (default 10)
  --extend <r>        gap extension penalty (default 2)
  --threads <n>       worker threads (default 1)
  --lanes <n>         vector lanes: 4, 8, 16 or 32 (default 16)
  --variant <v>       no-vec-qp | no-vec-sp | simd-qp | simd-sp |
                      intrinsic-qp | intrinsic-sp  (default intrinsic-sp)
  --no-blocking       disable cache blocking
  --kernel-isa <i>    auto | portable | sse2 | avx2 — instruction set for
                      the intrinsic kernels (default auto: best the host
                      supports; results are identical on every choice)
  --top <k>           hits to print (default 10)
  --align             render the alignment of each reported hit
  --adaptive          dual-precision scoring (i8 first, widen saturated lanes)
  --tabular           BLAST outfmt-6 style tabular output (12 columns)
  --dna               nucleotide mode (ACGTN; default scoring +5/-4, N=-2)
  --match <s>         DNA match score (with --dna; default 5)
  --mismatch <s>      DNA mismatch score (with --dna; default -4)
  --both-strands      with --dna: also search the reverse complement
  --quarantine        skip malformed FASTA records instead of aborting;
                      a per-issue summary is printed (also on makedb)

HETERO OPTIONS:
  --dynamic           dual-pool dynamic scheduler: both device pools pull
                      from one shared queue; --frac only seeds the
                      feedback estimator. Prints per-device metrics.
  --accel-threads <n> accelerator-pool workers (default: same as --threads)
  --min-chunk <n>     smallest batch chunk a pool grabs (default 1)
  --inject-fault <s>  (dynamic) fault-injection drill against the accel
                      pool: kill@N | delay@N:MS | wedge@N | kill-pool@N
                      (N = 0-based chunk index). Hits stay exact; the run
                      recovers on the surviving pool.
  --accel-timeout-ms <n>  reclaim a silent accel chunk lease after n ms
                      (default: never; required for wedge recovery)
  --failure-budget <n> failures before a pool is retired (default 3)
  --trace-out <path>  (dynamic) write the run's event timeline: a .jsonl
                      path gets one event per line; any other extension
                      gets Chrome trace-event JSON (open in Perfetto)
  --metrics-out <path> (dynamic) write a Prometheus text snapshot of the
                      run's counters, histograms and GCUPS time series
  --trace-level <l>   off | lite | full (default: full when --trace-out
                      or --metrics-out is given, else off)

DURABILITY OPTIONS (dynamic mode):
  --checkpoint <path> persist search progress to this file: versioned,
                      CRC32-checksummed, written atomically. SIGINT or
                      SIGTERM drains the run gracefully (workers finish
                      their in-flight chunks, a final checkpoint is
                      written) and prints how to resume. Deleted when the
                      search completes.
  --checkpoint-dir <dir>
                      like --checkpoint, but the file name is derived
                      from the search fingerprint (database digest, query
                      digest, lane packing), so any number of concurrent
                      searches can share the directory without clobbering
                      each other. Mutually exclusive with --checkpoint.
  --checkpoint-interval-chunks <n>
                      write a checkpoint every n committed chunks
                      (default 8; the graceful-drain checkpoint is
                      written regardless)
  --resume            load the checkpoint if it exists and skip its
                      completed batches. The checkpoint is verified
                      against the database content digest, query digest,
                      lane count and batch count first; a mismatch is a
                      hard error. The final hit list is byte-identical
                      to an uninterrupted run.
  --kill-after-chunks <n>
                      crash drill: abort the whole process (as SIGKILL
                      would) after n chunks have been committed — used
                      by the crash-resume test harness

SERVE OPTIONS:
  --socket <path>     Unix socket the daemon listens on (serve) or the
                      endpoint the client connects to (submit; a bare
                      path, unix://<path> or tcp://host:port)
  --listen <endpoint> (serve) listen on an explicit endpoint instead:
                      tcp://host:port binds a TCP listener (multi-node
                      shard workers), unix://<path> or a bare path a
                      Unix socket. Mutually exclusive with --socket
  --max-concurrent <n> queries batched into one shared dual-pool region;
                      further submits wait for the next region (default 2)
  --tenant-quota <n>  max queued+running jobs per tenant; a submit over
                      the quota is rejected immediately (default 4)
  --batch-window-ms <ms> gather window: concurrent submits arriving
                      within it share one region (default 3)
  --checkpoint-dir <dir> (serve) per-job fingerprint-named checkpoints:
                      cancelled jobs stay resumable
  --trace-dir <dir>   (serve) write each job's query-tagged JSONL trace
                      to <dir>/job-<id>.jsonl
  --registry-out <path> (serve) dump the job registry as JSONL on
                      shutdown
  --log-level <l>     (serve) structured ops log threshold: off | error |
                      warn | info | debug (default info; one JSON line
                      per lifecycle transition)
  --log-file <path>   (serve) append ops-log lines here instead of stderr
  --slow-query-ms <ms> (serve) count + warn-log jobs slower than this
                      submit→terminal; with --trace-dir their merged
                      timeline is dumped as slow-job-<id>.jsonl
  --metrics-file <path> (serve) periodically dump the daemon-lifetime
                      Prometheus snapshot here (atomic replace)
  --metrics-interval-ms <ms> (serve) dump cadence for --metrics-file
                      (default 1000)
  --request-timeout-ms <ms> (serve) evict a connection that has not
                      completed its request line within this deadline —
                      a stalled half-line client must not pin a thread
                      and fd (default 10000)
  --shard-worker      (serve) --db names a .swshard file: serve that
                      shard, reporting hit ids globally (shard base +
                      in-shard index) and labelling metrics with the
                      shard index
  --drill <spec>      (submit) per-job fault drill forwarded to the
                      daemon, e.g. delay@0:1500 (accel chunk 0 sleeps
                      1500 ms) — test hook, hits stay exact
  --tenant <name>     (submit) tenant the job is accounted against
                      (default 'anon')
  --status <job>      (submit) report one job instead of submitting
  --cancel <job>      (submit) drain a running job gracefully
  --stats             (submit) registry summary counts
  --metrics           (submit) fetch the daemon-lifetime Prometheus
                      snapshot (raw text on stdout)
  --health            (submit) readiness/liveness probe; exit code 0
                      only when the daemon reports ready
  --shutdown          (submit) drain the daemon and exit
  --json              (submit) print raw wire JSON lines instead of
                      human-formatted text (submit/status/stats)
  --connect-retries <n> (submit) extra connect attempts under jittered
                      exponential backoff before giving up — absorbs a
                      daemon mid-restart (default 0: fail fast)
  --connect-backoff-ms <ms> (submit) base backoff for --connect-retries;
                      retry k sleeps ~ms*2^k, jittered (default 25)

SHARD OPTIONS:
  --shards <n>        (shard-prepare) split the length-sorted database
                      into n digest-identified .swshard files plus a
                      sorted parent snapshot and a shards.manifest
  --shards <manifest> (search) sharded search: spawn one shard worker
                      per manifest entry (reusing any already listening
                      on the shard sockets), fan the query out, and
                      k-way-merge the per-shard top-K byte-identically
                      to the unsharded run over the sorted parent. A
                      dead or wedged worker's shard is requeued to a
                      respawned process and resumes from its checkpoint.
  --replicas <r>      (shard-prepare) also write placement.plan mapping
                      every shard to r endpoints (round-robin over
                      --endpoints, or per-replica socket names)
  --endpoints <list>  (shard-prepare) comma-separated endpoint pool the
                      placement plan spreads replicas over, e.g.
                      tcp://10.0.0.1:7001,tcp://10.0.0.2:7001
  --shard-dir <dir>   (search --shards) sockets, worker logs and the
                      shared checkpoint dir live here (default: the
                      manifest's directory)
  --placement <path>  (search --shards) placement plan mapping shards to
                      replica endpoints; the coordinator walks a shard's
                      replica ring on retry (default: placement.plan
                      next to the manifest, when present)
  --drill <spec>      (search --shards) fault drill forwarded to every
                      shard worker, e.g. delay@0:1500
  --net-fault <spec>  (search --shards) coordinator-side network fault
                      drill: refuse@S | drop@S:N | blackhole@S |
                      slowdrip@S:MS, comma-separated, optional #ATTEMPT
                      suffix. Hits stay byte-identical
  --net-fault-seed <u64> (search --shards) seeded random network fault
                      plan (one fault per shard, first attempts)
  --coord-journal <path> (search --shards) coordinator journal location
                      (default <shard-dir>/coord.journal); written
                      atomically on every commit/requeue, removed on a
                      clean finish
  --resume-coord      (search --shards) load the journal and skip shards
                      whose results it already committed — rerun after a
                      coordinator crash converges on identical bytes
  --metrics-out <path> (search --shards) write a Prometheus text snapshot
                      of the coordinator's counters (requeues, failovers,
                      net retries, journal skips) after the merge

TRACE-CHECK OPTIONS:
  --trace <path>      validate a JSONL event log: schema header, per-track
                      monotonic timestamps, balanced begin/end spans
  --metrics <path>    validate a Prometheus text snapshot
";

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Database search (Algorithm 1).
    Search {
        /// Query FASTA path.
        query: String,
        /// Database path (FASTA or `.swdb` snapshot).
        db: String,
        /// Scoring/search knobs.
        opts: SearchOpts,
    },
    /// Sharded search: spawn/reuse one worker daemon per shard, fan the
    /// query out, merge byte-identically to the unsharded run.
    SearchShards {
        /// Query FASTA path.
        query: String,
        /// `shards.manifest` written by `shard-prepare`.
        manifest: String,
        /// Sockets, worker logs and checkpoints live here (defaults to
        /// the manifest's directory).
        shard_dir: Option<String>,
        /// Hits to keep after the merge.
        top: usize,
        /// Fault drill forwarded to every shard worker.
        drill: Option<String>,
        /// Coordinator-side network fault drill (`refuse@S`, …).
        net_fault: Option<String>,
        /// Seeded random network fault plan.
        net_fault_seed: Option<u64>,
        /// Placement plan path (shard → replica endpoints).
        placement: Option<String>,
        /// Coordinator journal path override.
        coord_journal: Option<String>,
        /// Resume from the journal, skipping committed shards.
        resume_coord: bool,
        /// Write the coordinator's Prometheus counters here.
        metrics_out: Option<String>,
        /// Print raw wire JSON hit lines instead of the report.
        json: bool,
        /// Worker knobs (threads, lanes …) for spawned shard daemons.
        opts: SearchOpts,
    },
    /// Split a database into digest-identified snapshot shards.
    ShardPrepare {
        /// Input database (FASTA or `.swdb` snapshot).
        db: String,
        /// Output directory for shards, sorted parent and manifest.
        out: String,
        /// Number of shards.
        shards: usize,
        /// Replicas per shard; > 1 (or an endpoint pool) also writes a
        /// `placement.plan`.
        replicas: usize,
        /// Comma-separated endpoint pool for the placement plan.
        endpoints: Option<String>,
    },
    /// Preprocess a FASTA database into a binary snapshot.
    MakeDb {
        /// Input FASTA.
        input: String,
        /// Output snapshot path.
        output: String,
        /// Skip malformed records instead of aborting.
        quarantine: bool,
    },
    /// Generate a synthetic Swiss-Prot-like database.
    GenDb {
        /// Sequence count.
        seqs: u32,
        /// Output path (`.swdb` → snapshot, else FASTA).
        output: String,
        /// RNG seed.
        seed: u64,
        /// Mean sequence length.
        mean_len: f64,
    },
    /// Print database statistics.
    Stats {
        /// Database path.
        db: String,
    },
    /// Cross-variant correctness self-test.
    SelfTest {
        /// Lane width.
        lanes: usize,
        /// Workload scale factor.
        scale: u32,
    },
    /// Simulated performance of the paper's devices.
    Simulate {
        /// `xeon`, `phi` or `hetero`.
        device: String,
        /// Threads (0 = device maximum).
        threads: u32,
        /// Query length.
        query_len: usize,
        /// Fraction of work offloaded (hetero only).
        frac: f64,
        /// Kernel variant.
        variant: KernelVariant,
        /// Database scale relative to Swiss-Prot (1.0 = 541 561 seqs).
        db_scale: f64,
    },
    /// Pairwise alignment with traceback.
    Align {
        /// Query FASTA path.
        query: String,
        /// Subject FASTA path.
        subject: String,
        /// Scoring knobs.
        opts: SearchOpts,
    },
    /// Heterogeneous search (Algorithm 2): static split, or the dynamic
    /// dual-pool scheduler with `--dynamic`.
    Hetero {
        /// Query FASTA path.
        query: String,
        /// Database path.
        db: String,
        /// Fraction of DP cells sent to the accelerator share (seed of
        /// the feedback estimator under `--dynamic`).
        frac: f64,
        /// Use the dynamic dual-pool scheduler instead of the fixed
        /// prefix/suffix split.
        dynamic: bool,
        /// Accelerator-pool worker threads (dynamic mode).
        accel_threads: usize,
        /// Smallest batch chunk either pool grabs (dynamic mode).
        min_chunk: usize,
        /// Fault to inject into the accelerator pool (dynamic mode):
        /// exercises the lease/requeue recovery path end to end.
        inject_fault: Option<FaultSpec>,
        /// Reclaim a silent accelerator chunk lease after this many
        /// milliseconds (dynamic mode; `None` = never).
        accel_timeout_ms: Option<u64>,
        /// Failures a pool tolerates before it is retired (dynamic mode).
        failure_budget: u32,
        /// Write the event timeline here (dynamic mode): `.jsonl` → JSONL
        /// event log, anything else → Chrome trace-event JSON.
        trace_out: Option<String>,
        /// Write a Prometheus text snapshot of the run's metrics here
        /// (dynamic mode).
        metrics_out: Option<String>,
        /// Journal detail level. Defaults to `Full` when `--trace-out` or
        /// `--metrics-out` is given, `Off` otherwise.
        trace_level: sw_trace::TraceLevel,
        /// Persist search progress to this checkpoint file (dynamic
        /// mode); SIGINT/SIGTERM then drain gracefully instead of
        /// killing the run.
        checkpoint: Option<String>,
        /// Keep the checkpoint in this directory under a
        /// fingerprint-derived name (concurrency-safe alternative to
        /// `--checkpoint`).
        checkpoint_dir: Option<String>,
        /// Chunks between periodic checkpoint writes.
        checkpoint_interval: u64,
        /// Load the checkpoint (if present) and skip its batches.
        resume: bool,
        /// Crash drill: abort the process after this many committed
        /// chunks (simulates SIGKILL for the crash-resume harness).
        kill_after_chunks: Option<u64>,
        /// Scoring/search knobs.
        opts: SearchOpts,
    },
    /// Long-lived search daemon: load and verify the database once,
    /// serve line-delimited JSON queries over a Unix socket.
    Serve {
        /// Database path (`.swdb` snapshot or FASTA).
        db: String,
        /// Endpoint to listen on: a bare Unix socket path (`--socket`)
        /// or a `tcp://host:port` / `unix://path` URL (`--listen`).
        socket: String,
        /// Queries batched into one shared dual-pool region; submits
        /// past the cap wait for the next region.
        max_concurrent: usize,
        /// Max queued+running jobs per tenant; a submit over the quota
        /// is rejected immediately.
        tenant_quota: usize,
        /// Gather window in ms: concurrent submits arriving within it
        /// coalesce into the same shared region.
        batch_window_ms: u64,
        /// Accelerator-pool worker threads per search.
        accel_threads: usize,
        /// Fingerprint-named per-job checkpoints live here (cancelled
        /// jobs stay resumable).
        checkpoint_dir: Option<String>,
        /// Per-job query-tagged JSONL trace exports live here.
        trace_dir: Option<String>,
        /// Dump the job registry as JSONL here on shutdown.
        registry_out: Option<String>,
        /// Ops-log threshold.
        log_level: sw_serve::LogLevel,
        /// Ops-log destination (stderr when `None`).
        log_file: Option<String>,
        /// Slow-query threshold in ms (`None` disables).
        slow_query_ms: Option<u64>,
        /// Periodic Prometheus scrape dump path.
        metrics_file: Option<String>,
        /// Dump cadence for `metrics_file` in ms.
        metrics_interval_ms: u64,
        /// Per-connection request deadline in ms.
        request_timeout_ms: u64,
        /// Treat `db` as a `.swshard` file and serve that shard.
        shard_worker: bool,
        /// Scoring/search knobs shared by every job.
        opts: SearchOpts,
    },
    /// Client for a running `serve` daemon.
    Submit {
        /// Unix socket path of the daemon.
        socket: String,
        /// Query FASTA to submit (`None` for the control operations).
        query: Option<String>,
        /// Tenant the job is accounted against.
        tenant: String,
        /// Report this job id instead of submitting.
        status: Option<u64>,
        /// Drain this job id gracefully.
        cancel: Option<u64>,
        /// Print a registry summary.
        stats: bool,
        /// Fetch the daemon-lifetime Prometheus snapshot.
        metrics: bool,
        /// Readiness/liveness probe.
        health: bool,
        /// Drain in-flight jobs and stop the daemon.
        shutdown: bool,
        /// Fault drill forwarded with the job (e.g. `delay@0:1500`).
        drill: Option<String>,
        /// Hits to return.
        top: usize,
        /// Print raw wire JSON lines instead of human-formatted text.
        json: bool,
        /// Extra connect attempts under jittered exponential backoff.
        connect_retries: u32,
        /// Base backoff for connect retries in ms.
        connect_backoff_ms: u64,
    },
    /// Validate exported trace artifacts (CI gate for `--trace-out` /
    /// `--metrics-out` files).
    TraceCheck {
        /// JSONL event log to validate.
        trace: Option<String>,
        /// Prometheus text snapshot to validate.
        metrics: Option<String>,
    },
    /// Host throughput micro-benchmark.
    Bench {
        /// Database sequences to generate.
        seqs: u32,
        /// Query length.
        query_len: u32,
        /// Worker threads.
        threads: usize,
        /// Vector lanes.
        lanes: usize,
    },
    /// Print usage.
    Help,
}

/// Search options shared by `search` and `align`.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOpts {
    /// Substitution matrix name.
    pub matrix: String,
    /// Gap open penalty.
    pub open: i32,
    /// Gap extension penalty.
    pub extend: i32,
    /// Worker threads.
    pub threads: usize,
    /// Vector lanes.
    pub lanes: usize,
    /// Kernel variant.
    pub variant: KernelVariant,
    /// Hits to print.
    pub top: usize,
    /// Render alignments of reported hits.
    pub align: bool,
    /// SWIPE-style dual-precision scoring (i8 first, widen on demand).
    pub adaptive: bool,
    /// Forced kernel ISA (`--kernel-isa`); `None` = auto-detect the best
    /// the host supports. Availability is checked at execution time.
    pub kernel_isa: Option<KernelIsa>,
    /// Output format: plain report or BLAST-style 12-column tabular.
    pub tabular: bool,
    /// Nucleotide mode: DNA alphabet + match/mismatch scoring.
    pub dna: bool,
    /// DNA match score (nucleotide mode only).
    pub match_score: i32,
    /// DNA mismatch score (nucleotide mode only).
    pub mismatch: i32,
    /// Also search the reverse-complement strand (nucleotide mode only).
    pub both_strands: bool,
    /// Skip malformed FASTA records (with a printed per-issue summary)
    /// instead of aborting on the first one.
    pub quarantine: bool,
}

impl Default for SearchOpts {
    fn default() -> Self {
        SearchOpts {
            matrix: "BLOSUM62".to_string(),
            open: 10,
            extend: 2,
            threads: 1,
            lanes: 16,
            variant: KernelVariant::best(),
            top: 10,
            align: false,
            adaptive: false,
            kernel_isa: None,
            tabular: false,
            dna: false,
            match_score: 5,
            mismatch: -4,
            both_strands: false,
            quarantine: false,
        }
    }
}

/// Parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

fn err(msg: impl Into<String>) -> ParseError {
    ParseError(msg.into())
}

/// Parse an `--inject-fault` value: `kill@N`, `delay@N:MS`, `wedge@N` or
/// `kill-pool@N`, where `N` is the 0-based chunk index (in the accel
/// pool's grab order) at which the fault fires. Drills always target the
/// accelerator pool — the CPU pool is the recovery path.
pub fn parse_fault_spec(s: &str) -> Result<FaultSpec, ParseError> {
    let bad = || {
        err(format!(
            "bad --inject-fault '{s}': expected kill@N, delay@N:MS, wedge@N or kill-pool@N"
        ))
    };
    let (kind_s, at) = s.split_once('@').ok_or_else(bad)?;
    let parse_chunk = |t: &str| t.parse::<u64>().map_err(|_| bad());
    let (kind, chunk) = match kind_s.to_ascii_lowercase().as_str() {
        "kill" => (FaultKind::Kill, parse_chunk(at)?),
        "wedge" => (FaultKind::Wedge, parse_chunk(at)?),
        "kill-pool" | "killpool" => (FaultKind::KillPool, parse_chunk(at)?),
        "delay" => {
            let (n, ms) = at.split_once(':').ok_or_else(bad)?;
            let ms: u64 = ms.parse().map_err(|_| bad())?;
            (FaultKind::Delay(Duration::from_millis(ms)), parse_chunk(n)?)
        }
        _ => return Err(bad()),
    };
    Ok(FaultSpec {
        device: DEVICE_ACCEL,
        chunk,
        kind,
    })
}

/// Parse a `--variant` value.
pub fn parse_variant(s: &str, blocking: bool) -> Result<KernelVariant, ParseError> {
    let (vec, profile) = match s.to_ascii_lowercase().as_str() {
        "no-vec-qp" | "novec-qp" => (Vectorization::NoVec, ProfileMode::Query),
        "no-vec-sp" | "novec-sp" => (Vectorization::NoVec, ProfileMode::Sequence),
        "simd-qp" => (Vectorization::Guided, ProfileMode::Query),
        "simd-sp" => (Vectorization::Guided, ProfileMode::Sequence),
        "intrinsic-qp" => (Vectorization::Intrinsic, ProfileMode::Query),
        "intrinsic-sp" => (Vectorization::Intrinsic, ProfileMode::Sequence),
        other => return Err(err(format!("unknown variant '{other}'"))),
    };
    Ok(KernelVariant {
        vec,
        profile,
        blocking,
    })
}

/// Cursor over argv tokens with typed take-helpers.
struct Args<'a> {
    tokens: &'a [String],
    pos: usize,
}

impl<'a> Args<'a> {
    fn value_of(&mut self, flag: &str) -> Result<String, ParseError> {
        // Scan for `flag <value>` anywhere after the subcommand.
        let mut i = self.pos;
        while i < self.tokens.len() {
            if self.tokens[i] == flag {
                return self
                    .tokens
                    .get(i + 1)
                    .cloned()
                    .ok_or_else(|| err(format!("{flag} needs a value")));
            }
            i += 1;
        }
        Err(err(format!("missing required {flag}")))
    }

    fn opt_value(&mut self, flag: &str) -> Option<String> {
        self.value_of(flag).ok()
    }

    fn has_flag(&self, flag: &str) -> bool {
        self.tokens[self.pos..].iter().any(|t| t == flag)
    }

    fn parse_num<T: std::str::FromStr>(&mut self, flag: &str, default: T) -> Result<T, ParseError> {
        match self.opt_value(flag) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("bad value for {flag}: '{v}'"))),
        }
    }
}

fn parse_search_opts(a: &mut Args<'_>) -> Result<SearchOpts, ParseError> {
    let d = SearchOpts::default();
    let blocking = !a.has_flag("--no-blocking");
    let variant = match a.opt_value("--variant") {
        Some(v) => parse_variant(&v, blocking)?,
        None => KernelVariant {
            blocking,
            ..d.variant
        },
    };
    let lanes: usize = a.parse_num("--lanes", d.lanes)?;
    if !matches!(lanes, 4 | 8 | 16 | 32) {
        return Err(err(format!("--lanes must be 4, 8, 16 or 32 (got {lanes})")));
    }
    let kernel_isa = match a.opt_value("--kernel-isa") {
        None => None,
        Some(v) if v.eq_ignore_ascii_case("auto") => None,
        Some(v) => Some(KernelIsa::from_name(&v).ok_or_else(|| {
            err(format!(
                "--kernel-isa must be auto, portable, sse2 or avx2 (got '{v}')"
            ))
        })?),
    };
    Ok(SearchOpts {
        matrix: a.opt_value("--matrix").unwrap_or(d.matrix),
        open: a.parse_num("--open", d.open)?,
        extend: a.parse_num("--extend", d.extend)?,
        threads: a.parse_num("--threads", d.threads)?,
        lanes,
        variant,
        top: a.parse_num("--top", d.top)?,
        align: a.has_flag("--align"),
        adaptive: a.has_flag("--adaptive"),
        kernel_isa,
        tabular: a.has_flag("--tabular"),
        dna: a.has_flag("--dna"),
        match_score: a.parse_num("--match", d.match_score)?,
        mismatch: a.parse_num("--mismatch", d.mismatch)?,
        both_strands: a.has_flag("--both-strands"),
        quarantine: a.has_flag("--quarantine"),
    })
}

/// Parse argv (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, ParseError> {
    let Some(sub) = argv.first() else {
        return Ok(Command::Help);
    };
    let mut a = Args {
        tokens: argv,
        pos: 1,
    };
    match sub.as_str() {
        "-h" | "--help" | "help" => Ok(Command::Help),
        "search" => {
            if a.has_flag("--shards") {
                let top: usize = a.parse_num("--top", 10usize)?;
                let net_fault = a.opt_value("--net-fault");
                if let Some(spec) = &net_fault {
                    // Validate up front: a typo must not boot a fleet.
                    sw_sched::NetFaultPlan::parse(spec).map_err(err)?;
                }
                let net_fault_seed = a
                    .opt_value("--net-fault-seed")
                    .map(|v| {
                        v.parse::<u64>()
                            .map_err(|_| err(format!("bad value for --net-fault-seed: '{v}'")))
                    })
                    .transpose()?;
                if net_fault.is_some() && net_fault_seed.is_some() {
                    return Err(err("pass --net-fault or --net-fault-seed, not both"));
                }
                Ok(Command::SearchShards {
                    query: a.value_of("--query")?,
                    manifest: a.value_of("--shards")?,
                    shard_dir: a.opt_value("--shard-dir"),
                    top,
                    drill: a.opt_value("--drill"),
                    net_fault,
                    net_fault_seed,
                    placement: a.opt_value("--placement"),
                    coord_journal: a.opt_value("--coord-journal"),
                    resume_coord: a.has_flag("--resume-coord"),
                    metrics_out: a.opt_value("--metrics-out"),
                    json: a.has_flag("--json"),
                    opts: parse_search_opts(&mut a)?,
                })
            } else {
                Ok(Command::Search {
                    query: a.value_of("--query")?,
                    db: a.value_of("--db")?,
                    opts: parse_search_opts(&mut a)?,
                })
            }
        }
        "shard-prepare" => {
            let shards: usize = a.parse_num("--shards", 0usize)?;
            if shards == 0 {
                return Err(err("--shards is required and must be positive"));
            }
            let replicas: usize = a.parse_num("--replicas", 1usize)?;
            if replicas == 0 {
                return Err(err("--replicas must be at least 1"));
            }
            Ok(Command::ShardPrepare {
                db: a.value_of("--db")?,
                out: a.value_of("--out")?,
                shards,
                replicas,
                endpoints: a.opt_value("--endpoints"),
            })
        }
        "makedb" => Ok(Command::MakeDb {
            input: a.value_of("--in")?,
            output: a.value_of("--out")?,
            quarantine: a.has_flag("--quarantine"),
        }),
        "gendb" => Ok(Command::GenDb {
            seqs: a.parse_num("--seqs", 0u32).and_then(|n| {
                if n == 0 {
                    Err(err("--seqs is required and must be positive"))
                } else {
                    Ok(n)
                }
            })?,
            output: a.value_of("--out")?,
            seed: a.parse_num("--seed", 42u64)?,
            mean_len: a.parse_num("--mean-len", 355.4f64)?,
        }),
        "stats" => Ok(Command::Stats {
            db: a.value_of("--db")?,
        }),
        "selftest" => {
            let lanes: usize = a.parse_num("--lanes", 8usize)?;
            if !matches!(lanes, 4 | 8 | 16 | 32) {
                return Err(err("--lanes must be 4, 8, 16 or 32"));
            }
            Ok(Command::SelfTest {
                lanes,
                scale: a.parse_num("--scale", 1u32)?,
            })
        }
        "simulate" => {
            let device = a.value_of("--device")?;
            if !matches!(device.as_str(), "xeon" | "phi" | "hetero") {
                return Err(err(format!(
                    "--device must be xeon, phi or hetero (got '{device}')"
                )));
            }
            let variant = match a.opt_value("--variant") {
                Some(v) => parse_variant(&v, !a.has_flag("--no-blocking"))?,
                None => KernelVariant::best(),
            };
            let frac: f64 = a.parse_num("--frac", 0.55f64)?;
            if !(0.0..=1.0).contains(&frac) {
                return Err(err("--frac must be in [0, 1]"));
            }
            let db_scale: f64 = a.parse_num("--db-scale", 1.0f64)?;
            if !(db_scale > 0.0 && db_scale <= 1.0) {
                return Err(err("--db-scale must be in (0, 1]"));
            }
            Ok(Command::Simulate {
                device,
                threads: a.parse_num("--threads", 0u32)?,
                query_len: a.parse_num("--query-len", 2000usize)?,
                frac,
                variant,
                db_scale,
            })
        }
        "hetero" => {
            let frac: f64 = a.parse_num("--frac", 0.55f64)?;
            if !(0.0..=1.0).contains(&frac) {
                return Err(err("--frac must be in [0, 1]"));
            }
            let opts = parse_search_opts(&mut a)?;
            let accel_threads: usize = a.parse_num("--accel-threads", opts.threads)?;
            let min_chunk: usize = a.parse_num("--min-chunk", 1usize)?;
            if min_chunk == 0 {
                return Err(err("--min-chunk must be at least 1"));
            }
            let inject_fault = a
                .opt_value("--inject-fault")
                .map(|s| parse_fault_spec(&s))
                .transpose()?;
            let accel_timeout_ms = a
                .opt_value("--accel-timeout-ms")
                .map(|v| {
                    v.parse::<u64>()
                        .map_err(|_| err(format!("bad value for --accel-timeout-ms: '{v}'")))
                })
                .transpose()?;
            let failure_budget: u32 = a.parse_num("--failure-budget", 3u32)?;
            let trace_out = a.opt_value("--trace-out");
            let metrics_out = a.opt_value("--metrics-out");
            let trace_level = match a.opt_value("--trace-level") {
                Some(v) => sw_trace::TraceLevel::parse(&v).ok_or_else(|| {
                    err(format!(
                        "--trace-level must be off, lite or full (got '{v}')"
                    ))
                })?,
                None if trace_out.is_some() || metrics_out.is_some() => sw_trace::TraceLevel::Full,
                None => sw_trace::TraceLevel::Off,
            };
            let checkpoint = a.opt_value("--checkpoint");
            let checkpoint_dir = a.opt_value("--checkpoint-dir");
            if checkpoint.is_some() && checkpoint_dir.is_some() {
                return Err(err(
                    "--checkpoint and --checkpoint-dir are mutually exclusive",
                ));
            }
            let checkpoint_interval: u64 = a.parse_num("--checkpoint-interval-chunks", 8u64)?;
            if checkpoint_interval == 0 {
                return Err(err("--checkpoint-interval-chunks must be at least 1"));
            }
            let resume = a.has_flag("--resume");
            if resume && checkpoint.is_none() && checkpoint_dir.is_none() {
                return Err(err(
                    "--resume needs --checkpoint <path> or --checkpoint-dir <dir> to resume from",
                ));
            }
            let kill_after_chunks = a
                .opt_value("--kill-after-chunks")
                .map(|v| {
                    v.parse::<u64>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| err(format!("bad value for --kill-after-chunks: '{v}'")))
                })
                .transpose()?;
            Ok(Command::Hetero {
                query: a.value_of("--query")?,
                db: a.value_of("--db")?,
                frac,
                dynamic: a.has_flag("--dynamic"),
                accel_threads,
                min_chunk,
                inject_fault,
                accel_timeout_ms,
                failure_budget,
                trace_out,
                metrics_out,
                trace_level,
                checkpoint,
                checkpoint_dir,
                checkpoint_interval,
                resume,
                kill_after_chunks,
                opts,
            })
        }
        "serve" => {
            let opts = parse_search_opts(&mut a)?;
            let max_concurrent: usize = a.parse_num("--max-concurrent", 2usize)?;
            if max_concurrent == 0 {
                return Err(err("--max-concurrent must be at least 1"));
            }
            let tenant_quota: usize = a.parse_num("--tenant-quota", 4usize)?;
            if tenant_quota == 0 {
                return Err(err("--tenant-quota must be at least 1"));
            }
            let log_level = match a.opt_value("--log-level") {
                None => sw_serve::LogLevel::Info,
                Some(v) => sw_serve::LogLevel::parse(&v)
                    .ok_or_else(|| err(format!("bad value for --log-level: '{v}'")))?,
            };
            let slow_query_ms = a
                .opt_value("--slow-query-ms")
                .map(|v| {
                    v.parse::<u64>()
                        .map_err(|_| err(format!("bad value for --slow-query-ms: '{v}'")))
                })
                .transpose()?;
            let socket = match (a.opt_value("--socket"), a.opt_value("--listen")) {
                (Some(_), Some(_)) => {
                    return Err(err("pass --socket or --listen, not both"));
                }
                (Some(s), None) => s,
                (None, Some(l)) => l,
                (None, None) => {
                    return Err(err("serve needs --socket <path> or --listen <endpoint>"));
                }
            };
            Ok(Command::Serve {
                db: a.value_of("--db")?,
                socket,
                max_concurrent,
                tenant_quota,
                batch_window_ms: a.parse_num("--batch-window-ms", 3u64)?,
                accel_threads: a.parse_num("--accel-threads", opts.threads)?,
                checkpoint_dir: a.opt_value("--checkpoint-dir"),
                trace_dir: a.opt_value("--trace-dir"),
                registry_out: a.opt_value("--registry-out"),
                log_level,
                log_file: a.opt_value("--log-file"),
                slow_query_ms,
                metrics_file: a.opt_value("--metrics-file"),
                metrics_interval_ms: a.parse_num("--metrics-interval-ms", 1000u64)?,
                request_timeout_ms: a.parse_num("--request-timeout-ms", 10_000u64)?,
                shard_worker: a.has_flag("--shard-worker"),
                opts,
            })
        }
        "submit" => {
            let socket = a.value_of("--socket")?;
            let query = a.opt_value("--query");
            let status = a
                .opt_value("--status")
                .map(|v| {
                    v.parse::<u64>()
                        .map_err(|_| err(format!("bad value for --status: '{v}'")))
                })
                .transpose()?;
            let cancel = a
                .opt_value("--cancel")
                .map(|v| {
                    v.parse::<u64>()
                        .map_err(|_| err(format!("bad value for --cancel: '{v}'")))
                })
                .transpose()?;
            let stats = a.has_flag("--stats");
            let shutdown = a.has_flag("--shutdown");
            let metrics = a.has_flag("--metrics");
            let health = a.has_flag("--health");
            let ops = usize::from(query.is_some())
                + usize::from(status.is_some())
                + usize::from(cancel.is_some())
                + usize::from(stats)
                + usize::from(shutdown)
                + usize::from(metrics)
                + usize::from(health);
            if ops != 1 {
                return Err(err(
                    "submit needs exactly one of --query, --status, --cancel, --stats, \
                     --shutdown, --metrics, --health",
                ));
            }
            Ok(Command::Submit {
                socket,
                query,
                tenant: a.opt_value("--tenant").unwrap_or_else(|| "anon".into()),
                status,
                cancel,
                stats,
                shutdown,
                metrics,
                health,
                drill: a.opt_value("--drill"),
                top: a.parse_num("--top", 10usize)?,
                json: a.has_flag("--json"),
                connect_retries: a.parse_num("--connect-retries", 0u32)?,
                connect_backoff_ms: a.parse_num("--connect-backoff-ms", 25u64)?,
            })
        }
        "trace-check" => {
            let trace = a.opt_value("--trace");
            let metrics = a.opt_value("--metrics");
            if trace.is_none() && metrics.is_none() {
                return Err(err(
                    "trace-check needs --trace <jsonl> and/or --metrics <prom>",
                ));
            }
            Ok(Command::TraceCheck { trace, metrics })
        }
        "bench" => {
            let lanes: usize = a.parse_num("--lanes", 16usize)?;
            if !matches!(lanes, 4 | 8 | 16 | 32) {
                return Err(err("--lanes must be 4, 8, 16 or 32"));
            }
            Ok(Command::Bench {
                seqs: a.parse_num("--seqs", 2000u32)?,
                query_len: a.parse_num("--query-len", 400u32)?,
                threads: a.parse_num("--threads", 1usize)?,
                lanes,
            })
        }
        "align" => Ok(Command::Align {
            query: a.value_of("--query")?,
            subject: a.value_of("--subject")?,
            opts: parse_search_opts(&mut a)?,
        }),
        other => Err(err(format!("unknown command '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn empty_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn search_defaults() {
        let c = parse(&argv("search --query q.fa --db d.fa")).unwrap();
        match c {
            Command::Search { query, db, opts } => {
                assert_eq!(query, "q.fa");
                assert_eq!(db, "d.fa");
                assert_eq!(opts, SearchOpts::default());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn search_full_options() {
        let c = parse(&argv(
            "search --query q.fa --db d.fa --matrix BLOSUM50 --open 12 --extend 1 \
             --threads 4 --lanes 32 --variant simd-qp --no-blocking --top 5 --align",
        ))
        .unwrap();
        match c {
            Command::Search { opts, .. } => {
                assert_eq!(opts.matrix, "BLOSUM50");
                assert_eq!(opts.open, 12);
                assert_eq!(opts.extend, 1);
                assert_eq!(opts.threads, 4);
                assert_eq!(opts.lanes, 32);
                assert_eq!(opts.variant.vec, Vectorization::Guided);
                assert_eq!(opts.variant.profile, ProfileMode::Query);
                assert!(!opts.variant.blocking);
                assert_eq!(opts.top, 5);
                assert!(opts.align);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn missing_required_flag() {
        let e = parse(&argv("search --query q.fa")).unwrap_err();
        assert!(e.0.contains("--db"));
    }

    #[test]
    fn bad_variant_rejected() {
        assert!(parse(&argv("search --query q --db d --variant turbo")).is_err());
    }

    #[test]
    fn bad_lanes_rejected() {
        assert!(parse(&argv("search --query q --db d --lanes 7")).is_err());
    }

    #[test]
    fn simulate_defaults() {
        let c = parse(&argv("simulate --device phi")).unwrap();
        match c {
            Command::Simulate {
                device,
                threads,
                query_len,
                frac,
                db_scale,
                ..
            } => {
                assert_eq!(device, "phi");
                assert_eq!(threads, 0);
                assert_eq!(query_len, 2000);
                assert!((frac - 0.55).abs() < 1e-12);
                assert!((db_scale - 1.0).abs() < 1e-12);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn simulate_validates_device_and_frac() {
        assert!(parse(&argv("simulate --device gpu")).is_err());
        assert!(parse(&argv("simulate --device hetero --frac 1.5")).is_err());
        assert!(parse(&argv("simulate --device xeon --db-scale 0")).is_err());
    }

    #[test]
    fn gendb_requires_seqs() {
        assert!(parse(&argv("gendb --out x.fa")).is_err());
        let c = parse(&argv("gendb --seqs 100 --out x.fa --seed 7")).unwrap();
        assert_eq!(
            c,
            Command::GenDb {
                seqs: 100,
                output: "x.fa".into(),
                seed: 7,
                mean_len: 355.4
            }
        );
    }

    #[test]
    fn all_variant_names_parse() {
        for (name, vec, prof) in [
            ("no-vec-qp", Vectorization::NoVec, ProfileMode::Query),
            ("no-vec-sp", Vectorization::NoVec, ProfileMode::Sequence),
            ("simd-qp", Vectorization::Guided, ProfileMode::Query),
            ("simd-sp", Vectorization::Guided, ProfileMode::Sequence),
            ("intrinsic-qp", Vectorization::Intrinsic, ProfileMode::Query),
            (
                "intrinsic-sp",
                Vectorization::Intrinsic,
                ProfileMode::Sequence,
            ),
        ] {
            let v = parse_variant(name, true).unwrap();
            assert_eq!(v.vec, vec, "{name}");
            assert_eq!(v.profile, prof, "{name}");
        }
    }

    #[test]
    fn kernel_isa_flag_parses() {
        // Default and explicit auto both mean "detect at execution time".
        for cmdline in [
            "search --query q --db d",
            "search --query q --db d --kernel-isa auto",
        ] {
            match parse(&argv(cmdline)).unwrap() {
                Command::Search { opts, .. } => assert_eq!(opts.kernel_isa, None, "{cmdline}"),
                other => panic!("{other:?}"),
            }
        }
        for (name, isa) in [
            ("portable", KernelIsa::Portable),
            ("sse2", KernelIsa::Sse2),
            ("AVX2", KernelIsa::Avx2),
        ] {
            match parse(&argv(&format!(
                "search --query q --db d --kernel-isa {name}"
            )))
            .unwrap()
            {
                Command::Search { opts, .. } => assert_eq!(opts.kernel_isa, Some(isa), "{name}"),
                other => panic!("{other:?}"),
            }
        }
        let e = parse(&argv("search --query q --db d --kernel-isa mmx")).unwrap_err();
        assert!(e.0.contains("--kernel-isa"), "{e}");
    }

    #[test]
    fn unknown_command() {
        let e = parse(&argv("frobnicate")).unwrap_err();
        assert!(e.0.contains("frobnicate"));
    }

    #[test]
    fn hetero_static_defaults() {
        let c = parse(&argv("hetero --query q.fa --db d.fa")).unwrap();
        match c {
            Command::Hetero {
                frac,
                dynamic,
                accel_threads,
                min_chunk,
                opts,
                ..
            } => {
                assert!((frac - 0.55).abs() < 1e-12);
                assert!(!dynamic);
                assert_eq!(accel_threads, opts.threads);
                assert_eq!(min_chunk, 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hetero_dynamic_options() {
        let c = parse(&argv(
            "hetero --query q.fa --db d.fa --dynamic --threads 4 --accel-threads 8 \
             --min-chunk 2 --frac 0.3",
        ))
        .unwrap();
        match c {
            Command::Hetero {
                frac,
                dynamic,
                accel_threads,
                min_chunk,
                opts,
                ..
            } => {
                assert!((frac - 0.3).abs() < 1e-12);
                assert!(dynamic);
                assert_eq!(opts.threads, 4);
                assert_eq!(accel_threads, 8);
                assert_eq!(min_chunk, 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hetero_rejects_zero_min_chunk() {
        assert!(parse(&argv("hetero --query q --db d --min-chunk 0")).is_err());
    }

    #[test]
    fn hetero_fault_defaults_off() {
        let c = parse(&argv("hetero --query q --db d --dynamic")).unwrap();
        match c {
            Command::Hetero {
                inject_fault,
                accel_timeout_ms,
                failure_budget,
                ..
            } => {
                assert_eq!(inject_fault, None);
                assert_eq!(accel_timeout_ms, None);
                assert_eq!(failure_budget, 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hetero_parses_fault_drill_options() {
        let c = parse(&argv(
            "hetero --query q --db d --dynamic --inject-fault kill-pool@2 \
             --accel-timeout-ms 50 --failure-budget 1",
        ))
        .unwrap();
        match c {
            Command::Hetero {
                inject_fault,
                accel_timeout_ms,
                failure_budget,
                ..
            } => {
                assert_eq!(
                    inject_fault,
                    Some(FaultSpec {
                        device: DEVICE_ACCEL,
                        chunk: 2,
                        kind: FaultKind::KillPool,
                    })
                );
                assert_eq!(accel_timeout_ms, Some(50));
                assert_eq!(failure_budget, 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hetero_trace_flags() {
        use sw_trace::TraceLevel;
        // No trace flags: tracing stays off.
        match parse(&argv("hetero --query q --db d --dynamic")).unwrap() {
            Command::Hetero {
                trace_out,
                metrics_out,
                trace_level,
                ..
            } => {
                assert_eq!(trace_out, None);
                assert_eq!(metrics_out, None);
                assert_eq!(trace_level, TraceLevel::Off);
            }
            other => panic!("{other:?}"),
        }
        // An output path implies full tracing.
        match parse(&argv(
            "hetero --query q --db d --dynamic --trace-out t.json --metrics-out m.prom",
        ))
        .unwrap()
        {
            Command::Hetero {
                trace_out,
                metrics_out,
                trace_level,
                ..
            } => {
                assert_eq!(trace_out.as_deref(), Some("t.json"));
                assert_eq!(metrics_out.as_deref(), Some("m.prom"));
                assert_eq!(trace_level, TraceLevel::Full);
            }
            other => panic!("{other:?}"),
        }
        // Explicit level wins over the implication.
        match parse(&argv(
            "hetero --query q --db d --dynamic --trace-out t.jsonl --trace-level lite",
        ))
        .unwrap()
        {
            Command::Hetero { trace_level, .. } => assert_eq!(trace_level, TraceLevel::Lite),
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("hetero --query q --db d --trace-level verbose")).is_err());
    }

    #[test]
    fn hetero_durability_flags() {
        // Defaults: no checkpointing.
        match parse(&argv("hetero --query q --db d --dynamic")).unwrap() {
            Command::Hetero {
                checkpoint,
                checkpoint_interval,
                resume,
                kill_after_chunks,
                ..
            } => {
                assert_eq!(checkpoint, None);
                assert_eq!(checkpoint_interval, 8);
                assert!(!resume);
                assert_eq!(kill_after_chunks, None);
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv(
            "hetero --query q --db d --dynamic --checkpoint s.ckpt \
             --checkpoint-interval-chunks 3 --resume --kill-after-chunks 5",
        ))
        .unwrap()
        {
            Command::Hetero {
                checkpoint,
                checkpoint_interval,
                resume,
                kill_after_chunks,
                ..
            } => {
                assert_eq!(checkpoint.as_deref(), Some("s.ckpt"));
                assert_eq!(checkpoint_interval, 3);
                assert!(resume);
                assert_eq!(kill_after_chunks, Some(5));
            }
            other => panic!("{other:?}"),
        }
        // --resume without a checkpoint path has nothing to resume from.
        let e = parse(&argv("hetero --query q --db d --dynamic --resume")).unwrap_err();
        assert!(e.0.contains("--checkpoint"), "{e}");
        assert!(parse(&argv(
            "hetero --query q --db d --dynamic --checkpoint c --checkpoint-interval-chunks 0"
        ))
        .is_err());
        assert!(parse(&argv(
            "hetero --query q --db d --dynamic --checkpoint c --kill-after-chunks 0"
        ))
        .is_err());
    }

    #[test]
    fn hetero_checkpoint_dir_flag() {
        match parse(&argv(
            "hetero --query q --db d --dynamic --checkpoint-dir ckpts --resume",
        ))
        .unwrap()
        {
            Command::Hetero {
                checkpoint,
                checkpoint_dir,
                resume,
                ..
            } => {
                assert_eq!(checkpoint, None);
                assert_eq!(checkpoint_dir.as_deref(), Some("ckpts"));
                assert!(resume);
            }
            other => panic!("{other:?}"),
        }
        // A path and a dir at once is ambiguous.
        let e = parse(&argv(
            "hetero --query q --db d --dynamic --checkpoint c --checkpoint-dir ckpts",
        ))
        .unwrap_err();
        assert!(e.0.contains("mutually exclusive"), "{e}");
    }

    #[test]
    fn serve_parses_with_defaults() {
        match parse(&argv("serve --db d.swdb --socket /tmp/sw.sock")).unwrap() {
            Command::Serve {
                db,
                socket,
                max_concurrent,
                tenant_quota,
                batch_window_ms,
                checkpoint_dir,
                trace_dir,
                registry_out,
                log_level,
                log_file,
                slow_query_ms,
                metrics_file,
                metrics_interval_ms,
                ..
            } => {
                assert_eq!(db, "d.swdb");
                assert_eq!(socket, "/tmp/sw.sock");
                assert_eq!(max_concurrent, 2);
                assert_eq!(tenant_quota, 4);
                assert_eq!(batch_window_ms, 3);
                assert_eq!(checkpoint_dir, None);
                assert_eq!(trace_dir, None);
                assert_eq!(registry_out, None);
                assert_eq!(log_level, sw_serve::LogLevel::Info);
                assert_eq!(log_file, None);
                assert_eq!(slow_query_ms, None);
                assert_eq!(metrics_file, None);
                assert_eq!(metrics_interval_ms, 1000);
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv(
            "serve --db d.swdb --socket s.sock --max-concurrent 3 --tenant-quota 1 \
             --batch-window-ms 50 --checkpoint-dir ck --trace-dir tr --registry-out reg.jsonl \
             --log-level debug --log-file ops.jsonl --slow-query-ms 250 \
             --metrics-file scrape.prom --metrics-interval-ms 200",
        ))
        .unwrap()
        {
            Command::Serve {
                max_concurrent,
                tenant_quota,
                batch_window_ms,
                checkpoint_dir,
                trace_dir,
                registry_out,
                log_level,
                log_file,
                slow_query_ms,
                metrics_file,
                metrics_interval_ms,
                ..
            } => {
                assert_eq!(max_concurrent, 3);
                assert_eq!(tenant_quota, 1);
                assert_eq!(batch_window_ms, 50);
                assert_eq!(checkpoint_dir.as_deref(), Some("ck"));
                assert_eq!(trace_dir.as_deref(), Some("tr"));
                assert_eq!(registry_out.as_deref(), Some("reg.jsonl"));
                assert_eq!(log_level, sw_serve::LogLevel::Debug);
                assert_eq!(log_file.as_deref(), Some("ops.jsonl"));
                assert_eq!(slow_query_ms, Some(250));
                assert_eq!(metrics_file.as_deref(), Some("scrape.prom"));
                assert_eq!(metrics_interval_ms, 200);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("serve --socket s.sock")).is_err(), "needs --db");
        assert!(parse(&argv("serve --db d")).is_err(), "needs --socket");
        assert!(parse(&argv("serve --db d --socket s --max-concurrent 0")).is_err());
        assert!(parse(&argv("serve --db d --socket s --tenant-quota 0")).is_err());
        assert!(parse(&argv("serve --db d --socket s --log-level loud")).is_err());
        assert!(parse(&argv("serve --db d --socket s --slow-query-ms x")).is_err());
    }

    #[test]
    fn serve_parses_shard_worker_and_request_timeout() {
        match parse(&argv(
            "serve --db shard-0.swshard --socket s.sock --shard-worker --request-timeout-ms 500",
        ))
        .unwrap()
        {
            Command::Serve {
                db,
                shard_worker,
                request_timeout_ms,
                ..
            } => {
                assert_eq!(db, "shard-0.swshard");
                assert!(shard_worker);
                assert_eq!(request_timeout_ms, 500);
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("serve --db d.swdb --socket s.sock")).unwrap() {
            Command::Serve {
                shard_worker,
                request_timeout_ms,
                ..
            } => {
                assert!(!shard_worker);
                assert_eq!(request_timeout_ms, 10_000);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shard_prepare_and_sharded_search_parse() {
        match parse(&argv("shard-prepare --db d.fasta --out shards/ --shards 4")).unwrap() {
            Command::ShardPrepare {
                db,
                out,
                shards,
                replicas,
                endpoints,
            } => {
                assert_eq!(db, "d.fasta");
                assert_eq!(out, "shards/");
                assert_eq!(shards, 4);
                assert_eq!(replicas, 1);
                assert_eq!(endpoints, None);
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv(
            "shard-prepare --db d --out o --shards 2 --replicas 2 \
             --endpoints tcp://a:1,tcp://b:1",
        ))
        .unwrap()
        {
            Command::ShardPrepare {
                replicas,
                endpoints,
                ..
            } => {
                assert_eq!(replicas, 2);
                assert_eq!(endpoints.as_deref(), Some("tcp://a:1,tcp://b:1"));
            }
            other => panic!("{other:?}"),
        }
        assert!(
            parse(&argv("shard-prepare --db d --out o")).is_err(),
            "needs --shards"
        );
        assert!(parse(&argv("shard-prepare --db d --out o --shards 0")).is_err());
        assert!(parse(&argv(
            "shard-prepare --db d --out o --shards 2 --replicas 0"
        ))
        .is_err());

        match parse(&argv(
            "search --query q.fa --shards shards/shards.manifest --top 7 --threads 2 --json",
        ))
        .unwrap()
        {
            Command::SearchShards {
                query,
                manifest,
                shard_dir,
                top,
                drill,
                net_fault,
                net_fault_seed,
                placement,
                coord_journal,
                resume_coord,
                metrics_out,
                json,
                opts,
            } => {
                assert_eq!(query, "q.fa");
                assert_eq!(manifest, "shards/shards.manifest");
                assert_eq!(shard_dir, None);
                assert_eq!(top, 7);
                assert_eq!(drill, None);
                assert_eq!(net_fault, None);
                assert_eq!(net_fault_seed, None);
                assert_eq!(placement, None);
                assert_eq!(coord_journal, None);
                assert!(!resume_coord);
                assert_eq!(metrics_out, None);
                assert!(json);
                assert_eq!(opts.threads, 2);
            }
            other => panic!("{other:?}"),
        }
        // Without --shards the search arm still demands --db.
        assert!(parse(&argv("search --query q.fa")).is_err());
    }

    #[test]
    fn sharded_search_fabric_flags_parse() {
        match parse(&argv(
            "search --query q.fa --shards m --net-fault refuse@0,drop@1:2 \
             --placement p.plan --coord-journal j.bin --resume-coord \
             --metrics-out coord.prom",
        ))
        .unwrap()
        {
            Command::SearchShards {
                net_fault,
                placement,
                coord_journal,
                resume_coord,
                metrics_out,
                ..
            } => {
                assert_eq!(net_fault.as_deref(), Some("refuse@0,drop@1:2"));
                assert_eq!(placement.as_deref(), Some("p.plan"));
                assert_eq!(coord_journal.as_deref(), Some("j.bin"));
                assert!(resume_coord);
                assert_eq!(metrics_out.as_deref(), Some("coord.prom"));
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("search --query q.fa --shards m --net-fault-seed 9")).unwrap() {
            Command::SearchShards { net_fault_seed, .. } => {
                assert_eq!(net_fault_seed, Some(9));
            }
            other => panic!("{other:?}"),
        }
        // A malformed drill dies in the parser, before any worker boots.
        assert!(parse(&argv("search --query q --shards m --net-fault explode@0")).is_err());
        assert!(parse(&argv(
            "search --query q --shards m --net-fault refuse@0 --net-fault-seed 1"
        ))
        .is_err());
    }

    #[test]
    fn serve_listen_and_submit_retries_parse() {
        match parse(&argv("serve --db d.swdb --listen tcp://127.0.0.1:7701")).unwrap() {
            Command::Serve { socket, .. } => assert_eq!(socket, "tcp://127.0.0.1:7701"),
            other => panic!("{other:?}"),
        }
        assert!(
            parse(&argv("serve --db d --socket s.sock --listen tcp://h:1")).is_err(),
            "--socket and --listen are mutually exclusive"
        );
        match parse(&argv(
            "submit --socket tcp://127.0.0.1:7701 --stats --connect-retries 4 \
             --connect-backoff-ms 10",
        ))
        .unwrap()
        {
            Command::Submit {
                socket,
                connect_retries,
                connect_backoff_ms,
                ..
            } => {
                assert_eq!(socket, "tcp://127.0.0.1:7701");
                assert_eq!(connect_retries, 4);
                assert_eq!(connect_backoff_ms, 10);
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("submit --socket s.sock --stats")).unwrap() {
            Command::Submit {
                connect_retries,
                connect_backoff_ms,
                ..
            } => {
                assert_eq!(connect_retries, 0, "fail fast by default");
                assert_eq!(connect_backoff_ms, 25);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn submit_needs_exactly_one_operation() {
        match parse(&argv(
            "submit --socket s.sock --query q.fa --tenant acme --drill delay@0:500 --top 5",
        ))
        .unwrap()
        {
            Command::Submit {
                socket,
                query,
                tenant,
                drill,
                top,
                ..
            } => {
                assert_eq!(socket, "s.sock");
                assert_eq!(query.as_deref(), Some("q.fa"));
                assert_eq!(tenant, "acme");
                assert_eq!(drill.as_deref(), Some("delay@0:500"));
                assert_eq!(top, 5);
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("submit --socket s.sock --status 7")).unwrap() {
            Command::Submit { status, tenant, .. } => {
                assert_eq!(status, Some(7));
                assert_eq!(tenant, "anon");
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("submit --socket s.sock --cancel 3")).unwrap() {
            Command::Submit { cancel, .. } => assert_eq!(cancel, Some(3)),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse(&argv("submit --socket s.sock --stats")).unwrap(),
            Command::Submit { stats: true, .. }
        ));
        assert!(matches!(
            parse(&argv("submit --socket s.sock --shutdown")).unwrap(),
            Command::Submit { shutdown: true, .. }
        ));
        assert!(matches!(
            parse(&argv("submit --socket s.sock --metrics")).unwrap(),
            Command::Submit { metrics: true, .. }
        ));
        assert!(matches!(
            parse(&argv("submit --socket s.sock --health")).unwrap(),
            Command::Submit { health: true, .. }
        ));
        assert!(matches!(
            parse(&argv("submit --socket s.sock --stats --json")).unwrap(),
            Command::Submit {
                stats: true,
                json: true,
                ..
            }
        ));
        // Zero or two operations are both rejected.
        assert!(parse(&argv("submit --socket s.sock")).is_err());
        assert!(parse(&argv("submit --socket s.sock --query q --stats")).is_err());
        assert!(parse(&argv("submit --socket s.sock --metrics --health")).is_err());
        assert!(parse(&argv("submit --query q")).is_err(), "needs --socket");
    }

    #[test]
    fn quarantine_flag_parses() {
        match parse(&argv("search --query q --db d --quarantine")).unwrap() {
            Command::Search { opts, .. } => assert!(opts.quarantine),
            other => panic!("{other:?}"),
        }
        match parse(&argv("makedb --in a.fa --out b.swdb --quarantine")).unwrap() {
            Command::MakeDb { quarantine, .. } => assert!(quarantine),
            other => panic!("{other:?}"),
        }
        match parse(&argv("makedb --in a.fa --out b.swdb")).unwrap() {
            Command::MakeDb { quarantine, .. } => assert!(!quarantine),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn trace_check_needs_at_least_one_file() {
        assert!(parse(&argv("trace-check")).is_err());
        let c = parse(&argv("trace-check --trace t.jsonl --metrics m.prom")).unwrap();
        assert_eq!(
            c,
            Command::TraceCheck {
                trace: Some("t.jsonl".into()),
                metrics: Some("m.prom".into()),
            }
        );
    }

    #[test]
    fn fault_spec_forms_parse() {
        assert_eq!(parse_fault_spec("kill@0").unwrap().kind, FaultKind::Kill);
        assert_eq!(
            parse_fault_spec("wedge@7").unwrap(),
            FaultSpec {
                device: DEVICE_ACCEL,
                chunk: 7,
                kind: FaultKind::Wedge,
            }
        );
        assert_eq!(
            parse_fault_spec("delay@3:250").unwrap().kind,
            FaultKind::Delay(Duration::from_millis(250))
        );
        assert_eq!(
            parse_fault_spec("KILL-POOL@1").unwrap().kind,
            FaultKind::KillPool
        );
    }

    #[test]
    fn fault_spec_rejects_malformed() {
        for bad in [
            "kill", "kill@", "kill@x", "delay@3", "delay@3:", "pause@1", "@2",
        ] {
            assert!(parse_fault_spec(bad).is_err(), "accepted '{bad}'");
        }
    }

    #[test]
    fn selftest_lanes_validated() {
        assert!(parse(&argv("selftest --lanes 5")).is_err());
        let c = parse(&argv("selftest --lanes 32 --scale 2")).unwrap();
        assert_eq!(
            c,
            Command::SelfTest {
                lanes: 32,
                scale: 2
            }
        );
    }
}
