//! Resume-equivalence matrix for durable searches.
//!
//! The durability contract: a search interrupted at *any* point and
//! resumed from its checkpoint produces a hit list identical to an
//! uninterrupted run — same hits, same order, same cell accounting —
//! and its recovery counters stay monotone across run segments. The
//! matrix here interrupts via [`DrainSignal`] thresholds at 25/50/75%
//! of the batches (deterministic in-process interruption); the
//! whole-process SIGKILL variant of the same contract is exercised by
//! the CLI's subprocess crash harness (`crates/cli/tests`), which this
//! suite cannot do in-process.

use std::path::PathBuf;
use sw_core::{
    CheckpointError, DurableOptions, DurableSearchError, HeteroEngine, HeteroSearchConfig,
    PreparedDb, SearchConfig, SearchEngine,
};
use sw_sched::{DrainSignal, FaultInjector};
use sw_seq::gen::{generate_database, generate_query, DbSpec};
use sw_seq::Alphabet;

fn setup() -> (PreparedDb, Vec<u8>) {
    let a = Alphabet::protein();
    // Lanes of 4 → ~50 batches: enough queue depth that a drain request
    // always lands while work is still outstanding (in-flight chunks
    // finish after the request, so a shallow queue could complete).
    let db = PreparedDb::prepare(generate_database(&DbSpec::tiny(13)), 4, &a);
    let q = generate_query(100, 21).residues;
    (db, q)
}

fn ckpt_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sw-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{tag}.ckpt"))
}

#[test]
fn clean_durable_run_matches_static_and_dynamic() {
    let (db, q) = setup();
    let engine = SearchEngine::paper_default();
    let hetero = HeteroEngine::new(engine);
    let plan = hetero.plan_split(&db, q.len(), 0.5);
    let cfg = HeteroSearchConfig::best(2, 2);

    let static_ref = hetero.search(
        &q,
        &db,
        &plan,
        &SearchConfig::best(2),
        &SearchConfig::best(2),
    );
    let dynamic_ref = hetero.search_dynamic(&q, &db, &plan, &cfg);

    let path = ckpt_path("clean");
    let out = hetero
        .search_dynamic_resumable(
            &q,
            &db,
            &plan,
            &cfg,
            &FaultInjector::none(),
            &DurableOptions {
                checkpoint_path: Some(&path),
                checkpoint_dir: None,
                interval_chunks: 2,
                drain: None,
                resume: false,
            },
        )
        .expect("clean durable run");
    assert!(!out.drained);
    assert_eq!(out.resumes, 0);
    assert_eq!(out.resumed_tasks, 0);
    assert_eq!(out.tasks_done, out.n_batches);
    let res = out.outcome.expect("completed").results;
    assert_eq!(res.hits, static_ref.hits, "durable == static split");
    assert_eq!(res.hits, dynamic_ref.results.hits, "durable == dynamic");
    assert_eq!(res.cells, static_ref.cells, "cell accounting identical");
    assert!(
        !path.exists(),
        "completed search deletes its checkpoint file"
    );
}

#[test]
fn drain_resume_equivalence_matrix() {
    // Interrupt at 25%, 50%, and 75% of the batches; resume each to
    // completion; every final hit list must equal the uninterrupted
    // static-split and dynamic references.
    let (db, q) = setup();
    let engine = SearchEngine::paper_default();
    let hetero = HeteroEngine::new(engine);
    let plan = hetero.plan_split(&db, q.len(), 0.5);
    let cfg = HeteroSearchConfig::best(2, 2);
    let n = db.batches.len() as u64;

    let static_ref = hetero.search(
        &q,
        &db,
        &plan,
        &SearchConfig::best(2),
        &SearchConfig::best(2),
    );
    let dynamic_ref = hetero.search_dynamic(&q, &db, &plan, &cfg);

    for (tag, fraction) in [("q1", 0.25f64), ("q2", 0.5), ("q3", 0.75)] {
        let path = ckpt_path(tag);
        let threshold = ((n as f64 * fraction) as u64).max(1);
        let drain = DrainSignal::after_tasks(threshold);
        let first = hetero
            .search_dynamic_resumable(
                &q,
                &db,
                &plan,
                &cfg,
                &FaultInjector::none(),
                &DurableOptions {
                    checkpoint_path: Some(&path),
                    checkpoint_dir: None,
                    interval_chunks: 1,
                    drain: Some(&drain),
                    resume: false,
                },
            )
            .expect("drained segment");
        assert!(first.drained, "{tag}: drain must interrupt the run");
        assert!(first.outcome.is_none());
        assert!(
            first.tasks_done >= threshold,
            "{tag}: drain only fires after its threshold"
        );
        assert!(
            first.tasks_done < n,
            "{tag}: the run must actually be partial \
             ({} of {n} done — lower the threshold?)",
            first.tasks_done
        );
        assert!(path.exists(), "{tag}: drained run leaves a checkpoint");
        assert!(first.checkpoints_written >= 1);

        let resumed = hetero
            .search_dynamic_resumable(
                &q,
                &db,
                &plan,
                &cfg,
                &FaultInjector::none(),
                &DurableOptions {
                    checkpoint_path: Some(&path),
                    checkpoint_dir: None,
                    interval_chunks: 1,
                    drain: None,
                    resume: true,
                },
            )
            .expect("resumed segment");
        assert!(!resumed.drained);
        assert_eq!(resumed.resumes, 1, "{tag}: one resume");
        assert_eq!(
            resumed.resumed_tasks, first.tasks_done,
            "{tag}: every committed batch is loaded, none recomputed"
        );
        let res = resumed.outcome.expect("completed").results;
        assert_eq!(res.hits, static_ref.hits, "{tag}: resumed == static");
        assert_eq!(
            res.hits, dynamic_ref.results.hits,
            "{tag}: resumed == dynamic"
        );
        assert_eq!(res.cells, static_ref.cells, "{tag}: cells identical");
        // Monotone recovery counters across segments.
        for d in 0..2 {
            let a = first.recovery[d];
            let b = resumed.recovery[d];
            assert!(
                b.retries >= a.retries
                    && b.requeues >= a.requeues
                    && b.lost_leases >= a.lost_leases
                    && b.failures >= a.failures,
                "{tag}: device {d} counters must be monotone"
            );
        }
        assert!(!path.exists(), "{tag}: completion deletes the checkpoint");
    }
}

#[test]
fn drain_during_drained_resume_still_converges() {
    // The "kill during drain" cell of the matrix: a resumed run is
    // itself drained again (its threshold is below what the first
    // segment completed, so the second segment commits at most a chunk
    // before stopping). A third segment finishes the search; hits must
    // still be byte-identical and counters monotone over all three.
    let (db, q) = setup();
    let engine = SearchEngine::paper_default();
    let hetero = HeteroEngine::new(engine);
    let plan = hetero.plan_split(&db, q.len(), 0.5);
    let cfg = HeteroSearchConfig::best(2, 2);
    let n = db.batches.len() as u64;
    let reference = hetero.search_dynamic(&q, &db, &plan, &cfg);

    let path = ckpt_path("mid-drain");
    let drain1 = DrainSignal::after_tasks(n / 2);
    let s1 = hetero
        .search_dynamic_resumable(
            &q,
            &db,
            &plan,
            &cfg,
            &FaultInjector::none(),
            &DurableOptions {
                checkpoint_path: Some(&path),
                checkpoint_dir: None,
                interval_chunks: 1,
                drain: Some(&drain1),
                resume: false,
            },
        )
        .expect("segment 1");
    assert!(s1.drained);

    // Threshold below the already-done count: fires on the resumed
    // run's very first commit — the drain lands while the run is still
    // absorbing its checkpoint.
    let drain2 = DrainSignal::after_tasks(s1.tasks_done.max(1));
    let s2 = hetero
        .search_dynamic_resumable(
            &q,
            &db,
            &plan,
            &cfg,
            &FaultInjector::none(),
            &DurableOptions {
                checkpoint_path: Some(&path),
                checkpoint_dir: None,
                interval_chunks: 1,
                drain: Some(&drain2),
                resume: true,
            },
        )
        .expect("segment 2");
    assert!(s2.drained, "second drain interrupts the resumed run");
    assert_eq!(s2.resumes, 1);
    assert!(s2.tasks_done >= s1.tasks_done, "progress never regresses");

    let s3 = hetero
        .search_dynamic_resumable(
            &q,
            &db,
            &plan,
            &cfg,
            &FaultInjector::none(),
            &DurableOptions {
                checkpoint_path: Some(&path),
                checkpoint_dir: None,
                interval_chunks: 1,
                drain: None,
                resume: true,
            },
        )
        .expect("segment 3");
    assert!(!s3.drained);
    assert_eq!(s3.resumes, 2, "two resumes recorded across segments");
    assert_eq!(
        s3.outcome.expect("completed").results.hits,
        reference.results.hits,
        "three-segment search == uninterrupted search"
    );
    for d in 0..2 {
        assert!(
            s3.recovery[d].failures >= s2.recovery[d].failures
                && s2.recovery[d].failures >= s1.recovery[d].failures,
            "failure counters monotone across all three segments"
        );
    }
}

#[test]
fn faulty_segment_keeps_counters_monotone_after_resume() {
    use sw_sched::{FaultKind, FaultPlan, FaultSpec, DEVICE_ACCEL};
    let (db, q) = setup();
    let engine = SearchEngine::paper_default();
    let hetero = HeteroEngine::new(engine);
    let plan = hetero.plan_split(&db, q.len(), 0.5);
    let cfg = HeteroSearchConfig::best(2, 1);
    let n = db.batches.len() as u64;
    let reference = hetero.search_dynamic(&q, &db, &plan, &cfg);

    let path = ckpt_path("faulty");
    // An accel worker dies on its first chunk, then the run drains.
    let inj = FaultInjector::new(FaultPlan::single(FaultSpec {
        device: DEVICE_ACCEL,
        chunk: 0,
        kind: FaultKind::Kill,
    }));
    let drain = DrainSignal::after_tasks((n * 3 / 4).max(1));
    let s1 = hetero
        .search_dynamic_resumable(
            &q,
            &db,
            &plan,
            &cfg,
            &inj,
            &DurableOptions {
                checkpoint_path: Some(&path),
                checkpoint_dir: None,
                interval_chunks: 1,
                drain: Some(&drain),
                resume: false,
            },
        )
        .expect("faulty drained segment");
    assert!(s1.drained);
    assert!(
        s1.recovery[DEVICE_ACCEL].failures >= 1,
        "the injected kill is counted"
    );

    let s2 = hetero
        .search_dynamic_resumable(
            &q,
            &db,
            &plan,
            &cfg,
            &FaultInjector::none(),
            &DurableOptions {
                checkpoint_path: Some(&path),
                checkpoint_dir: None,
                interval_chunks: 1,
                drain: None,
                resume: true,
            },
        )
        .expect("clean resumed segment");
    assert_eq!(
        s2.outcome.expect("completed").results.hits,
        reference.results.hits,
        "a fault before the drain never changes the final hits"
    );
    assert!(
        s2.recovery[DEVICE_ACCEL].failures >= s1.recovery[DEVICE_ACCEL].failures,
        "failure totals carried across the restart"
    );
}

#[test]
fn resume_against_wrong_query_is_typed_mismatch() {
    let (db, q) = setup();
    let hetero = HeteroEngine::new(SearchEngine::paper_default());
    let plan = hetero.plan_split(&db, q.len(), 0.5);
    let cfg = HeteroSearchConfig::best(2, 2);
    let path = ckpt_path("wrong-query");
    let drain = DrainSignal::after_tasks(1);
    hetero
        .search_dynamic_resumable(
            &q,
            &db,
            &plan,
            &cfg,
            &FaultInjector::none(),
            &DurableOptions {
                checkpoint_path: Some(&path),
                checkpoint_dir: None,
                interval_chunks: 1,
                drain: Some(&drain),
                resume: false,
            },
        )
        .expect("drained segment");
    assert!(path.exists());

    let other_q = generate_query(100, 22).residues;
    let plan2 = hetero.plan_split(&db, other_q.len(), 0.5);
    let err = hetero
        .search_dynamic_resumable(
            &other_q,
            &db,
            &plan2,
            &cfg,
            &FaultInjector::none(),
            &DurableOptions {
                checkpoint_path: Some(&path),
                checkpoint_dir: None,
                interval_chunks: 1,
                drain: None,
                resume: true,
            },
        )
        .expect_err("a different query must be rejected");
    match err {
        DurableSearchError::Checkpoint(CheckpointError::Mismatch { field, .. }) => {
            assert_eq!(field, "query digest");
        }
        other => panic!("expected a fingerprint mismatch, got: {other}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_checkpoint_is_rejected_not_trusted() {
    let (db, q) = setup();
    let hetero = HeteroEngine::new(SearchEngine::paper_default());
    let plan = hetero.plan_split(&db, q.len(), 0.5);
    let cfg = HeteroSearchConfig::best(2, 2);
    let path = ckpt_path("corrupt");
    let drain = DrainSignal::after_tasks(2);
    hetero
        .search_dynamic_resumable(
            &q,
            &db,
            &plan,
            &cfg,
            &FaultInjector::none(),
            &DurableOptions {
                checkpoint_path: Some(&path),
                checkpoint_dir: None,
                interval_chunks: 1,
                drain: Some(&drain),
                resume: false,
            },
        )
        .expect("drained segment");
    // Flip one payload byte on disk.
    let mut bytes = std::fs::read(&path).expect("checkpoint bytes");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&path, &bytes).expect("rewrite");

    let err = hetero
        .search_dynamic_resumable(
            &q,
            &db,
            &plan,
            &cfg,
            &FaultInjector::none(),
            &DurableOptions {
                checkpoint_path: Some(&path),
                checkpoint_dir: None,
                interval_chunks: 1,
                drain: None,
                resume: true,
            },
        )
        .expect_err("bit-flipped checkpoint must be rejected");
    match err {
        DurableSearchError::Checkpoint(CheckpointError::Corrupt { detail }) => {
            assert!(detail.contains("CRC32"), "unexpected detail: {detail}");
        }
        other => panic!("expected a corruption error, got: {other}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn shared_checkpoint_dir_keeps_concurrent_searches_apart() {
    // Satellite of the daemon work: two different searches handed the
    // SAME checkpoint directory must never collide — the file name is
    // derived from the search fingerprint, so each drained search gets
    // its own checkpoint and each resumes to its own exact hit list.
    let (db, q1) = setup();
    let q2 = generate_query(140, 77).residues;
    let engine = SearchEngine::paper_default();
    let hetero = HeteroEngine::new(engine);
    let cfg = HeteroSearchConfig::best(2, 2);
    let dir = std::env::temp_dir().join(format!("sw-ckpt-dir-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let mut finals = Vec::new();
    for q in [&q1, &q2] {
        let plan = hetero.plan_split(&db, q.len(), 0.5);
        let reference = hetero.search(
            q,
            &db,
            &plan,
            &SearchConfig::best(2),
            &SearchConfig::best(2),
        );
        let n = db.batches.len() as u64;
        let dopts = DurableOptions {
            checkpoint_path: None,
            checkpoint_dir: Some(&dir),
            interval_chunks: 1,
            drain: Some(&DrainSignal::after_tasks((n / 2).max(1))),
            resume: false,
        };
        let first = hetero
            .search_dynamic_resumable(q, &db, &plan, &cfg, &FaultInjector::none(), &dopts)
            .expect("drained first segment");
        assert!(first.drained, "drain threshold must interrupt the run");
        finals.push((q, plan, reference));
    }

    // Both drained checkpoints coexist under their fingerprint names.
    let names: Vec<String> = std::fs::read_dir(&dir)
        .expect("checkpoint dir")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert_eq!(
        names.len(),
        2,
        "one fingerprint-named checkpoint per search: {names:?}"
    );
    for (q, _, _) in &finals {
        let expected = sw_core::SearchFingerprint::compute(&db, q).file_name();
        assert!(names.contains(&expected), "missing {expected} in {names:?}");
    }

    // Each search resumes from its own file to its own exact hit list.
    for (q, plan, reference) in &finals {
        let dopts = DurableOptions {
            checkpoint_path: None,
            checkpoint_dir: Some(&dir),
            interval_chunks: 1,
            drain: None,
            resume: true,
        };
        let out = hetero
            .search_dynamic_resumable(q, &db, plan, &cfg, &FaultInjector::none(), &dopts)
            .expect("resumed to completion");
        assert!(out.resumes >= 1, "second segment must actually resume");
        assert!(out.resumed_tasks > 0, "resume must load committed work");
        let res = out.outcome.expect("completed").results;
        assert_eq!(res.hits, reference.hits, "resumed == uninterrupted");
    }
    assert_eq!(
        std::fs::read_dir(&dir).unwrap().count(),
        0,
        "completed searches clean up their own checkpoints only"
    );
    std::fs::remove_dir_all(&dir).ok();
}
