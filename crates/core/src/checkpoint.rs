//! Crash-safe search checkpoints — the durable half of a resumable
//! heterogeneous search.
//!
//! A long database search on a flaky node can die hours in: the process
//! is OOM-killed, the job scheduler preempts it, the machine loses
//! power. Lease-based recovery (sw-sched) survives *worker* deaths, but
//! not the death of the whole process. This module persists the search's
//! progress so a fresh process can pick up where the dead one stopped:
//!
//! * which lane batches are done, with their hits and cell counts —
//!   batch results are pure functions of the batch index, so replaying
//!   only the missing batches yields a byte-identical final hit list;
//! * the split estimator's learned accelerator share, so the resumed run
//!   starts from the observed device balance instead of the static seed;
//! * cumulative recovery totals, so retries/requeues/lost-lease counters
//!   stay monotone across process restarts;
//! * a [`SearchFingerprint`] binding the checkpoint to one exact
//!   (database, query, lane count) triple — resuming against the wrong
//!   database is rejected, not silently merged.
//!
//! # File format (`SWCKPT1`)
//!
//! ```text
//! magic   [u8; 8]  b"SWCKPT1\0"
//! crc32   u32      CRC32 (IEEE) over the payload
//! payload …        everything below, little-endian
//!   db_digest     u64   sw_swdb::snapshot::content_digest of the sorted db
//!   query_digest  u64   FNV-1a 64 of the encoded query residues
//!   lanes         u64
//!   n_batches     u64
//!   seq           u64   checkpoint sequence number (monotone per search)
//!   resumes       u64   completed resume count when this was written
//!   accel_share   u64   f64 bits of the estimator's accelerator share
//!   recovery      2 × (retries, requeues, lost_leases, failures) u64
//!   n_done        u64
//!   batch record  × n_done:
//!     batch    u64      batch index
//!     device   u8       pool that computed it (0 cpu / 1 accel)
//!     real     u64      real DP cells
//!     padded   u64      padded DP cells
//!     rescued  u64      saturated lanes recomputed exactly
//!     n_hits   u32
//!     hit      × n_hits: id u32, score i64
//! ```
//!
//! Writes are atomic-by-rename: the file is written to `<path>.tmp` and
//! renamed over `<path>`, so a crash mid-write leaves the previous
//! checkpoint intact (rename is atomic on POSIX filesystems). There is
//! deliberately no fsync: the threat model is *process* death — the OS
//! survives and flushes the page cache. The CRC rejects the torn file a
//! real power cut could leave behind, and the search then reruns from
//! scratch, which is slow but never wrong.

use crate::results::Hit;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;
use sw_kernels::CellCount;
use sw_sched::DeviceMetrics;
use sw_seq::SeqId;
use sw_swdb::integrity::{crc32, Fnv64};

/// File magic, version 1.
const MAGIC: &[u8; 8] = b"SWCKPT1\0";

/// Why a checkpoint could not be loaded or used.
#[derive(Debug)]
pub enum CheckpointError {
    /// The file could not be read or written.
    Io(io::Error),
    /// The file is not a well-formed checkpoint (bad magic, failed CRC,
    /// truncated or trailing bytes).
    Corrupt {
        /// What was wrong.
        detail: String,
    },
    /// The checkpoint is well-formed but belongs to a different search
    /// (database, query, or lane layout changed since it was written).
    Mismatch {
        /// The fingerprint field that disagreed.
        field: &'static str,
        /// The value of the present search.
        expected: u64,
        /// The value stored in the checkpoint.
        found: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Corrupt { detail } => {
                write!(f, "corrupt checkpoint: {detail}")
            }
            CheckpointError::Mismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "checkpoint does not belong to this search: {field} mismatch \
                 (search has {expected:#018x}, checkpoint has {found:#018x})"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Identity of one search: a checkpoint is only valid against the exact
/// database content, query, and lane layout it was written for. Batch
/// indices are meaningless across any of these changing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchFingerprint {
    /// Content digest of the *sorted* database (load-path independent —
    /// a database loaded from FASTA and the same database loaded from a
    /// snapshot fingerprint identically).
    pub db_digest: u64,
    /// FNV-1a 64 of the encoded query residues.
    pub query_digest: u64,
    /// Lane count the batches were packed for.
    pub lanes: u64,
    /// Number of lane batches (the executor's task count).
    pub n_batches: u64,
}

impl SearchFingerprint {
    /// Fingerprint a prepared database + encoded query.
    pub fn compute(db: &crate::prepare::PreparedDb, query: &[u8]) -> Self {
        Self::with_db_digest(sw_swdb::snapshot::content_digest(db.sorted.db()), db, query)
    }

    /// [`Self::compute`] with the database digest precomputed. The db
    /// digest walks every resident residue — batch callers fingerprint
    /// N queries over one database and must not pay that walk N times.
    pub fn with_db_digest(db_digest: u64, db: &crate::prepare::PreparedDb, query: &[u8]) -> Self {
        SearchFingerprint {
            db_digest,
            query_digest: Fnv64::new().update(query).finish(),
            lanes: db.lanes as u64,
            n_batches: db.batches.len() as u64,
        }
    }

    /// Canonical checkpoint file name for this search, unique per
    /// (database, query, lane packing): two searches can share one
    /// checkpoint *directory* without their SWCKPT1 tmp+rename writes
    /// clobbering each other, and a resume finds its own file by
    /// recomputing the fingerprint.
    pub fn file_name(&self) -> String {
        format!(
            "swckpt-{:016x}-{:016x}-{}x{}.ckpt",
            self.db_digest, self.query_digest, self.lanes, self.n_batches
        )
    }
}

/// Cumulative recovery counters of one device pool, carried across
/// process restarts so the totals a resumed run reports are monotone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryTotals {
    /// Chunks re-executed from the requeue list.
    pub retries: u64,
    /// Chunks released un-executed for others to re-run.
    pub requeues: u64,
    /// Leases reclaimed by timeout.
    pub lost_leases: u64,
    /// Failures charged against the pool's budget.
    pub failures: u64,
}

impl RecoveryTotals {
    /// These totals plus the counters one run segment accumulated.
    #[must_use]
    pub fn plus(&self, m: &DeviceMetrics) -> RecoveryTotals {
        RecoveryTotals {
            retries: self.retries + m.retries,
            requeues: self.requeues + m.requeues,
            lost_leases: self.lost_leases + m.lost_leases,
            failures: self.failures + m.failures,
        }
    }
}

/// One completed lane batch: everything the search needs to *not*
/// recompute it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchResult {
    /// Batch index (task index of the dual-pool executor).
    pub batch: usize,
    /// Device pool that computed it.
    pub device: usize,
    /// The batch's hits.
    pub hits: Vec<Hit>,
    /// Cell accounting of the batch.
    pub cells: CellCount,
    /// Saturated lanes recomputed exactly.
    pub rescued: u64,
}

/// A persisted search state: fingerprint + progress + carried counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Which search this belongs to.
    pub fingerprint: SearchFingerprint,
    /// Monotone sequence number of this checkpoint within the search.
    pub seq: u64,
    /// How many times the search had been resumed when this was written.
    pub resumes: u64,
    /// The split estimator's accelerator share at write time.
    pub accel_share: f64,
    /// Cumulative recovery totals per device (`[cpu, accel]`), including
    /// all prior run segments.
    pub recovery: [RecoveryTotals; 2],
    /// Completed batches.
    pub done: Vec<BatchResult>,
}

/// Little-endian payload reader with descriptive truncation errors.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CheckpointError> {
        if self.buf.len() - self.pos < n {
            return Err(CheckpointError::Corrupt {
                detail: format!(
                    "truncated payload: needed {n} byte(s) for {what}, \
                     {} left",
                    self.buf.len() - self.pos
                ),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u64(&mut self, what: &str) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn u32(&mut self, what: &str) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    fn i64(&mut self, what: &str) -> Result<i64, CheckpointError> {
        Ok(i64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    fn u8(&mut self, what: &str) -> Result<u8, CheckpointError> {
        Ok(self.take(1, what)?[0])
    }
}

impl Checkpoint {
    /// Serialise to the `SWCKPT1` byte format.
    pub fn encode(&self) -> Vec<u8> {
        let mut p: Vec<u8> = Vec::with_capacity(128 + self.done.len() * 64);
        let fp = &self.fingerprint;
        for v in [
            fp.db_digest,
            fp.query_digest,
            fp.lanes,
            fp.n_batches,
            self.seq,
            self.resumes,
            self.accel_share.to_bits(),
        ] {
            p.extend_from_slice(&v.to_le_bytes());
        }
        for r in &self.recovery {
            for v in [r.retries, r.requeues, r.lost_leases, r.failures] {
                p.extend_from_slice(&v.to_le_bytes());
            }
        }
        p.extend_from_slice(&(self.done.len() as u64).to_le_bytes());
        for b in &self.done {
            p.extend_from_slice(&(b.batch as u64).to_le_bytes());
            p.push(b.device as u8);
            p.extend_from_slice(&b.cells.real.to_le_bytes());
            p.extend_from_slice(&b.cells.padded.to_le_bytes());
            p.extend_from_slice(&b.rescued.to_le_bytes());
            p.extend_from_slice(&(b.hits.len() as u32).to_le_bytes());
            for h in &b.hits {
                p.extend_from_slice(&h.id.0.to_le_bytes());
                p.extend_from_slice(&h.score.to_le_bytes());
            }
        }
        let mut out = Vec::with_capacity(MAGIC.len() + 4 + p.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&crc32(&p).to_le_bytes());
        out.extend_from_slice(&p);
        out
    }

    /// Parse the `SWCKPT1` byte format, rejecting bad magic, CRC
    /// mismatches, truncation, and trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        if bytes.len() < MAGIC.len() + 4 {
            return Err(CheckpointError::Corrupt {
                detail: format!("file too short ({} bytes) for a header", bytes.len()),
            });
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(CheckpointError::Corrupt {
                detail: "bad magic (not a SWCKPT1 checkpoint)".to_string(),
            });
        }
        let stored = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        let payload = &bytes[12..];
        let computed = crc32(payload);
        if stored != computed {
            return Err(CheckpointError::Corrupt {
                detail: format!(
                    "CRC32 mismatch (stored {stored:#010x}, computed {computed:#010x})"
                ),
            });
        }
        let mut r = Reader {
            buf: payload,
            pos: 0,
        };
        let fingerprint = SearchFingerprint {
            db_digest: r.u64("db digest")?,
            query_digest: r.u64("query digest")?,
            lanes: r.u64("lane count")?,
            n_batches: r.u64("batch count")?,
        };
        let seq = r.u64("sequence number")?;
        let resumes = r.u64("resume count")?;
        let accel_share = f64::from_bits(r.u64("accel share")?);
        if !(accel_share.is_finite() && (0.0..=1.0).contains(&accel_share)) {
            return Err(CheckpointError::Corrupt {
                detail: format!("accel share {accel_share} outside [0, 1]"),
            });
        }
        let mut recovery = [RecoveryTotals::default(); 2];
        for rec in &mut recovery {
            rec.retries = r.u64("recovery retries")?;
            rec.requeues = r.u64("recovery requeues")?;
            rec.lost_leases = r.u64("recovery lost leases")?;
            rec.failures = r.u64("recovery failures")?;
        }
        let n_done = r.u64("done-batch count")?;
        if n_done > fingerprint.n_batches {
            return Err(CheckpointError::Corrupt {
                detail: format!(
                    "{n_done} done batches exceed the search's {} batches",
                    fingerprint.n_batches
                ),
            });
        }
        let mut done = Vec::with_capacity(n_done as usize);
        for _ in 0..n_done {
            let batch = r.u64("batch index")?;
            if batch >= fingerprint.n_batches {
                return Err(CheckpointError::Corrupt {
                    detail: format!(
                        "batch index {batch} out of range (search has {} batches)",
                        fingerprint.n_batches
                    ),
                });
            }
            let device = r.u8("device")?;
            if device > 1 {
                return Err(CheckpointError::Corrupt {
                    detail: format!("device {device} is neither cpu (0) nor accel (1)"),
                });
            }
            let real = r.u64("real cells")?;
            let padded = r.u64("padded cells")?;
            let rescued = r.u64("rescued lanes")?;
            let n_hits = r.u32("hit count")?;
            let mut hits = Vec::with_capacity(n_hits as usize);
            for _ in 0..n_hits {
                let id = r.u32("hit id")?;
                let score = r.i64("hit score")?;
                hits.push(Hit {
                    id: SeqId(id),
                    score,
                });
            }
            done.push(BatchResult {
                batch: batch as usize,
                device: device as usize,
                hits,
                cells: CellCount { real, padded },
                rescued,
            });
        }
        if r.pos != payload.len() {
            return Err(CheckpointError::Corrupt {
                detail: format!(
                    "{} trailing byte(s) after the last batch record",
                    payload.len() - r.pos
                ),
            });
        }
        Ok(Checkpoint {
            fingerprint,
            seq,
            resumes,
            accel_share,
            recovery,
            done,
        })
    }

    /// Reject a checkpoint that does not belong to the search identified
    /// by `fp`.
    pub fn verify(&self, fp: &SearchFingerprint) -> Result<(), CheckpointError> {
        let pairs = [
            ("database digest", fp.db_digest, self.fingerprint.db_digest),
            (
                "query digest",
                fp.query_digest,
                self.fingerprint.query_digest,
            ),
            ("lane count", fp.lanes, self.fingerprint.lanes),
            ("batch count", fp.n_batches, self.fingerprint.n_batches),
        ];
        for (field, expected, found) in pairs {
            if expected != found {
                return Err(CheckpointError::Mismatch {
                    field,
                    expected,
                    found,
                });
            }
        }
        Ok(())
    }

    /// Write atomically: serialise to `<path>.tmp`, then rename over
    /// `path`. A crash mid-write leaves the previous checkpoint intact.
    /// Returns the number of bytes written.
    pub fn write_atomic(&self, path: &Path) -> Result<u64, CheckpointError> {
        let bytes = self.encode();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        fs::write(&tmp, &bytes)?;
        fs::rename(&tmp, path)?;
        Ok(bytes.len() as u64)
    }

    /// Load and parse a checkpoint file.
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        Checkpoint::decode(&fs::read(path)?)
    }

    /// Load a checkpoint if the file exists (`Ok(None)` when it does
    /// not) — the resume path's "fresh start or continue?" probe.
    pub fn load_if_exists(path: &Path) -> Result<Option<Checkpoint>, CheckpointError> {
        match fs::read(path) {
            Ok(bytes) => Checkpoint::decode(&bytes).map(Some),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Delete a checkpoint file, tolerating it already being gone (a
    /// completed search cleans up after itself).
    pub fn remove(path: &Path) -> Result<(), CheckpointError> {
        match fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            fingerprint: SearchFingerprint {
                db_digest: 0x1122_3344_5566_7788,
                query_digest: 0x99aa_bbcc_ddee_ff00,
                lanes: 8,
                n_batches: 40,
            },
            seq: 3,
            resumes: 1,
            accel_share: 0.375,
            recovery: [
                RecoveryTotals {
                    retries: 1,
                    requeues: 2,
                    lost_leases: 0,
                    failures: 2,
                },
                RecoveryTotals {
                    retries: 4,
                    requeues: 5,
                    lost_leases: 1,
                    failures: 6,
                },
            ],
            done: vec![
                BatchResult {
                    batch: 0,
                    device: 0,
                    hits: vec![
                        Hit {
                            id: SeqId(7),
                            score: 55,
                        },
                        Hit {
                            id: SeqId(2),
                            score: -3,
                        },
                    ],
                    cells: CellCount {
                        real: 1000,
                        padded: 1200,
                    },
                    rescued: 1,
                },
                BatchResult {
                    batch: 39,
                    device: 1,
                    hits: Vec::new(),
                    cells: CellCount {
                        real: 10,
                        padded: 16,
                    },
                    rescued: 0,
                },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let c = sample();
        let bytes = c.encode();
        let back = Checkpoint::decode(&bytes).expect("round trip");
        assert_eq!(back, c);
    }

    #[test]
    fn empty_checkpoint_round_trips() {
        let c = Checkpoint {
            done: Vec::new(),
            ..sample()
        };
        assert_eq!(Checkpoint::decode(&c.encode()).expect("round trip"), c);
    }

    #[test]
    fn every_single_bit_flip_rejected() {
        // The format must detect any single-bit corruption anywhere in
        // the file: magic flips fail the magic check, CRC flips fail the
        // CRC compare, payload flips fail the recomputed CRC.
        let bytes = sample().encode();
        let mut copy = bytes.clone();
        for i in 0..copy.len() {
            for bit in 0..8 {
                copy[i] ^= 1 << bit;
                assert!(
                    Checkpoint::decode(&copy).is_err(),
                    "flip at byte {i} bit {bit} accepted"
                );
                copy[i] ^= 1 << bit;
            }
        }
        assert_eq!(copy, bytes);
    }

    #[test]
    fn truncation_at_every_length_rejected() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            assert!(
                Checkpoint::decode(&bytes[..len]).is_err(),
                "truncation to {len} bytes accepted"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected_and_named() {
        // Trailing bytes change the CRC, so they surface as a CRC error;
        // a *recomputed-CRC-matching* trailer is caught by the position
        // check. Exercise the latter by re-CRCing the padded payload.
        let c = sample();
        let mut payload = c.encode()[12..].to_vec();
        payload.push(0xAB);
        let mut file = Vec::new();
        file.extend_from_slice(b"SWCKPT1\0");
        file.extend_from_slice(&sw_swdb::integrity::crc32(&payload).to_le_bytes());
        file.extend_from_slice(&payload);
        let err = Checkpoint::decode(&file).expect_err("trailing byte accepted");
        let msg = err.to_string();
        assert!(msg.contains("trailing"), "unexpected error: {msg}");
    }

    #[test]
    fn out_of_range_batch_index_rejected() {
        let mut c = sample();
        c.done[1].batch = 40; // == n_batches
        let err = Checkpoint::decode(&c.encode()).expect_err("oob accepted");
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn fingerprint_mismatches_are_typed_and_named() {
        let c = sample();
        let mut fp = c.fingerprint;
        c.verify(&fp).expect("identical fingerprint verifies");
        fp.db_digest ^= 1;
        let err = c.verify(&fp).expect_err("db digest mismatch");
        assert!(matches!(
            err,
            CheckpointError::Mismatch {
                field: "database digest",
                ..
            }
        ));
        let mut fp2 = c.fingerprint;
        fp2.lanes = 16;
        let err2 = c.verify(&fp2).expect_err("lane mismatch");
        assert!(err2.to_string().contains("lane count"), "{err2}");
    }

    #[test]
    fn write_atomic_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("swckpt-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("search.ckpt");
        let c = sample();
        let bytes = c.write_atomic(&path).expect("write");
        assert_eq!(bytes, c.encode().len() as u64);
        assert!(
            !dir.join("search.ckpt.tmp").exists(),
            "tmp file renamed away"
        );
        assert_eq!(Checkpoint::load(&path).expect("load"), c);
        assert_eq!(
            Checkpoint::load_if_exists(&path).expect("probe").as_ref(),
            Some(&c)
        );
        Checkpoint::remove(&path).expect("remove");
        Checkpoint::remove(&path).expect("second remove is a no-op");
        assert_eq!(Checkpoint::load_if_exists(&path).expect("probe"), None);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_totals_accumulate_monotonically() {
        let base = RecoveryTotals {
            retries: 5,
            requeues: 3,
            lost_leases: 1,
            failures: 4,
        };
        let seg = DeviceMetrics {
            retries: 2,
            requeues: 1,
            lost_leases: 0,
            failures: 1,
            ..DeviceMetrics::default()
        };
        let sum = base.plus(&seg);
        assert_eq!(sum.retries, 7);
        assert_eq!(sum.requeues, 4);
        assert_eq!(sum.lost_leases, 1);
        assert_eq!(sum.failures, 5);
        assert!(sum.retries >= base.retries && sum.failures >= base.failures);
    }
}
