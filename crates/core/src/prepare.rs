//! Database preparation — pipeline step (2) packaged for the engines.

use sw_device::TaskShape;
use sw_seq::{Alphabet, EncodedSeq};
use sw_swdb::{DbStats, LaneBatch, LaneBatcher, SequenceDatabase, SortedDb};

/// A database ready for searching: sorted, batched, with statistics.
#[derive(Debug, Clone)]
pub struct PreparedDb {
    /// The alphabet sequences are encoded under.
    pub alphabet: Alphabet,
    /// Length-sorted database (owns the flat store).
    pub sorted: SortedDb,
    /// Lane batches in sorted order.
    pub batches: Vec<LaneBatch>,
    /// Lane count the batches were packed for.
    pub lanes: usize,
    /// Database statistics (the §V-B table).
    pub stats: DbStats,
}

impl PreparedDb {
    /// Prepare owned sequences for `lanes`-wide kernels.
    pub fn prepare(seqs: Vec<EncodedSeq>, lanes: usize, alphabet: &Alphabet) -> Self {
        let db = SequenceDatabase::from_sequences(seqs);
        let stats = DbStats::compute(&db);
        let sorted = SortedDb::new(db);
        let batches = LaneBatcher::new(lanes, alphabet).batch(&sorted);
        PreparedDb {
            alphabet: alphabet.clone(),
            sorted,
            batches,
            lanes,
            stats,
        }
    }

    /// Number of database sequences.
    pub fn n_seqs(&self) -> usize {
        self.sorted.len()
    }

    /// Per-batch task shapes for a query of `query_len` — the simulator's
    /// input.
    pub fn task_shapes(&self, query_len: usize) -> Vec<TaskShape> {
        self.batches
            .iter()
            .map(|b| TaskShape {
                query_len,
                padded_len: b.padded_len(),
                lanes: b.lanes(),
                real_cells: b.real_cells(query_len),
            })
            .collect()
    }

    /// Total real DP cells for a query of `query_len`.
    pub fn total_cells(&self, query_len: usize) -> u64 {
        query_len as u64 * self.stats.total_residues
    }
}

/// Build task shapes directly from sequence *lengths* — full-scale
/// simulation without materialising residues. Lengths are sorted
/// ascending and chunked `lanes` at a time, mirroring
/// [`sw_swdb::LaneBatcher`] exactly.
pub fn shapes_from_lengths(lens: &[u32], lanes: usize, query_len: usize) -> Vec<TaskShape> {
    assert!(lanes >= 1, "need at least one lane");
    let mut sorted: Vec<u32> = lens.to_vec();
    sorted.sort_unstable();
    sorted
        .chunks(lanes)
        .map(|group| {
            let padded = *group.last().expect("chunks are non-empty") as usize;
            TaskShape {
                query_len,
                padded_len: padded,
                lanes,
                real_cells: query_len as u64 * group.iter().map(|&l| l as u64).sum::<u64>(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_seq::gen::{generate_database, DbSpec};

    fn tiny_db() -> Vec<EncodedSeq> {
        generate_database(&DbSpec::tiny(3))
    }

    #[test]
    fn prepare_batches_cover_all_sequences() {
        let a = Alphabet::protein();
        let seqs = tiny_db();
        let n = seqs.len();
        let db = PreparedDb::prepare(seqs, 8, &a);
        assert_eq!(db.n_seqs(), n);
        let total_lanes: usize = db.batches.iter().map(|b| b.real_lanes()).sum();
        assert_eq!(total_lanes, n);
        assert_eq!(db.batches.len(), n.div_ceil(8));
    }

    #[test]
    fn task_shapes_conserve_cells() {
        let a = Alphabet::protein();
        let db = PreparedDb::prepare(tiny_db(), 8, &a);
        let shapes = db.task_shapes(100);
        let total: u64 = shapes.iter().map(|s| s.real_cells).sum();
        assert_eq!(total, db.total_cells(100));
    }

    #[test]
    fn shapes_from_lengths_match_prepared_batches() {
        let a = Alphabet::protein();
        let seqs = tiny_db();
        let lens: Vec<u32> = seqs.iter().map(|s| s.len() as u32).collect();
        let db = PreparedDb::prepare(seqs, 4, &a);
        let direct = shapes_from_lengths(&lens, 4, 77);
        let via_db = db.task_shapes(77);
        assert_eq!(direct, via_db);
    }

    #[test]
    fn shapes_at_full_swissprot_scale() {
        // The cheap path handles the real 541 561-sequence scale instantly.
        let spec = DbSpec::swissprot_full(1);
        let lens = sw_seq::gen::generate_lengths(&spec);
        let shapes = shapes_from_lengths(&lens, 32, 1000);
        assert_eq!(shapes.len(), 541_561_usize.div_ceil(32));
        let cells: u64 = shapes.iter().map(|s| s.real_cells).sum();
        let residues: u64 = lens.iter().map(|&l| l as u64).sum();
        assert_eq!(cells, 1000 * residues);
        // Padding waste stays small thanks to length sorting.
        let padded: u64 = shapes.iter().map(|s| s.padded_cells()).sum();
        let waste = padded as f64 / cells as f64;
        assert!(waste < 1.05, "waste {waste}");
    }
}
