//! Search configuration.

use serde::{Deserialize, Serialize};
use sw_kernels::{KernelIsa, KernelVariant};
use sw_sched::Policy;
use sw_trace::{TraceLevel, Tracer};

/// Configuration of one database search (Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchConfig {
    /// Kernel variant (vectorization × profile × blocking).
    pub variant: KernelVariant,
    /// Worker threads for the parallel alignment loop.
    pub threads: usize,
    /// Loop scheduling policy (the paper's best is dynamic).
    pub policy: Policy,
    /// Rows per cache block for blocked kernels (`None` = derive from a
    /// 256 KB L2 budget, the conservative host default).
    pub block_rows: Option<usize>,
    /// SWIPE-style dual precision: score in saturating `i8` first and
    /// widen only saturated lanes (intrinsic variants only). Results are
    /// identical either way; this is a throughput knob. Off by default —
    /// the paper's kernels are 16-bit.
    pub adaptive_precision: bool,
    /// Instruction set the intrinsic kernels run on. [`KernelIsa::detect`]
    /// (the `best` default) picks the fastest ISA the host supports from
    /// hardware probes alone; forcing [`KernelIsa::Portable`] reproduces
    /// identical results with the autovectorized kernels. Environment
    /// overrides (`SW_KERNEL_ISA`) are resolved once at front-end startup
    /// and arrive here as an explicit value — the library never reads the
    /// environment, so concurrent requests each see exactly the ISA their
    /// config carries. Ignored by non-intrinsic variants.
    pub isa: KernelIsa,
}

impl SearchConfig {
    /// The paper's best host configuration: intrinsic-SP, blocking,
    /// dynamic scheduling, `threads` workers.
    pub fn best(threads: usize) -> Self {
        SearchConfig {
            variant: KernelVariant::best(),
            threads,
            policy: Policy::dynamic(),
            block_rows: None,
            adaptive_precision: false,
            isa: KernelIsa::detect(),
        }
    }

    /// Same configuration with a different kernel variant.
    pub fn with_variant(mut self, variant: KernelVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Same configuration with a forced kernel ISA.
    pub fn with_isa(mut self, isa: KernelIsa) -> Self {
        self.isa = isa;
        self
    }

    /// Effective block rows for a given lane count.
    pub fn effective_block_rows(&self, lanes: usize) -> usize {
        self.block_rows
            .unwrap_or_else(|| sw_kernels::blocked::block_rows_for_cache(256 * 1024, lanes))
    }
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig::best(1)
    }
}

/// Fault-tolerance knobs of the dual-pool scheduler: how long to wait on
/// a silent accelerator, how many failures to tolerate before retiring a
/// pool, and how retries back off. Mirrors the recovery fields of
/// `sw_sched::DualPoolConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// Reclaim an accelerator chunk lease after this many milliseconds of
    /// silence (`None` = never; a wedged accelerator then only recovers
    /// if the fault also kills the worker).
    pub accel_timeout_ms: Option<u64>,
    /// Failures a device pool may accumulate before it is retired and the
    /// surviving pool absorbs the rest of the queue.
    pub failure_budget: u32,
    /// Base delay before re-running a requeued chunk; doubles with each
    /// attempt.
    pub retry_backoff_ms: u64,
    /// Attempts per chunk before its failing task is reported as a
    /// permanent error instead of requeued.
    pub max_chunk_retries: u32,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        let d = sw_sched::DualPoolConfig::new(1, 1);
        RecoveryConfig {
            accel_timeout_ms: d.accel_timeout_ms,
            failure_budget: d.failure_budget,
            retry_backoff_ms: d.retry_backoff_ms,
            max_chunk_retries: d.max_chunk_retries,
        }
    }
}

/// Event-journal tracing knobs for a dynamic heterogeneous search.
///
/// Off by default: a disabled tracer hands every worker a no-op journal,
/// so the scheduler's emission sites cost one branch on an `Option` and
/// nothing is allocated or locked. Enabling tracing attaches a
/// per-worker ring journal whose drained timeline the caller can export
/// (JSONL / Chrome trace / Prometheus — see `sw_trace::export`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TraceConfig {
    /// How much detail to record. `Off` (the default) disables the
    /// journal entirely; `Lite` records instants and counters only;
    /// `Full` adds the chunk-execution and queue-wait spans.
    pub level: TraceLevel,
    /// Per-worker ring capacity in events; `0` uses
    /// `sw_trace::DEFAULT_RING_CAPACITY`. When a worker out-emits its
    /// ring the oldest events are dropped and counted, never blocking
    /// the worker.
    pub ring_capacity: usize,
    /// Bucket width of the exported per-device GCUPS time series in
    /// microseconds; `0` uses `sw_trace::export::DEFAULT_GCUPS_WINDOW_US`.
    pub gcups_window_us: u64,
    /// Query id stamped on every event this search emits, so timelines
    /// of concurrent searches stay separable after export. `0` (the
    /// default) is the solo-run id; daemons assign a distinct id per
    /// request.
    pub query_id: u64,
}

impl TraceConfig {
    /// Full-detail tracing with default capacity and window.
    pub fn full() -> Self {
        TraceConfig {
            level: TraceLevel::Full,
            ..TraceConfig::default()
        }
    }

    /// Same configuration stamping `query_id` on every event (daemon
    /// requests; `0` is the solo-run id).
    pub fn for_query(mut self, query_id: u64) -> Self {
        self.query_id = query_id;
        self
    }

    /// Build the tracer this configuration describes (disabled for
    /// [`TraceLevel::Off`]). Each call makes a fresh tracer with its own
    /// epoch, so concurrent searches never share clock state.
    pub fn tracer(&self) -> Tracer {
        let capacity = if self.ring_capacity == 0 {
            sw_trace::DEFAULT_RING_CAPACITY
        } else {
            self.ring_capacity
        };
        Tracer::for_query(self.level, capacity, self.query_id)
    }

    /// The GCUPS window to export with, resolving `0` to the default.
    pub fn effective_gcups_window_us(&self) -> u64 {
        if self.gcups_window_us == 0 {
            sw_trace::export::DEFAULT_GCUPS_WINDOW_US
        } else {
            self.gcups_window_us
        }
    }
}

/// Configuration of a dynamic dual-pool heterogeneous search
/// ([`crate::hetero::HeteroEngine::search_dynamic`]): one kernel
/// configuration per device pool plus the shared-queue granularity.
///
/// Each device's `threads` field sizes its worker pool; the static
/// [`crate::hetero::SplitPlan`] only seeds the feedback estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeteroSearchConfig {
    /// Kernel configuration and pool size for the CPU share.
    pub cpu: SearchConfig,
    /// Kernel configuration and pool size for the accelerator share.
    pub accel: SearchConfig,
    /// Smallest number of lane batches either pool grabs from the shared
    /// queue in one chunk.
    pub min_chunk: usize,
    /// Fault-tolerance knobs (lease timeout, failure budget, backoff).
    pub recovery: RecoveryConfig,
    /// Event-journal tracing (off by default, zero-cost when off).
    pub trace: TraceConfig,
}

impl HeteroSearchConfig {
    /// Dual-pool configuration from two per-device configurations.
    pub fn new(cpu: SearchConfig, accel: SearchConfig) -> Self {
        HeteroSearchConfig {
            cpu,
            accel,
            min_chunk: 1,
            recovery: RecoveryConfig::default(),
            trace: TraceConfig::default(),
        }
    }

    /// Same configuration with tracing enabled at `trace`.
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// The paper's best kernels on both pools, with explicit pool sizes.
    pub fn best(cpu_threads: usize, accel_threads: usize) -> Self {
        HeteroSearchConfig::new(
            SearchConfig::best(cpu_threads),
            SearchConfig::best(accel_threads),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_kernels::{ProfileMode, Vectorization};

    #[test]
    fn best_config_matches_paper() {
        let c = SearchConfig::best(32);
        assert_eq!(c.variant.vec, Vectorization::Intrinsic);
        assert_eq!(c.variant.profile, ProfileMode::Sequence);
        assert!(c.variant.blocking);
        assert_eq!(c.threads, 32);
        assert_eq!(c.policy, Policy::dynamic());
        assert!(c.isa.is_available(), "best() picks a supported ISA");
        assert_eq!(
            c.with_isa(KernelIsa::Portable).isa,
            KernelIsa::Portable,
            "the ISA can be forced"
        );
    }

    #[test]
    fn trace_config_defaults_off() {
        let t = TraceConfig::default();
        assert_eq!(t.level, TraceLevel::Off);
        assert!(!t.tracer().is_enabled(), "off builds a disabled tracer");
        assert_eq!(
            t.effective_gcups_window_us(),
            sw_trace::export::DEFAULT_GCUPS_WINDOW_US
        );
        assert!(TraceConfig::full().tracer().is_enabled());
        assert_eq!(
            HeteroSearchConfig::best(1, 1).trace,
            TraceConfig::default(),
            "tracing is opt-in"
        );
    }

    #[test]
    fn block_rows_default_derivation() {
        let c = SearchConfig::best(1);
        assert_eq!(c.effective_block_rows(16), 2048);
        let explicit = SearchConfig {
            block_rows: Some(128),
            ..c
        };
        assert_eq!(explicit.effective_block_rows(16), 128);
    }
}
