//! Search configuration.

use serde::{Deserialize, Serialize};
use sw_kernels::KernelVariant;
use sw_sched::Policy;

/// Configuration of one database search (Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchConfig {
    /// Kernel variant (vectorization × profile × blocking).
    pub variant: KernelVariant,
    /// Worker threads for the parallel alignment loop.
    pub threads: usize,
    /// Loop scheduling policy (the paper's best is dynamic).
    pub policy: Policy,
    /// Rows per cache block for blocked kernels (`None` = derive from a
    /// 256 KB L2 budget, the conservative host default).
    pub block_rows: Option<usize>,
    /// SWIPE-style dual precision: score in saturating `i8` first and
    /// widen only saturated lanes (intrinsic variants only). Results are
    /// identical either way; this is a throughput knob. Off by default —
    /// the paper's kernels are 16-bit.
    pub adaptive_precision: bool,
}

impl SearchConfig {
    /// The paper's best host configuration: intrinsic-SP, blocking,
    /// dynamic scheduling, `threads` workers.
    pub fn best(threads: usize) -> Self {
        SearchConfig {
            variant: KernelVariant::best(),
            threads,
            policy: Policy::dynamic(),
            block_rows: None,
            adaptive_precision: false,
        }
    }

    /// Same configuration with a different kernel variant.
    pub fn with_variant(mut self, variant: KernelVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Effective block rows for a given lane count.
    pub fn effective_block_rows(&self, lanes: usize) -> usize {
        self.block_rows
            .unwrap_or_else(|| sw_kernels::blocked::block_rows_for_cache(256 * 1024, lanes))
    }
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig::best(1)
    }
}

/// Fault-tolerance knobs of the dual-pool scheduler: how long to wait on
/// a silent accelerator, how many failures to tolerate before retiring a
/// pool, and how retries back off. Mirrors the recovery fields of
/// `sw_sched::DualPoolConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// Reclaim an accelerator chunk lease after this many milliseconds of
    /// silence (`None` = never; a wedged accelerator then only recovers
    /// if the fault also kills the worker).
    pub accel_timeout_ms: Option<u64>,
    /// Failures a device pool may accumulate before it is retired and the
    /// surviving pool absorbs the rest of the queue.
    pub failure_budget: u32,
    /// Base delay before re-running a requeued chunk; doubles with each
    /// attempt.
    pub retry_backoff_ms: u64,
    /// Attempts per chunk before its failing task is reported as a
    /// permanent error instead of requeued.
    pub max_chunk_retries: u32,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        let d = sw_sched::DualPoolConfig::new(1, 1);
        RecoveryConfig {
            accel_timeout_ms: d.accel_timeout_ms,
            failure_budget: d.failure_budget,
            retry_backoff_ms: d.retry_backoff_ms,
            max_chunk_retries: d.max_chunk_retries,
        }
    }
}

/// Configuration of a dynamic dual-pool heterogeneous search
/// ([`crate::hetero::HeteroEngine::search_dynamic`]): one kernel
/// configuration per device pool plus the shared-queue granularity.
///
/// Each device's `threads` field sizes its worker pool; the static
/// [`crate::hetero::SplitPlan`] only seeds the feedback estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeteroSearchConfig {
    /// Kernel configuration and pool size for the CPU share.
    pub cpu: SearchConfig,
    /// Kernel configuration and pool size for the accelerator share.
    pub accel: SearchConfig,
    /// Smallest number of lane batches either pool grabs from the shared
    /// queue in one chunk.
    pub min_chunk: usize,
    /// Fault-tolerance knobs (lease timeout, failure budget, backoff).
    pub recovery: RecoveryConfig,
}

impl HeteroSearchConfig {
    /// Dual-pool configuration from two per-device configurations.
    pub fn new(cpu: SearchConfig, accel: SearchConfig) -> Self {
        HeteroSearchConfig {
            cpu,
            accel,
            min_chunk: 1,
            recovery: RecoveryConfig::default(),
        }
    }

    /// The paper's best kernels on both pools, with explicit pool sizes.
    pub fn best(cpu_threads: usize, accel_threads: usize) -> Self {
        HeteroSearchConfig::new(
            SearchConfig::best(cpu_threads),
            SearchConfig::best(accel_threads),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_kernels::{ProfileMode, Vectorization};

    #[test]
    fn best_config_matches_paper() {
        let c = SearchConfig::best(32);
        assert_eq!(c.variant.vec, Vectorization::Intrinsic);
        assert_eq!(c.variant.profile, ProfileMode::Sequence);
        assert!(c.variant.blocking);
        assert_eq!(c.threads, 32);
        assert_eq!(c.policy, Policy::dynamic());
    }

    #[test]
    fn block_rows_default_derivation() {
        let c = SearchConfig::best(1);
        assert_eq!(c.effective_block_rows(16), 2048);
        let explicit = SearchConfig {
            block_rows: Some(128),
            ..c
        };
        assert_eq!(explicit.effective_block_rows(16), 128);
    }
}
