//! Cross-variant verification — the repository's central correctness
//! property, packaged as a reusable self-test.
//!
//! The paper's claim "without losing precision in the results" (§VI) only
//! holds if every optimised code path returns exactly the scalar-reference
//! scores. [`self_test`] runs all six Fig. 3 variants (plus unblocked
//! twins) over a deterministic synthetic workload and compares every
//! score; the CLI exposes it as `swsearch selftest` and the integration
//! tests call it across lane widths.

use crate::config::SearchConfig;
use crate::engine::SearchEngine;
use crate::prepare::PreparedDb;
use sw_kernels::scalar::sw_score_scalar;
use sw_kernels::KernelVariant;
use sw_seq::gen::{generate_database, generate_query, DbSpec};
use sw_seq::Alphabet;

/// Outcome of the self-test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelfTestReport {
    /// Variants exercised.
    pub variants_checked: usize,
    /// Total (variant × sequence) score comparisons performed.
    pub comparisons: u64,
    /// Human-readable description of the first mismatch, if any.
    pub first_mismatch: Option<String>,
}

impl SelfTestReport {
    /// True when every comparison matched.
    pub fn passed(&self) -> bool {
        self.first_mismatch.is_none()
    }
}

/// Run the cross-variant self-test at the given lane width.
///
/// `scale` controls workload size (database sequences ≈ `200 × scale`).
pub fn self_test(lanes: usize, scale: u32) -> SelfTestReport {
    let alphabet = Alphabet::protein();
    let engine = SearchEngine::paper_default();
    let spec = DbSpec {
        n_seqs: 200 * scale.max(1),
        mean_len: 120.0,
        max_len: 600,
        seed: 0xCAFE,
    };
    let db = PreparedDb::prepare(generate_database(&spec), lanes, &alphabet);
    let query = generate_query(150, 0xF00D).residues;

    // Reference scores, by original id.
    let reference: Vec<i64> = db
        .sorted
        .db()
        .iter()
        .map(|(_, s)| sw_score_scalar(&query, s.residues, &engine.params))
        .collect();

    let mut variants = KernelVariant::fig3_set();
    variants.extend(KernelVariant::fig3_set().into_iter().map(|mut v| {
        v.blocking = false;
        v
    }));

    let mut comparisons = 0u64;
    let mut first_mismatch = None;
    let n_variants = variants.len();
    for variant in variants {
        let cfg = SearchConfig::best(2).with_variant(variant);
        let res = engine.search(&query, &db, &cfg);
        for hit in &res.hits {
            comparisons += 1;
            let expect = reference[hit.id.0 as usize];
            if hit.score != expect && first_mismatch.is_none() {
                first_mismatch = Some(format!(
                    "variant {variant}: sequence {} scored {} (reference {})",
                    hit.id, hit.score, expect
                ));
            }
        }
    }
    SelfTestReport {
        variants_checked: n_variants,
        comparisons,
        first_mismatch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_test_passes_at_8_lanes() {
        let r = self_test(8, 1);
        assert!(r.passed(), "{:?}", r.first_mismatch);
        assert_eq!(r.variants_checked, 12);
        assert_eq!(r.comparisons, 12 * 200);
    }

    #[test]
    fn self_test_passes_at_16_lanes() {
        let r = self_test(16, 1);
        assert!(r.passed(), "{:?}", r.first_mismatch);
    }

    #[test]
    fn self_test_passes_at_32_lanes() {
        let r = self_test(32, 1);
        assert!(r.passed(), "{:?}", r.first_mismatch);
    }
}
