//! # sw-core — Smith-Waterman database search on heterogeneous systems
//!
//! The paper's primary contribution, assembled from the workspace
//! substrates. The pipeline is §IV's four steps:
//!
//! 1. Load query and database sequences (`sw-seq`).
//! 2. Pre-process: sort by length, lane-batch (`sw-swdb`), via
//!    [`prepare::PreparedDb`].
//! 3. Perform SW alignments in parallel (`sw-kernels` under `sw-sched`),
//!    via [`engine::SearchEngine`] — Algorithm 1.
//! 4. Sort all scores in descending order ([`results::SearchResults`]).
//!
//! [`hetero::HeteroEngine`] is Algorithm 2: the database is split between
//! two devices, the accelerator share dispatched asynchronously, and
//! score lists merged.
//!
//! Execution comes in two modes:
//!
//! * **Real** — the kernels actually run, multithreaded, on the host
//!   ([`engine`], [`hetero`]); scores are exact and wall-clock GCUPS are
//!   measured.
//! * **Simulated** — per-task costs from `sw-device`'s calibrated model
//!   are replayed through `sw-sched`'s discrete-event scheduler
//!   ([`simulate`]); this regenerates the paper's figures at the full
//!   Swiss-Prot scale and on the paper's hardware, which this machine
//!   does not have.
//!
//! [`verify`] cross-checks every kernel variant against the scalar
//! reference — the repository's central correctness property.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod config;
pub mod engine;
pub mod hetero;
pub mod prepare;
pub mod report;
pub mod results;
pub mod simulate;
pub mod stats;
pub mod verify;

pub use checkpoint::{BatchResult, Checkpoint, CheckpointError, RecoveryTotals, SearchFingerprint};
pub use config::{HeteroSearchConfig, RecoveryConfig, SearchConfig, TraceConfig};
pub use engine::SearchEngine;
pub use hetero::{
    BatchQuery, BatchQueryOutcome, BatchSearchOutcome, DurableOptions, DurableSearchError,
    DurableSearchOutcome, DynamicSearchOutcome, HeteroEngine, SplitPlan,
};
pub use prepare::PreparedDb;
pub use report::SearchSummary;
pub use results::{merge_top_k, Hit, SearchResults};
pub use simulate::{
    simulate_hetero, simulate_hetero_dynamic, simulate_search, HeteroDynReport, HeteroReport,
    SimConfig, SimReport,
};
