//! Simulated execution — how the paper's figures are regenerated.
//!
//! Pipeline: task shapes (from real batching arithmetic) → per-task costs
//! (`sw-device`'s calibrated model) → discrete-event schedule replay
//! (`sw-sched`) → GCUPS. The heterogeneous variant additionally runs the
//! offload-runtime simulator so transfers and the `signal`/`wait`
//! synchronisation of Algorithm 2 shape the wall-clock, as in Fig. 8.

use serde::{Deserialize, Serialize};
use sw_device::energy::{device_energy, DeviceEnergy};
use sw_device::offload::OffloadSim;
use sw_device::{CostModel, TaskShape};
use sw_kernels::KernelVariant;
use sw_sched::{simulate, Policy};

/// Configuration of one simulated device run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Kernel variant.
    pub variant: KernelVariant,
    /// Thread count on the device.
    pub threads: u32,
    /// Loop scheduling policy.
    pub policy: Policy,
    /// Workload replicas pooled into one parallel region.
    ///
    /// The paper's Algorithm 1 parallelises over `|Q| × |vD|` — all
    /// (query, batch) pairs of the 20-query evaluation share one loop, so
    /// its GCUPS are steady-state throughput. Simulating a single query in
    /// isolation instead would be bound by the one titin-length batch that
    /// a single (slow) accelerator thread must chew through alone — an
    /// artifact the paper's measurement does not have. `replicas > 1`
    /// pools that many copies of the shape list, reproducing the
    /// steady-state condition.
    pub replicas: u32,
}

impl SimConfig {
    /// The paper's best configuration at `threads` threads (single-query
    /// pool).
    pub fn best(threads: u32) -> Self {
        SimConfig {
            variant: KernelVariant::best(),
            threads,
            policy: Policy::dynamic(),
            replicas: 1,
        }
    }

    /// Steady-state variant: pool `replicas` copies of the workload.
    pub fn streamed(threads: u32, replicas: u32) -> Self {
        SimConfig {
            replicas: replicas.max(1),
            ..Self::best(threads)
        }
    }
}

/// Result of one simulated single-device search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Simulated wall-clock seconds of the alignment loop.
    pub seconds: f64,
    /// Throughput over real cells.
    pub gcups: f64,
    /// Parallel efficiency of the schedule.
    pub efficiency: f64,
    /// Real DP cells processed.
    pub real_cells: u64,
}

/// Simulate one device searching `shapes` under `cfg`.
///
/// Tasks are dispatched longest-first (the LPT rule): with a
/// length-sorted database the natural ascending order would start the
/// giant tail batches *last* and inflate the makespan — no production
/// runtime does that, and dynamic scheduling over a descending queue is
/// the standard fix.
pub fn simulate_search(model: &CostModel, shapes: &[TaskShape], cfg: &SimConfig) -> SimReport {
    let placement = model.device.place_threads(cfg.threads);
    let per_shape: Vec<f64> = shapes
        .iter()
        .map(|s| model.task_seconds(cfg.variant, s, placement))
        .collect();
    let mut costs = Vec::with_capacity(per_shape.len() * cfg.replicas.max(1) as usize);
    for _ in 0..cfg.replicas.max(1) {
        costs.extend_from_slice(&per_shape);
    }
    // LPT dispatch order for dynamic scheduling only. Guided *requires*
    // the natural ascending order of the length-sorted database: its
    // decaying chunk sizes pair large chunks with cheap tasks and small
    // chunks with the expensive tail — descending order would hand one
    // worker a giant first chunk. Static has no dispatch queue to reorder.
    if matches!(cfg.policy, Policy::Dynamic { .. }) {
        costs.sort_unstable_by(|a, b| b.partial_cmp(a).expect("finite costs"));
    }
    let sim = simulate(&costs, placement.total_threads() as usize, cfg.policy);
    let real_cells: u64 =
        shapes.iter().map(|s| s.real_cells).sum::<u64>() * cfg.replicas.max(1) as u64;
    let seconds = sim.makespan.max(1e-12);
    SimReport {
        seconds,
        gcups: real_cells as f64 / seconds / 1e9,
        efficiency: sim.efficiency(),
        real_cells,
    }
}

/// Result of one simulated heterogeneous search (Algorithm 2 / Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeteroReport {
    /// Wall-clock of the heterogeneous run (host clock at merge time).
    pub seconds: f64,
    /// Combined throughput.
    pub gcups: f64,
    /// Host compute seconds.
    pub cpu_busy_s: f64,
    /// Accelerator busy seconds (transfers + kernel).
    pub accel_busy_s: f64,
    /// Host GCUPS over its own share.
    pub cpu_gcups: f64,
    /// Accelerator GCUPS over its own share.
    pub accel_gcups: f64,
    /// Fraction of cells that ran on the accelerator.
    pub accel_fraction: f64,
    /// Host energy over the run.
    pub cpu_energy: DeviceEnergy,
    /// Accelerator energy over the run.
    pub accel_energy: DeviceEnergy,
}

impl HeteroReport {
    /// Combined GCUPS per watt (average power of both devices).
    pub fn gcups_per_watt(&self) -> f64 {
        let joules = self.cpu_energy.joules + self.accel_energy.joules;
        if joules == 0.0 {
            0.0
        } else {
            self.gcups / (joules / self.seconds)
        }
    }
}

/// Split length-sorted sequence lengths so the suffix (long sequences)
/// holds ≈`fraction_accel` of the total residues; returns
/// `(cpu_lens, accel_lens)`.
pub fn split_lengths(lens: &[u32], fraction_accel: f64) -> (Vec<u32>, Vec<u32>) {
    assert!(
        (0.0..=1.0).contains(&fraction_accel),
        "fraction must be in [0, 1]"
    );
    let mut sorted: Vec<u32> = lens.to_vec();
    sorted.sort_unstable();
    let total: u64 = sorted.iter().map(|&l| l as u64).sum();
    let target = (total as f64 * fraction_accel).round() as u64;
    let mut acc = 0u64;
    let mut split = sorted.len();
    // Walk from the long end until the suffix reaches the target.
    for (i, &l) in sorted.iter().enumerate().rev() {
        if acc >= target {
            break;
        }
        acc += l as u64;
        split = i;
    }
    let accel = sorted.split_off(split);
    (sorted, accel)
}

/// Simulate Algorithm 2: split the database, offload the long-sequence
/// share to the accelerator asynchronously, compute the host share, wait,
/// merge.
///
/// `lens` are the database sequence lengths; shapes are rebuilt per
/// device because lane counts differ (16 on the host, 32 on the Phi).
pub fn simulate_hetero(
    cpu: (&CostModel, &SimConfig),
    accel: (&CostModel, &SimConfig),
    lens: &[u32],
    query_len: usize,
    fraction_accel: f64,
) -> HeteroReport {
    use crate::prepare::shapes_from_lengths;
    let (cpu_model, cpu_cfg) = cpu;
    let (accel_model, accel_cfg) = accel;
    let (cpu_lens, accel_lens) = split_lengths(lens, fraction_accel);

    let cpu_shapes = shapes_from_lengths(&cpu_lens, cpu_model.device.lanes_i16(), query_len);
    let accel_shapes = shapes_from_lengths(&accel_lens, accel_model.device.lanes_i16(), query_len);

    let cpu_report = if cpu_shapes.is_empty() {
        SimReport {
            seconds: 0.0,
            gcups: 0.0,
            efficiency: 1.0,
            real_cells: 0,
        }
    } else {
        simulate_search(cpu_model, &cpu_shapes, cpu_cfg)
    };
    let accel_report = if accel_shapes.is_empty() {
        SimReport {
            seconds: 0.0,
            gcups: 0.0,
            efficiency: 1.0,
            real_cells: 0,
        }
    } else {
        simulate_search(accel_model, &accel_shapes, accel_cfg)
    };

    // Offload runtime: ship the accelerator's residues + query, get the
    // score list back (4 B per sequence).
    let link = accel_model
        .device
        .pcie
        .unwrap_or_else(sw_device::PcieLink::gen2_x16);
    let mut sim = OffloadSim::new(link);
    let in_bytes: u64 = accel_lens.iter().map(|&l| l as u64).sum::<u64>() + query_len as u64;
    let out_bytes = 4 * accel_lens.len() as u64;
    let sig = if accel_report.real_cells > 0 {
        Some(sim.offload_async(in_bytes, accel_report.seconds, out_bytes, "accel share"))
    } else {
        None
    };
    if cpu_report.real_cells > 0 {
        sim.host_compute(cpu_report.seconds, "cpu share");
    }
    if let Some(sig) = sig {
        sim.wait(sig);
    }
    let seconds = sim.elapsed().max(1e-12);
    let total_cells = cpu_report.real_cells + accel_report.real_cells;

    let cpu_energy = device_energy(&cpu_model.device, sim.host_busy().min(seconds), seconds);
    let accel_energy = device_energy(&accel_model.device, sim.device_busy().min(seconds), seconds);

    HeteroReport {
        seconds,
        gcups: total_cells as f64 / seconds / 1e9,
        cpu_busy_s: sim.host_busy(),
        accel_busy_s: sim.device_busy(),
        cpu_gcups: cpu_report.gcups,
        accel_gcups: accel_report.gcups,
        accel_fraction: if total_cells == 0 {
            0.0
        } else {
            accel_report.real_cells as f64 / total_cells as f64
        },
        cpu_energy,
        accel_energy,
    }
}

/// Result of the *dynamic* heterogeneous distribution (the paper's §VI
/// future work: "analyze other workload distribution strategies").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeteroDynReport {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Combined throughput.
    pub gcups: f64,
    /// Fraction of tasks the accelerator ended up executing.
    pub accel_task_share: f64,
}

/// Simulate a **dynamic** CPU+accelerator distribution: both devices pull
/// sequence groups from one shared queue instead of a static split.
///
/// The database is grouped at the accelerator's lane width; the CPU
/// executes a group as two half-width batches. Every hardware thread of
/// both devices is a worker pulling from the queue (longest-first), with
/// per-device task costs from the respective cost models — no split
/// fraction to tune, which is the strategy's whole point.
pub fn simulate_hetero_dynamic(
    cpu: (&CostModel, &SimConfig),
    accel: (&CostModel, &SimConfig),
    lens: &[u32],
    query_len: usize,
) -> HeteroDynReport {
    use crate::prepare::shapes_from_lengths;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let (cpu_model, cpu_cfg) = cpu;
    let (accel_model, accel_cfg) = accel;
    let accel_lanes = accel_model.device.lanes_i16();
    let cpu_lanes = cpu_model.device.lanes_i16();

    // Shared queue granularity: one accelerator-width group.
    let accel_shapes = shapes_from_lengths(lens, accel_lanes, query_len);
    // The same groups at CPU width: `accel_lanes / cpu_lanes` batches each
    // (shapes_from_lengths sorts identically, so index `i` of the accel
    // list covers CPU batches `i*k .. (i+1)*k`).
    let cpu_shapes = shapes_from_lengths(lens, cpu_lanes, query_len);
    let k = (accel_lanes / cpu_lanes).max(1);

    let cpu_place = cpu_model.device.place_threads(cpu_cfg.threads);
    let accel_place = accel_model.device.place_threads(accel_cfg.threads);
    let replicas = cpu_cfg.replicas.max(1) as usize;

    // Per-task cost on each device class.
    let mut tasks: Vec<(f64, f64)> = accel_shapes
        .iter()
        .enumerate()
        .map(|(i, shape)| {
            let accel_s = accel_model.task_seconds(accel_cfg.variant, shape, accel_place);
            let cpu_s: f64 = cpu_shapes[i * k..((i + 1) * k).min(cpu_shapes.len())]
                .iter()
                .map(|s| cpu_model.task_seconds(cpu_cfg.variant, s, cpu_place))
                .sum();
            (cpu_s, accel_s)
        })
        .collect();
    let base: Vec<(f64, f64)> = tasks.clone();
    for _ in 1..replicas {
        tasks.extend_from_slice(&base);
    }
    // Longest-first dispatch (by accelerator cost — same ordering either way).
    tasks.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));

    // Two worker classes pulling from the queue.
    #[derive(PartialEq)]
    struct T(f64);
    impl Eq for T {}
    impl PartialOrd for T {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for T {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.partial_cmp(&other.0).expect("finite time")
        }
    }
    let n_cpu = cpu_place.total_threads() as usize;
    let n_accel = accel_place.total_threads() as usize;
    let mut heap: BinaryHeap<Reverse<(T, bool)>> = BinaryHeap::new();
    for _ in 0..n_cpu {
        heap.push(Reverse((T(0.0), false)));
    }
    for _ in 0..n_accel {
        heap.push(Reverse((T(0.0), true)));
    }
    let mut next = 0usize;
    let mut makespan = 0.0f64;
    let mut accel_tasks = 0u64;
    while let Some(Reverse((T(t), is_accel))) = heap.pop() {
        if next >= tasks.len() {
            makespan = makespan.max(t);
            continue;
        }
        let (cpu_s, accel_s) = tasks[next];
        next += 1;
        let dt = if is_accel { accel_s } else { cpu_s };
        if is_accel {
            accel_tasks += 1;
        }
        heap.push(Reverse((T(t + dt), is_accel)));
    }
    let total_cells: u64 = accel_shapes.iter().map(|s| s.real_cells).sum::<u64>() * replicas as u64;
    let seconds = makespan.max(1e-12);
    HeteroDynReport {
        seconds,
        gcups: total_cells as f64 / seconds / 1e9,
        accel_task_share: accel_tasks as f64 / tasks.len() as f64,
    }
}

/// Sweep the accelerator fraction over a grid (Fig. 8's x-axis) and
/// return `(fraction, report)` pairs.
pub fn sweep_split(
    cpu: (&CostModel, &SimConfig),
    accel: (&CostModel, &SimConfig),
    lens: &[u32],
    query_len: usize,
    steps: usize,
) -> Vec<(f64, HeteroReport)> {
    assert!(steps >= 2, "need at least the two endpoints");
    (0..steps)
        .map(|i| {
            let f = i as f64 / (steps - 1) as f64;
            (f, simulate_hetero(cpu, accel, lens, query_len, f))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_seq::gen::{generate_lengths, DbSpec};

    fn lens() -> Vec<u32> {
        // Full Swiss-Prot scale (541 561 sequences): the lengths-only path
        // makes this cheap, and the 240-worker Phi schedule needs the real
        // task count (≈17k batches) to fill its pipeline as the paper's
        // runs did.
        generate_lengths(&DbSpec::swissprot_full(7))
    }

    #[test]
    fn xeon_simulation_hits_paper_peak() {
        let model = CostModel::xeon();
        let shapes = crate::prepare::shapes_from_lengths(&lens(), 16, 2000);
        let r = simulate_search(&model, &shapes, &SimConfig::best(32));
        assert!((r.gcups - 30.4).abs() / 30.4 < 0.10, "xeon sim {}", r.gcups);
        assert!(r.efficiency > 0.9, "dynamic scheduling should balance well");
    }

    #[test]
    fn phi_simulation_hits_paper_peak() {
        let model = CostModel::phi();
        let shapes = crate::prepare::shapes_from_lengths(&lens(), 32, 2000);
        // Streamed: the paper's parallel loop pools all 20 queries' tasks.
        let r = simulate_search(&model, &shapes, &SimConfig::streamed(240, 8));
        assert!((r.gcups - 34.9).abs() / 34.9 < 0.10, "phi sim {}", r.gcups);
    }

    #[test]
    fn split_lengths_partition() {
        let l = lens();
        let total: u64 = l.iter().map(|&x| x as u64).sum();
        for f in [0.0, 0.3, 0.55, 1.0] {
            let (cpu, accel) = split_lengths(&l, f);
            assert_eq!(cpu.len() + accel.len(), l.len());
            let sum: u64 = cpu.iter().chain(accel.iter()).map(|&x| x as u64).sum();
            assert_eq!(sum, total);
            let accel_sum: u64 = accel.iter().map(|&x| x as u64).sum();
            let got = accel_sum as f64 / total as f64;
            assert!((got - f).abs() < 0.05, "fraction {f} got {got}");
        }
    }

    #[test]
    fn hetero_optimum_near_55_percent_phi() {
        // Fig. 8: best split ≈ 45 % CPU / 55 % Phi at ≈ 62.6 GCUPS.
        let cpu_model = CostModel::xeon();
        let phi_model = CostModel::phi();
        let cpu_cfg = SimConfig::streamed(32, 8);
        let phi_cfg = SimConfig::streamed(240, 8);
        let sweep = sweep_split(
            (&cpu_model, &cpu_cfg),
            (&phi_model, &phi_cfg),
            &lens(),
            2000,
            21,
        );
        let (best_f, best) = sweep
            .iter()
            .max_by(|a, b| a.1.gcups.partial_cmp(&b.1.gcups).expect("finite"))
            .expect("non-empty sweep");
        assert!(
            (0.45..=0.65).contains(best_f),
            "optimal Phi fraction {best_f} (paper: 0.55)"
        );
        assert!(
            (best.gcups - 62.6).abs() / 62.6 < 0.10,
            "combined {} vs paper 62.6",
            best.gcups
        );
        // Endpoints are the single-device rates.
        assert!(
            (sweep[0].1.gcups - 30.4).abs() / 30.4 < 0.10,
            "f=0: {}",
            sweep[0].1.gcups
        );
        let last = sweep.last().expect("non-empty");
        assert!(
            (last.1.gcups - 34.9).abs() / 34.9 < 0.12,
            "f=1: {}",
            last.1.gcups
        );
    }

    #[test]
    fn hetero_peak_beats_both_endpoints() {
        let cpu_model = CostModel::xeon();
        let phi_model = CostModel::phi();
        let cpu_cfg = SimConfig::streamed(32, 8);
        let phi_cfg = SimConfig::streamed(240, 8);
        let mid = simulate_hetero(
            (&cpu_model, &cpu_cfg),
            (&phi_model, &phi_cfg),
            &lens(),
            2000,
            0.55,
        );
        let cpu_only = simulate_hetero(
            (&cpu_model, &cpu_cfg),
            (&phi_model, &phi_cfg),
            &lens(),
            2000,
            0.0,
        );
        assert!(mid.gcups > 1.5 * cpu_only.gcups);
        assert!(mid.accel_busy_s > 0.0);
        assert!(mid.gcups_per_watt() > 0.0);
    }

    #[test]
    fn dynamic_distribution_matches_static_optimum_untuned() {
        // The §VI strategy study: dynamic pulling reaches the tuned static
        // optimum's throughput with no fraction to tune.
        let cpu_model = CostModel::xeon();
        let phi_model = CostModel::phi();
        let cpu_cfg = SimConfig::streamed(32, 8);
        let phi_cfg = SimConfig::streamed(240, 8);
        let l = lens();
        let dynamic =
            simulate_hetero_dynamic((&cpu_model, &cpu_cfg), (&phi_model, &phi_cfg), &l, 2000);
        let static_best = simulate_hetero(
            (&cpu_model, &cpu_cfg),
            (&phi_model, &phi_cfg),
            &l,
            2000,
            0.55,
        );
        assert!(
            dynamic.gcups > 0.95 * static_best.gcups,
            "dynamic {} vs tuned static {}",
            dynamic.gcups,
            static_best.gcups
        );
        // The accelerator organically takes roughly its throughput share.
        assert!(
            (0.40..0.70).contains(&dynamic.accel_task_share),
            "accel share {}",
            dynamic.accel_task_share
        );
    }

    #[test]
    fn energy_accounting_consistent() {
        let cpu_model = CostModel::xeon();
        let phi_model = CostModel::phi();
        let r = simulate_hetero(
            (&cpu_model, &SimConfig::best(32)),
            (&phi_model, &SimConfig::best(240)),
            &lens(),
            1000,
            0.5,
        );
        assert!(r.cpu_energy.joules > 0.0);
        assert!(r.accel_energy.joules > 0.0);
        assert!(r.cpu_busy_s <= r.seconds * 1.000001);
        assert!(r.accel_busy_s <= r.seconds * 1.000001);
    }
}
