//! The heterogeneous engine — Algorithm 2, real execution.
//!
//! ```text
//! 4:  [vD_CPU, vD_MIC] = sort_and_split(D)
//! 6:  #pragma offload target(mic) … signal(sem)
//! 9:      G_MIC = SW_core(Q, vD_MIC, SUBMAT)
//! 12: G_CPU = SW_core(Q, vD_CPU, SUBMAT)
//! 14: #pragma offload wait(sem)
//! 15: scores = sort(G_MIC, G_CPU)
//! ```
//!
//! This host has no coprocessor, so *functionally* both shares execute on
//! host threads (giving exact scores and letting the split logic be
//! tested end-to-end); the *timing* of the heterogeneous run is produced
//! by [`crate::simulate::simulate_hetero`], which replays the same split
//! through the device models and the offload-runtime simulator.

use crate::config::SearchConfig;
use crate::engine::SearchEngine;
use crate::prepare::PreparedDb;
use crate::results::SearchResults;
use serde::{Deserialize, Serialize};
use sw_swdb::chunk::{range_cells, split_by_cells};
use sw_swdb::BatchRange;

/// How the database was split between the two devices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitPlan {
    /// Batches assigned to the host CPU (prefix of the sorted batches —
    /// the shorter sequences).
    pub cpu: BatchRange,
    /// Batches assigned to the accelerator (suffix — the longer
    /// sequences, which amortise the accelerator's per-task overheads
    /// best).
    pub accel: BatchRange,
    /// Fraction of padded cells that actually landed on the accelerator.
    pub accel_cell_fraction: f64,
}

/// The heterogeneous search engine (Algorithm 2).
#[derive(Debug, Clone)]
pub struct HeteroEngine {
    /// The shared kernel engine.
    pub engine: SearchEngine,
}

impl HeteroEngine {
    /// Wrap an engine.
    pub fn new(engine: SearchEngine) -> Self {
        HeteroEngine { engine }
    }

    /// Plan the static split: the accelerator receives `accel_fraction`
    /// of the padded DP cells (Fig. 8's abscissa), taken from the long
    /// end of the sorted database.
    pub fn plan_split(
        &self,
        db: &PreparedDb,
        query_len: usize,
        accel_fraction: f64,
    ) -> SplitPlan {
        let (cpu, accel) = split_by_cells(&db.batches, query_len, 1.0 - accel_fraction);
        let total = range_cells(&db.batches, cpu, query_len)
            + range_cells(&db.batches, accel, query_len);
        let accel_cells = range_cells(&db.batches, accel, query_len);
        SplitPlan {
            cpu,
            accel,
            accel_cell_fraction: if total == 0 { 0.0 } else { accel_cells as f64 / total as f64 },
        }
    }

    /// Run Algorithm 2: both shares are searched (the accelerator share
    /// with `accel_config` — e.g. 32-lane batches would be used on a real
    /// Phi; here the same host kernels), then merged and re-sorted.
    pub fn search(
        &self,
        query: &[u8],
        db: &PreparedDb,
        plan: &SplitPlan,
        cpu_config: &SearchConfig,
        accel_config: &SearchConfig,
    ) -> SearchResults {
        let cpu_res = self.search_range(query, db, plan.cpu, cpu_config);
        let accel_res = self.search_range(query, db, plan.accel, accel_config);
        cpu_res.merge(accel_res)
    }

    /// Search only the batches of `range` (one device's share).
    pub fn search_range(
        &self,
        query: &[u8],
        db: &PreparedDb,
        range: BatchRange,
        config: &SearchConfig,
    ) -> SearchResults {
        // A PreparedDb view restricted to the range: reuse the same sorted
        // store, slice the batches.
        let view = PreparedDb {
            alphabet: db.alphabet.clone(),
            sorted: db.sorted.clone(),
            batches: db.batches[range.start..range.end].to_vec(),
            lanes: db.lanes,
            stats: db.stats.clone(),
        };
        if view.batches.is_empty() {
            return SearchResults::new(
                Vec::new(),
                std::time::Duration::from_nanos(1),
                sw_kernels::CellCount::default(),
                0,
            );
        }
        self.engine.search(query, &view, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_seq::gen::{generate_database, generate_query, DbSpec};
    use sw_seq::Alphabet;

    fn setup() -> (PreparedDb, Vec<u8>) {
        let a = Alphabet::protein();
        let db = PreparedDb::prepare(generate_database(&DbSpec::tiny(13)), 8, &a);
        let q = generate_query(100, 21).residues;
        (db, q)
    }

    #[test]
    fn hetero_equals_single_device_results() {
        let (db, q) = setup();
        let engine = SearchEngine::paper_default();
        let single = engine.search(&q, &db, &SearchConfig::best(2));
        let hetero = HeteroEngine::new(engine);
        for frac in [0.0, 0.25, 0.55, 1.0] {
            let plan = hetero.plan_split(&db, q.len(), frac);
            let res = hetero.search(&q, &db, &plan, &SearchConfig::best(2), &SearchConfig::best(2));
            assert_eq!(res.hits, single.hits, "fraction {frac}");
        }
    }

    #[test]
    fn split_plan_partitions_batches() {
        let (db, q) = setup();
        let hetero = HeteroEngine::new(SearchEngine::paper_default());
        let plan = hetero.plan_split(&db, q.len(), 0.55);
        assert_eq!(plan.cpu.end, plan.accel.start);
        assert_eq!(plan.cpu.start, 0);
        assert_eq!(plan.accel.end, db.batches.len());
        assert!((plan.accel_cell_fraction - 0.55).abs() < 0.2);
    }

    #[test]
    fn extreme_fractions() {
        let (db, q) = setup();
        let hetero = HeteroEngine::new(SearchEngine::paper_default());
        let all_cpu = hetero.plan_split(&db, q.len(), 0.0);
        assert!(all_cpu.accel.is_empty());
        assert_eq!(all_cpu.accel_cell_fraction, 0.0);
        let all_accel = hetero.plan_split(&db, q.len(), 1.0);
        assert!(all_accel.cpu.is_empty());
        assert!((all_accel.accel_cell_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accelerator_gets_the_long_sequences() {
        let (db, q) = setup();
        let hetero = HeteroEngine::new(SearchEngine::paper_default());
        let plan = hetero.plan_split(&db, q.len(), 0.5);
        if !plan.cpu.is_empty() && !plan.accel.is_empty() {
            let cpu_max = db.batches[plan.cpu.end - 1].padded_len();
            let accel_min = db.batches[plan.accel.start].padded_len();
            assert!(accel_min >= cpu_max, "sorted split: accel takes the suffix");
        }
    }

    #[test]
    fn mixed_variant_configs_still_exact() {
        // CPU share with guided-QP, accel share with intrinsic-SP: scores
        // must still match the single-engine reference.
        use sw_kernels::{KernelVariant, ProfileMode, Vectorization};
        let (db, q) = setup();
        let engine = SearchEngine::paper_default();
        let reference = engine.search(&q, &db, &SearchConfig::best(1));
        let hetero = HeteroEngine::new(engine);
        let plan = hetero.plan_split(&db, q.len(), 0.4);
        let cpu_cfg = SearchConfig::best(2).with_variant(KernelVariant {
            vec: Vectorization::Guided,
            profile: ProfileMode::Query,
            blocking: false,
        });
        let accel_cfg = SearchConfig::best(2);
        let res = hetero.search(&q, &db, &plan, &cpu_cfg, &accel_cfg);
        assert_eq!(res.hits, reference.hits);
    }
}
