//! The heterogeneous engine — Algorithm 2, real execution.
//!
//! ```text
//! 4:  [vD_CPU, vD_MIC] = sort_and_split(D)
//! 6:  #pragma offload target(mic) … signal(sem)
//! 9:      G_MIC = SW_core(Q, vD_MIC, SUBMAT)
//! 12: G_CPU = SW_core(Q, vD_CPU, SUBMAT)
//! 14: #pragma offload wait(sem)
//! 15: scores = sort(G_MIC, G_CPU)
//! ```
//!
//! This host has no coprocessor, so *functionally* both shares execute on
//! host threads (giving exact scores and letting the split logic be
//! tested end-to-end); the *timing* of the heterogeneous run is produced
//! by [`crate::simulate::simulate_hetero`], which replays the same split
//! through the device models and the offload-runtime simulator.

use crate::checkpoint::{
    BatchResult, Checkpoint, CheckpointError, RecoveryTotals, SearchFingerprint,
};
use crate::config::{HeteroSearchConfig, SearchConfig};
use crate::engine::SearchEngine;
use crate::prepare::PreparedDb;
use crate::results::{Hit, SearchResults};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use sw_kernels::CellCount;
use sw_sched::{
    run_dual_pool_durable, run_dual_pool_traced, CheckpointView, DeviceMetrics, DrainSignal,
    DualPoolConfig, DurableControl, ExecError, FaultInjector, MetricsSink, DEVICE_ACCEL,
    DEVICE_CPU,
};
use sw_swdb::chunk::{range_cells, split_by_cells};
use sw_swdb::{BatchRange, QueryProfile};
use sw_trace::Timeline;

/// How the database was split between the two devices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitPlan {
    /// Batches assigned to the host CPU (prefix of the sorted batches —
    /// the shorter sequences).
    pub cpu: BatchRange,
    /// Batches assigned to the accelerator (suffix — the longer
    /// sequences, which amortise the accelerator's per-task overheads
    /// best).
    pub accel: BatchRange,
    /// Fraction of padded cells that actually landed on the accelerator.
    pub accel_cell_fraction: f64,
}

/// The heterogeneous search engine (Algorithm 2).
#[derive(Debug, Clone)]
pub struct HeteroEngine {
    /// The shared kernel engine.
    pub engine: SearchEngine,
}

impl HeteroEngine {
    /// Wrap an engine.
    pub fn new(engine: SearchEngine) -> Self {
        HeteroEngine { engine }
    }

    /// Plan the static split: the accelerator receives `accel_fraction`
    /// of the padded DP cells (Fig. 8's abscissa), taken from the long
    /// end of the sorted database.
    ///
    /// # Panics
    /// Panics when `accel_fraction` is NaN or outside `[0, 1]` — a split
    /// plan with an invalid fraction would silently assign everything to
    /// one device (NaN propagates through `1.0 - f` and every comparison).
    pub fn plan_split(&self, db: &PreparedDb, query_len: usize, accel_fraction: f64) -> SplitPlan {
        assert!(
            accel_fraction.is_finite() && (0.0..=1.0).contains(&accel_fraction),
            "accelerator fraction must be a finite value in [0, 1], got {accel_fraction}"
        );
        let (cpu, accel) = split_by_cells(&db.batches, query_len, 1.0 - accel_fraction);
        let total =
            range_cells(&db.batches, cpu, query_len) + range_cells(&db.batches, accel, query_len);
        let accel_cells = range_cells(&db.batches, accel, query_len);
        SplitPlan {
            cpu,
            accel,
            accel_cell_fraction: if total == 0 {
                0.0
            } else {
                accel_cells as f64 / total as f64
            },
        }
    }

    /// Run Algorithm 2: both shares are searched (the accelerator share
    /// with `accel_config` — e.g. 32-lane batches would be used on a real
    /// Phi; here the same host kernels), then merged and re-sorted.
    pub fn search(
        &self,
        query: &[u8],
        db: &PreparedDb,
        plan: &SplitPlan,
        cpu_config: &SearchConfig,
        accel_config: &SearchConfig,
    ) -> SearchResults {
        let cpu_res = self.search_range(query, db, plan.cpu, cpu_config);
        let accel_res = self.search_range(query, db, plan.accel, accel_config);
        cpu_res.merge(accel_res)
    }

    /// Search only the batches of `range` (one device's share).
    pub fn search_range(
        &self,
        query: &[u8],
        db: &PreparedDb,
        range: BatchRange,
        config: &SearchConfig,
    ) -> SearchResults {
        // A PreparedDb view restricted to the range: reuse the same sorted
        // store, slice the batches.
        let view = PreparedDb {
            alphabet: db.alphabet.clone(),
            sorted: db.sorted.clone(),
            batches: db.batches[range.start..range.end].to_vec(),
            lanes: db.lanes,
            stats: db.stats.clone(),
        };
        if view.batches.is_empty() {
            return SearchResults::new(
                Vec::new(),
                std::time::Duration::ZERO,
                sw_kernels::CellCount::default(),
                0,
            );
        }
        self.engine.search(query, &view, config)
    }

    /// Run the **dynamic** heterogeneous search: instead of executing the
    /// plan's fixed prefix/suffix ranges, both device pools pull lane
    /// batches from one shared double-ended queue (CPU from the short
    /// end, accelerator from the long end), with chunk sizes re-balanced
    /// from observed per-device throughput. `plan` only *seeds* the
    /// feedback estimator with its `accel_cell_fraction`.
    ///
    /// Hits are identical to [`Self::search`] with the same plan — the
    /// scheduler moves work between devices, never changes scores.
    ///
    /// # Panics
    /// Panics if the run fails terminally (a batch panics more often than
    /// `config.recovery.max_chunk_retries` on every pool). Use
    /// [`Self::search_dynamic_supervised`] to handle that as an error.
    pub fn search_dynamic(
        &self,
        query: &[u8],
        db: &PreparedDb,
        plan: &SplitPlan,
        config: &HeteroSearchConfig,
    ) -> DynamicSearchOutcome {
        self.search_dynamic_supervised(query, db, plan, config, &FaultInjector::none())
            .unwrap_or_else(|e| panic!("dynamic heterogeneous search failed: {e}"))
    }

    /// [`Self::search_dynamic`] with an explicit fault injector and a
    /// fallible signature — the full fault-tolerant path. Device workers
    /// that die or wedge release their chunk lease back to the queue; the
    /// surviving pool re-executes it, so a run that loses the whole
    /// accelerator pool still returns the exact hit list (flagged
    /// `degraded`). An `Err` only occurs when a batch fails persistently
    /// on every pool (`config.recovery` budgets exhausted).
    ///
    /// Degenerate inputs are safe: an empty database returns empty
    /// results without spawning workers, and a config with zero workers
    /// in both pools is clamped to one CPU worker.
    pub fn search_dynamic_supervised(
        &self,
        query: &[u8],
        db: &PreparedDb,
        plan: &SplitPlan,
        config: &HeteroSearchConfig,
        injector: &FaultInjector,
    ) -> Result<DynamicSearchOutcome, ExecError> {
        assert!(!query.is_empty(), "query must not be empty");
        if db.batches.is_empty() {
            return Ok(DynamicSearchOutcome {
                results: SearchResults::new(
                    Vec::new(),
                    std::time::Duration::ZERO,
                    CellCount::default(),
                    0,
                ),
                cpu: DeviceMetrics::default(),
                accel: DeviceMetrics::default(),
                boundary: 0,
                accel_cell_fraction: 0.0,
                degraded: [false, false],
                timeline: None,
            });
        }
        let qp = QueryProfile::build(query, &self.engine.params.matrix, &db.alphabet);
        let block_rows = [
            config.cpu.effective_block_rows(db.lanes),
            config.accel.effective_block_rows(db.lanes),
        ];
        let device_config = [&config.cpu, &config.accel];
        let m = query.len();
        // An all-zero worker config would deadlock the queue; degrade it
        // to a single CPU worker instead.
        let mut cpu_workers = config.cpu.threads;
        let accel_workers = config.accel.threads;
        if cpu_workers + accel_workers == 0 {
            cpu_workers = 1;
        }
        let sink = MetricsSink::new();
        let tracer = config.trace.tracer();
        let start = Instant::now();

        let outcome = run_dual_pool_traced(
            db.batches.len(),
            DualPoolConfig {
                cpu_workers,
                accel_workers,
                initial_accel_fraction: plan.accel_cell_fraction,
                min_chunk: config.min_chunk,
                accel_timeout_ms: config.recovery.accel_timeout_ms,
                failure_budget: config.recovery.failure_budget,
                retry_backoff_ms: config.recovery.retry_backoff_ms,
                max_chunk_retries: config.recovery.max_chunk_retries,
            },
            injector,
            |bi| db.batches[bi].padded_cells(m),
            |device, bi| {
                let cfg = device_config[device];
                let out =
                    self.engine
                        .run_batch(query, &qp, db, &db.batches[bi], cfg, block_rows[device]);
                (device, out)
            },
            &sink,
            &tracer,
        )?;
        let elapsed = start.elapsed();
        let timeline = tracer.is_enabled().then(|| tracer.timeline());

        let mut hits: Vec<Hit> = Vec::with_capacity(db.n_seqs());
        let mut cells = CellCount::default();
        let mut rescued = 0u64;
        let mut boundary = 0usize;
        for (device, (batch_hits, batch_cells, batch_rescued)) in outcome.results {
            if device == DEVICE_CPU {
                boundary += 1;
            }
            hits.extend(batch_hits);
            cells.add(batch_cells);
            rescued += batch_rescued;
        }
        let cpu = sink.device(DEVICE_CPU);
        let accel = sink.device(DEVICE_ACCEL);
        let total_cells = cpu.cells + accel.cells;
        let degraded = outcome.degraded;
        Ok(DynamicSearchOutcome {
            results: SearchResults::new(hits, elapsed, cells, rescued)
                .with_degraded(degraded[DEVICE_CPU] || degraded[DEVICE_ACCEL]),
            accel_cell_fraction: if total_cells == 0 {
                0.0
            } else {
                accel.cells as f64 / total_cells as f64
            },
            cpu,
            accel,
            boundary,
            degraded,
            timeline,
        })
    }

    /// [`Self::search_dynamic_supervised`] made **durable**: progress is
    /// checkpointed to disk at a configurable chunk interval, a prior
    /// checkpoint can be resumed (skipping its completed batches), and a
    /// [`DrainSignal`] stops the run gracefully with a final checkpoint.
    ///
    /// Resume correctness: batch results are pure functions of the batch
    /// index, and [`SearchResults::new`] sorts deterministically, so a
    /// search killed at any point and resumed produces a hit list
    /// byte-identical to an uninterrupted run. A checkpoint is only
    /// accepted when its [`SearchFingerprint`] (database content digest,
    /// query digest, lane count, batch count) matches the present search
    /// — anything else is a typed [`CheckpointError::Mismatch`].
    ///
    /// Recovery counters are cumulative: the checkpoint carries the
    /// totals of all prior run segments, so retries/requeues/lost-lease
    /// counts reported by a resumed run are monotone across restarts.
    /// On completion the checkpoint file is deleted.
    pub fn search_dynamic_resumable(
        &self,
        query: &[u8],
        db: &PreparedDb,
        plan: &SplitPlan,
        config: &HeteroSearchConfig,
        injector: &FaultInjector,
        opts: &DurableOptions<'_>,
    ) -> Result<DurableSearchOutcome, DurableSearchError> {
        assert!(!query.is_empty(), "query must not be empty");
        type BatchOut = (usize, (Vec<Hit>, CellCount, u64));
        let fingerprint = SearchFingerprint::compute(db, query);
        // Resolve the checkpoint file: an explicit path wins; a directory
        // derives the name from the fingerprint so concurrent searches
        // sharing the directory never clobber each other's tmp+rename.
        let derived: Option<PathBuf> = match (opts.checkpoint_path, opts.checkpoint_dir) {
            (Some(_), _) | (None, None) => None,
            (None, Some(dir)) => {
                std::fs::create_dir_all(dir)
                    .map_err(|e| DurableSearchError::Checkpoint(CheckpointError::Io(e)))?;
                Some(dir.join(fingerprint.file_name()))
            }
        };
        let ckpt_path: Option<&Path> = opts.checkpoint_path.or(derived.as_deref());
        if db.batches.is_empty() {
            if let Some(path) = ckpt_path {
                Checkpoint::remove(path).ok();
            }
            return Ok(DurableSearchOutcome {
                outcome: Some(DynamicSearchOutcome {
                    results: SearchResults::new(
                        Vec::new(),
                        std::time::Duration::ZERO,
                        CellCount::default(),
                        0,
                    ),
                    cpu: DeviceMetrics::default(),
                    accel: DeviceMetrics::default(),
                    boundary: 0,
                    accel_cell_fraction: 0.0,
                    degraded: [false, false],
                    timeline: None,
                }),
                drained: false,
                tasks_done: 0,
                n_batches: 0,
                resumed_tasks: 0,
                resumes: 0,
                checkpoints_written: 0,
                checkpoint_write_failures: 0,
                recovery: [RecoveryTotals::default(); 2],
            });
        }

        // Load and verify a prior checkpoint, if resuming.
        let mut prefill: Vec<(usize, BatchOut)> = Vec::new();
        let mut baseline = [RecoveryTotals::default(); 2];
        let mut resumes = 0u64;
        let mut next_seq = 0u64;
        let mut initial_share = plan.accel_cell_fraction;
        if opts.resume {
            if let Some(path) = ckpt_path {
                if let Some(ckpt) = Checkpoint::load_if_exists(path)? {
                    ckpt.verify(&fingerprint)?;
                    resumes = ckpt.resumes + 1;
                    next_seq = ckpt.seq + 1;
                    baseline = ckpt.recovery;
                    // Resume from the learned device balance, not the
                    // static seed.
                    initial_share = ckpt.accel_share;
                    prefill = ckpt
                        .done
                        .into_iter()
                        .map(|b| (b.batch, (b.device, (b.hits, b.cells, b.rescued))))
                        .collect();
                }
            }
        }
        let resumed_tasks = prefill.len() as u64;

        let qp = QueryProfile::build(query, &self.engine.params.matrix, &db.alphabet);
        let block_rows = [
            config.cpu.effective_block_rows(db.lanes),
            config.accel.effective_block_rows(db.lanes),
        ];
        let device_config = [&config.cpu, &config.accel];
        let m = query.len();
        let mut cpu_workers = config.cpu.threads;
        let accel_workers = config.accel.threads;
        if cpu_workers + accel_workers == 0 {
            cpu_workers = 1;
        }
        let sink = MetricsSink::new();
        let tracer = config.trace.tracer();

        let seq = AtomicU64::new(next_seq);
        let writes = AtomicU64::new(0);
        let write_failures = AtomicU64::new(0);
        let make_checkpoint = |slots: &[Option<BatchOut>],
                               accel_share: f64,
                               recovery: [RecoveryTotals; 2]|
         -> Checkpoint {
            Checkpoint {
                fingerprint,
                seq: seq.fetch_add(1, Ordering::Relaxed),
                resumes,
                accel_share,
                recovery,
                done: slots
                    .iter()
                    .enumerate()
                    .filter_map(|(i, s)| {
                        s.as_ref()
                            .map(|(device, (hits, cells, rescued))| BatchResult {
                                batch: i,
                                device: *device,
                                hits: hits.clone(),
                                cells: *cells,
                                rescued: *rescued,
                            })
                    })
                    .collect(),
            }
        };
        // Mid-run recovery totals: requeues / lost leases / failures are
        // recorded as they happen; per-worker retry counts only land at
        // worker exit, so a *periodic* checkpoint may undercount retries
        // (the final drain checkpoint, written after the pools exit, is
        // exact). Monotonicity is preserved either way.
        let cumulative_recovery = || {
            [
                baseline[DEVICE_CPU].plus(&sink.device(DEVICE_CPU)),
                baseline[DEVICE_ACCEL].plus(&sink.device(DEVICE_ACCEL)),
            ]
        };
        let on_checkpoint = |view: CheckpointView<'_, BatchOut>| -> u64 {
            let Some(path) = ckpt_path else {
                return 0;
            };
            let ckpt = make_checkpoint(view.slots, view.accel_share, cumulative_recovery());
            match ckpt.write_atomic(path) {
                Ok(bytes) => {
                    writes.fetch_add(1, Ordering::Relaxed);
                    bytes
                }
                Err(_) => {
                    // A failed periodic checkpoint must not kill the
                    // search; the failure is counted and surfaced on the
                    // outcome.
                    write_failures.fetch_add(1, Ordering::Relaxed);
                    0
                }
            }
        };

        let start = Instant::now();
        let out = run_dual_pool_durable(
            db.batches.len(),
            DualPoolConfig {
                cpu_workers,
                accel_workers,
                initial_accel_fraction: initial_share,
                min_chunk: config.min_chunk,
                accel_timeout_ms: config.recovery.accel_timeout_ms,
                failure_budget: config.recovery.failure_budget,
                retry_backoff_ms: config.recovery.retry_backoff_ms,
                max_chunk_retries: config.recovery.max_chunk_retries,
            },
            injector,
            DurableControl {
                prefill,
                drain: opts.drain,
                checkpoint_every_chunks: if ckpt_path.is_some() {
                    opts.interval_chunks
                } else {
                    0
                },
                on_checkpoint: Some(&on_checkpoint),
                task_cancelled: None,
            },
            |bi| db.batches[bi].padded_cells(m),
            |device, bi| {
                let cfg = device_config[device];
                let out =
                    self.engine
                        .run_batch(query, &qp, db, &db.batches[bi], cfg, block_rows[device]);
                (device, out)
            },
            &sink,
            &tracer,
        );
        let elapsed = start.elapsed();
        let timeline = tracer.is_enabled().then(|| tracer.timeline());
        let recovery = cumulative_recovery();
        let tasks_done = out.tasks_done() as u64;
        let n_batches = db.batches.len() as u64;

        if out.drained {
            // The final checkpoint is written *after* the pools exited,
            // so it captures exact totals and every committed chunk. Its
            // failure is a hard error: a drained run without its
            // checkpoint cannot be resumed.
            if let Some(path) = ckpt_path {
                let cpu_m = sink.device(DEVICE_CPU);
                let accel_m = sink.device(DEVICE_ACCEL);
                let total = cpu_m.cells + accel_m.cells;
                let share = if total == 0 {
                    initial_share
                } else {
                    accel_m.cells as f64 / total as f64
                };
                make_checkpoint(&out.slots, share, recovery).write_atomic(path)?;
                writes.fetch_add(1, Ordering::Relaxed);
            }
            return Ok(DurableSearchOutcome {
                outcome: None,
                drained: true,
                tasks_done,
                n_batches,
                resumed_tasks,
                resumes,
                checkpoints_written: writes.load(Ordering::Relaxed),
                checkpoint_write_failures: write_failures.load(Ordering::Relaxed),
                recovery,
            });
        }

        let degraded = out.degraded;
        let results_vec = out.try_into_results().map_err(DurableSearchError::Exec)?;
        let mut hits: Vec<Hit> = Vec::with_capacity(db.n_seqs());
        let mut cells = CellCount::default();
        let mut rescued = 0u64;
        let mut boundary = 0usize;
        for (device, (batch_hits, batch_cells, batch_rescued)) in results_vec {
            if device == DEVICE_CPU {
                boundary += 1;
            }
            hits.extend(batch_hits);
            cells.add(batch_cells);
            rescued += batch_rescued;
        }
        let cpu = sink.device(DEVICE_CPU);
        let accel = sink.device(DEVICE_ACCEL);
        let total_cells = cpu.cells + accel.cells;
        if let Some(path) = ckpt_path {
            // Best-effort cleanup: a stale checkpoint left behind is
            // re-verified (and its batches skipped) on the next resume,
            // never silently wrong.
            Checkpoint::remove(path).ok();
        }
        Ok(DurableSearchOutcome {
            outcome: Some(DynamicSearchOutcome {
                results: SearchResults::new(hits, elapsed, cells, rescued)
                    .with_degraded(degraded[DEVICE_CPU] || degraded[DEVICE_ACCEL]),
                accel_cell_fraction: if total_cells == 0 {
                    0.0
                } else {
                    accel.cells as f64 / total_cells as f64
                },
                cpu,
                accel,
                boundary,
                degraded,
                timeline,
            }),
            drained: false,
            tasks_done,
            n_batches,
            resumed_tasks,
            resumes,
            checkpoints_written: writes.load(Ordering::Relaxed),
            checkpoint_write_failures: write_failures.load(Ordering::Relaxed),
            recovery,
        })
    }
}

/// One query of a shared multi-query region
/// ([`HeteroEngine::search_many_resumable`]).
pub struct BatchQuery<'a> {
    /// Encoded query residues (must be non-empty).
    pub residues: &'a [u8],
    /// Caller-side identity (the daemon's job id); carried into the
    /// outcome and never interpreted here.
    pub id: u64,
    /// Per-query cancel: when requested, this query's *remaining* tasks
    /// are dropped from the shared region (no execution, no commit) while
    /// its batch-mates run on. The query comes back `cancelled` with a
    /// final checkpoint of whatever did commit.
    pub cancel: Option<&'a DrainSignal>,
    /// Per-query tracer: each of this query's tasks lands as a
    /// [`sw_trace::TaskSpan`] on it — its own epoch, its own query tag —
    /// so one shared region still exports separable per-query timelines.
    pub tracer: Option<&'a sw_trace::Tracer>,
}

/// Per-query result of [`HeteroEngine::search_many_resumable`].
#[derive(Debug)]
pub struct BatchQueryOutcome {
    /// The [`BatchQuery::id`] this outcome belongs to.
    pub id: u64,
    /// The completed, merged, sorted results — `None` when the query was
    /// cancelled (or the region drained) before all its batches committed.
    pub results: Option<SearchResults>,
    /// True when the query ended without completing (its own cancel or a
    /// region drain). A cancel that loses the race — every task already
    /// committed — reports a completed result instead.
    pub cancelled: bool,
    /// How many times this query has been resumed (0 = fresh).
    pub resumes: u64,
    /// Batches loaded from this query's checkpoint instead of recomputed.
    pub resumed_tasks: u64,
    /// Batches of this query with a committed result.
    pub tasks_done: u64,
}

/// What one shared multi-query region produced.
#[derive(Debug)]
pub struct BatchSearchOutcome {
    /// Per-query outcomes, in input order.
    pub queries: Vec<BatchQueryOutcome>,
    /// True when the *region* drain (daemon shutdown) stopped the run.
    pub drained: bool,
    /// Per-device degraded flags for the shared region.
    pub degraded: [bool; 2],
    /// Checkpoints written across all queries (periodic + final).
    pub checkpoints_written: u64,
    /// Periodic checkpoint writes that failed (counted, never fatal).
    pub checkpoint_write_failures: u64,
}

impl HeteroEngine {
    /// [`SearchEngine::search_many`]'s pooled product space, run through
    /// **one** durable dual-pool region — the cross-query batching core
    /// of the daemon. Task `t` maps to `(query t / |batches|, batch
    /// t % |batches|)`; both device pools pull from the one shared queue,
    /// so short queries fill lanes the long queries' tail would leave
    /// idle.
    ///
    /// Per-query semantics carried through the shared region:
    /// * **results** — each query's hit list is byte-identical to a solo
    ///   run (batch results are pure functions of `(query, batch)`).
    /// * **cancel** — a [`BatchQuery::cancel`] removes that query's
    ///   remaining tasks without perturbing batch-mates; the region-level
    ///   `opts.drain` still stops everything (daemon shutdown).
    /// * **checkpoints** — per-query fingerprint-keyed files in
    ///   `opts.checkpoint_dir` (an explicit `checkpoint_path` is ignored:
    ///   it cannot name more than one query), written periodically while
    ///   a query is incomplete, finalised exactly on cancel/drain, and
    ///   removed on completion; resume prefills that query's committed
    ///   batches.
    /// * **trace** — each task additionally lands on its owner's
    ///   [`BatchQuery::tracer`] as a one-task span, so per-query exports
    ///   stay separable; `config.trace` still traces the region itself.
    ///
    /// Errors are region-wide: a terminal task failure or an unreadable /
    /// unwritable checkpoint fails the whole call.
    pub fn search_many_resumable(
        &self,
        queries: &[BatchQuery<'_>],
        db: &PreparedDb,
        plan: &SplitPlan,
        config: &HeteroSearchConfig,
        injector: &FaultInjector,
        opts: &DurableOptions<'_>,
    ) -> Result<BatchSearchOutcome, DurableSearchError> {
        assert!(
            queries.iter().all(|q| !q.residues.is_empty()),
            "queries must not be empty"
        );
        type BatchOut = (usize, (Vec<Hit>, CellCount, u64));
        let n_batches = db.batches.len();
        let empty_results = || {
            SearchResults::new(
                Vec::new(),
                std::time::Duration::ZERO,
                CellCount::default(),
                0,
            )
        };
        if n_batches == 0 || queries.is_empty() {
            return Ok(BatchSearchOutcome {
                queries: queries
                    .iter()
                    .map(|q| BatchQueryOutcome {
                        id: q.id,
                        results: Some(empty_results()),
                        cancelled: false,
                        resumes: 0,
                        resumed_tasks: 0,
                        tasks_done: 0,
                    })
                    .collect(),
                drained: false,
                degraded: [false, false],
                checkpoints_written: 0,
                checkpoint_write_failures: 0,
            });
        }

        // Per-query checkpoint identity. Only the fingerprint-keyed
        // directory form works here — one explicit path cannot name N
        // queries. With checkpointing off, no fingerprints: the db
        // digest walks every resident residue, pure overhead a batch of
        // short queries would pay N times for nothing.
        let (fingerprints, ckpt_paths): (Vec<SearchFingerprint>, Vec<Option<PathBuf>>) =
            match opts.checkpoint_dir {
                None => (Vec::new(), vec![None; queries.len()]),
                Some(dir) => {
                    std::fs::create_dir_all(dir)
                        .map_err(|e| DurableSearchError::Checkpoint(CheckpointError::Io(e)))?;
                    let db_digest = sw_swdb::snapshot::content_digest(db.sorted.db());
                    let fps: Vec<SearchFingerprint> = queries
                        .iter()
                        .map(|q| SearchFingerprint::with_db_digest(db_digest, db, q.residues))
                        .collect();
                    let paths = fps
                        .iter()
                        .map(|fp| Some(dir.join(fp.file_name())))
                        .collect();
                    (fps, paths)
                }
            };

        // Load and verify each query's prior checkpoint, if resuming.
        let mut prefill: Vec<(usize, BatchOut)> = Vec::new();
        let mut resumes_v = vec![0u64; queries.len()];
        let mut resumed_v = vec![0u64; queries.len()];
        let mut seqs: Vec<AtomicU64> = Vec::with_capacity(queries.len());
        let mut baselines = vec![[RecoveryTotals::default(); 2]; queries.len()];
        let mut initial_share = plan.accel_cell_fraction;
        for (qi, q) in queries.iter().enumerate() {
            let mut next_seq = 0u64;
            if opts.resume {
                if let Some(path) = &ckpt_paths[qi] {
                    if let Some(ckpt) = Checkpoint::load_if_exists(path)? {
                        ckpt.verify(&fingerprints[qi])?;
                        resumes_v[qi] = ckpt.resumes + 1;
                        next_seq = ckpt.seq + 1;
                        baselines[qi] = ckpt.recovery;
                        // Any segment's learned balance beats the static
                        // seed for the whole shared region.
                        initial_share = ckpt.accel_share;
                        resumed_v[qi] = ckpt.done.len() as u64;
                        if let Some(tr) = q.tracer {
                            let mut j = tr.worker(DEVICE_CPU, n_batches);
                            j.emit(sw_trace::EventKind::ResumeLoaded {
                                tasks_done: resumed_v[qi],
                            });
                            j.flush();
                        }
                        prefill.extend(ckpt.done.into_iter().map(|b| {
                            (
                                qi * n_batches + b.batch,
                                (b.device, (b.hits, b.cells, b.rescued)),
                            )
                        }));
                    }
                }
            }
            seqs.push(AtomicU64::new(next_seq));
        }

        let qps: Vec<QueryProfile> = queries
            .iter()
            .map(|q| QueryProfile::build(q.residues, &self.engine.params.matrix, &db.alphabet))
            .collect();
        let block_rows = [
            config.cpu.effective_block_rows(db.lanes),
            config.accel.effective_block_rows(db.lanes),
        ];
        let device_config = [&config.cpu, &config.accel];
        let mut cpu_workers = config.cpu.threads;
        let accel_workers = config.accel.threads;
        if cpu_workers + accel_workers == 0 {
            cpu_workers = 1;
        }
        let sink = MetricsSink::new();
        let tracer = config.trace.tracer();

        let writes = AtomicU64::new(0);
        let write_failures = AtomicU64::new(0);
        // Build one query's checkpoint from its slice of the product
        // space. Recovery totals stay at the query's loaded baseline —
        // region-level recovery events cannot be attributed to one query.
        let make_q_checkpoint = |qi: usize, slots_q: &[Option<BatchOut>], share: f64| Checkpoint {
            fingerprint: fingerprints[qi],
            seq: seqs[qi].fetch_add(1, Ordering::Relaxed),
            resumes: resumes_v[qi],
            accel_share: share,
            recovery: baselines[qi],
            done: slots_q
                .iter()
                .enumerate()
                .filter_map(|(i, s)| {
                    s.as_ref()
                        .map(|(device, (hits, cells, rescued))| BatchResult {
                            batch: i,
                            device: *device,
                            hits: hits.clone(),
                            cells: *cells,
                            rescued: *rescued,
                        })
                })
                .collect(),
        };
        // A periodic tick checkpoints every query that is still
        // incomplete; complete queries keep their last file until the
        // region ends (it is removed with their results).
        let on_checkpoint = |view: CheckpointView<'_, BatchOut>| -> u64 {
            let mut total = 0u64;
            for (qi, ckpt_path) in ckpt_paths.iter().enumerate() {
                let Some(path) = ckpt_path else {
                    continue;
                };
                let slots_q = &view.slots[qi * n_batches..(qi + 1) * n_batches];
                if slots_q.iter().all(|s| s.is_some()) {
                    continue;
                }
                match make_q_checkpoint(qi, slots_q, view.accel_share).write_atomic(path) {
                    Ok(bytes) => {
                        writes.fetch_add(1, Ordering::Relaxed);
                        total += bytes;
                    }
                    Err(_) => {
                        write_failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            total
        };

        let start = Instant::now();
        let out = run_dual_pool_durable(
            queries.len() * n_batches,
            DualPoolConfig {
                cpu_workers,
                accel_workers,
                initial_accel_fraction: initial_share,
                min_chunk: config.min_chunk,
                accel_timeout_ms: config.recovery.accel_timeout_ms,
                failure_budget: config.recovery.failure_budget,
                retry_backoff_ms: config.recovery.retry_backoff_ms,
                max_chunk_retries: config.recovery.max_chunk_retries,
            },
            injector,
            DurableControl {
                prefill,
                drain: opts.drain,
                checkpoint_every_chunks: if opts.checkpoint_dir.is_some() {
                    opts.interval_chunks
                } else {
                    0
                },
                on_checkpoint: Some(&on_checkpoint),
                task_cancelled: Some(&|t: usize| {
                    queries[t / n_batches]
                        .cancel
                        .is_some_and(|c| c.is_requested())
                }),
            },
            |t| db.batches[t % n_batches].padded_cells(queries[t / n_batches].residues.len()),
            |device, t| {
                let (qi, bi) = (t / n_batches, t % n_batches);
                let q = &queries[qi];
                // The span opens on the OWNER's tracer (its epoch, its
                // query tag); the batch index doubles as the track lane
                // so one query's concurrent tasks never share a track.
                let span = q.tracer.map(|tr| tr.task_span(device, bi, bi));
                let cfg = device_config[device];
                let out = self.engine.run_batch(
                    q.residues,
                    &qps[qi],
                    db,
                    &db.batches[bi],
                    cfg,
                    block_rows[device],
                );
                if let Some(span) = span {
                    span.finish(t as u64, out.1.padded);
                }
                (device, out)
            },
            &sink,
            &tracer,
        );
        let elapsed = start.elapsed();
        let degraded = out.degraded;

        // Region-learned share for final checkpoints.
        let cpu_m = sink.device(DEVICE_CPU);
        let accel_m = sink.device(DEVICE_ACCEL);
        let total_exec_cells = cpu_m.cells + accel_m.cells;
        let final_share = if total_exec_cells == 0 {
            initial_share
        } else {
            accel_m.cells as f64 / total_exec_cells as f64
        };

        // Pooled wall clock, attributed by padded-cell share (floor
        // division: shares never sum past the wall clock) — same rule as
        // `SearchEngine::search_many`.
        let per_q_padded: Vec<u128> = queries
            .iter()
            .map(|q| {
                db.batches
                    .iter()
                    .map(|b| b.padded_cells(q.residues.len()) as u128)
                    .sum()
            })
            .collect();
        let total_padded: u128 = per_q_padded.iter().sum();

        let mut outcomes = Vec::with_capacity(queries.len());
        let mut incomplete_uncancelled = Vec::new();
        for (qi, q) in queries.iter().enumerate() {
            let slots_q = &out.slots[qi * n_batches..(qi + 1) * n_batches];
            let tasks_done = slots_q.iter().filter(|s| s.is_some()).count() as u64;
            let complete = tasks_done == n_batches as u64;
            if complete {
                // A cancel that raced completion still yields the exact
                // result; the checkpoint (if any) is spent.
                if let Some(path) = &ckpt_paths[qi] {
                    Checkpoint::remove(path).ok();
                }
                let mut hits: Vec<Hit> = Vec::with_capacity(db.n_seqs());
                let mut cells = CellCount::default();
                let mut rescued = 0u64;
                for s in slots_q.iter().flatten() {
                    let (_device, (batch_hits, batch_cells, batch_rescued)) = s;
                    hits.extend(batch_hits.iter().copied());
                    cells.add(*batch_cells);
                    rescued += batch_rescued;
                }
                let elapsed_q = (elapsed.as_nanos() * per_q_padded[qi])
                    .checked_div(total_padded)
                    .map(|ns| std::time::Duration::from_nanos(ns as u64))
                    .unwrap_or(elapsed);
                outcomes.push(BatchQueryOutcome {
                    id: q.id,
                    results: Some(
                        SearchResults::new(hits, elapsed_q, cells, rescued)
                            .with_degraded(degraded[DEVICE_CPU] || degraded[DEVICE_ACCEL]),
                    ),
                    cancelled: false,
                    resumes: resumes_v[qi],
                    resumed_tasks: resumed_v[qi],
                    tasks_done,
                });
                continue;
            }
            let cancelled = q.cancel.is_some_and(|c| c.is_requested()) || out.drained;
            if cancelled {
                // Final exact checkpoint: written after the pools exited,
                // its failure is a hard error — a cancelled query without
                // its checkpoint cannot be resumed.
                if let Some(path) = &ckpt_paths[qi] {
                    make_q_checkpoint(qi, slots_q, final_share).write_atomic(path)?;
                    writes.fetch_add(1, Ordering::Relaxed);
                }
                outcomes.push(BatchQueryOutcome {
                    id: q.id,
                    results: None,
                    cancelled: true,
                    resumes: resumes_v[qi],
                    resumed_tasks: resumed_v[qi],
                    tasks_done,
                });
                continue;
            }
            // Incomplete with neither a cancel nor a drain: terminal
            // execution failure.
            for (bi, s) in slots_q.iter().enumerate() {
                if s.is_none() {
                    let t = qi * n_batches + bi;
                    incomplete_uncancelled.push((t, t + 1));
                }
            }
            outcomes.push(BatchQueryOutcome {
                id: q.id,
                results: None,
                cancelled: false,
                resumes: resumes_v[qi],
                resumed_tasks: resumed_v[qi],
                tasks_done,
            });
        }
        if !incomplete_uncancelled.is_empty() {
            return Err(DurableSearchError::Exec(ExecError {
                failures: out.failures,
                missing: incomplete_uncancelled,
            }));
        }
        Ok(BatchSearchOutcome {
            queries: outcomes,
            drained: out.drained,
            degraded,
            checkpoints_written: writes.load(Ordering::Relaxed),
            checkpoint_write_failures: write_failures.load(Ordering::Relaxed),
        })
    }
}

/// Durability knobs for [`HeteroEngine::search_dynamic_resumable`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DurableOptions<'a> {
    /// Where the checkpoint lives. `None` with no `checkpoint_dir`
    /// disables checkpointing (the run is then durable in name only —
    /// drain still stops it gracefully, but nothing is persisted). An
    /// explicit path takes precedence over `checkpoint_dir`, but note it
    /// is shared mutable state: two concurrent searches given the same
    /// path will clobber each other — concurrent callers must use
    /// `checkpoint_dir`.
    pub checkpoint_path: Option<&'a Path>,
    /// Directory to keep the checkpoint in, under a file name derived
    /// from the [`SearchFingerprint`]
    /// ([`SearchFingerprint::file_name`]) — safe for any number of
    /// concurrent searches (distinct database/query/packing) to share.
    /// Created if missing. A resume with the same fingerprint finds the
    /// same file.
    pub checkpoint_dir: Option<&'a Path>,
    /// Write a checkpoint every this many committed chunks (0 = only the
    /// final drain checkpoint).
    pub interval_chunks: u64,
    /// Cooperative stop signal (SIGINT/SIGTERM in the CLI).
    pub drain: Option<&'a DrainSignal>,
    /// Load `checkpoint_path` if it exists and skip its completed
    /// batches.
    pub resume: bool,
}

/// Why a durable search failed.
#[derive(Debug)]
pub enum DurableSearchError {
    /// The execution itself failed terminally (see [`ExecError`]).
    Exec(ExecError),
    /// The checkpoint could not be loaded, verified, or (for the final
    /// drain checkpoint) written.
    Checkpoint(CheckpointError),
}

impl fmt::Display for DurableSearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableSearchError::Exec(e) => write!(f, "{e}"),
            DurableSearchError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DurableSearchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableSearchError::Exec(e) => Some(e),
            DurableSearchError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<CheckpointError> for DurableSearchError {
    fn from(e: CheckpointError) -> Self {
        DurableSearchError::Checkpoint(e)
    }
}

impl From<ExecError> for DurableSearchError {
    fn from(e: ExecError) -> Self {
        DurableSearchError::Exec(e)
    }
}

/// What a [`HeteroEngine::search_dynamic_resumable`] run produced.
#[derive(Debug)]
pub struct DurableSearchOutcome {
    /// The completed search — `None` when the run was drained before
    /// finishing (resume with the written checkpoint to continue).
    pub outcome: Option<DynamicSearchOutcome>,
    /// True when the run stopped on its [`DrainSignal`].
    pub drained: bool,
    /// Batches with a committed result (including resumed ones).
    pub tasks_done: u64,
    /// Total batches of the search.
    pub n_batches: u64,
    /// Batches loaded from the checkpoint instead of recomputed.
    pub resumed_tasks: u64,
    /// How many times this search has been resumed (0 = fresh run).
    pub resumes: u64,
    /// Checkpoints written during this segment (periodic + final).
    pub checkpoints_written: u64,
    /// Periodic checkpoint writes that failed (counted, never fatal).
    pub checkpoint_write_failures: u64,
    /// Cumulative recovery totals per device (`[cpu, accel]`) across all
    /// run segments — monotone under resume.
    pub recovery: [RecoveryTotals; 2],
}

/// What a [`HeteroEngine::search_dynamic`] run produced: the merged
/// results plus the realised per-device schedule.
#[derive(Debug, Clone)]
pub struct DynamicSearchOutcome {
    /// Merged, sorted hits — identical to the static-split search.
    pub results: SearchResults,
    /// Aggregated CPU-pool metrics (tasks, chunks, busy, queue-wait,
    /// cells, running GCUPS via [`DeviceMetrics::gcups`]).
    pub cpu: DeviceMetrics,
    /// Aggregated accelerator-pool metrics.
    pub accel: DeviceMetrics,
    /// Where the pools met: batches `0..boundary` ran on the CPU pool,
    /// `boundary..` on the accelerator pool.
    pub boundary: usize,
    /// Fraction of padded cells that actually landed on the accelerator —
    /// the *emergent* split, comparable to the plan's
    /// `accel_cell_fraction`.
    pub accel_cell_fraction: f64,
    /// Per-device degraded flags: true when that pool died mid-run and
    /// the other pool finished its share. Also folded into
    /// `results.degraded`.
    pub degraded: [bool; 2],
    /// Drained event timeline — `Some` only when
    /// [`HeteroSearchConfig::trace`](crate::config::TraceConfig) enabled
    /// tracing; export with `sw_trace::export`.
    pub timeline: Option<Timeline>,
}

impl DynamicSearchOutcome {
    /// Per-device counters in the shape the Prometheus exporter takes —
    /// **the same aggregates** the CLI prints, so an exported
    /// `metrics.prom` and the printed recovery summary always agree.
    /// `overflow_recomputes` come from the results' rescued-lane count,
    /// attributed per device by each pool's cell share (the kernel layer
    /// reports rescues per run, not per device).
    pub fn device_counters(&self) -> [sw_trace::DeviceCounters; 2] {
        // All rescued lanes are charged to the device that computed more
        // cells; splitting one u64 across pools would fabricate fractions
        // the CLI never prints.
        let (cpu_rescues, accel_rescues) = if self.cpu.cells >= self.accel.cells {
            (self.results.lanes_rescued, 0)
        } else {
            (0, self.results.lanes_rescued)
        };
        [
            self.cpu.counters(cpu_rescues),
            self.accel.counters(accel_rescues),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_seq::gen::{generate_database, generate_query, DbSpec};
    use sw_seq::Alphabet;

    fn setup() -> (PreparedDb, Vec<u8>) {
        let a = Alphabet::protein();
        let db = PreparedDb::prepare(generate_database(&DbSpec::tiny(13)), 8, &a);
        let q = generate_query(100, 21).residues;
        (db, q)
    }

    #[test]
    fn hetero_equals_single_device_results() {
        let (db, q) = setup();
        let engine = SearchEngine::paper_default();
        let single = engine.search(&q, &db, &SearchConfig::best(2));
        let hetero = HeteroEngine::new(engine);
        for frac in [0.0, 0.25, 0.55, 1.0] {
            let plan = hetero.plan_split(&db, q.len(), frac);
            let res = hetero.search(
                &q,
                &db,
                &plan,
                &SearchConfig::best(2),
                &SearchConfig::best(2),
            );
            assert_eq!(res.hits, single.hits, "fraction {frac}");
        }
    }

    #[test]
    fn split_plan_partitions_batches() {
        let (db, q) = setup();
        let hetero = HeteroEngine::new(SearchEngine::paper_default());
        let plan = hetero.plan_split(&db, q.len(), 0.55);
        assert_eq!(plan.cpu.end, plan.accel.start);
        assert_eq!(plan.cpu.start, 0);
        assert_eq!(plan.accel.end, db.batches.len());
        assert!((plan.accel_cell_fraction - 0.55).abs() < 0.2);
    }

    #[test]
    fn extreme_fractions() {
        let (db, q) = setup();
        let hetero = HeteroEngine::new(SearchEngine::paper_default());
        let all_cpu = hetero.plan_split(&db, q.len(), 0.0);
        assert!(all_cpu.accel.is_empty());
        assert_eq!(all_cpu.accel_cell_fraction, 0.0);
        let all_accel = hetero.plan_split(&db, q.len(), 1.0);
        assert!(all_accel.cpu.is_empty());
        assert!((all_accel.accel_cell_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accelerator_gets_the_long_sequences() {
        let (db, q) = setup();
        let hetero = HeteroEngine::new(SearchEngine::paper_default());
        let plan = hetero.plan_split(&db, q.len(), 0.5);
        if !plan.cpu.is_empty() && !plan.accel.is_empty() {
            let cpu_max = db.batches[plan.cpu.end - 1].padded_len();
            let accel_min = db.batches[plan.accel.start].padded_len();
            assert!(accel_min >= cpu_max, "sorted split: accel takes the suffix");
        }
    }

    #[test]
    #[should_panic(expected = "finite value in [0, 1]")]
    fn nan_fraction_rejected() {
        let (db, q) = setup();
        let hetero = HeteroEngine::new(SearchEngine::paper_default());
        hetero.plan_split(&db, q.len(), f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite value in [0, 1]")]
    fn negative_fraction_rejected() {
        let (db, q) = setup();
        let hetero = HeteroEngine::new(SearchEngine::paper_default());
        hetero.plan_split(&db, q.len(), -0.01);
    }

    #[test]
    #[should_panic(expected = "finite value in [0, 1]")]
    fn fraction_above_one_rejected() {
        let (db, q) = setup();
        let hetero = HeteroEngine::new(SearchEngine::paper_default());
        hetero.plan_split(&db, q.len(), 1.0 + 1e-9);
    }

    #[test]
    fn boundary_fractions_accepted() {
        // Exactly 0.0 and exactly 1.0 are valid (all-CPU / all-accel).
        let (db, q) = setup();
        let hetero = HeteroEngine::new(SearchEngine::paper_default());
        assert!(hetero.plan_split(&db, q.len(), 0.0).accel.is_empty());
        assert!(hetero.plan_split(&db, q.len(), 1.0).cpu.is_empty());
    }

    #[test]
    fn empty_share_reports_zero_elapsed_and_gcups() {
        let (db, q) = setup();
        let hetero = HeteroEngine::new(SearchEngine::paper_default());
        let plan = hetero.plan_split(&db, q.len(), 0.0);
        let res = hetero.search_range(&q, &db, plan.accel, &SearchConfig::best(1));
        assert!(res.hits.is_empty());
        assert_eq!(res.elapsed, std::time::Duration::ZERO);
        assert_eq!(
            res.gcups().value(),
            0.0,
            "no work in no time is zero throughput"
        );
    }

    #[test]
    fn dynamic_search_identical_to_static_split() {
        let (db, q) = setup();
        let engine = SearchEngine::paper_default();
        let hetero = HeteroEngine::new(engine);
        for frac in [0.0, 0.3, 0.7, 1.0] {
            let plan = hetero.plan_split(&db, q.len(), frac);
            let stat = hetero.search(
                &q,
                &db,
                &plan,
                &SearchConfig::best(2),
                &SearchConfig::best(2),
            );
            let dyn_ = hetero.search_dynamic(&q, &db, &plan, &HeteroSearchConfig::best(2, 2));
            assert_eq!(dyn_.results.hits, stat.hits, "fraction {frac}");
            assert_eq!(dyn_.results.cells, stat.cells, "fraction {frac}");
        }
    }

    #[test]
    fn dynamic_search_metrics_are_conserved() {
        let (db, q) = setup();
        let hetero = HeteroEngine::new(SearchEngine::paper_default());
        let plan = hetero.plan_split(&db, q.len(), 0.5);
        let out = hetero.search_dynamic(&q, &db, &plan, &HeteroSearchConfig::best(2, 2));
        // Every batch executed exactly once, across the two pools.
        assert_eq!(out.cpu.tasks + out.accel.tasks, db.batches.len() as u64);
        assert_eq!(out.boundary, out.cpu.tasks as usize);
        // Cost-function cells equal the database's padded cells.
        let padded: u64 = db.batches.iter().map(|b| b.padded_cells(q.len())).sum();
        assert_eq!(out.cpu.cells + out.accel.cells, padded);
        // The emergent split is a fraction, and GCUPS are finite.
        assert!((0.0..=1.0).contains(&out.accel_cell_fraction));
        assert!(out.cpu.gcups().is_finite() && out.accel.gcups().is_finite());
    }

    #[test]
    fn dynamic_search_single_pool_degenerate() {
        // Zero accelerator workers: the CPU pool drains the whole queue
        // and results still match the single-device engine.
        let (db, q) = setup();
        let engine = SearchEngine::paper_default();
        let single = engine.search(&q, &db, &SearchConfig::best(2));
        let hetero = HeteroEngine::new(engine);
        let plan = hetero.plan_split(&db, q.len(), 0.5);
        let cfg = HeteroSearchConfig::best(2, 0);
        let out = hetero.search_dynamic(&q, &db, &plan, &cfg);
        assert_eq!(out.results.hits, single.hits);
        assert_eq!(out.accel.tasks, 0);
        assert_eq!(out.accel_cell_fraction, 0.0);
        assert_eq!(out.boundary, db.batches.len());
    }

    #[test]
    fn dynamic_search_mixed_variants_still_exact() {
        use sw_kernels::{KernelVariant, ProfileMode, Vectorization};
        let (db, q) = setup();
        let engine = SearchEngine::paper_default();
        let reference = engine.search(&q, &db, &SearchConfig::best(1));
        let hetero = HeteroEngine::new(engine);
        let plan = hetero.plan_split(&db, q.len(), 0.4);
        let cpu_cfg = SearchConfig::best(2).with_variant(KernelVariant {
            vec: Vectorization::Guided,
            profile: ProfileMode::Query,
            blocking: false,
        });
        let out = hetero.search_dynamic(
            &q,
            &db,
            &plan,
            &HeteroSearchConfig::new(cpu_cfg, SearchConfig::best(2)),
        );
        assert_eq!(out.results.hits, reference.hits);
    }

    #[test]
    fn killed_accel_pool_degrades_with_identical_hits() {
        use sw_sched::{FaultKind, FaultPlan, FaultSpec};
        // Lanes of 4 → ~50 batches: plenty of queue for the accel pool to
        // reach its first chunk before the CPU pool can drain everything.
        let a = Alphabet::protein();
        let db = PreparedDb::prepare(generate_database(&DbSpec::tiny(29)), 4, &a);
        let q = generate_query(100, 17).residues;
        let hetero = HeteroEngine::new(SearchEngine::paper_default());
        let plan = hetero.plan_split(&db, q.len(), 0.5);

        // Reference: a fault-free CPU-only run.
        let cpu_only = hetero.search_dynamic(&q, &db, &plan, &HeteroSearchConfig::best(2, 0));

        // Fault run: the whole accelerator pool dies at its first chunk.
        let inj = FaultInjector::new(FaultPlan::single(FaultSpec {
            device: DEVICE_ACCEL,
            chunk: 0,
            kind: FaultKind::KillPool,
        }));
        let cfg = HeteroSearchConfig::best(2, 1);
        let out = hetero
            .search_dynamic_supervised(&q, &db, &plan, &cfg, &inj)
            .expect("run must recover, not fail");

        assert_eq!(
            out.results.hits, cpu_only.results.hits,
            "hit list must be identical to the CPU-only run"
        );
        assert!(out.degraded[DEVICE_ACCEL] && !out.degraded[DEVICE_CPU]);
        assert!(out.results.degraded, "degradation surfaces on the results");
        assert!(out.accel.degraded, "and on the device metrics");
        assert!(out.accel.requeues >= 1, "the killed chunk was requeued");
        assert!(out.accel.failures >= 1);
        // The surviving pool executed every batch.
        assert_eq!(out.cpu.tasks, db.batches.len() as u64);
        assert_eq!(out.accel.tasks, 0);
    }

    #[test]
    fn dynamic_search_empty_database_is_safe() {
        let a = Alphabet::protein();
        let db = PreparedDb::prepare(Vec::new(), 8, &a);
        let q = generate_query(50, 3).residues;
        let hetero = HeteroEngine::new(SearchEngine::paper_default());
        let plan = hetero.plan_split(&db, q.len(), 0.5);
        let out = hetero.search_dynamic(&q, &db, &plan, &HeteroSearchConfig::best(2, 2));
        assert!(out.results.hits.is_empty());
        assert_eq!(out.boundary, 0);
        assert_eq!(out.degraded, [false, false]);
        assert!(!out.results.degraded);
        assert_eq!(out.cpu.tasks + out.accel.tasks, 0);
        assert_eq!(out.accel_cell_fraction, 0.0);
    }

    #[test]
    fn dynamic_search_zero_workers_clamped_to_one_cpu() {
        let (db, q) = setup();
        let engine = SearchEngine::paper_default();
        let single = engine.search(&q, &db, &SearchConfig::best(1));
        let hetero = HeteroEngine::new(engine);
        let plan = hetero.plan_split(&db, q.len(), 0.5);
        let out = hetero.search_dynamic(&q, &db, &plan, &HeteroSearchConfig::best(0, 0));
        assert_eq!(out.results.hits, single.hits);
        assert_eq!(out.cpu.tasks, db.batches.len() as u64);
        assert_eq!(out.accel.tasks, 0);
    }

    #[test]
    fn dynamic_search_more_workers_than_batches() {
        let a = Alphabet::protein();
        let spec = DbSpec {
            n_seqs: 5,
            mean_len: 80.0,
            max_len: 120,
            seed: 9,
        };
        // 5 sequences in 8-lane batches → a single batch, 8 workers.
        let db = PreparedDb::prepare(generate_database(&spec), 8, &a);
        assert_eq!(db.batches.len(), 1);
        let q = generate_query(60, 2).residues;
        let engine = SearchEngine::paper_default();
        let single = engine.search(&q, &db, &SearchConfig::best(1));
        let hetero = HeteroEngine::new(engine);
        let plan = hetero.plan_split(&db, q.len(), 0.5);
        let out = hetero.search_dynamic(&q, &db, &plan, &HeteroSearchConfig::best(4, 4));
        assert_eq!(out.results.hits, single.hits);
        assert_eq!(out.cpu.tasks + out.accel.tasks, 1, "one batch, once");
    }

    #[test]
    fn batched_queries_equal_solo_runs() {
        // The cross-query batching core: mixed-length queries through ONE
        // shared region, each hit list byte-identical to its solo search,
        // and the pooled wall clock partitioned across queries.
        let (db, _) = setup();
        let engine = SearchEngine::paper_default();
        let hetero = HeteroEngine::new(engine);
        let queries: Vec<Vec<u8>> = [60u32, 150, 400]
            .iter()
            .map(|&l| generate_query(l, l as u64).residues)
            .collect();
        let cfg = HeteroSearchConfig::best(2, 1);
        let plan = hetero.plan_split(&db, queries[0].len(), 0.5);
        let batch: Vec<BatchQuery<'_>> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| BatchQuery {
                residues: q,
                id: i as u64 + 1,
                cancel: None,
                tracer: None,
            })
            .collect();
        let start = Instant::now();
        let out = hetero
            .search_many_resumable(
                &batch,
                &db,
                &plan,
                &cfg,
                &FaultInjector::none(),
                &DurableOptions::default(),
            )
            .expect("batched run");
        let wall = start.elapsed();
        assert!(!out.drained);
        assert_eq!(out.queries.len(), 3);
        let mut elapsed_sum = std::time::Duration::ZERO;
        for (q, qo) in queries.iter().zip(&out.queries) {
            let solo = hetero.engine.search(q, &db, &SearchConfig::best(1));
            let res = qo.results.as_ref().expect("completed");
            assert!(!qo.cancelled);
            assert_eq!(res.hits, solo.hits, "query {} vs solo", qo.id);
            assert_eq!(res.cells, solo.cells);
            elapsed_sum += res.elapsed;
        }
        assert!(
            elapsed_sum <= wall,
            "per-query elapsed must partition the region wall clock"
        );
    }

    #[test]
    fn batched_cancel_spares_batch_mates_and_resumes() {
        // Query B is cancelled out of the shared region; A must complete
        // with exact hits, B must leave a resumable fingerprint
        // checkpoint, and a resumed run of B must match its solo hits.
        let (db, _) = setup();
        let hetero = HeteroEngine::new(SearchEngine::paper_default());
        let qa = generate_query(120, 31).residues;
        let qb = generate_query(90, 32).residues;
        let solo_a = hetero.engine.search(&qa, &db, &SearchConfig::best(1));
        let solo_b = hetero.engine.search(&qb, &db, &SearchConfig::best(1));
        let tmp = std::env::temp_dir().join(format!("sw-batch-cancel-{}", std::process::id()));
        std::fs::remove_dir_all(&tmp).ok();
        let cfg = HeteroSearchConfig::best(2, 1);
        let plan = hetero.plan_split(&db, qa.len(), 0.5);
        let cancel_b = DrainSignal::new();
        cancel_b.request(); // deterministic: B never runs a task
        let opts = DurableOptions {
            checkpoint_dir: Some(&tmp),
            interval_chunks: 1,
            resume: true,
            ..DurableOptions::default()
        };
        let out = hetero
            .search_many_resumable(
                &[
                    BatchQuery {
                        residues: &qa,
                        id: 1,
                        cancel: None,
                        tracer: None,
                    },
                    BatchQuery {
                        residues: &qb,
                        id: 2,
                        cancel: Some(&cancel_b),
                        tracer: None,
                    },
                ],
                &db,
                &plan,
                &cfg,
                &FaultInjector::none(),
                &opts,
            )
            .expect("batched run");
        assert!(!out.drained, "a per-query cancel is not a region drain");
        let (a, b) = (&out.queries[0], &out.queries[1]);
        assert!(!a.cancelled);
        assert_eq!(
            a.results.as_ref().unwrap().hits,
            solo_a.hits,
            "batch-mate unperturbed by the cancel"
        );
        assert!(b.cancelled);
        assert!(b.results.is_none());
        // Exactly one checkpoint on disk: A's was removed on completion.
        assert_eq!(std::fs::read_dir(&tmp).unwrap().count(), 1);

        // Resume B (alone or batched — here batched with A again, whose
        // fresh run coexists with B's resume).
        let out2 = hetero
            .search_many_resumable(
                &[BatchQuery {
                    residues: &qb,
                    id: 2,
                    cancel: None,
                    tracer: None,
                }],
                &db,
                &plan,
                &cfg,
                &FaultInjector::none(),
                &opts,
            )
            .expect("resumed run");
        let b2 = &out2.queries[0];
        assert!(!b2.cancelled);
        assert_eq!(b2.resumes, 1, "second segment of the same query");
        assert_eq!(b2.results.as_ref().unwrap().hits, solo_b.hits);
        assert_eq!(
            std::fs::read_dir(&tmp).unwrap().count(),
            0,
            "completion spends the checkpoint"
        );
        std::fs::remove_dir_all(&tmp).ok();
    }

    #[test]
    fn batched_region_drain_checkpoints_every_incomplete_query() {
        // The daemon-shutdown path: the REGION drain stops everything;
        // every incomplete query must come back cancelled with its own
        // resumable checkpoint on disk.
        let (db, _) = setup();
        let hetero = HeteroEngine::new(SearchEngine::paper_default());
        let q1 = generate_query(100, 41).residues;
        let q2 = generate_query(110, 42).residues;
        let tmp = std::env::temp_dir().join(format!("sw-batch-drain-{}", std::process::id()));
        std::fs::remove_dir_all(&tmp).ok();
        let drain = DrainSignal::new();
        drain.request(); // drained before any task commits
        let cfg = HeteroSearchConfig::best(1, 1);
        let plan = hetero.plan_split(&db, q1.len(), 0.5);
        let opts = DurableOptions {
            checkpoint_dir: Some(&tmp),
            interval_chunks: 1,
            drain: Some(&drain),
            resume: true,
            ..DurableOptions::default()
        };
        let out = hetero
            .search_many_resumable(
                &[
                    BatchQuery {
                        residues: &q1,
                        id: 1,
                        cancel: None,
                        tracer: None,
                    },
                    BatchQuery {
                        residues: &q2,
                        id: 2,
                        cancel: None,
                        tracer: None,
                    },
                ],
                &db,
                &plan,
                &cfg,
                &FaultInjector::none(),
                &opts,
            )
            .expect("drained run is a successful partial run");
        assert!(out.drained);
        assert!(out.queries.iter().all(|q| q.cancelled));
        assert_eq!(
            std::fs::read_dir(&tmp).unwrap().count(),
            2,
            "one fingerprint checkpoint per incomplete query"
        );
        std::fs::remove_dir_all(&tmp).ok();
    }

    #[test]
    fn mixed_variant_configs_still_exact() {
        // CPU share with guided-QP, accel share with intrinsic-SP: scores
        // must still match the single-engine reference.
        use sw_kernels::{KernelVariant, ProfileMode, Vectorization};
        let (db, q) = setup();
        let engine = SearchEngine::paper_default();
        let reference = engine.search(&q, &db, &SearchConfig::best(1));
        let hetero = HeteroEngine::new(engine);
        let plan = hetero.plan_split(&db, q.len(), 0.4);
        let cpu_cfg = SearchConfig::best(2).with_variant(KernelVariant {
            vec: Vectorization::Guided,
            profile: ProfileMode::Query,
            blocking: false,
        });
        let accel_cfg = SearchConfig::best(2);
        let res = hetero.search(&q, &db, &plan, &cpu_cfg, &accel_cfg);
        assert_eq!(res.hits, reference.hits);
    }
}
