//! Hit reporting — turning a score list into the per-hit record a
//! production tool prints: header, bit score, E-value, traceback
//! alignment and its column statistics.

use crate::prepare::PreparedDb;
use crate::results::SearchResults;
use crate::stats::KarlinParams;
use serde::Serialize;
use sw_kernels::traceback::{sw_align, AlignStats, Alignment};
use sw_kernels::SwParams;
use sw_seq::SeqId;

/// Full per-hit record for the top of a result list.
#[derive(Debug, Clone, Serialize)]
pub struct HitReport {
    /// Database sequence id.
    pub id: SeqId,
    /// Database header.
    pub header: String,
    /// Subject length.
    pub subject_len: usize,
    /// Raw Smith-Waterman score.
    pub score: i64,
    /// Normalised bit score.
    pub bits: f64,
    /// Expect value against this database.
    pub evalue: f64,
    /// Alignment path (None when the score is 0).
    pub alignment: Option<Alignment>,
    /// Column statistics of the alignment.
    pub stats: Option<AlignStats>,
}

impl HitReport {
    /// One line of BLAST "outfmt 6"-style tabular output:
    /// `query subject %identity length mismatches gapopens qstart qend sstart send evalue bits`.
    pub fn tabular(&self, query_label: &str) -> String {
        match (&self.alignment, &self.stats) {
            (Some(a), Some(s)) => format!(
                "{query_label}\t{}\t{:.1}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.2e}\t{:.1}",
                self.header,
                s.pct_identity(),
                s.columns,
                s.columns - s.identities - s.gap_columns,
                s.gap_opens,
                a.query_range.0 + 1,
                a.query_range.1,
                a.subject_range.0 + 1,
                a.subject_range.1,
                self.evalue,
                self.bits
            ),
            _ => format!(
                "{query_label}\t{}\t0.0\t0\t0\t0\t0\t0\t0\t0\t{:.2e}\t{:.1}",
                self.header, self.evalue, self.bits
            ),
        }
    }
}

/// One-look summary of a whole search run — what a service health page
/// or the CLI footer prints, including whether the run degraded to a
/// single device pool.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SearchSummary {
    /// Number of database sequences scored.
    pub hits: usize,
    /// Best raw score (0 for an empty result list).
    pub best_score: i64,
    /// Measured throughput over real cells.
    pub gcups: f64,
    /// Saturated vector lanes recomputed exactly.
    pub lanes_rescued: u64,
    /// Instruction set the intrinsic kernels ran on (`KernelIsa::name`,
    /// e.g. `"avx2"`); empty when the caller did not attach one, and the
    /// rendered line then omits the segment.
    pub isa: String,
    /// Chunks re-executed after a failure, across both pools.
    pub retries: u64,
    /// Chunk leases released back to the queue, across both pools.
    pub requeues: u64,
    /// Leases reclaimed from silent workers by the lease timeout.
    pub lost_leases: u64,
    /// True when a device pool died mid-run and the search completed on
    /// the surviving pool.
    pub degraded: bool,
}

impl SearchSummary {
    /// Summarise a result set. Recovery counters are zero — a plain
    /// [`SearchResults`] does not carry them; use
    /// [`SearchSummary::of_dynamic`] for a dual-pool run.
    pub fn of(results: &SearchResults) -> Self {
        SearchSummary {
            hits: results.hits.len(),
            best_score: results.hits.first().map_or(0, |h| h.score),
            gcups: results.gcups().value(),
            lanes_rescued: results.lanes_rescued,
            isa: String::new(),
            retries: 0,
            requeues: 0,
            lost_leases: 0,
            degraded: results.degraded,
        }
    }

    /// Summarise a dynamic dual-pool run, folding in the per-device
    /// recovery counters the supervised scheduler collected.
    pub fn of_dynamic(outcome: &crate::hetero::DynamicSearchOutcome) -> Self {
        SearchSummary {
            retries: outcome.cpu.retries + outcome.accel.retries,
            requeues: outcome.cpu.requeues + outcome.accel.requeues,
            lost_leases: outcome.cpu.lost_leases + outcome.accel.lost_leases,
            ..SearchSummary::of(&outcome.results)
        }
    }

    /// Same summary tagged with the kernel ISA the run executed on.
    pub fn with_isa(mut self, isa: &str) -> Self {
        self.isa = isa.to_string();
        self
    }

    /// Render the single status line. The ISA tag and recovery counters
    /// appear only when set/non-zero, so a plain run's line is unchanged.
    pub fn render(&self) -> String {
        let isa = if self.isa.is_empty() {
            String::new()
        } else {
            format!(", isa {}", self.isa)
        };
        let recovery = if self.retries + self.requeues + self.lost_leases > 0 {
            format!(
                ", {} retries, {} requeues, {} lost leases",
                self.retries, self.requeues, self.lost_leases
            )
        } else {
            String::new()
        };
        format!(
            "{} hits, best {}, {:.3} GCUPS, {} lanes rescued{}{}{}",
            self.hits,
            self.best_score,
            self.gcups,
            self.lanes_rescued,
            isa,
            recovery,
            if self.degraded {
                " [DEGRADED: completed on one device pool]"
            } else {
                ""
            }
        )
    }
}

/// Build full reports for the top `k` hits of `results`.
pub fn report_top_hits(
    query: &[u8],
    db: &PreparedDb,
    results: &SearchResults,
    params: &SwParams,
    karlin: &KarlinParams,
    k: usize,
) -> Vec<HitReport> {
    results
        .top(k)
        .iter()
        .map(|hit| {
            let subject = db.sorted.db().seq(hit.id);
            let alignment = sw_align(query, subject.residues, params);
            let stats = alignment
                .as_ref()
                .map(|a| a.stats(query, subject.residues, params));
            if let Some(a) = &alignment {
                debug_assert_eq!(a.score, hit.score, "traceback must agree with the kernel");
            }
            HitReport {
                id: hit.id,
                header: db.sorted.db().header(hit.id).to_string(),
                subject_len: subject.len(),
                score: hit.score,
                bits: karlin.bit_score(hit.score),
                evalue: karlin.evalue(hit.score, query.len(), db.stats.total_residues),
                alignment,
                stats,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SearchConfig;
    use crate::engine::SearchEngine;
    use sw_seq::gen::{generate_database, generate_query, DbSpec};
    use sw_seq::Alphabet;

    fn setup() -> (PreparedDb, Vec<u8>, SearchEngine) {
        let a = Alphabet::protein();
        let mut seqs = generate_database(&DbSpec::tiny(19));
        let query = generate_query(90, 4);
        seqs.push(query.clone()); // plant a perfect hit
        let db = PreparedDb::prepare(seqs, 8, &a);
        (db, query.residues, SearchEngine::paper_default())
    }

    #[test]
    fn reports_are_consistent_with_results() {
        let (db, query, engine) = setup();
        let res = engine.search(&query, &db, &SearchConfig::best(2));
        let karlin = KarlinParams::gapped_approx(&engine.params.matrix);
        let reports = report_top_hits(&query, &db, &res, &engine.params, &karlin, 5);
        assert_eq!(reports.len(), 5);
        for (r, h) in reports.iter().zip(res.top(5)) {
            assert_eq!(r.id, h.id);
            assert_eq!(r.score, h.score);
            if let Some(a) = &r.alignment {
                assert_eq!(a.score, h.score);
            }
        }
        // The planted self-hit: 100 % identity, minuscule E-value.
        let top = &reports[0];
        assert_eq!(top.stats.as_ref().unwrap().pct_identity(), 100.0);
        assert!(top.evalue < 1e-30);
    }

    #[test]
    fn tabular_format_shape() {
        let (db, query, engine) = setup();
        let res = engine.search(&query, &db, &SearchConfig::best(1));
        let karlin = KarlinParams::gapped_approx(&engine.params.matrix);
        let reports = report_top_hits(&query, &db, &res, &engine.params, &karlin, 1);
        let line = reports[0].tabular("query1");
        let fields: Vec<&str> = line.split('\t').collect();
        assert_eq!(fields.len(), 12, "outfmt-6 has 12 columns: {line}");
        assert_eq!(fields[0], "query1");
        assert_eq!(fields[2], "100.0");
    }

    #[test]
    fn summary_reports_degradation() {
        let (db, query, engine) = setup();
        let res = engine.search(&query, &db, &SearchConfig::best(1));
        let clean = SearchSummary::of(&res);
        assert_eq!(clean.hits, db.n_seqs());
        assert!(clean.best_score > 0);
        assert!(!clean.degraded);
        assert!(!clean.render().contains("DEGRADED"));
        let degraded = SearchSummary::of(&res.with_degraded(true));
        assert!(degraded.degraded);
        assert!(degraded.render().contains("DEGRADED"));
    }

    #[test]
    fn render_golden_lines() {
        // Hand-built summaries pin the exact status-line format: a clean
        // run, a recovered run, and a degraded run.
        let clean = SearchSummary {
            hits: 42,
            best_score: 517,
            gcups: 1.2345,
            lanes_rescued: 2,
            isa: String::new(),
            retries: 0,
            requeues: 0,
            lost_leases: 0,
            degraded: false,
        };
        assert_eq!(
            clean.render(),
            "42 hits, best 517, 1.234 GCUPS, 2 lanes rescued"
        );

        let tagged = clean.clone().with_isa("avx2");
        assert_eq!(
            tagged.render(),
            "42 hits, best 517, 1.234 GCUPS, 2 lanes rescued, isa avx2"
        );

        let recovered = SearchSummary {
            retries: 3,
            requeues: 4,
            lost_leases: 1,
            ..clean.clone()
        };
        assert_eq!(
            recovered.render(),
            "42 hits, best 517, 1.234 GCUPS, 2 lanes rescued, \
             3 retries, 4 requeues, 1 lost leases"
        );

        let degraded = SearchSummary {
            degraded: true,
            ..recovered
        };
        assert_eq!(
            degraded.render(),
            "42 hits, best 517, 1.234 GCUPS, 2 lanes rescued, \
             3 retries, 4 requeues, 1 lost leases \
             [DEGRADED: completed on one device pool]"
        );
    }

    #[test]
    fn dynamic_summary_carries_recovery_counters() {
        use crate::config::HeteroSearchConfig;
        use crate::hetero::HeteroEngine;
        let (db, query, engine) = setup();
        let hetero = HeteroEngine::new(engine);
        let plan = hetero.plan_split(&db, query.len(), 0.5);
        let out = hetero.search_dynamic(&query, &db, &plan, &HeteroSearchConfig::best(2, 1));
        let summary = SearchSummary::of_dynamic(&out);
        assert_eq!(summary.hits, out.results.hits.len());
        assert_eq!(summary.retries, out.cpu.retries + out.accel.retries);
        assert_eq!(summary.requeues, out.cpu.requeues + out.accel.requeues);
        assert!(
            !summary.render().contains("retries"),
            "clean run renders without the recovery segment"
        );
    }

    #[test]
    fn zero_score_hits_report_without_alignment() {
        let a = Alphabet::protein();
        // A database sequence that cannot align (all prolines vs all
        // tryptophans).
        let w = a.encode_byte(b'W').unwrap();
        let p = a.encode_byte(b'P').unwrap();
        let db = PreparedDb::prepare(
            vec![sw_seq::EncodedSeq {
                header: "nohit".into(),
                residues: vec![p; 30],
            }],
            4,
            &a,
        );
        let engine = SearchEngine::paper_default();
        let query = vec![w; 30];
        let res = engine.search(&query, &db, &SearchConfig::best(1));
        assert_eq!(res.hits[0].score, 0);
        let karlin = KarlinParams::gapped_approx(&engine.params.matrix);
        let reports = report_top_hits(&query, &db, &res, &engine.params, &karlin, 1);
        assert!(reports[0].alignment.is_none());
        assert!(reports[0].tabular("q").contains("nohit"));
    }
}
