//! Alignment score statistics — Karlin–Altschul E-values and bit scores.
//!
//! The paper reports raw Smith-Waterman scores; a production search tool
//! (SSEARCH, SWIPE, BLAST) additionally reports how *surprising* a score
//! is. For ungapped local alignment, Karlin & Altschul (PNAS 1990) showed
//! scores follow an extreme-value distribution with parameters `λ` (the
//! unique positive root of `Σ pᵢ pⱼ e^{λ·s(i,j)} = 1`) and `K`; the
//! expected number of alignments scoring ≥ S against a database of `n`
//! residues is `E = K·m·n·e^{−λS}`.
//!
//! This module computes `λ` exactly from the substitution matrix and
//! residue background frequencies (bisection on a provably bracketing
//! interval), and uses the standard empirical estimate for `K`. Gapped
//! parameters cannot be derived analytically; like the classic tools we
//! apply the ungapped `λ` scaled by a gap-dependent factor, documented as
//! an approximation.

use serde::{Deserialize, Serialize};
use sw_seq::swissprot::AA_BACKGROUND_FREQ;
use sw_seq::SubstMatrix;

/// Karlin–Altschul parameters of a scoring system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KarlinParams {
    /// Scale parameter λ (nats per score unit).
    pub lambda: f64,
    /// Search-space constant K.
    pub k: f64,
}

impl KarlinParams {
    /// Parameters for ungapped alignment under `matrix` with the
    /// Swiss-Prot background composition.
    ///
    /// # Panics
    /// Panics if the scoring system has no positive λ (i.e. its expected
    /// score is non-negative — such matrices are unusable for local
    /// alignment).
    pub fn ungapped(matrix: &SubstMatrix) -> Self {
        let lambda = ungapped_lambda(matrix, &AA_BACKGROUND_FREQ)
            .expect("matrix must have negative expected score and a positive max");
        // K varies mildly across matrices (0.02–0.25); 0.13 is the
        // BLOSUM62 ungapped value, reused as the family default.
        KarlinParams { lambda, k: 0.13 }
    }

    /// Approximate parameters for gapped alignment: λ shrinks as gaps get
    /// cheaper. The factor 0.85 reproduces the published BLOSUM62 gapped
    /// λ ≈ 0.267 (open 11/extend 1) from the ungapped 0.318; we use it
    /// for the paper's 10/2 as well.
    pub fn gapped_approx(matrix: &SubstMatrix) -> Self {
        let u = Self::ungapped(matrix);
        KarlinParams {
            lambda: u.lambda * 0.85,
            k: 0.041,
        }
    }

    /// Expected number of chance alignments scoring ≥ `score` for a query
    /// of `query_len` against `db_residues` total database residues.
    pub fn evalue(&self, score: i64, query_len: usize, db_residues: u64) -> f64 {
        self.k * query_len as f64 * db_residues as f64 * (-self.lambda * score as f64).exp()
    }

    /// Normalised bit score: `(λ·S − ln K) / ln 2`.
    pub fn bit_score(&self, score: i64) -> f64 {
        (self.lambda * score as f64 - self.k.ln()) / std::f64::consts::LN_2
    }
}

/// Solve `Σᵢⱼ pᵢ pⱼ e^{λ sᵢⱼ} = 1` for the unique λ > 0.
///
/// Returns `None` when no positive root exists (expected score ≥ 0 or no
/// positive score in the table). Only the standard residues covered by
/// `freqs` participate — ambiguity codes have frequency 0.
pub fn ungapped_lambda(matrix: &SubstMatrix, freqs: &[f64]) -> Option<f64> {
    let n = freqs.len().min(matrix.len());
    // φ(λ) = Σ p_i p_j exp(λ s_ij); φ(0) = 1, φ'(0) = E[s] < 0 required,
    // φ(λ) → ∞ as λ → ∞ if any s_ij > 0 — so a root > 0 exists and is
    // unique by convexity.
    let phi = |lambda: f64| -> f64 {
        let mut acc = 0.0;
        for i in 0..n {
            for j in 0..n {
                acc += freqs[i] * freqs[j] * (lambda * matrix.score(i as u8, j as u8) as f64).exp();
            }
        }
        acc
    };
    // Expected score must be negative.
    let mut expected = 0.0;
    let mut any_positive = false;
    for i in 0..n {
        for j in 0..n {
            let s = matrix.score(i as u8, j as u8);
            expected += freqs[i] * freqs[j] * s as f64;
            any_positive |= s > 0;
        }
    }
    if expected >= 0.0 || !any_positive {
        return None;
    }
    // Bracket the root: φ dips below 1 just right of 0 and grows past 1
    // eventually.
    let mut hi = 0.1f64;
    while phi(hi) < 1.0 {
        hi *= 2.0;
        if hi > 1e3 {
            return None; // numerically degenerate table
        }
    }
    let mut lo = 1e-9f64;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if phi(mid) < 1.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blosum62_ungapped_lambda_matches_literature() {
        // Published ungapped λ for BLOSUM62 with Robinson–Robinson
        // frequencies is ≈ 0.3176; our Swiss-Prot composition lands close.
        let m = SubstMatrix::blosum62();
        let lambda = ungapped_lambda(&m, &AA_BACKGROUND_FREQ).unwrap();
        assert!((0.30..0.34).contains(&lambda), "λ = {lambda}");
    }

    #[test]
    fn lambda_solves_the_defining_equation() {
        let m = SubstMatrix::blosum62();
        let lambda = ungapped_lambda(&m, &AA_BACKGROUND_FREQ).unwrap();
        let mut acc = 0.0;
        for (i, &pi) in AA_BACKGROUND_FREQ.iter().enumerate() {
            for (j, &pj) in AA_BACKGROUND_FREQ.iter().enumerate() {
                acc += pi * pj * (lambda * m.score(i as u8, j as u8) as f64).exp();
            }
        }
        assert!((acc - 1.0).abs() < 1e-6, "φ(λ) = {acc}");
    }

    #[test]
    fn sharper_matrices_have_larger_lambda() {
        // BLOSUM80 targets closer homologs: its scores are more extreme
        // per alignment column, so λ (nats per score unit) is smaller for
        // shallower matrices like BLOSUM45 than for BLOSUM62? — actually
        // the scale differs: verify simply that each matrix yields a
        // positive root and PAM250 (very permissive) the smallest.
        let l62 = ungapped_lambda(&SubstMatrix::blosum62(), &AA_BACKGROUND_FREQ).unwrap();
        let l45 = ungapped_lambda(&SubstMatrix::blosum45(), &AA_BACKGROUND_FREQ).unwrap();
        let l250 = ungapped_lambda(&SubstMatrix::pam250(), &AA_BACKGROUND_FREQ).unwrap();
        assert!(l62 > 0.0 && l45 > 0.0 && l250 > 0.0);
        assert!(l250 < l62, "PAM250 λ {l250} should be below BLOSUM62 {l62}");
    }

    #[test]
    fn no_lambda_for_all_positive_matrix() {
        let dna = sw_seq::Alphabet::dna();
        let m = SubstMatrix::match_mismatch(&dna, 5, 1); // expected score > 0
        assert!(ungapped_lambda(&m, &[0.25, 0.25, 0.25, 0.25, 0.0]).is_none());
    }

    #[test]
    fn evalue_monotone_in_score() {
        let p = KarlinParams::ungapped(&SubstMatrix::blosum62());
        let e50 = p.evalue(50, 300, 192_480_382);
        let e100 = p.evalue(100, 300, 192_480_382);
        let e300 = p.evalue(300, 300, 192_480_382);
        assert!(e50 > e100 && e100 > e300);
        assert!(
            e300 < 1e-20,
            "a 300-score hit is essentially certain homology"
        );
    }

    #[test]
    fn evalue_scales_with_search_space() {
        let p = KarlinParams::ungapped(&SubstMatrix::blosum62());
        let small = p.evalue(80, 100, 1_000_000);
        let big = p.evalue(80, 100, 192_480_382);
        assert!((big / small - 192.480382).abs() < 0.01);
    }

    #[test]
    fn bit_scores_reasonable() {
        let p = KarlinParams::gapped_approx(&SubstMatrix::blosum62());
        // A raw score of ~60 is ~25 bits under gapped BLOSUM62 params.
        let bits = p.bit_score(60);
        assert!((20.0..30.0).contains(&bits), "bits = {bits}");
        assert!(p.bit_score(120) > p.bit_score(60));
    }

    #[test]
    fn gapped_lambda_close_to_published() {
        let p = KarlinParams::gapped_approx(&SubstMatrix::blosum62());
        assert!((p.lambda - 0.267).abs() < 0.02, "λ_gapped = {}", p.lambda);
    }
}
