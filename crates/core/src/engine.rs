//! The search engine — Algorithm 1, real execution.
//!
//! ```text
//! 1: Q  = read_file(queries)          (caller, via sw-seq)
//! 4: vD = sort_by_length(D)           (PreparedDb)
//! 9: G  = SW_core(Q, vD, SUBMAT)      (this module: parallel kernel loop)
//! 11: scores = sort(G)                (SearchResults)
//! ```
//!
//! The parallel loop runs under `sw-sched`'s executor with the configured
//! policy (dynamic by default, per the paper's observation), one task per
//! lane batch. Saturated lanes are recomputed exactly before reporting.

use crate::config::SearchConfig;
use crate::prepare::PreparedDb;
use crate::results::{Hit, SearchResults};
use std::time::Instant;
use sw_kernels::arch::{sw_isa_adaptive_qp, sw_isa_adaptive_sp, sw_isa_qp, sw_isa_sp};
use sw_kernels::guided::{sw_guided_qp, sw_guided_sp, GuidedWorkspace};
use sw_kernels::intertask::KernelOutput;
use sw_kernels::overflow::rescue_overflows;
use sw_kernels::scalar::{sw_score_scalar, sw_score_scalar_qp};
use sw_kernels::{CellCount, ProfileMode, SwParams, Vectorization};
use sw_sched::{try_run_parallel, ExecutorConfig};
use sw_swdb::{LaneBatch, QueryProfile, SequenceProfile};

/// The Smith-Waterman database search engine.
#[derive(Debug, Clone)]
pub struct SearchEngine {
    /// Scoring parameters (matrix + gaps).
    pub params: SwParams,
}

impl SearchEngine {
    /// Engine with explicit parameters.
    pub fn new(params: SwParams) -> Self {
        SearchEngine { params }
    }

    /// Engine with the paper's parameters (BLOSUM62, 10/2).
    pub fn paper_default() -> Self {
        SearchEngine {
            params: SwParams::paper_default(),
        }
    }

    /// Search `query` against a prepared database (Algorithm 1).
    ///
    /// Scores are exact for every database sequence; hits come back
    /// sorted descending.
    pub fn search(&self, query: &[u8], db: &PreparedDb, config: &SearchConfig) -> SearchResults {
        assert!(!query.is_empty(), "query must not be empty");
        let qp = QueryProfile::build(query, &self.params.matrix, &db.alphabet);
        let block_rows = config.effective_block_rows(db.lanes);
        let start = Instant::now();

        let per_batch = try_run_parallel(
            db.batches.len(),
            ExecutorConfig {
                workers: config.threads,
                policy: config.policy,
            },
            |bi| {
                let batch = &db.batches[bi];
                self.run_batch(query, &qp, db, batch, config, block_rows)
            },
        )
        .unwrap_or_else(|e| {
            panic!(
                "database search failed on {} lane batch(es): {e}",
                e.failures.len().max(e.missing.len())
            )
        });

        let elapsed = start.elapsed();
        let mut hits = Vec::with_capacity(db.n_seqs());
        let mut cells = CellCount::default();
        let mut rescued = 0u64;
        for (batch_hits, batch_cells, batch_rescued) in per_batch {
            hits.extend(batch_hits);
            cells.add(batch_cells);
            rescued += batch_rescued;
        }
        SearchResults::new(hits, elapsed, cells, rescued)
    }

    /// Search several queries in **one** parallel region — the literal
    /// loop of the paper's Algorithm 1, line 19: `for t ≤ |Q| · |vD|`.
    ///
    /// Pooling the product space is what gives the paper's measured
    /// steady-state GCUPS: long-query tail batches of one query overlap
    /// other queries' work instead of serialising the run.
    ///
    /// Results come back per query, each sorted descending, identical to
    /// running [`Self::search`] once per query.
    pub fn search_many(
        &self,
        queries: &[&[u8]],
        db: &PreparedDb,
        config: &SearchConfig,
    ) -> Vec<SearchResults> {
        assert!(
            queries.iter().all(|q| !q.is_empty()),
            "queries must not be empty"
        );
        let n_batches = db.batches.len();
        if n_batches == 0 {
            return queries
                .iter()
                .map(|_| {
                    SearchResults::new(
                        Vec::new(),
                        std::time::Duration::ZERO,
                        CellCount::default(),
                        0,
                    )
                })
                .collect();
        }
        let qps: Vec<QueryProfile> = queries
            .iter()
            .map(|q| QueryProfile::build(q, &self.params.matrix, &db.alphabet))
            .collect();
        let block_rows = config.effective_block_rows(db.lanes);
        let start = Instant::now();

        let per_task = try_run_parallel(
            queries.len() * n_batches,
            ExecutorConfig {
                workers: config.threads,
                policy: config.policy,
            },
            |t| {
                let (qi, bi) = (t / n_batches, t % n_batches);
                let batch = &db.batches[bi];
                self.run_batch(queries[qi], &qps[qi], db, batch, config, block_rows)
            },
        )
        .unwrap_or_else(|e| {
            // Task ids are (query, batch) pairs; name the first culprit.
            let ctx = e
                .failures
                .first()
                .map(|f| format!("query {} batch {}", f.task / n_batches, f.task % n_batches))
                .unwrap_or_else(|| "unexecuted tasks".into());
            panic!("multi-query search failed ({ctx}): {e}")
        });
        let elapsed = start.elapsed();

        let mut merged: Vec<(Vec<Hit>, CellCount, u64)> = Vec::with_capacity(queries.len());
        for (qi, chunk) in per_task.chunks(n_batches.max(1)).enumerate() {
            if qi >= queries.len() {
                break;
            }
            let mut hits = Vec::with_capacity(db.n_seqs());
            let mut cells = CellCount::default();
            let mut rescued = 0u64;
            for (batch_hits, batch_cells, batch_rescued) in chunk {
                hits.extend(batch_hits.iter().copied());
                cells.add(*batch_cells);
                rescued += batch_rescued;
            }
            merged.push((hits, cells, rescued));
        }
        // The pooled region has ONE wall clock; charging it to every query
        // would inflate aggregate GCUPS by ~|Q|×. Attribute each query its
        // padded-cell share of the pooled time (floor division, so the
        // shares can never sum past the wall clock).
        let total_padded: u128 = merged.iter().map(|(_, c, _)| c.padded as u128).sum();
        merged
            .into_iter()
            .map(|(hits, cells, rescued)| {
                let elapsed_q = (elapsed.as_nanos() * cells.padded as u128)
                    .checked_div(total_padded)
                    .map(|ns| std::time::Duration::from_nanos(ns as u64))
                    .unwrap_or(elapsed);
                SearchResults::new(hits, elapsed_q, cells, rescued)
            })
            .collect()
    }

    /// Search a database volume by volume under a residue budget
    /// (bounded-memory mode; see `sw_swdb::volumes`). Results are
    /// identical to a whole-database search — ids are re-based to the
    /// original database.
    pub fn search_volumes(
        &self,
        query: &[u8],
        db: &sw_swdb::SequenceDatabase,
        plan: &sw_swdb::VolumePlan,
        lanes: usize,
        alphabet: &sw_seq::Alphabet,
        config: &SearchConfig,
    ) -> SearchResults {
        let mut merged: Option<SearchResults> = None;
        for v in 0..plan.len() {
            let seqs = plan.extract(db, v);
            if seqs.is_empty() {
                continue;
            }
            let prepared = PreparedDb::prepare(seqs, lanes, alphabet);
            let mut res = self.search(query, &prepared, config);
            // Re-base volume-local ids to the original database.
            for hit in &mut res.hits {
                *hit = Hit {
                    id: plan.rebase(v, hit.id.0),
                    score: hit.score,
                };
            }
            merged = Some(match merged.take() {
                None => res,
                Some(acc) => acc.merge(res),
            });
        }
        merged.unwrap_or_else(|| {
            SearchResults::new(
                Vec::new(),
                std::time::Duration::ZERO,
                CellCount::default(),
                0,
            )
        })
    }

    /// Execute one lane batch under the configured variant.
    pub(crate) fn run_batch(
        &self,
        query: &[u8],
        qp: &QueryProfile,
        db: &PreparedDb,
        batch: &LaneBatch,
        config: &SearchConfig,
        block_rows: usize,
    ) -> (Vec<Hit>, CellCount, u64) {
        let gap = &self.params.gap;
        let m = query.len();
        let cells = CellCount {
            real: batch.real_cells(m),
            padded: batch.padded_cells(m),
        };

        let mut out = match config.variant.vec {
            Vectorization::NoVec => self.run_batch_scalar(query, qp, db, batch, config),
            Vectorization::Guided => {
                let mut ws = GuidedWorkspace::new();
                match config.variant.profile {
                    ProfileMode::Query => sw_guided_qp(qp, batch, gap, &mut ws),
                    ProfileMode::Sequence => {
                        let sp = SequenceProfile::build(batch, &self.params.matrix, &db.alphabet);
                        sw_guided_sp(query, &sp, batch, gap, &mut ws)
                    }
                }
            }
            Vectorization::Intrinsic => {
                self.run_batch_intrinsic(query, qp, db, batch, config, block_rows)
            }
        };

        // Exact rescue of saturated lanes.
        let mut rescued = 0u64;
        if out.any_overflow() {
            let lane_seqs: Vec<&[u8]> = batch
                .ids()
                .iter()
                .map(|&id| db.sorted.db().seq(id).residues)
                .collect();
            let stats = rescue_overflows(&mut out, query, batch, &lane_seqs, &self.params);
            rescued = stats.lanes_rescued;
        }

        let hits = batch
            .ids()
            .iter()
            .zip(out.scores.iter())
            .map(|(&id, &score)| Hit { id, score })
            .collect();
        (hits, cells, rescued)
    }

    /// The `no-vec` path: one pair at a time.
    fn run_batch_scalar(
        &self,
        query: &[u8],
        qp: &QueryProfile,
        db: &PreparedDb,
        batch: &LaneBatch,
        config: &SearchConfig,
    ) -> KernelOutput {
        let scores: Vec<i64> = batch
            .ids()
            .iter()
            .map(|&id| {
                let subject = db.sorted.db().seq(id).residues;
                match config.variant.profile {
                    ProfileMode::Query => sw_score_scalar_qp(qp, subject, &self.params.gap),
                    ProfileMode::Sequence => sw_score_scalar(query, subject, &self.params),
                }
            })
            .collect();
        let overflowed = vec![false; scores.len()];
        KernelOutput { scores, overflowed }
    }

    /// The `intrinsic` path: explicit-lane kernels, monomorphised per
    /// supported lane width and dispatched to the configured ISA
    /// (`sw_kernels::arch`) — real SSE2/AVX2 intrinsics at their native
    /// widths, the portable kernels everywhere else.
    fn run_batch_intrinsic(
        &self,
        query: &[u8],
        qp: &QueryProfile,
        db: &PreparedDb,
        batch: &LaneBatch,
        config: &SearchConfig,
        block_rows: usize,
    ) -> KernelOutput {
        macro_rules! dispatch {
            ($lanes:literal) => {{
                let gap = &self.params.gap;
                let isa = config.isa;
                if config.adaptive_precision {
                    // Dual-precision cascade (unblocked kernels; exactness
                    // is identical, see sw_kernels::narrow).
                    use sw_swdb::{QueryProfileI8, SequenceProfileI8};
                    let (out, _stats) = match config.variant.profile {
                        ProfileMode::Query => {
                            let qp8 = QueryProfileI8::from_wide(qp);
                            sw_isa_adaptive_qp::<$lanes>(isa, qp, &qp8, batch, gap)
                        }
                        ProfileMode::Sequence => {
                            let sp =
                                SequenceProfile::build(batch, &self.params.matrix, &db.alphabet);
                            let sp8 = SequenceProfileI8::from_wide(&sp);
                            sw_isa_adaptive_sp::<$lanes>(isa, query, &sp, &sp8, batch, gap)
                        }
                    };
                    return out;
                }
                let block = config.variant.blocking.then_some(block_rows);
                match config.variant.profile {
                    ProfileMode::Query => sw_isa_qp::<$lanes>(isa, qp, batch, gap, block),
                    ProfileMode::Sequence => {
                        let sp = SequenceProfile::build(batch, &self.params.matrix, &db.alphabet);
                        sw_isa_sp::<$lanes>(isa, query, &sp, batch, gap, block)
                    }
                }
            }};
        }
        match batch.lanes() {
            4 => dispatch!(4),
            8 => dispatch!(8),
            16 => dispatch!(16),
            32 => dispatch!(32),
            other => panic!(
                "intrinsic kernels are monomorphised for 4/8/16/32 lanes, got {other}; \
                 use the guided variant for arbitrary widths"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_kernels::KernelVariant;
    use sw_seq::gen::{generate_database, generate_query, DbSpec};
    use sw_seq::Alphabet;

    fn small_db(lanes: usize) -> PreparedDb {
        let a = Alphabet::protein();
        let seqs = generate_database(&DbSpec::tiny(42));
        PreparedDb::prepare(seqs, lanes, &a)
    }

    fn reference_scores(query: &[u8], db: &PreparedDb) -> Vec<(u32, i64)> {
        let p = SwParams::paper_default();
        let mut v: Vec<(u32, i64)> = db
            .sorted
            .db()
            .iter()
            .map(|(id, s)| (id.0, sw_score_scalar(query, s.residues, &p)))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    #[test]
    fn all_variants_agree_with_reference() {
        let db = small_db(8);
        let query = generate_query(120, 7);
        let engine = SearchEngine::paper_default();
        let expect = reference_scores(&query.residues, &db);
        for variant in KernelVariant::fig3_set() {
            let cfg = SearchConfig::best(2).with_variant(variant);
            let res = engine.search(&query.residues, &db, &cfg);
            let got: Vec<(u32, i64)> = res.hits.iter().map(|h| (h.id.0, h.score)).collect();
            assert_eq!(got, expect, "variant {variant}");
        }
    }

    #[test]
    fn unblocked_variants_agree_too() {
        let db = small_db(4);
        let query = generate_query(80, 9);
        let engine = SearchEngine::paper_default();
        let expect = reference_scores(&query.residues, &db);
        for mut variant in KernelVariant::fig3_set() {
            variant.blocking = false;
            let cfg = SearchConfig::best(1).with_variant(variant);
            let res = engine.search(&query.residues, &db, &cfg);
            let got: Vec<(u32, i64)> = res.hits.iter().map(|h| (h.id.0, h.score)).collect();
            assert_eq!(got, expect, "variant {variant}");
        }
    }

    #[test]
    fn every_database_sequence_is_scored_once() {
        let db = small_db(16);
        let query = generate_query(60, 3);
        let engine = SearchEngine::paper_default();
        let res = engine.search(&query.residues, &db, &SearchConfig::best(3));
        assert_eq!(res.hits.len(), db.n_seqs());
        let mut ids: Vec<u32> = res.hits.iter().map(|h| h.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), db.n_seqs());
    }

    #[test]
    fn results_sorted_descending() {
        let db = small_db(8);
        let query = generate_query(90, 5);
        let engine = SearchEngine::paper_default();
        let res = engine.search(&query.residues, &db, &SearchConfig::best(2));
        assert!(res.hits.windows(2).all(|w| w[0].score >= w[1].score));
        assert_eq!(res.cells.real, db.total_cells(90));
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let db = small_db(8);
        let query = generate_query(70, 11);
        let engine = SearchEngine::paper_default();
        let r1 = engine.search(&query.residues, &db, &SearchConfig::best(1));
        let r4 = engine.search(&query.residues, &db, &SearchConfig::best(4));
        assert_eq!(r1.hits, r4.hits);
    }

    #[test]
    fn overflow_rescue_in_engine() {
        // A database containing a huge self-similar sequence saturates i16
        // and must come back exact.
        let a = Alphabet::protein();
        let w = a.encode_byte(b'W').unwrap();
        let giant = sw_seq::EncodedSeq {
            header: "giant".into(),
            residues: vec![w; 3200],
        };
        let small = sw_seq::EncodedSeq {
            header: "small".into(),
            residues: vec![w; 10],
        };
        let db = PreparedDb::prepare(vec![giant.clone(), small], 4, &a);
        let engine = SearchEngine::paper_default();
        let res = engine.search(&giant.residues, &db, &SearchConfig::best(1));
        assert_eq!(res.lanes_rescued, 1);
        assert_eq!(res.hits[0].score, 3200 * 11);
        assert_eq!(res.hits[1].score, 10 * 11);
    }

    #[test]
    fn search_many_equals_individual_searches() {
        let db = small_db(8);
        let engine = SearchEngine::paper_default();
        let queries: Vec<Vec<u8>> = [60u32, 144, 222]
            .iter()
            .map(|&l| generate_query(l, l as u64).residues)
            .collect();
        let refs: Vec<&[u8]> = queries.iter().map(Vec::as_slice).collect();
        let cfg = SearchConfig::best(3);
        let pooled = engine.search_many(&refs, &db, &cfg);
        assert_eq!(pooled.len(), 3);
        for (q, pooled_res) in queries.iter().zip(&pooled) {
            let single = engine.search(q, &db, &cfg);
            assert_eq!(pooled_res.hits, single.hits);
            assert_eq!(pooled_res.cells, single.cells);
        }
    }

    #[test]
    fn search_many_splits_wall_clock_across_queries() {
        // One pooled region, one wall clock: the per-query elapsed values
        // are shares of it, so their sum can never exceed the wall time —
        // the bug this guards against charged the FULL pooled time to
        // every query, inflating aggregate GCUPS ~|Q|×.
        let db = small_db(8);
        let engine = SearchEngine::paper_default();
        let queries: Vec<Vec<u8>> = [50u32, 100, 400, 800]
            .iter()
            .map(|&l| generate_query(l, l as u64).residues)
            .collect();
        let refs: Vec<&[u8]> = queries.iter().map(Vec::as_slice).collect();
        let start = std::time::Instant::now();
        let pooled = engine.search_many(&refs, &db, &SearchConfig::best(2));
        let wall = start.elapsed();
        let sum: std::time::Duration = pooled.iter().map(|r| r.elapsed).sum();
        assert!(
            sum <= wall,
            "per-query elapsed must partition the pooled wall clock \
             (sum {sum:?} > wall {wall:?})"
        );
        assert!(
            pooled.iter().all(|r| r.elapsed > std::time::Duration::ZERO),
            "every query with work gets a nonzero share"
        );
        // Longer queries (more padded cells) are charged a larger share.
        assert!(pooled[3].elapsed >= pooled[0].elapsed);
    }

    #[test]
    fn volume_search_equals_whole_database() {
        let a = Alphabet::protein();
        let seqs = generate_database(&sw_seq::gen::DbSpec::tiny(23));
        let flat = sw_swdb::SequenceDatabase::from_sequences(seqs.clone());
        let whole = PreparedDb::prepare(seqs, 8, &a);
        let engine = SearchEngine::paper_default();
        let query = generate_query(80, 6).residues;
        let reference = engine.search(&query, &whole, &SearchConfig::best(2));
        // Tight cap → many volumes.
        for cap in [500u64, 2_000, 1_000_000] {
            let plan = sw_swdb::VolumePlan::new(&flat, cap);
            let res = engine.search_volumes(&query, &flat, &plan, 8, &a, &SearchConfig::best(2));
            assert_eq!(
                res.hits,
                reference.hits,
                "cap {cap} ({} volumes)",
                plan.len()
            );
            assert_eq!(res.cells.real, reference.cells.real);
        }
    }

    #[test]
    fn search_many_empty_database() {
        let a = Alphabet::protein();
        let db = PreparedDb::prepare(Vec::new(), 8, &a);
        let engine = SearchEngine::paper_default();
        let q = generate_query(50, 1).residues;
        let out = engine.search_many(&[&q, &q], &db, &SearchConfig::best(1));
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|r| r.hits.is_empty()));
    }

    #[test]
    fn adaptive_precision_identical_results() {
        let db = small_db(8);
        let query = generate_query(150, 13);
        let engine = SearchEngine::paper_default();
        for profile in [ProfileMode::Query, ProfileMode::Sequence] {
            let variant = KernelVariant {
                vec: Vectorization::Intrinsic,
                profile,
                blocking: false,
            };
            let plain = SearchConfig::best(2).with_variant(variant);
            let adaptive = SearchConfig {
                adaptive_precision: true,
                ..plain
            };
            let r1 = engine.search(&query.residues, &db, &plain);
            let r2 = engine.search(&query.residues, &db, &adaptive);
            assert_eq!(r1.hits, r2.hits, "profile {profile:?}");
        }
    }

    #[test]
    fn adaptive_precision_with_giant_scores() {
        // The cascade must chain all the way to the i64 rescue.
        let a = Alphabet::protein();
        let w = a.encode_byte(b'W').unwrap();
        let giant = sw_seq::EncodedSeq {
            header: "giant".into(),
            residues: vec![w; 3200],
        };
        let db = PreparedDb::prepare(vec![giant.clone()], 4, &a);
        let engine = SearchEngine::paper_default();
        let cfg = SearchConfig {
            adaptive_precision: true,
            ..SearchConfig::best(1)
        };
        let res = engine.search(&giant.residues, &db, &cfg);
        assert_eq!(res.hits[0].score, 3200 * 11);
        assert_eq!(res.lanes_rescued, 1);
    }

    #[test]
    fn forced_portable_matches_detected_isa_exactly() {
        // The CLI contract: `--kernel-isa portable` reproduces the
        // detected-ISA hit list byte for byte. Exercise both SSE2-native
        // (8 × i16) and AVX2-native (16 × i16) lane widths, blocked and
        // unblocked, plus the adaptive cascade.
        use sw_kernels::KernelIsa;
        let engine = SearchEngine::paper_default();
        let query = generate_query(100, 17);
        for lanes in [8usize, 16] {
            let db = small_db(lanes);
            for variant in KernelVariant::fig3_set() {
                if variant.vec != Vectorization::Intrinsic {
                    continue;
                }
                let cfg = SearchConfig::best(2).with_variant(variant);
                let detected = engine.search(&query.residues, &db, &cfg);
                let portable =
                    engine.search(&query.residues, &db, &cfg.with_isa(KernelIsa::Portable));
                assert_eq!(
                    detected.hits, portable.hits,
                    "lanes {lanes} variant {variant}"
                );
            }
            let adaptive = SearchConfig {
                adaptive_precision: true,
                ..SearchConfig::best(2)
            };
            let detected = engine.search(&query.residues, &db, &adaptive);
            let portable = engine.search(
                &query.residues,
                &db,
                &adaptive.with_isa(KernelIsa::Portable),
            );
            assert_eq!(detected.hits, portable.hits, "lanes {lanes} adaptive");
        }
    }

    #[test]
    #[should_panic(expected = "query must not be empty")]
    fn empty_query_rejected() {
        let db = small_db(4);
        SearchEngine::paper_default().search(&[], &db, &SearchConfig::best(1));
    }
}
