//! Search results — pipeline step (4): scores sorted in descending order.

use serde::{Deserialize, Serialize};
use std::time::Duration;
use sw_kernels::{CellCount, Gcups};
use sw_seq::SeqId;

/// One database hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hit {
    /// Original database sequence id.
    pub id: SeqId,
    /// Exact Smith-Waterman score.
    pub score: i64,
}

/// The outcome of one query's database search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchResults {
    /// All hits, sorted by descending score (ties by ascending id).
    pub hits: Vec<Hit>,
    /// Wall-clock of the alignment loop.
    pub elapsed: Duration,
    /// Cell accounting.
    pub cells: CellCount,
    /// Vector lanes that saturated and were recomputed exactly.
    pub lanes_rescued: u64,
    /// True when a device pool died during the search and the run
    /// degraded to the surviving pool. Hits are still exact and complete
    /// — degradation costs time, never correctness.
    pub degraded: bool,
}

impl SearchResults {
    /// Assemble results: sorts hits descending by score, ascending by id
    /// on ties (deterministic output for equal scores).
    pub fn new(
        mut hits: Vec<Hit>,
        elapsed: Duration,
        cells: CellCount,
        lanes_rescued: u64,
    ) -> Self {
        hits.sort_unstable_by(|a, b| b.score.cmp(&a.score).then(a.id.cmp(&b.id)));
        SearchResults {
            hits,
            elapsed,
            cells,
            lanes_rescued,
            degraded: false,
        }
    }

    /// Same results, flagged as produced by a degraded run.
    pub fn with_degraded(mut self, degraded: bool) -> Self {
        self.degraded = degraded;
        self
    }

    /// The `k` best hits.
    pub fn top(&self, k: usize) -> &[Hit] {
        &self.hits[..k.min(self.hits.len())]
    }

    /// Measured throughput over real cells.
    pub fn gcups(&self) -> Gcups {
        Gcups::from_cells(self.cells.real, self.elapsed)
    }

    /// Merge two result sets (Algorithm 2 line 15: host + device scores)
    /// into one descending-sorted set.
    pub fn merge(self, other: SearchResults) -> SearchResults {
        let mut hits = self.hits;
        hits.extend(other.hits);
        let mut cells = self.cells;
        cells.add(other.cells);
        SearchResults::new(
            hits,
            self.elapsed.max(other.elapsed),
            cells,
            self.lanes_rescued + other.lanes_rescued,
        )
        .with_degraded(self.degraded || other.degraded)
    }
}

/// Merge per-shard ranked hit lists into the global top `k` — the shard
/// coordinator's merge contract.
///
/// Each input list holds hits over *global* database ids (a shard
/// worker adds its base offset before reporting). Because shards
/// partition the id space, the comparator [`SearchResults::new`] uses —
/// score descending, id ascending on ties — is a total order over the
/// union, so merging and truncating reproduces the unsharded run's top
/// `k` byte-for-byte, equal-score ties included.
pub fn merge_top_k(shards: Vec<Vec<Hit>>, k: usize) -> Vec<Hit> {
    let mut all: Vec<Hit> = shards.into_iter().flatten().collect();
    all.sort_unstable_by(|a, b| b.score.cmp(&a.score).then(a.id.cmp(&b.id)));
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(id: u32, score: i64) -> Hit {
        Hit {
            id: SeqId(id),
            score,
        }
    }

    #[test]
    fn sorted_descending_with_stable_ties() {
        let r = SearchResults::new(
            vec![hit(3, 10), hit(1, 50), hit(2, 10), hit(0, 99)],
            Duration::from_secs(1),
            CellCount::default(),
            0,
        );
        let order: Vec<(u32, i64)> = r.hits.iter().map(|h| (h.id.0, h.score)).collect();
        assert_eq!(order, vec![(0, 99), (1, 50), (2, 10), (3, 10)]);
    }

    #[test]
    fn top_k_clamps() {
        let r = SearchResults::new(
            vec![hit(0, 5), hit(1, 3)],
            Duration::from_secs(1),
            CellCount::default(),
            0,
        );
        assert_eq!(r.top(1).len(), 1);
        assert_eq!(r.top(10).len(), 2);
        assert_eq!(r.top(0).len(), 0);
    }

    #[test]
    fn merge_top_k_matches_single_process_order() {
        // Shard-partitioned ids, equal scores straddling the boundary:
        // the merged order must be what SearchResults::new would produce
        // over the union.
        let shard0 = vec![hit(1, 40), hit(0, 12), hit(2, 12)];
        let shard1 = vec![hit(3, 40), hit(4, 12), hit(5, 7)];
        let merged = merge_top_k(vec![shard0.clone(), shard1.clone()], 5);
        let reference = SearchResults::new(
            shard0.into_iter().chain(shard1).collect(),
            Duration::from_secs(1),
            CellCount::default(),
            0,
        );
        assert_eq!(merged, reference.top(5));
    }

    #[test]
    fn merge_combines_and_resorts() {
        let a = SearchResults::new(
            vec![hit(0, 10)],
            Duration::from_secs(2),
            CellCount {
                real: 100,
                padded: 120,
            },
            1,
        );
        let b = SearchResults::new(
            vec![hit(1, 20)],
            Duration::from_secs(3),
            CellCount {
                real: 50,
                padded: 60,
            },
            0,
        );
        let m = a.merge(b);
        assert_eq!(m.hits[0].id.0, 1);
        assert_eq!(m.cells.real, 150);
        assert_eq!(m.elapsed, Duration::from_secs(3));
        assert_eq!(m.lanes_rescued, 1);
    }

    #[test]
    fn degraded_flag_survives_merge() {
        let clean = SearchResults::new(vec![hit(0, 1)], Duration::ZERO, CellCount::default(), 0);
        assert!(!clean.degraded, "fresh results are not degraded");
        let bad = SearchResults::new(vec![hit(1, 2)], Duration::ZERO, CellCount::default(), 0)
            .with_degraded(true);
        assert!(clean.clone().merge(bad.clone()).degraded);
        assert!(bad.merge(clean.clone()).degraded);
        assert!(!clean.clone().merge(clean).degraded);
    }

    #[test]
    fn gcups_uses_real_cells() {
        let r = SearchResults::new(
            vec![],
            Duration::from_secs(1),
            CellCount {
                real: 2_000_000_000,
                padded: 4_000_000_000,
            },
            0,
        );
        assert!((r.gcups().value() - 2.0).abs() < 1e-9);
    }
}
