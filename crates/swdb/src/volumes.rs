//! Database volumes — bounded-memory search over databases larger than
//! RAM (or than an accelerator's on-board memory).
//!
//! Production tools (BLAST's `makeblastdb`, SWIPE) split large databases
//! into volumes of bounded residue count and search them one at a time,
//! merging score lists. The paper's §VI future work (TrEMBL, 5 GB Phi
//! memory) is exactly the scenario volumes exist for: each volume fits
//! the device, is shipped once, searched for all queries, then replaced.

use crate::db::SequenceDatabase;
use sw_seq::{EncodedSeq, SeqId};

/// A plan splitting a database into volumes of at most `max_residues`
/// residues each (a sequence larger than the cap gets its own volume).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VolumePlan {
    /// Per-volume half-open id ranges `[start, end)` over original ids.
    pub ranges: Vec<(u32, u32)>,
    /// Residues per volume (parallel to `ranges`).
    pub residues: Vec<u64>,
}

impl VolumePlan {
    /// Plan volumes over `db` with the given residue cap.
    ///
    /// # Panics
    /// Panics if `max_residues` is zero.
    pub fn new(db: &SequenceDatabase, max_residues: u64) -> Self {
        assert!(max_residues > 0, "volume cap must be positive");
        let mut ranges = Vec::new();
        let mut residues = Vec::new();
        let mut start = 0u32;
        let mut acc = 0u64;
        for (id, seq) in db.iter() {
            let len = seq.len() as u64;
            if acc > 0 && acc + len > max_residues {
                ranges.push((start, id.0));
                residues.push(acc);
                start = id.0;
                acc = 0;
            }
            acc += len;
        }
        if acc > 0 || db.is_empty() {
            ranges.push((start, db.len() as u32));
            residues.push(acc);
        }
        VolumePlan { ranges, residues }
    }

    /// Number of volumes.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True when the plan holds no volumes (never: an empty database
    /// still produces one empty volume).
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Materialise volume `v` as an owned sequence list (headers and ids
    /// preserved via the id offset — the caller re-bases hit ids with
    /// [`Self::rebase`]).
    pub fn extract(&self, db: &SequenceDatabase, v: usize) -> Vec<EncodedSeq> {
        let (s, e) = self.ranges[v];
        (s..e)
            .map(|i| {
                let id = SeqId(i);
                EncodedSeq {
                    header: db.header(id).into(),
                    residues: db.seq(id).residues.to_vec(),
                }
            })
            .collect()
    }

    /// Map a volume-local sequence index back to the original id.
    pub fn rebase(&self, v: usize, local: u32) -> SeqId {
        SeqId(self.ranges[v].0 + local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_seq::Alphabet;

    fn db(lens: &[usize]) -> SequenceDatabase {
        let a = Alphabet::protein();
        SequenceDatabase::from_sequences(
            lens.iter()
                .enumerate()
                .map(|(i, &l)| EncodedSeq::from_text(&format!("s{i}"), &vec![b'A'; l], &a).unwrap())
                .collect(),
        )
    }

    #[test]
    fn volumes_respect_cap() {
        let d = db(&[30, 30, 30, 30, 30]);
        let plan = VolumePlan::new(&d, 70);
        assert_eq!(plan.len(), 3); // 60 + 60 + 30
        assert_eq!(plan.residues, vec![60, 60, 30]);
        assert!(plan.residues.iter().all(|&r| r <= 70));
    }

    #[test]
    fn oversized_sequence_gets_own_volume() {
        let d = db(&[10, 500, 10]);
        let plan = VolumePlan::new(&d, 100);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.residues[1], 500, "the giant exceeds the cap alone");
    }

    #[test]
    fn volumes_partition_ids() {
        let d = db(&[5, 10, 15, 20, 25, 30]);
        let plan = VolumePlan::new(&d, 40);
        let mut covered = Vec::new();
        for (s, e) in &plan.ranges {
            covered.extend(*s..*e);
        }
        assert_eq!(covered, (0..6).collect::<Vec<_>>());
        let total: u64 = plan.residues.iter().sum();
        assert_eq!(total, d.total_residues());
    }

    #[test]
    fn extract_and_rebase() {
        let d = db(&[5, 10, 15]);
        let plan = VolumePlan::new(&d, 16);
        assert_eq!(plan.len(), 2);
        let v1 = plan.extract(&d, 1);
        assert_eq!(v1.len(), 1);
        assert_eq!(v1[0].header.as_ref(), "s2");
        assert_eq!(plan.rebase(1, 0), SeqId(2));
    }

    #[test]
    fn empty_database_single_empty_volume() {
        let d = db(&[]);
        let plan = VolumePlan::new(&d, 100);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.residues, vec![0]);
        assert!(plan.extract(&d, 0).is_empty());
    }

    #[test]
    fn single_volume_when_cap_large() {
        let d = db(&[10, 20, 30]);
        let plan = VolumePlan::new(&d, 1_000_000);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.ranges[0], (0, 3));
    }
}
