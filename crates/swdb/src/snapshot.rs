//! Compact binary snapshot of a [`SequenceDatabase`].
//!
//! Production search tools preprocess the database once (`makedb`) and
//! reload the flat form at query time; this module is that format. The
//! layout is deliberately simple and versioned:
//!
//! ```text
//! magic   [u8; 8]  = b"SWDBSNP1"
//! n_seqs  u64 LE
//! n_res   u64 LE
//! offsets [u64 LE; n_seqs + 1]
//! residues[u8; n_res]
//! headers n_seqs × (u32 LE length + UTF-8 bytes)
//! ```

use crate::db::SequenceDatabase;
use std::sync::Arc;
use sw_seq::SeqError;

/// Little-endian append helpers (the `bytes::BufMut` subset this format
/// needs, hand-rolled to keep the dependency budget at zero).
trait BufMut {
    fn put_slice(&mut self, src: &[u8]);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

/// Little-endian consume helpers over an advancing byte slice (the
/// `bytes::Buf` subset the reader needs). Callers check `remaining()`
/// before every get, so the internal panics are unreachable.
trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    fn get_u32_le(&mut self) -> u32;
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, rest) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = rest;
    }
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

/// Snapshot magic / version tag.
pub const MAGIC: &[u8; 8] = b"SWDBSNP1";

/// Serialize `db` into a fresh byte buffer.
pub fn write(db: &SequenceDatabase) -> Vec<u8> {
    let offsets = db.raw_offsets();
    let residues = db.raw_residues();
    let headers = db.raw_headers();
    let header_bytes: usize = headers.iter().map(|h| 4 + h.len()).sum();
    let mut out = Vec::with_capacity(8 + 16 + offsets.len() * 8 + residues.len() + header_bytes);
    out.put_slice(MAGIC);
    out.put_u64_le(headers.len() as u64);
    out.put_u64_le(residues.len() as u64);
    for &o in offsets {
        out.put_u64_le(o);
    }
    out.put_slice(residues);
    for h in headers {
        out.put_u32_le(h.len() as u32);
        out.put_slice(h.as_bytes());
    }
    out
}

fn need(buf: &[u8], n: usize, what: &str) -> Result<(), SeqError> {
    if buf.remaining() < n {
        return Err(SeqError::Io(format!(
            "snapshot truncated while reading {what}"
        )));
    }
    Ok(())
}

/// Deserialize a snapshot produced by [`write`].
pub fn read(mut buf: &[u8]) -> Result<SequenceDatabase, SeqError> {
    need(buf, 8, "magic")?;
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(SeqError::Io(
            "bad snapshot magic (not a SWDB snapshot?)".into(),
        ));
    }
    need(buf, 16, "counts")?;
    let n_seqs = buf.get_u64_le() as usize;
    let n_res = buf.get_u64_le() as usize;

    // A corrupted count can be astronomically large; checked arithmetic
    // turns it into a clean error instead of an overflow (caught by the
    // corruption fuzz test).
    let offsets_bytes = n_seqs
        .checked_add(1)
        .and_then(|n| n.checked_mul(8))
        .ok_or_else(|| SeqError::Io("snapshot sequence count is implausibly large".into()))?;
    need(buf, offsets_bytes, "offsets")?;
    let mut offsets = Vec::with_capacity(n_seqs + 1);
    for _ in 0..=n_seqs {
        offsets.push(buf.get_u64_le());
    }
    need(buf, n_res, "residues")?;
    let mut residues = vec![0u8; n_res];
    buf.copy_to_slice(&mut residues);

    let mut headers: Vec<Arc<str>> = Vec::with_capacity(n_seqs);
    for i in 0..n_seqs {
        need(buf, 4, "header length")?;
        let len = buf.get_u32_le() as usize;
        need(buf, len, "header bytes")?;
        let mut raw = vec![0u8; len];
        buf.copy_to_slice(&mut raw);
        let s = String::from_utf8(raw)
            .map_err(|_| SeqError::Io(format!("header {i} is not valid UTF-8")))?;
        headers.push(s.into());
    }
    if buf.remaining() != 0 {
        return Err(SeqError::Io(format!(
            "{} trailing bytes after snapshot",
            buf.remaining()
        )));
    }
    // from_raw_parts validates offset consistency; convert its panics into
    // a proper error by pre-checking here.
    if offsets.first() != Some(&0)
        || offsets.last().map(|&o| o as usize) != Some(residues.len())
        || offsets.windows(2).any(|w| w[0] > w[1])
    {
        return Err(SeqError::Io(
            "snapshot offsets table is inconsistent".into(),
        ));
    }
    Ok(SequenceDatabase::from_raw_parts(residues, offsets, headers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_seq::{Alphabet, EncodedSeq};

    fn sample() -> SequenceDatabase {
        let a = Alphabet::protein();
        SequenceDatabase::from_sequences(vec![
            EncodedSeq::from_text("sp|P02232|HBM", b"MKVLITRA", &a).unwrap(),
            EncodedSeq::from_text("syn|S0000001|SYNTH", b"WW", &a).unwrap(),
        ])
    }

    #[test]
    fn roundtrip() {
        let db = sample();
        let bytes = write(&db);
        let back = read(&bytes).unwrap();
        assert_eq!(back, db);
    }

    #[test]
    fn roundtrip_empty() {
        let db = SequenceDatabase::from_sequences(vec![]);
        let back = read(&write(&db)).unwrap();
        assert_eq!(back, db);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = write(&sample());
        bytes[0] = b'X';
        let err = read(&bytes).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = write(&sample());
        // Every strict prefix must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            assert!(
                read(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes should fail"
            );
        }
    }

    #[test]
    fn absurd_sequence_count_rejected_cleanly() {
        // Regression (found by the corruption fuzzer): a corrupted u64
        // sequence count must produce an error, not an integer overflow in
        // the offsets-size computation.
        let mut bytes = write(&sample());
        bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = read(&bytes).unwrap_err();
        assert!(err.to_string().contains("implausibly large"), "{err}");
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = write(&sample());
        bytes.push(0);
        assert!(read(&bytes).unwrap_err().to_string().contains("trailing"));
    }

    #[test]
    fn corrupt_offsets_rejected() {
        let db = sample();
        let mut bytes = write(&db);
        // First offset lives right after magic+counts; overwrite with junk.
        let pos = 8 + 16;
        bytes[pos..pos + 8].copy_from_slice(&999u64.to_le_bytes());
        assert!(read(&bytes).is_err());
    }

    #[test]
    fn non_utf8_header_rejected() {
        let db = sample();
        let mut bytes = write(&db);
        // Headers are at the tail; flip the final byte to an invalid UTF-8
        // continuation to exercise the error path.
        let n = bytes.len();
        bytes[n - 1] = 0xFF;
        assert!(read(&bytes).is_err());
    }

    #[test]
    fn snapshot_of_synthetic_db() {
        let seqs = sw_seq::gen::generate_database(&sw_seq::gen::DbSpec::tiny(4));
        let db = SequenceDatabase::from_sequences(seqs);
        let back = read(&write(&db)).unwrap();
        assert_eq!(back, db);
    }
}
