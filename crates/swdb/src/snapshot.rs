//! Compact binary snapshot of a [`SequenceDatabase`].
//!
//! Production search tools preprocess the database once (`makedb`) and
//! reload the flat form at query time; this module is that format. The
//! layout is deliberately simple and versioned; version 2 adds a content
//! digest (so a resumed search can prove its checkpoint belongs to this
//! database) and per-section CRC32s (so a corrupted snapshot is rejected
//! with the failing section named instead of silently mis-scoring):
//!
//! ```text
//! magic        [u8; 8]  = b"SWDBSNP2"
//! n_seqs       u64 LE
//! n_res        u64 LE
//! digest       u64 LE   FNV-1a 64 of the logical content (see content_digest)
//! crc_offsets  u32 LE   CRC32 of the offsets section bytes
//! crc_residues u32 LE   CRC32 of the residues section bytes
//! crc_headers  u32 LE   CRC32 of the headers section bytes
//! offsets      [u64 LE; n_seqs + 1]
//! residues     [u8; n_res]
//! headers      n_seqs × (u32 LE length + UTF-8 bytes)
//! ```
//!
//! Version-1 snapshots (`SWDBSNP1`: same section layout, no digest/CRC
//! block) are still read for compatibility; [`write`] always emits v2.

use crate::db::SequenceDatabase;
use crate::integrity::{crc32, Fnv64};
use std::sync::Arc;
use sw_seq::SeqError;

/// Little-endian append helpers (the `bytes::BufMut` subset this format
/// needs, hand-rolled to keep the dependency budget at zero).
trait BufMut {
    fn put_slice(&mut self, src: &[u8]);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

/// Little-endian consume helpers over an advancing byte slice (the
/// `bytes::Buf` subset the reader needs). Callers check `remaining()`
/// before every get, so the internal panics are unreachable.
trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    fn get_u32_le(&mut self) -> u32;
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, rest) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = rest;
    }
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

/// Current snapshot magic / version tag.
pub const MAGIC: &[u8; 8] = b"SWDBSNP2";
/// Version-1 magic, still accepted by [`read`].
pub const MAGIC_V1: &[u8; 8] = b"SWDBSNP1";

/// FNV-1a 64 digest of a database's *logical* content — independent of
/// how the database was loaded (FASTA, v1 snapshot, v2 snapshot), so a
/// checkpoint taken against a FASTA load verifies against the snapshot
/// of the same sequences. Every section is length-prefixed so shifted
/// boundaries cannot collide.
pub fn content_digest(db: &SequenceDatabase) -> u64 {
    let mut d = Fnv64::new().update_u64(db.raw_headers().len() as u64);
    for &o in db.raw_offsets() {
        d = d.update_u64(o);
    }
    d = d
        .update_u64(db.raw_residues().len() as u64)
        .update(db.raw_residues());
    for h in db.raw_headers() {
        d = d.update_u64(h.len() as u64).update(h.as_bytes());
    }
    d.finish()
}

/// Serialize `db` into a fresh byte buffer (always the current version).
pub fn write(db: &SequenceDatabase) -> Vec<u8> {
    let offsets = db.raw_offsets();
    let residues = db.raw_residues();
    let headers = db.raw_headers();

    let mut offsets_sec = Vec::with_capacity(offsets.len() * 8);
    for &o in offsets {
        offsets_sec.put_u64_le(o);
    }
    let header_bytes: usize = headers.iter().map(|h| 4 + h.len()).sum();
    let mut headers_sec = Vec::with_capacity(header_bytes);
    for h in headers {
        headers_sec.put_u32_le(h.len() as u32);
        headers_sec.put_slice(h.as_bytes());
    }

    let mut out =
        Vec::with_capacity(8 + 24 + 12 + offsets_sec.len() + residues.len() + headers_sec.len());
    out.put_slice(MAGIC);
    out.put_u64_le(headers.len() as u64);
    out.put_u64_le(residues.len() as u64);
    out.put_u64_le(content_digest(db));
    out.put_u32_le(crc32(&offsets_sec));
    out.put_u32_le(crc32(residues));
    out.put_u32_le(crc32(&headers_sec));
    out.put_slice(&offsets_sec);
    out.put_slice(residues);
    out.put_slice(&headers_sec);
    out
}

fn need(buf: &[u8], n: usize, what: &str) -> Result<(), SeqError> {
    if buf.remaining() < n {
        return Err(SeqError::Io(format!(
            "snapshot truncated while reading {what}"
        )));
    }
    Ok(())
}

fn corrupt(section: &str, detail: String) -> SeqError {
    SeqError::Corrupt {
        section: section.to_string(),
        detail,
    }
}

/// Digest and section checksums read from a v2 snapshot preamble.
struct Integrity {
    digest: u64,
    crc_offsets: u32,
    crc_residues: u32,
    crc_headers: u32,
}

fn check_crc(section: &str, expect: u32, bytes: &[u8]) -> Result<(), SeqError> {
    let got = crc32(bytes);
    if got != expect {
        return Err(corrupt(
            &format!("snapshot {section} section"),
            format!("CRC32 mismatch (stored {expect:#010x}, computed {got:#010x})"),
        ));
    }
    Ok(())
}

/// Deserialize a snapshot produced by [`write`] (v2) or by an older v1
/// writer. Truncation, inconsistent offsets and CRC mismatches all yield
/// descriptive errors, never panics.
pub fn read(mut buf: &[u8]) -> Result<SequenceDatabase, SeqError> {
    need(buf, 8, "magic")?;
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    let v2 = match &magic {
        m if m == MAGIC => true,
        m if m == MAGIC_V1 => false,
        _ => {
            return Err(SeqError::Io(
                "bad snapshot magic (not a SWDB snapshot?)".into(),
            ))
        }
    };
    need(buf, 16, "counts")?;
    let n_seqs = buf.get_u64_le() as usize;
    let n_res = buf.get_u64_le() as usize;
    let integrity = if v2 {
        need(buf, 8 + 12, "integrity block")?;
        Some(Integrity {
            digest: buf.get_u64_le(),
            crc_offsets: buf.get_u32_le(),
            crc_residues: buf.get_u32_le(),
            crc_headers: buf.get_u32_le(),
        })
    } else {
        None
    };

    // A corrupted count can be astronomically large; checked arithmetic
    // turns it into a clean error instead of an overflow (caught by the
    // corruption fuzz test).
    let offsets_bytes = n_seqs
        .checked_add(1)
        .and_then(|n| n.checked_mul(8))
        .ok_or_else(|| SeqError::Io("snapshot sequence count is implausibly large".into()))?;
    need(buf, offsets_bytes, "offsets")?;
    if let Some(i) = &integrity {
        check_crc("offsets", i.crc_offsets, &buf[..offsets_bytes])?;
    }
    let mut offsets = Vec::with_capacity(n_seqs + 1);
    for _ in 0..=n_seqs {
        offsets.push(buf.get_u64_le());
    }
    need(buf, n_res, "residues")?;
    if let Some(i) = &integrity {
        check_crc("residues", i.crc_residues, &buf[..n_res])?;
    }
    let mut residues = vec![0u8; n_res];
    buf.copy_to_slice(&mut residues);

    let headers_sec = buf;
    let mut headers: Vec<Arc<str>> = Vec::with_capacity(n_seqs);
    for i in 0..n_seqs {
        need(buf, 4, "header length")?;
        let len = buf.get_u32_le() as usize;
        need(buf, len, "header bytes")?;
        let mut raw = vec![0u8; len];
        buf.copy_to_slice(&mut raw);
        let s = String::from_utf8(raw)
            .map_err(|_| SeqError::Io(format!("header {i} is not valid UTF-8")))?;
        headers.push(s.into());
    }
    if buf.remaining() != 0 {
        return Err(SeqError::Io(format!(
            "{} trailing bytes after snapshot",
            buf.remaining()
        )));
    }
    if let Some(i) = &integrity {
        check_crc("headers", i.crc_headers, headers_sec)?;
    }
    // from_raw_parts validates offset consistency; convert its panics into
    // a proper error by pre-checking here.
    if offsets.first() != Some(&0)
        || offsets.last().map(|&o| o as usize) != Some(residues.len())
        || offsets.windows(2).any(|w| w[0] > w[1])
    {
        return Err(SeqError::Io(
            "snapshot offsets table is inconsistent".into(),
        ));
    }
    let db = SequenceDatabase::from_raw_parts(residues, offsets, headers);
    if let Some(i) = &integrity {
        let got = content_digest(&db);
        if got != i.digest {
            return Err(corrupt(
                "snapshot content",
                format!(
                    "digest mismatch (stored {:#018x}, computed {got:#018x})",
                    i.digest
                ),
            ));
        }
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_seq::{Alphabet, EncodedSeq};

    fn sample() -> SequenceDatabase {
        let a = Alphabet::protein();
        SequenceDatabase::from_sequences(vec![
            EncodedSeq::from_text("sp|P02232|HBM", b"MKVLITRA", &a).unwrap(),
            EncodedSeq::from_text("syn|S0000001|SYNTH", b"WW", &a).unwrap(),
        ])
    }

    /// A v1 snapshot of `db`, byte-for-byte what the old writer emitted.
    fn write_v1(db: &SequenceDatabase) -> Vec<u8> {
        let mut out = Vec::new();
        out.put_slice(MAGIC_V1);
        out.put_u64_le(db.raw_headers().len() as u64);
        out.put_u64_le(db.raw_residues().len() as u64);
        for &o in db.raw_offsets() {
            out.put_u64_le(o);
        }
        out.put_slice(db.raw_residues());
        for h in db.raw_headers() {
            out.put_u32_le(h.len() as u32);
            out.put_slice(h.as_bytes());
        }
        out
    }

    #[test]
    fn roundtrip() {
        let db = sample();
        let bytes = write(&db);
        assert_eq!(&bytes[..8], MAGIC);
        let back = read(&bytes).unwrap();
        assert_eq!(back, db);
    }

    #[test]
    fn roundtrip_empty() {
        let db = SequenceDatabase::from_sequences(vec![]);
        let back = read(&write(&db)).unwrap();
        assert_eq!(back, db);
    }

    #[test]
    fn v1_snapshots_still_load() {
        let db = sample();
        let back = read(&write_v1(&db)).unwrap();
        assert_eq!(back, db);
        let empty = SequenceDatabase::from_sequences(vec![]);
        assert_eq!(read(&write_v1(&empty)).unwrap(), empty);
    }

    #[test]
    fn content_digest_is_load_path_independent() {
        let db = sample();
        let via_v1 = read(&write_v1(&db)).unwrap();
        let via_v2 = read(&write(&db)).unwrap();
        assert_eq!(content_digest(&via_v1), content_digest(&db));
        assert_eq!(content_digest(&via_v2), content_digest(&db));
        // And it actually discriminates content.
        let other = SequenceDatabase::from_sequences(vec![EncodedSeq::from_text(
            "sp|P02232|HBM",
            b"MKVLITRW",
            &Alphabet::protein(),
        )
        .unwrap()]);
        assert_ne!(content_digest(&other), content_digest(&db));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = write(&sample());
        bytes[0] = b'X';
        let err = read(&bytes).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        for bytes in [write(&sample()), write_v1(&sample())] {
            // Every strict prefix must fail cleanly, never panic.
            for cut in 0..bytes.len() {
                assert!(
                    read(&bytes[..cut]).is_err(),
                    "prefix of {cut} bytes should fail"
                );
            }
        }
    }

    #[test]
    fn every_single_bit_flip_detected() {
        // The v2 integrity block turns "any corruption" from best-effort
        // structural checks into a guarantee: every single-bit flip in
        // the payload must be rejected (magic flips are caught as bad
        // magic; length/CRC-field flips as CRC or truncation errors).
        let bytes = write(&sample());
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut c = bytes.clone();
                c[i] ^= 1u8 << bit;
                assert!(read(&c).is_err(), "flip at byte {i} bit {bit} accepted");
            }
        }
    }

    #[test]
    fn corrupt_sections_named() {
        let db = sample();
        let bytes = write(&db);
        let preamble = 8 + 16 + 8 + 12; // magic + counts + digest + CRCs
        let offsets_len = db.raw_offsets().len() * 8;

        // Flip a residue byte: residues CRC must name the section.
        let mut c = bytes.clone();
        c[preamble + offsets_len] ^= 0x01;
        let err = read(&c).unwrap_err();
        assert!(
            matches!(&err, SeqError::Corrupt { section, .. } if section.contains("residues")),
            "{err}"
        );
        assert!(err.to_string().contains("CRC32"), "{err}");

        // Flip a header byte (ASCII-safe): headers CRC must name the section.
        let mut c = bytes.clone();
        let last = c.len() - 1;
        c[last] ^= 0x01;
        let err = read(&c).unwrap_err();
        assert!(
            matches!(&err, SeqError::Corrupt { section, .. } if section.contains("headers")),
            "{err}"
        );

        // Flip an offsets byte: offsets CRC must name the section.
        let mut c = bytes.clone();
        c[preamble + 1] ^= 0x01;
        let err = read(&c).unwrap_err();
        assert!(
            matches!(&err, SeqError::Corrupt { section, .. } if section.contains("offsets")),
            "{err}"
        );

        // Flip the stored digest itself: sections check out, identity doesn't.
        let mut c = bytes;
        c[8 + 16] ^= 0x01;
        let err = read(&c).unwrap_err();
        assert!(
            matches!(&err, SeqError::Corrupt { section, .. } if section.contains("content")),
            "{err}"
        );
    }

    #[test]
    fn absurd_sequence_count_rejected_cleanly() {
        // Regression (found by the corruption fuzzer): a corrupted u64
        // sequence count must produce an error, not an integer overflow in
        // the offsets-size computation.
        let mut bytes = write(&sample());
        bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = read(&bytes).unwrap_err();
        assert!(err.to_string().contains("implausibly large"), "{err}");
    }

    #[test]
    fn trailing_garbage_rejected() {
        for mut bytes in [write(&sample()), write_v1(&sample())] {
            bytes.push(0);
            assert!(read(&bytes).unwrap_err().to_string().contains("trailing"));
        }
    }

    #[test]
    fn corrupt_offsets_rejected() {
        // v1 has no CRCs: a corrupted offsets table must still fail the
        // structural consistency check, as before.
        let db = sample();
        let mut bytes = write_v1(&db);
        let pos = 8 + 16;
        bytes[pos..pos + 8].copy_from_slice(&999u64.to_le_bytes());
        assert!(read(&bytes).is_err());
    }

    #[test]
    fn non_utf8_header_rejected() {
        // v1 path: no CRC to catch it first, so the UTF-8 check must.
        let db = sample();
        let mut bytes = write_v1(&db);
        let n = bytes.len();
        bytes[n - 1] = 0xFF;
        assert!(read(&bytes).is_err());
    }

    #[test]
    fn snapshot_of_synthetic_db() {
        let seqs = sw_seq::gen::generate_database(&sw_seq::gen::DbSpec::tiny(4));
        let db = SequenceDatabase::from_sequences(seqs);
        let back = read(&write(&db)).unwrap();
        assert_eq!(back, db);
    }
}
