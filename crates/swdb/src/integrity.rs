//! Dependency-free integrity primitives shared by the snapshot format
//! and the checkpoint layer: CRC32 (IEEE 802.3, the zlib/PNG polynomial)
//! for per-section corruption detection and FNV-1a 64 for cheap content
//! identity digests.
//!
//! Both are hand-rolled on purpose — the workspace builds offline with a
//! zero-dependency budget, and the checkpoint/resume contract only needs
//! error *detection*, not cryptographic strength: a checkpoint that does
//! not match its database is rejected and the search reruns from scratch,
//! so an adversarial collision buys nothing.

/// CRC32 lookup table for the reflected IEEE polynomial `0xEDB88320`,
/// built at compile time so the first checksum pays no init cost.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Streaming CRC32 state. `Crc32::new().update(a).update(b).finish()`
/// equals `crc32(concat(a, b))`, which lets callers checksum a section
/// without materialising it contiguously.
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Fresh state (all-ones preload per the IEEE definition).
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    /// Fold `bytes` into the running checksum.
    #[must_use]
    pub fn update(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 = CRC32_TABLE[((self.0 ^ b as u32) & 0xFF) as usize] ^ (self.0 >> 8);
        }
        self
    }

    /// Final checksum value.
    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    Crc32::new().update(bytes).finish()
}

/// FNV-1a 64 offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64 prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a 64 digest. Used for *identity* (does this checkpoint
/// belong to this database / query?), not integrity — CRC32 covers that.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// Fresh state at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Fold `bytes` into the digest.
    #[must_use]
    pub fn update(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Fold a little-endian u64 in (length-prefixing sections with their
    /// size keeps `["ab","c"]` and `["a","bc"]` distinct).
    #[must_use]
    pub fn update_u64(self, v: u64) -> Self {
        self.update(&v.to_le_bytes())
    }

    /// Final digest value.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a 64 of a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    Fnv64::new().update(bytes).finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Published IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_streaming_matches_oneshot() {
        let data = b"hello, checkpoint world";
        for split in 0..data.len() {
            let (a, b) = data.split_at(split);
            assert_eq!(Crc32::new().update(a).update(b).finish(), crc32(data));
        }
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"SWDBSNP2 section payload";
        let base = crc32(data);
        let mut copy = data.to_vec();
        for i in 0..copy.len() {
            for bit in 0..8 {
                copy[i] ^= 1 << bit;
                assert_ne!(crc32(&copy), base, "flip at byte {i} bit {bit}");
                copy[i] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn fnv_known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn fnv_streaming_and_length_prefix() {
        assert_eq!(
            Fnv64::new().update(b"ab").update(b"c").finish(),
            fnv1a64(b"abc")
        );
        // Length prefixes keep differently-split section lists distinct.
        let a = Fnv64::new()
            .update_u64(2)
            .update(b"ab")
            .update_u64(1)
            .update(b"c");
        let b = Fnv64::new()
            .update_u64(1)
            .update(b"a")
            .update_u64(2)
            .update(b"bc");
        assert_ne!(a.finish(), b.finish());
    }
}
