//! 64-byte-aligned score storage for the sequence profiles.
//!
//! The intrinsic SP kernels (`sw_kernels::arch`) read profile rows with
//! *aligned* vector loads (`_mm_load_si128` / `_mm256_load_si256`), which
//! fault on a misaligned address. A `Vec<i16>` only guarantees 2-byte
//! alignment, so the profiles store their scores in these buffers
//! instead: the backing allocation is a `Vec` of 64-byte blocks
//! (`#[repr(C, align(64))]`), giving every row whose element offset is a
//! multiple of the lane count a 16-/32-byte-aligned address for all
//! supported lane widths (8/16 lanes of `i16`, 16/32 lanes of `i8`).
//! 64 bytes also matches the x86 cache-line size, so no profile row
//! straddles a line needlessly.
//!
//! This is the only module in the crate allowed to use `unsafe`: one
//! slice reinterpret per accessor, with the layout argument spelled out
//! at the call site.

#![allow(unsafe_code)]

use std::marker::PhantomData;

/// One cache line of raw storage. `repr(C)` pins the layout to exactly
/// the inner byte array; `align(64)` aligns the `Vec`'s allocation.
#[repr(C, align(64))]
#[derive(Clone, Copy)]
struct Block([u8; 64]);

const BLOCK_BYTES: usize = 64;

/// A fixed-length, zero-initialised, 64-byte-aligned buffer of `T`
/// (instantiated for `i16` and `i8` below).
#[derive(Clone)]
pub struct AlignedBuf<T> {
    blocks: Vec<Block>,
    len: usize,
    _elem: PhantomData<T>,
}

macro_rules! aligned_impl {
    ($elem:ty) => {
        impl AlignedBuf<$elem> {
            /// A zero-filled buffer of `len` elements, 64-byte aligned.
            pub fn zeroed(len: usize) -> Self {
                let bytes = len * std::mem::size_of::<$elem>();
                let blocks = vec![Block([0u8; BLOCK_BYTES]); bytes.div_ceil(BLOCK_BYTES)];
                AlignedBuf {
                    blocks,
                    len,
                    _elem: PhantomData,
                }
            }

            /// Number of elements.
            #[inline]
            pub fn len(&self) -> usize {
                self.len
            }

            /// True when the buffer holds no elements.
            #[inline]
            pub fn is_empty(&self) -> bool {
                self.len == 0
            }

            /// The elements as a slice. The slice's base pointer is
            /// 64-byte aligned.
            #[inline]
            pub fn as_slice(&self) -> &[$elem] {
                // SAFETY: `Block` is `repr(C, align(64))` over `[u8; 64]`,
                // so the blocks form one contiguous, zero-initialised byte
                // region of `blocks.len() * 64` bytes whose base alignment
                // (64) satisfies the element alignment; `zeroed` sized it
                // to at least `len * size_of::<$elem>()` bytes, and `len`
                // never changes afterwards. Every bit pattern is a valid
                // `i16`/`i8`.
                unsafe { std::slice::from_raw_parts(self.blocks.as_ptr().cast(), self.len) }
            }

            /// The elements as a mutable slice.
            #[inline]
            pub fn as_mut_slice(&mut self) -> &mut [$elem] {
                // SAFETY: as in `as_slice`, plus `&mut self` guarantees
                // exclusive access to the backing blocks.
                unsafe { std::slice::from_raw_parts_mut(self.blocks.as_mut_ptr().cast(), self.len) }
            }
        }

        impl std::fmt::Debug for AlignedBuf<$elem> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_list().entries(self.as_slice()).finish()
            }
        }

        impl PartialEq for AlignedBuf<$elem> {
            fn eq(&self, other: &Self) -> bool {
                self.as_slice() == other.as_slice()
            }
        }

        impl Eq for AlignedBuf<$elem> {}
    };
}

aligned_impl!(i16);
aligned_impl!(i8);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_pointer_is_cache_line_aligned() {
        for len in [1usize, 7, 32, 33, 1000] {
            let b16 = AlignedBuf::<i16>::zeroed(len);
            assert_eq!(b16.as_slice().as_ptr() as usize % 64, 0, "i16 len {len}");
            assert_eq!(b16.len(), len);
            let b8 = AlignedBuf::<i8>::zeroed(len);
            assert_eq!(b8.as_slice().as_ptr() as usize % 64, 0, "i8 len {len}");
        }
    }

    #[test]
    fn clone_preserves_contents_and_alignment() {
        let mut b = AlignedBuf::<i16>::zeroed(70);
        for (i, v) in b.as_mut_slice().iter_mut().enumerate() {
            *v = i as i16;
        }
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(c.as_slice()[69], 69);
        assert_eq!(c.as_slice().as_ptr() as usize % 64, 0);
    }

    #[test]
    fn zeroed_is_zero_and_writable() {
        let mut b = AlignedBuf::<i8>::zeroed(5);
        assert!(b.as_slice().iter().all(|&v| v == 0));
        assert!(!b.is_empty());
        b.as_mut_slice()[4] = -7;
        assert_eq!(b.as_slice(), &[0, 0, 0, 0, -7]);
        assert!(AlignedBuf::<i16>::zeroed(0).is_empty());
    }
}
