//! Contiguous batch ranges — the unit of scheduling and of the
//! heterogeneous split.
//!
//! Algorithm 2 of the paper splits the sorted database between host and
//! accelerator with a *static distribution*; Fig. 8 sweeps the fraction of
//! workload offloaded. [`split_by_cells`] implements that split in terms
//! of DP cells (the workload metric GCUPS is defined over), not sequence
//! counts — with a length-sorted database the two differ substantially.

use crate::batch::LaneBatch;
use serde::{Deserialize, Serialize};

/// A half-open range `[start, end)` of batch indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BatchRange {
    /// First batch index.
    pub start: usize,
    /// One past the last batch index.
    pub end: usize,
}

impl BatchRange {
    /// Number of batches in the range.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the range contains no batches.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Iterate the batch indices.
    pub fn indices(&self) -> impl Iterator<Item = usize> {
        self.start..self.end
    }
}

/// Evenly split `n_batches` into `n_chunks` contiguous ranges (static
/// scheduling). The first `n_batches % n_chunks` ranges get one extra
/// batch; empty ranges are produced when `n_chunks > n_batches`.
pub fn split_batches(n_batches: usize, n_chunks: usize) -> Vec<BatchRange> {
    assert!(n_chunks >= 1, "need at least one chunk");
    let base = n_batches / n_chunks;
    let extra = n_batches % n_chunks;
    let mut out = Vec::with_capacity(n_chunks);
    let mut start = 0usize;
    for c in 0..n_chunks {
        let len = base + usize::from(c < extra);
        out.push(BatchRange {
            start,
            end: start + len,
        });
        start += len;
    }
    debug_assert_eq!(start, n_batches);
    out
}

/// Split the batch list at the point where the *prefix* holds as close as
/// possible to `fraction` of the total padded DP cells for a query of
/// length `query_len`.
///
/// Returns `(prefix, suffix)`. Algorithm 2 assigns one side to the host
/// and the other to the accelerator; Fig. 8's abscissa is `fraction` of
/// the side sent to the Phi.
pub fn split_by_cells(
    batches: &[LaneBatch],
    query_len: usize,
    fraction: f64,
) -> (BatchRange, BatchRange) {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be within [0, 1]"
    );
    let total: u64 = batches.iter().map(|b| b.padded_cells(query_len)).sum();
    let target = (total as f64 * fraction).round() as u64;
    let mut acc = 0u64;
    let mut split = batches.len();
    let mut best_err = u64::MAX;
    let mut running = 0u64;
    for (i, b) in batches.iter().enumerate() {
        // Consider splitting *before* batch i (prefix = 0..i).
        let err = running.abs_diff(target);
        if err < best_err {
            best_err = err;
            split = i;
        }
        running += b.padded_cells(query_len);
        acc = running;
    }
    // Also consider the full prefix.
    if acc.abs_diff(target) < best_err {
        split = batches.len();
    }
    (
        BatchRange {
            start: 0,
            end: split,
        },
        BatchRange {
            start: split,
            end: batches.len(),
        },
    )
}

/// Total padded cells of a batch range (workload measure).
pub fn range_cells(batches: &[LaneBatch], range: BatchRange, query_len: usize) -> u64 {
    batches[range.start..range.end]
        .iter()
        .map(|b| b.padded_cells(query_len))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_seq::{Alphabet, SeqId};

    fn batches_with_lens(lens: &[usize]) -> Vec<LaneBatch> {
        let a = Alphabet::protein();
        let pad = crate::batch::pad_code(&a);
        lens.iter()
            .enumerate()
            .map(|(i, &l)| {
                let residues = vec![0u8; l];
                LaneBatch::pack(1, &[(SeqId(i as u32), &residues[..])], pad)
            })
            .collect()
    }

    #[test]
    fn split_batches_even() {
        let r = split_batches(10, 2);
        assert_eq!(
            r,
            vec![
                BatchRange { start: 0, end: 5 },
                BatchRange { start: 5, end: 10 }
            ]
        );
    }

    #[test]
    fn split_batches_uneven() {
        let r = split_batches(10, 3);
        assert_eq!(r[0].len(), 4);
        assert_eq!(r[1].len(), 3);
        assert_eq!(r[2].len(), 3);
        assert_eq!(r[0].start, 0);
        assert_eq!(r[2].end, 10);
    }

    #[test]
    fn split_batches_more_chunks_than_batches() {
        let r = split_batches(2, 4);
        let total: usize = r.iter().map(BatchRange::len).sum();
        assert_eq!(total, 2);
        assert_eq!(r.len(), 4);
        assert!(r[2].is_empty() && r[3].is_empty());
    }

    #[test]
    fn split_by_cells_half() {
        // Lengths 1..=4 → cells 1,2,3,4 per unit query; total 10.
        let b = batches_with_lens(&[1, 2, 3, 4]);
        let (pre, suf) = split_by_cells(&b, 1, 0.5);
        // Prefix {1,2}=3 vs {1,2,3}=6: closest to 5 is 6.
        assert_eq!(pre.end, 3);
        assert_eq!(range_cells(&b, pre, 1), 6);
        assert_eq!(range_cells(&b, suf, 1), 4);
    }

    #[test]
    fn split_by_cells_extremes() {
        let b = batches_with_lens(&[5, 5, 5]);
        let (pre, suf) = split_by_cells(&b, 10, 0.0);
        assert!(pre.is_empty());
        assert_eq!(suf.len(), 3);
        let (pre, suf) = split_by_cells(&b, 10, 1.0);
        assert_eq!(pre.len(), 3);
        assert!(suf.is_empty());
    }

    #[test]
    fn split_preserves_partition() {
        let b = batches_with_lens(&[3, 1, 4, 1, 5, 9, 2, 6]);
        for f in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let (pre, suf) = split_by_cells(&b, 7, f);
            assert_eq!(pre.end, suf.start);
            assert_eq!(pre.start, 0);
            assert_eq!(suf.end, b.len());
            let total = range_cells(&b, pre, 7) + range_cells(&b, suf, 7);
            let expect: u64 = b.iter().map(|x| x.padded_cells(7)).sum();
            assert_eq!(total, expect);
        }
    }

    #[test]
    fn split_fraction_accuracy() {
        // Many equal batches: the split fraction should be achievable within
        // one batch of cells.
        let b = batches_with_lens(&[10; 100]);
        let (pre, _) = split_by_cells(&b, 1, 0.55);
        assert_eq!(pre.len(), 55);
    }

    #[test]
    fn empty_batch_list() {
        let b = batches_with_lens(&[]);
        let (pre, suf) = split_by_cells(&b, 1, 0.5);
        assert!(pre.is_empty() && suf.is_empty());
    }
}
