//! Database statistics — the numbers the paper reports in §V-B.

use crate::db::SequenceDatabase;
use serde::{Deserialize, Serialize};
use std::fmt;
use sw_seq::SeqId;

/// Summary statistics of a sequence database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbStats {
    /// Sequence count.
    pub n_seqs: u64,
    /// Total residues.
    pub total_residues: u64,
    /// Shortest sequence length.
    pub min_len: u64,
    /// Longest sequence length (35 213 for Swiss-Prot 2013_11).
    pub max_len: u64,
    /// Mean length.
    pub mean_len: f64,
    /// Median length.
    pub median_len: u64,
    /// Histogram over power-of-two length buckets: entry `k` counts
    /// sequences with `2^k <= len < 2^(k+1)`.
    pub log2_histogram: Vec<u64>,
}

impl DbStats {
    /// Compute statistics over `db`.
    pub fn compute(db: &SequenceDatabase) -> Self {
        let mut lens: Vec<u64> = (0..db.len() as u32)
            .map(|i| db.seq_len(SeqId(i)) as u64)
            .collect();
        lens.sort_unstable();
        let n = lens.len() as u64;
        if n == 0 {
            return DbStats {
                n_seqs: 0,
                total_residues: 0,
                min_len: 0,
                max_len: 0,
                mean_len: 0.0,
                median_len: 0,
                log2_histogram: Vec::new(),
            };
        }
        let total: u64 = lens.iter().sum();
        let max = *lens.last().expect("non-empty");
        let mut hist = vec![0u64; (64 - max.leading_zeros()) as usize];
        for &l in &lens {
            if l > 0 {
                hist[(63 - l.leading_zeros()) as usize] += 1;
            }
        }
        DbStats {
            n_seqs: n,
            total_residues: total,
            min_len: lens[0],
            max_len: max,
            mean_len: total as f64 / n as f64,
            median_len: lens[lens.len() / 2],
            log2_histogram: hist,
        }
    }

    /// Render a markdown table row: `| name | seqs | residues | max | mean |`.
    pub fn markdown_row(&self, name: &str) -> String {
        format!(
            "| {name} | {} | {} | {} | {:.1} |",
            self.n_seqs, self.total_residues, self.max_len, self.mean_len
        )
    }
}

impl fmt::Display for DbStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "sequences:      {}", self.n_seqs)?;
        writeln!(f, "residues:       {}", self.total_residues)?;
        writeln!(f, "length min/max: {} / {}", self.min_len, self.max_len)?;
        writeln!(f, "length mean:    {:.1}", self.mean_len)?;
        write!(f, "length median:  {}", self.median_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_seq::{Alphabet, EncodedSeq};

    fn db(lens: &[usize]) -> SequenceDatabase {
        let a = Alphabet::protein();
        SequenceDatabase::from_sequences(
            lens.iter()
                .enumerate()
                .map(|(i, &l)| EncodedSeq::from_text(&format!("s{i}"), &vec![b'A'; l], &a).unwrap())
                .collect(),
        )
    }

    #[test]
    fn basic_stats() {
        let s = DbStats::compute(&db(&[4, 2, 10]));
        assert_eq!(s.n_seqs, 3);
        assert_eq!(s.total_residues, 16);
        assert_eq!(s.min_len, 2);
        assert_eq!(s.max_len, 10);
        assert!((s.mean_len - 16.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.median_len, 4);
    }

    #[test]
    fn histogram_buckets() {
        let s = DbStats::compute(&db(&[1, 2, 3, 4, 8, 9]));
        // len 1 -> bucket 0; 2,3 -> bucket 1; 4 -> bucket 2; 8,9 -> bucket 3.
        assert_eq!(s.log2_histogram, vec![1, 2, 1, 2]);
        let total: u64 = s.log2_histogram.iter().sum();
        assert_eq!(total, s.n_seqs);
    }

    #[test]
    fn empty_db_stats() {
        let s = DbStats::compute(&db(&[]));
        assert_eq!(s.n_seqs, 0);
        assert_eq!(s.total_residues, 0);
        assert!(s.log2_histogram.is_empty());
    }

    #[test]
    fn display_renders() {
        let s = DbStats::compute(&db(&[5, 5]));
        let text = s.to_string();
        assert!(text.contains("sequences:      2"));
        assert!(text.contains("5 / 5"));
    }

    #[test]
    fn markdown_row_format() {
        let s = DbStats::compute(&db(&[3]));
        assert_eq!(s.markdown_row("tiny"), "| tiny | 1 | 3 | 3 | 3.0 |");
    }

    #[test]
    fn synthetic_swissprot_stats_match_spec() {
        // A scaled synthetic database must land near the Swiss-Prot shape.
        let spec = sw_seq::gen::DbSpec {
            n_seqs: 5000,
            mean_len: 355.4,
            max_len: 35213,
            seed: 2,
        };
        let seqs = sw_seq::gen::generate_database(&spec);
        let s = DbStats::compute(&SequenceDatabase::from_sequences(seqs));
        assert_eq!(s.n_seqs, 5000);
        assert!(
            (s.mean_len - 355.4).abs() / 355.4 < 0.1,
            "mean {}",
            s.mean_len
        );
        assert!(
            s.median_len < s.mean_len as u64,
            "log-normal: median < mean"
        );
    }
}
