//! Query and sequence profiles — the paper's two substitution-score
//! layouts (§IV).
//!
//! **Query profile (QP)**: a `|Q| × |Σ'|` table built once per query in the
//! pre-processing stage. Row `i` holds the scores of query residue `q_i`
//! against every possible database residue code. In the inner loop the
//! kernel must *gather* `L` entries of row `i` indexed by the `L` database
//! residues — cheap on hardware with vector-gather (the Phi), expensive
//! where it must be emulated with shuffles (AVX Xeon). This asymmetry is
//! exactly what Figs. 3–6 of the paper show.
//!
//! **Sequence profile (SP)**: a `|Σ| × N_pad × L` table built *per lane
//! batch* ("these profiles cannot be constructed in the pre-processing
//! stage"). Entry `(e, j, lane)` scores alphabet residue `e` against the
//! lane's residue at database position `j`; the kernel then loads row
//! `(q_i, j)` as one contiguous vector. The build cost is `|Σ|·N·L` — it
//! amortises over `M·N·L` DP cells, which is why SP gets *better* as the
//! query grows (Fig. 6).
//!
//! `Σ'` is the alphabet plus the pad sentinel; pad entries score
//! [`PAD_SCORE`] so padded lanes stay at `H = 0`.

use crate::aligned::AlignedBuf;
use crate::batch::{pad_code, profile_codes, LaneBatch, PAD_SCORE};
use sw_seq::{Alphabet, SubstMatrix};

/// Per-query substitution-score table (built once per query).
///
/// ```
/// use sw_swdb::QueryProfile;
/// use sw_seq::{Alphabet, SubstMatrix};
///
/// let a = Alphabet::protein();
/// let m = SubstMatrix::blosum62();
/// let query = a.encode_strict(b"MKW").unwrap();
/// let qp = QueryProfile::build(&query, &m, &a);
/// // Row 2 holds W's scores against every residue: W-W is +11.
/// let w = a.encode_byte(b'W').unwrap();
/// assert_eq!(qp.score(2, w), 11);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryProfile {
    /// Row stride = alphabet size + 1 (pad column).
    stride: usize,
    /// Query length `M`.
    query_len: usize,
    /// `scores[i * stride + c]` = V(q_i, c); the pad column is PAD_SCORE.
    scores: Vec<i16>,
}

impl QueryProfile {
    /// Build from an encoded query under `matrix`.
    ///
    /// # Panics
    /// Panics if the matrix dimension differs from the alphabet size or if
    /// the query contains codes outside the alphabet.
    pub fn build(query: &[u8], matrix: &SubstMatrix, alphabet: &Alphabet) -> Self {
        assert_eq!(
            matrix.len(),
            alphabet.len(),
            "matrix/alphabet size mismatch"
        );
        let stride = profile_codes(alphabet);
        let mut scores = Vec::with_capacity(query.len() * stride);
        for &q in query {
            assert!(
                (q as usize) < alphabet.len(),
                "query residue code {q} outside alphabet"
            );
            for c in 0..alphabet.len() {
                let v = matrix.score(q, c as u8);
                scores.push(i16::try_from(v).expect("score fits i16"));
            }
            scores.push(PAD_SCORE as i16);
        }
        QueryProfile {
            stride,
            query_len: query.len(),
            scores,
        }
    }

    /// Query length `M`.
    #[inline]
    pub fn query_len(&self) -> usize {
        self.query_len
    }

    /// Row stride (alphabet size + 1).
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Scores of query position `i` against every residue code.
    #[inline]
    pub fn row(&self, i: usize) -> &[i16] {
        let s = i * self.stride;
        &self.scores[s..s + self.stride]
    }

    /// Score of query position `i` against database residue code `c`
    /// (including the pad code).
    #[inline]
    pub fn score(&self, i: usize, c: u8) -> i16 {
        self.scores[i * self.stride + c as usize]
    }

    /// Approximate memory footprint in bytes (the paper: "it increases
    /// memory requirements but it is negligible").
    pub fn bytes(&self) -> usize {
        self.scores.len() * 2
    }
}

/// Per-batch substitution-score table (built per lane batch, per §IV).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequenceProfile {
    /// Lane count `L`.
    lanes: usize,
    /// Padded batch length `N_pad`.
    padded_len: usize,
    /// Alphabet size (rows).
    codes: usize,
    /// `scores[(e * padded_len + j) * lanes + lane]` = V(e, d_j^lane),
    /// in a 64-byte-aligned buffer. Each row starts `lanes` elements
    /// apart, so for the intrinsic lane widths (8/16 × i16) every row
    /// address is 16-/32-byte aligned — the alignment contract the
    /// `sw_kernels::arch` SP kernels load under.
    scores: AlignedBuf<i16>,
}

impl SequenceProfile {
    /// Build for one batch under `matrix`.
    pub fn build(batch: &LaneBatch, matrix: &SubstMatrix, alphabet: &Alphabet) -> Self {
        assert_eq!(
            matrix.len(),
            alphabet.len(),
            "matrix/alphabet size mismatch"
        );
        let lanes = batch.lanes();
        let n = batch.padded_len();
        let codes = alphabet.len();
        let pad = pad_code(alphabet);
        let mut buf = AlignedBuf::<i16>::zeroed(codes * n * lanes);
        let scores = buf.as_mut_slice();
        for e in 0..codes {
            let row = matrix.row(e as u8);
            let base = e * n * lanes;
            for j in 0..n {
                let residues = batch.row(j);
                let out = &mut scores[base + j * lanes..base + (j + 1) * lanes];
                for (lane, &r) in residues.iter().enumerate() {
                    out[lane] = if r == pad {
                        PAD_SCORE as i16
                    } else {
                        i16::try_from(row[r as usize]).expect("score fits i16")
                    };
                }
            }
        }
        SequenceProfile {
            lanes,
            padded_len: n,
            codes,
            scores: buf,
        }
    }

    /// Lane count `L`.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Padded batch length.
    #[inline]
    pub fn padded_len(&self) -> usize {
        self.padded_len
    }

    /// The `L` scores of query-residue code `e` at database position `j` —
    /// the contiguous vector load of the SP kernels. The returned slice
    /// starts `(e·N_pad + j)·L` elements past a 64-byte-aligned base, so
    /// it is `2·L`-byte aligned (16 B at 8 lanes, 32 B at 16 lanes).
    #[inline]
    pub fn row(&self, e: u8, j: usize) -> &[i16] {
        let s = (e as usize * self.padded_len + j) * self.lanes;
        &self.scores.as_slice()[s..s + self.lanes]
    }

    /// Number of table builds ops (for the analytic cost model):
    /// `|Σ|·N_pad·L`.
    pub fn build_ops(&self) -> u64 {
        self.codes as u64 * self.padded_len as u64 * self.lanes as u64
    }

    /// Approximate memory footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.scores.len() * 2
    }
}

/// Narrow (i8) copy of a [`QueryProfile`] — the first tier of the
/// SWIPE-style dual-precision cascade. Substitution scores of every
/// bundled matrix fit `i8` comfortably (BLOSUM62 spans −4..11); the pad
/// score −128 is `i8::MIN`, which the saturating kernels treat as −∞.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryProfileI8 {
    stride: usize,
    query_len: usize,
    scores: Vec<i8>,
}

impl QueryProfileI8 {
    /// Narrow an existing profile.
    ///
    /// # Panics
    /// Panics if any score falls outside `i8` range (never for the
    /// bundled matrices).
    pub fn from_wide(qp: &QueryProfile) -> Self {
        let scores = (0..qp.query_len())
            .flat_map(|i| qp.row(i).iter().copied())
            .map(|v| i8::try_from(v).expect("substitution score fits i8"))
            .collect();
        QueryProfileI8 {
            stride: qp.stride(),
            query_len: qp.query_len(),
            scores,
        }
    }

    /// Query length `M`.
    #[inline]
    pub fn query_len(&self) -> usize {
        self.query_len
    }

    /// Scores of query position `i` against every residue code.
    #[inline]
    pub fn row(&self, i: usize) -> &[i8] {
        let s = i * self.stride;
        &self.scores[s..s + self.stride]
    }
}

/// Narrow (i8) copy of a [`SequenceProfile`]. Scores live in the same
/// 64-byte-aligned storage as the wide profile (rows are `L`-byte
/// aligned: 16 B at 16 lanes, 32 B at 32 lanes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequenceProfileI8 {
    lanes: usize,
    padded_len: usize,
    scores: AlignedBuf<i8>,
}

impl SequenceProfileI8 {
    /// Narrow an existing profile.
    pub fn from_wide(sp: &SequenceProfile) -> Self {
        let wide = sp.scores.as_slice();
        let mut buf = AlignedBuf::<i8>::zeroed(wide.len());
        for (n, &v) in buf.as_mut_slice().iter_mut().zip(wide) {
            *n = i8::try_from(v).expect("substitution score fits i8");
        }
        SequenceProfileI8 {
            lanes: sp.lanes,
            padded_len: sp.padded_len,
            scores: buf,
        }
    }

    /// Lane count `L`.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Padded batch length.
    #[inline]
    pub fn padded_len(&self) -> usize {
        self.padded_len
    }

    /// The `L` scores of query-residue code `e` at database position `j`
    /// (an `L`-byte-aligned slice, as for [`SequenceProfile::row`]).
    #[inline]
    pub fn row(&self, e: u8, j: usize) -> &[i8] {
        let s = (e as usize * self.padded_len + j) * self.lanes;
        &self.scores.as_slice()[s..s + self.lanes]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_seq::SeqId;

    fn setup() -> (Alphabet, SubstMatrix) {
        (Alphabet::protein(), SubstMatrix::blosum62())
    }

    #[test]
    fn query_profile_matches_matrix() {
        let (a, m) = setup();
        let query = a.encode_strict(b"ARNDW").unwrap();
        let qp = QueryProfile::build(&query, &m, &a);
        assert_eq!(qp.query_len(), 5);
        for (i, &q) in query.iter().enumerate() {
            for c in 0..a.len() as u8 {
                assert_eq!(qp.score(i, c) as i32, m.score(q, c), "i={i} c={c}");
            }
        }
    }

    #[test]
    fn query_profile_pad_column() {
        let (a, m) = setup();
        let query = a.encode_strict(b"AR").unwrap();
        let qp = QueryProfile::build(&query, &m, &a);
        let pad = pad_code(&a);
        assert_eq!(qp.score(0, pad) as i32, PAD_SCORE);
        assert_eq!(qp.score(1, pad) as i32, PAD_SCORE);
    }

    #[test]
    fn query_profile_row_slice() {
        let (a, m) = setup();
        let query = a.encode_strict(b"WAR").unwrap();
        let qp = QueryProfile::build(&query, &m, &a);
        let row = qp.row(0);
        assert_eq!(row.len(), a.len() + 1);
        assert_eq!(row[a.encode_byte(b'W').unwrap() as usize] as i32, 11);
    }

    #[test]
    fn sequence_profile_matches_matrix() {
        let (a, m) = setup();
        let s0 = a.encode_strict(b"ARND").unwrap();
        let s1 = a.encode_strict(b"WW").unwrap();
        let batch = LaneBatch::pack(4, &[(SeqId(0), &s0[..]), (SeqId(1), &s1[..])], pad_code(&a));
        let sp = SequenceProfile::build(&batch, &m, &a);
        // e = 'A' at position 0: lanes are [A, W, pad, pad].
        let e = a.encode_byte(b'A').unwrap();
        let row = sp.row(e, 0);
        assert_eq!(row[0] as i32, m.score(e, e)); // A vs A
        assert_eq!(row[1] as i32, m.score(e, a.encode_byte(b'W').unwrap())); // A vs W
        assert_eq!(row[2] as i32, PAD_SCORE);
        assert_eq!(row[3] as i32, PAD_SCORE);
    }

    #[test]
    fn sequence_profile_pad_positions() {
        let (a, m) = setup();
        let s0 = a.encode_strict(b"ARND").unwrap();
        let s1 = a.encode_strict(b"W").unwrap();
        let batch = LaneBatch::pack(2, &[(SeqId(0), &s0[..]), (SeqId(1), &s1[..])], pad_code(&a));
        let sp = SequenceProfile::build(&batch, &m, &a);
        // Position 2 of lane 1 is padding for every query residue.
        for e in 0..a.len() as u8 {
            assert_eq!(sp.row(e, 2)[1] as i32, PAD_SCORE);
        }
    }

    #[test]
    fn profiles_agree_with_each_other() {
        // The central consistency property: for every (i, j, lane),
        // QP[i][batch residue] == SP[q_i][j][lane].
        let (a, m) = setup();
        let query = a.encode_strict(b"MKVLITRA").unwrap();
        let s0 = a.encode_strict(b"ARNDCQEG").unwrap();
        let s1 = a.encode_strict(b"HILKM").unwrap();
        let batch = LaneBatch::pack(4, &[(SeqId(0), &s0[..]), (SeqId(1), &s1[..])], pad_code(&a));
        let qp = QueryProfile::build(&query, &m, &a);
        let sp = SequenceProfile::build(&batch, &m, &a);
        for (i, &q) in query.iter().enumerate() {
            for j in 0..batch.padded_len() {
                for lane in 0..batch.lanes() {
                    let via_qp = qp.score(i, batch.residue(j, lane));
                    let via_sp = sp.row(q, j)[lane];
                    assert_eq!(via_qp, via_sp, "i={i} j={j} lane={lane}");
                }
            }
        }
    }

    #[test]
    fn build_ops_formula() {
        let (a, m) = setup();
        let s0 = a.encode_strict(b"ARND").unwrap();
        let batch = LaneBatch::pack(8, &[(SeqId(0), &s0[..])], pad_code(&a));
        let sp = SequenceProfile::build(&batch, &m, &a);
        assert_eq!(sp.build_ops(), 24 * 4 * 8);
    }

    #[test]
    fn memory_footprints() {
        let (a, m) = setup();
        let query = a.encode_strict(b"ARND").unwrap();
        let qp = QueryProfile::build(&query, &m, &a);
        assert_eq!(qp.bytes(), 4 * 25 * 2);
    }

    #[test]
    fn i8_profiles_match_wide() {
        let (a, m) = setup();
        let query = a.encode_strict(b"MKVLITRAW").unwrap();
        let s0 = a.encode_strict(b"ARNDCQEG").unwrap();
        let batch = LaneBatch::pack(4, &[(SeqId(0), &s0[..])], pad_code(&a));
        let qp = QueryProfile::build(&query, &m, &a);
        let sp = SequenceProfile::build(&batch, &m, &a);
        let qp8 = QueryProfileI8::from_wide(&qp);
        let sp8 = SequenceProfileI8::from_wide(&sp);
        assert_eq!(qp8.query_len(), qp.query_len());
        for i in 0..qp.query_len() {
            for (w, n) in qp.row(i).iter().zip(qp8.row(i)) {
                assert_eq!(*w as i32, *n as i32);
            }
        }
        assert_eq!(sp8.lanes(), sp.lanes());
        assert_eq!(sp8.padded_len(), sp.padded_len());
        for e in 0..24u8 {
            for j in 0..sp.padded_len() {
                for (w, n) in sp.row(e, j).iter().zip(sp8.row(e, j)) {
                    assert_eq!(*w as i32, *n as i32);
                }
            }
        }
    }

    #[test]
    fn sequence_profile_rows_are_vector_aligned() {
        // The alignment contract of the intrinsic SP kernels: every row of
        // a profile at an engaged lane width starts on a `width × element`
        // boundary (16 B for SSE2, 32 B for AVX2).
        let (a, m) = setup();
        let s: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 5 + i]).collect();
        for lanes in [8usize, 16, 32] {
            let refs: Vec<(SeqId, &[u8])> = s
                .iter()
                .enumerate()
                .map(|(i, q)| (SeqId(i as u32), q.as_slice()))
                .collect();
            let batch = LaneBatch::pack(lanes, &refs, pad_code(&a));
            let sp = SequenceProfile::build(&batch, &m, &a);
            let sp8 = SequenceProfileI8::from_wide(&sp);
            for e in [0u8, 7, 23] {
                for j in 0..batch.padded_len() {
                    let p16 = sp.row(e, j).as_ptr() as usize;
                    assert_eq!(p16 % (2 * lanes), 0, "i16 lanes={lanes} e={e} j={j}");
                    let p8 = sp8.row(e, j).as_ptr() as usize;
                    assert_eq!(p8 % lanes, 0, "i8 lanes={lanes} e={e} j={j}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside alphabet")]
    fn query_profile_rejects_pad_in_query() {
        let (a, m) = setup();
        let bad = vec![pad_code(&a)];
        QueryProfile::build(&bad, &m, &a);
    }
}
