//! Length sorting — the paper's load-balance preprocessing.
//!
//! §IV: *"A straightforward optimisation consists in pre-processing the
//! reference database and sorting its sequences by length in advance. This
//! way, consecutive alignments operations take similar time."*
//!
//! [`SortedDb`] wraps a [`SequenceDatabase`] with a length-sorted
//! permutation. Sorting is *stable* ascending by length so (a) adjacent
//! lane-batches waste minimal padding, and (b) results are reproducible
//! for equal-length sequences.

use crate::db::SequenceDatabase;
use serde::{Deserialize, Serialize};
use sw_seq::{SeqId, SeqView};

/// A database plus its length-sorted view.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SortedDb {
    db: SequenceDatabase,
    /// `order[rank]` = original id of the sequence at sorted position `rank`.
    order: Vec<SeqId>,
}

impl SortedDb {
    /// Sort `db` by ascending sequence length (stable).
    pub fn new(db: SequenceDatabase) -> Self {
        let mut order: Vec<SeqId> = (0..db.len() as u32).map(SeqId).collect();
        order.sort_by_key(|&id| db.seq_len(id));
        SortedDb { db, order }
    }

    /// The underlying database (original id order).
    #[inline]
    pub fn db(&self) -> &SequenceDatabase {
        &self.db
    }

    /// Number of sequences.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Original id of the sequence at sorted `rank`.
    #[inline]
    pub fn id_at(&self, rank: usize) -> SeqId {
        self.order[rank]
    }

    /// Residues of the sequence at sorted `rank`.
    #[inline]
    pub fn seq_at(&self, rank: usize) -> SeqView<'_> {
        self.db.seq(self.order[rank])
    }

    /// Length of the sequence at sorted `rank`.
    #[inline]
    pub fn len_at(&self, rank: usize) -> usize {
        self.db.seq_len(self.order[rank])
    }

    /// Iterate `(rank, SeqId, SeqView)` in sorted order.
    pub fn iter_sorted(&self) -> impl Iterator<Item = (usize, SeqId, SeqView<'_>)> + '_ {
        self.order
            .iter()
            .enumerate()
            .map(move |(rank, &id)| (rank, id, self.db.seq(id)))
    }

    /// The full sorted permutation (`rank -> original id`).
    pub fn order(&self) -> &[SeqId] {
        &self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_seq::{Alphabet, EncodedSeq};

    fn db_with_lens(lens: &[usize]) -> SequenceDatabase {
        let a = Alphabet::protein();
        SequenceDatabase::from_sequences(
            lens.iter()
                .enumerate()
                .map(|(i, &l)| EncodedSeq::from_text(&format!("s{i}"), &vec![b'A'; l], &a).unwrap())
                .collect(),
        )
    }

    #[test]
    fn sorts_ascending_by_length() {
        let sorted = SortedDb::new(db_with_lens(&[5, 1, 9, 3]));
        let lens: Vec<usize> = (0..4).map(|r| sorted.len_at(r)).collect();
        assert_eq!(lens, vec![1, 3, 5, 9]);
    }

    #[test]
    fn permutation_maps_back_to_original_ids() {
        let sorted = SortedDb::new(db_with_lens(&[5, 1, 9, 3]));
        let ids: Vec<u32> = (0..4).map(|r| sorted.id_at(r).0).collect();
        assert_eq!(ids, vec![1, 3, 0, 2]);
    }

    #[test]
    fn stable_for_equal_lengths() {
        let sorted = SortedDb::new(db_with_lens(&[4, 4, 4]));
        let ids: Vec<u32> = sorted.order().iter().map(|id| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn order_is_a_permutation() {
        let sorted = SortedDb::new(db_with_lens(&[2, 7, 7, 1, 10, 3]));
        let mut ids: Vec<u32> = sorted.order().iter().map(|id| id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn iter_sorted_yields_views() {
        let sorted = SortedDb::new(db_with_lens(&[3, 1]));
        let collected: Vec<(usize, u32, usize)> = sorted
            .iter_sorted()
            .map(|(r, id, v)| (r, id.0, v.len()))
            .collect();
        assert_eq!(collected, vec![(0, 1, 1), (1, 0, 3)]);
    }

    #[test]
    fn empty_db() {
        let sorted = SortedDb::new(db_with_lens(&[]));
        assert!(sorted.is_empty());
        assert_eq!(sorted.iter_sorted().count(), 0);
    }
}
