//! Database sharding for multi-process search — the scale-out format.
//!
//! A shard file (`SWSHRD1`, extension `.swshard`) wraps one complete
//! [`snapshot`](crate::snapshot) (SWDBSNP2) in a small header that
//! records *where in the parent database* the shard's sequences live:
//! the shard index, the shard count, the global base offset, and the
//! content digest of the length-sorted parent. Sequence `i` of shard
//! `s` is sequence `base(s) + i` of the parent — so hit ids reported by
//! a shard worker become global by adding the base, and a coordinator
//! can merge per-shard top-K streams with exactly the unsharded
//! tie-break (score descending, then global id ascending).
//!
//! Sharding is only meaningful over a *canonical* parent order:
//! `shard-prepare` first length-sorts the parent (stably, ascending —
//! the same order [`SortedDb`] produces), then slices N contiguous
//! ranges balanced by residue count. Each shard is therefore already
//! sorted, so a worker's own `SortedDb` pass is the identity
//! permutation and in-shard positions equal parent positions minus the
//! base. The byte-identical reference for a sharded run is the
//! unsharded run over the emitted sorted parent snapshot.

use crate::db::SequenceDatabase;
use crate::integrity::crc32;
use crate::preprocess::SortedDb;
use crate::snapshot;
use std::sync::Arc;
use sw_seq::SeqError;

/// Shard container magic / version tag.
pub const SHARD_MAGIC: &[u8; 8] = b"SWSHRD1\0";

/// Canonical file name of shard `index` inside a shard directory.
pub fn shard_file_name(index: u64) -> String {
    format!("shard-{index}.swshard")
}

/// Placement of one shard within its length-sorted parent database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMeta {
    /// Which shard this is, `0..count`.
    pub index: u64,
    /// Total shards the parent was split into.
    pub count: u64,
    /// Parent position of this shard's first sequence: in-shard id `i`
    /// is global id `base + i`.
    pub base: u64,
    /// [`snapshot::content_digest`] of the full length-sorted parent —
    /// shards from different parents (or different splits of the same
    /// FASTA) cannot be mixed silently.
    pub parent_digest: u64,
}

fn corrupt(detail: String) -> SeqError {
    SeqError::Corrupt {
        section: "shard".into(),
        detail,
    }
}

/// Serialize a shard: SWSHRD1 header (+CRC) followed by a complete,
/// self-validating SWDBSNP2 snapshot of the shard's sequences.
pub fn write_shard(meta: &ShardMeta, db: &SequenceDatabase) -> Vec<u8> {
    let mut head = Vec::with_capacity(40);
    head.extend_from_slice(SHARD_MAGIC);
    head.extend_from_slice(&meta.index.to_le_bytes());
    head.extend_from_slice(&meta.count.to_le_bytes());
    head.extend_from_slice(&meta.base.to_le_bytes());
    head.extend_from_slice(&meta.parent_digest.to_le_bytes());
    let mut out = Vec::new();
    out.extend_from_slice(&head);
    out.extend_from_slice(&crc32(&head).to_le_bytes());
    out.extend_from_slice(&snapshot::write(db));
    out
}

/// Parse a shard file: header CRC, magic, meta sanity, then the wrapped
/// snapshot's own integrity checks.
pub fn read_shard(buf: &[u8]) -> Result<(ShardMeta, SequenceDatabase), SeqError> {
    if buf.len() < 44 {
        return Err(corrupt(format!(
            "file too short for a shard header: {} bytes",
            buf.len()
        )));
    }
    let (head, rest) = buf.split_at(40);
    if &head[..8] != SHARD_MAGIC {
        return Err(corrupt("bad magic (not a SWSHRD1 shard file)".into()));
    }
    let stored_crc = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes"));
    let got_crc = crc32(head);
    if stored_crc != got_crc {
        return Err(corrupt(format!(
            "header CRC mismatch: stored {stored_crc:08x}, computed {got_crc:08x}"
        )));
    }
    let word = |i: usize| u64::from_le_bytes(head[8 + i * 8..16 + i * 8].try_into().expect("8"));
    let meta = ShardMeta {
        index: word(0),
        count: word(1),
        base: word(2),
        parent_digest: word(3),
    };
    if meta.count == 0 || meta.index >= meta.count {
        return Err(corrupt(format!(
            "implausible shard placement: index {} of {}",
            meta.index, meta.count
        )));
    }
    let db = snapshot::read(&rest[4..])?;
    Ok((meta, db))
}

/// Rebuild `db` in canonical shard order: stable ascending length sort,
/// the exact permutation [`SortedDb`] computes — so a worker sorting a
/// shard sliced from this order gets the identity permutation back.
pub fn length_sorted(db: &SequenceDatabase) -> SequenceDatabase {
    let sorted = SortedDb::new(db.clone());
    let order: Vec<usize> = sorted.order().iter().map(|id| id.0 as usize).collect();
    reorder(sorted.db(), &order)
}

fn reorder(db: &SequenceDatabase, order: &[usize]) -> SequenceDatabase {
    let offsets_in = db.raw_offsets();
    let mut residues = Vec::with_capacity(db.raw_residues().len());
    let mut offsets = Vec::with_capacity(order.len() + 1);
    let mut headers: Vec<Arc<str>> = Vec::with_capacity(order.len());
    offsets.push(0u64);
    for &i in order {
        let (s, e) = (offsets_in[i] as usize, offsets_in[i + 1] as usize);
        residues.extend_from_slice(&db.raw_residues()[s..e]);
        offsets.push(residues.len() as u64);
        headers.push(db.raw_headers()[i].clone());
    }
    SequenceDatabase::from_raw_parts(residues, offsets, headers)
}

/// Split a (length-sorted) parent into `n` contiguous ranges balanced
/// by residue count — the quantity search cost actually tracks. Every
/// range is non-empty; `n` is clamped to the sequence count.
///
/// # Panics
/// Panics when the database is empty.
pub fn plan_shards(db: &SequenceDatabase, n: usize) -> Vec<(usize, usize)> {
    assert!(!db.is_empty(), "cannot shard an empty database");
    let n = n.clamp(1, db.len());
    let total = db.total_residues() as f64;
    let offsets = db.raw_offsets();
    let mut ranges = Vec::with_capacity(n);
    let mut start = 0usize;
    for s in 0..n {
        let target = total * (s as f64 + 1.0) / n as f64;
        let mut end = start + 1; // never leave a shard empty
        while end < db.len() && (offsets[end] as f64) < target {
            end += 1;
        }
        // Leave at least one sequence for each remaining shard.
        let max_end = db.len() - (n - 1 - s);
        let end = if s == n - 1 {
            db.len()
        } else {
            end.min(max_end)
        };
        ranges.push((start, end));
        start = end;
    }
    ranges
}

/// Extract the contiguous slice `range` of `db` as its own database.
pub fn slice(db: &SequenceDatabase, range: (usize, usize)) -> SequenceDatabase {
    let order: Vec<usize> = (range.0..range.1).collect();
    reorder(db, &order)
}

/// One shard's line in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEntry {
    /// Shard index, `0..shards.len()`.
    pub index: u64,
    /// File name relative to the manifest's directory.
    pub file: String,
    /// Global base offset (parent position of the first sequence).
    pub base: u64,
    /// Sequences in this shard.
    pub n_seqs: u64,
    /// [`snapshot::content_digest`] of the shard's own sequences — the
    /// digest a worker's health probe reports, so a coordinator can
    /// verify it is talking to the right shard before submitting.
    pub digest: u64,
}

/// The `shards.manifest` a `shard-prepare` run writes next to its shard
/// files: enough for a coordinator to boot workers and verify identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Digest of the length-sorted parent all shards were cut from.
    pub parent_digest: u64,
    /// Per-shard placement, in index order.
    pub shards: Vec<ShardEntry>,
}

impl ShardManifest {
    /// Render the text form.
    pub fn render(&self) -> String {
        let mut out = String::from("# swshard manifest\nversion 1\n");
        out.push_str(&format!("parent_digest {:016x}\n", self.parent_digest));
        out.push_str(&format!("shards {}\n", self.shards.len()));
        for s in &self.shards {
            out.push_str(&format!(
                "shard {} {} {} {} {:016x}\n",
                s.index, s.file, s.base, s.n_seqs, s.digest
            ));
        }
        out
    }

    /// Parse the text form, validating index order and completeness.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut parent_digest = None;
        let mut declared = None;
        let mut shards: Vec<ShardEntry> = Vec::new();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_whitespace();
            let key = it.next().expect("non-empty line has a first token");
            let fields: Vec<&str> = it.collect();
            let bad = |what: &str| format!("manifest line {}: {what}", ln + 1);
            match key {
                "version" => {
                    if fields != ["1"] {
                        return Err(bad(&format!("unsupported version {fields:?}")));
                    }
                }
                "parent_digest" => {
                    let d = fields
                        .first()
                        .and_then(|f| u64::from_str_radix(f, 16).ok())
                        .ok_or_else(|| bad("unparseable parent_digest"))?;
                    parent_digest = Some(d);
                }
                "shards" => {
                    let n: usize = fields
                        .first()
                        .and_then(|f| f.parse().ok())
                        .ok_or_else(|| bad("unparseable shard count"))?;
                    declared = Some(n);
                }
                "shard" => {
                    if fields.len() != 5 {
                        return Err(bad("shard line needs: index file base n_seqs digest"));
                    }
                    let num = |i: usize, what: &str| {
                        fields[i]
                            .parse::<u64>()
                            .map_err(|_| bad(&format!("unparseable {what}")))
                    };
                    shards.push(ShardEntry {
                        index: num(0, "index")?,
                        file: fields[1].to_string(),
                        base: num(2, "base")?,
                        n_seqs: num(3, "n_seqs")?,
                        digest: u64::from_str_radix(fields[4], 16)
                            .map_err(|_| bad("unparseable digest"))?,
                    });
                }
                other => return Err(bad(&format!("unknown key {other:?}"))),
            }
        }
        let parent_digest = parent_digest.ok_or("manifest missing parent_digest")?;
        let declared = declared.ok_or("manifest missing shard count")?;
        if shards.len() != declared {
            return Err(format!(
                "manifest declares {declared} shards but lists {}",
                shards.len()
            ));
        }
        if shards.is_empty() {
            return Err("manifest lists no shards".into());
        }
        for (i, s) in shards.iter().enumerate() {
            if s.index != i as u64 {
                return Err(format!(
                    "shard lines out of order: position {i} has index {}",
                    s.index
                ));
            }
        }
        Ok(ShardManifest {
            parent_digest,
            shards,
        })
    }
}

/// One placement line: the endpoints (primary first, then replicas)
/// that may serve a shard. Endpoint strings are opaque here — the serve
/// layer parses them as `tcp://host:port`, `unix://path` or bare unix
/// socket paths (relative paths resolve against the plan's directory).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementEntry {
    /// Shard index.
    pub shard: u64,
    /// Candidate endpoints, primary first. Length == replication factor.
    pub endpoints: Vec<String>,
}

/// A replication placement plan: for each SWSHRD1 shard, the R
/// endpoints a coordinator may run it on. Written by
/// `shard-prepare --replicas R` next to `shards.manifest`, read by
/// `search --shards --placement`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementPlan {
    /// Digest of the parent snapshot the shards were cut from.
    pub parent_digest: u64,
    /// Replication factor (endpoints per shard).
    pub replicas: u64,
    /// One entry per shard, in shard order.
    pub entries: Vec<PlacementEntry>,
}

impl PlacementPlan {
    /// Build a plan assigning each shard `replicas` endpoints from a
    /// pool. Slots are strided (`shard * replicas + r`), so a pool with
    /// at least `n_shards * replicas` endpoints yields a conflict-free
    /// plan — no endpoint serves two shards, which matters because a
    /// shard worker holds exactly one shard and answers `WrongShard`
    /// for any other. Smaller pools wrap and share endpoints; replicas
    /// of one shard still land on different slots whenever the pool has
    /// at least two. With an empty pool, defaults to per-replica unix
    /// socket names (`shard-<i>-r<j>.sock`) so a localhost drill needs
    /// no manifest of hosts.
    pub fn assign(parent_digest: u64, n_shards: u64, replicas: u64, pool: &[String]) -> Self {
        let replicas = replicas.max(1);
        let entries = (0..n_shards)
            .map(|shard| {
                let endpoints = (0..replicas)
                    .map(|r| {
                        if pool.is_empty() {
                            format!("shard-{shard}-r{r}.sock")
                        } else {
                            let slot = shard * replicas + r;
                            pool[(slot % pool.len() as u64) as usize].clone()
                        }
                    })
                    .collect();
                PlacementEntry { shard, endpoints }
            })
            .collect();
        PlacementPlan {
            parent_digest,
            replicas,
            entries,
        }
    }

    /// Render the text form.
    pub fn render(&self) -> String {
        let mut out = String::from("# swshard placement\nversion 1\n");
        out.push_str(&format!("parent_digest {:016x}\n", self.parent_digest));
        out.push_str(&format!("replicas {}\n", self.replicas));
        out.push_str(&format!("shards {}\n", self.entries.len()));
        for e in &self.entries {
            out.push_str(&format!("place {} {}\n", e.shard, e.endpoints.join(" ")));
        }
        out
    }

    /// Parse the text form, validating order, completeness and that
    /// every shard carries exactly `replicas` endpoints.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut parent_digest = None;
        let mut replicas = None;
        let mut declared = None;
        let mut entries: Vec<PlacementEntry> = Vec::new();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_whitespace();
            let key = it.next().expect("non-empty line has a first token");
            let fields: Vec<&str> = it.collect();
            let bad = |what: &str| format!("placement line {}: {what}", ln + 1);
            match key {
                "version" => {
                    if fields != ["1"] {
                        return Err(bad(&format!("unsupported version {fields:?}")));
                    }
                }
                "parent_digest" => {
                    parent_digest = Some(
                        fields
                            .first()
                            .and_then(|f| u64::from_str_radix(f, 16).ok())
                            .ok_or_else(|| bad("unparseable parent_digest"))?,
                    );
                }
                "replicas" => {
                    replicas = Some(
                        fields
                            .first()
                            .and_then(|f| f.parse::<u64>().ok())
                            .filter(|&r| r >= 1)
                            .ok_or_else(|| bad("unparseable replicas"))?,
                    );
                }
                "shards" => {
                    declared = Some(
                        fields
                            .first()
                            .and_then(|f| f.parse::<usize>().ok())
                            .ok_or_else(|| bad("unparseable shard count"))?,
                    );
                }
                "place" => {
                    if fields.len() < 2 {
                        return Err(bad("place line needs: shard endpoint..."));
                    }
                    entries.push(PlacementEntry {
                        shard: fields[0]
                            .parse()
                            .map_err(|_| bad("unparseable shard index"))?,
                        endpoints: fields[1..].iter().map(|s| s.to_string()).collect(),
                    });
                }
                other => return Err(bad(&format!("unknown key {other:?}"))),
            }
        }
        let parent_digest = parent_digest.ok_or("placement missing parent_digest")?;
        let replicas = replicas.ok_or("placement missing replicas")?;
        let declared = declared.ok_or("placement missing shard count")?;
        if entries.len() != declared {
            return Err(format!(
                "placement declares {declared} shards but lists {}",
                entries.len()
            ));
        }
        if entries.is_empty() {
            return Err("placement lists no shards".into());
        }
        for (i, e) in entries.iter().enumerate() {
            if e.shard != i as u64 {
                return Err(format!(
                    "place lines out of order: position {i} has shard {}",
                    e.shard
                ));
            }
            if e.endpoints.len() as u64 != replicas {
                return Err(format!(
                    "shard {} lists {} endpoints, want {replicas}",
                    e.shard,
                    e.endpoints.len()
                ));
            }
        }
        Ok(PlacementPlan {
            parent_digest,
            replicas,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_seq::gen::{generate_database, DbSpec};
    use sw_seq::SeqId;

    fn demo_db(n: u32, seed: u64) -> SequenceDatabase {
        let spec = DbSpec {
            n_seqs: n,
            mean_len: 80.0,
            max_len: 300,
            seed,
        };
        SequenceDatabase::from_sequences(generate_database(&spec))
    }

    #[test]
    fn shard_roundtrip_preserves_meta_and_sequences() {
        let parent = length_sorted(&demo_db(20, 7));
        let parent_digest = snapshot::content_digest(&parent);
        let ranges = plan_shards(&parent, 3);
        for (i, &range) in ranges.iter().enumerate() {
            let part = slice(&parent, range);
            let meta = ShardMeta {
                index: i as u64,
                count: 3,
                base: range.0 as u64,
                parent_digest,
            };
            let bytes = write_shard(&meta, &part);
            let (back, db) = read_shard(&bytes).expect("roundtrip");
            assert_eq!(back, meta);
            assert_eq!(db, part);
            // Global identity: shard sequence i is parent sequence base+i.
            for j in 0..db.len() {
                let global = SeqId((range.0 + j) as u32);
                assert_eq!(db.header(SeqId(j as u32)), parent.header(global));
                assert_eq!(
                    db.seq(SeqId(j as u32)).residues,
                    parent.seq(global).residues
                );
            }
        }
    }

    #[test]
    fn shards_are_already_length_sorted() {
        // The property the worker relies on: a shard cut from the sorted
        // parent re-sorts as the identity, so in-shard ids ARE parent
        // positions minus the base.
        let parent = length_sorted(&demo_db(24, 11));
        for &range in &plan_shards(&parent, 4) {
            let part = slice(&parent, range);
            let sorted = SortedDb::new(part.clone());
            for rank in 0..part.len() {
                assert_eq!(sorted.id_at(rank).0 as usize, rank);
            }
        }
    }

    #[test]
    fn plan_covers_everything_balanced() {
        let parent = length_sorted(&demo_db(33, 3));
        for n in [1, 2, 4, 7] {
            let ranges = plan_shards(&parent, n);
            assert_eq!(ranges.len(), n);
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges.last().unwrap().1, parent.len());
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
            }
            for &(s, e) in &ranges {
                assert!(s < e, "non-empty");
            }
        }
        // More shards than sequences clamps instead of emitting empties.
        let tiny = length_sorted(&demo_db(16, 9));
        let n = tiny.len();
        assert_eq!(plan_shards(&tiny, n + 5).len(), n);
    }

    #[test]
    fn corrupted_header_is_rejected() {
        let parent = length_sorted(&demo_db(8, 2));
        let meta = ShardMeta {
            index: 0,
            count: 1,
            base: 0,
            parent_digest: snapshot::content_digest(&parent),
        };
        let good = write_shard(&meta, &parent);
        assert!(read_shard(&good).is_ok());
        let mut bad = good.clone();
        bad[9] ^= 0x40; // flip a bit inside the index field
        assert!(read_shard(&bad).is_err(), "header CRC must catch the flip");
        let mut wrong_magic = good.clone();
        wrong_magic[0] = b'X';
        assert!(read_shard(&wrong_magic).is_err());
        assert!(read_shard(&good[..20]).is_err(), "truncated");
        let mut bad_payload = good;
        let last = bad_payload.len() - 1;
        bad_payload[last] ^= 1;
        assert!(
            read_shard(&bad_payload).is_err(),
            "wrapped snapshot CRCs must still run"
        );
    }

    #[test]
    fn manifest_roundtrip_and_validation() {
        let m = ShardManifest {
            parent_digest: 0xdead_beef_0123_4567,
            shards: vec![
                ShardEntry {
                    index: 0,
                    file: "shard-0.swshard".into(),
                    base: 0,
                    n_seqs: 10,
                    digest: 1,
                },
                ShardEntry {
                    index: 1,
                    file: "shard-1.swshard".into(),
                    base: 10,
                    n_seqs: 6,
                    digest: 2,
                },
            ],
        };
        let text = m.render();
        assert_eq!(ShardManifest::parse(&text).expect("roundtrip"), m);
        assert!(ShardManifest::parse("version 1\n").is_err());
        assert!(
            ShardManifest::parse(&text.replace("shards 2", "shards 3")).is_err(),
            "count mismatch"
        );
        assert!(
            ShardManifest::parse(&text.replace("shard 1 ", "shard 9 ")).is_err(),
            "index order"
        );
    }

    #[test]
    fn placement_roundtrip_and_validation() {
        let plan = PlacementPlan::assign(0xabc, 3, 2, &[]);
        assert_eq!(plan.entries.len(), 3);
        assert_eq!(
            plan.entries[1].endpoints,
            vec!["shard-1-r0.sock", "shard-1-r1.sock"],
            "default pool is per-replica unix sockets"
        );
        let text = plan.render();
        assert_eq!(PlacementPlan::parse(&text).expect("roundtrip"), plan);

        assert!(PlacementPlan::parse("version 1\n").is_err());
        assert!(
            PlacementPlan::parse(&text.replace("shards 3", "shards 4")).is_err(),
            "count mismatch"
        );
        assert!(
            PlacementPlan::parse(&text.replace("place 1 ", "place 7 ")).is_err(),
            "order"
        );
        assert!(
            PlacementPlan::parse(&text.replace("replicas 2", "replicas 3")).is_err(),
            "entries must match the replication factor"
        );
    }

    #[test]
    fn placement_pool_stride_spreads_replicas() {
        let pool: Vec<String> = ["tcp://a:1", "tcp://b:1", "tcp://c:1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let plan = PlacementPlan::assign(1, 3, 2, &pool);
        for e in &plan.entries {
            assert_ne!(
                e.endpoints[0], e.endpoints[1],
                "replicas of one shard land on different pool slots"
            );
        }
        // Strided assignment: shard i starts at slot i * replicas.
        assert_eq!(plan.entries[0].endpoints, ["tcp://a:1", "tcp://b:1"]);
        assert_eq!(plan.entries[1].endpoints, ["tcp://c:1", "tcp://a:1"]);
        assert_eq!(plan.entries[2].endpoints, ["tcp://b:1", "tcp://c:1"]);
    }

    /// A pool exactly covering `n_shards * replicas` must be
    /// conflict-free: single-shard workers answer WrongShard for any
    /// other shard, so sharing an endpoint across shards breaks
    /// failover.
    #[test]
    fn placement_full_pool_is_conflict_free() {
        let pool: Vec<String> = (0..6).map(|i| format!("tcp://h:{i}")).collect();
        let plan = PlacementPlan::assign(1, 3, 2, &pool);
        let mut seen = std::collections::BTreeSet::new();
        for e in &plan.entries {
            for ep in &e.endpoints {
                assert!(seen.insert(ep.clone()), "endpoint {ep} serves two shards");
            }
        }
    }
}
