//! # sw-swdb — sequence database preprocessing
//!
//! Step (2) of the paper's pipeline: *"Pre-process database sequences."*
//!
//! The preprocessing chain is:
//!
//! 1. [`db::SequenceDatabase`] — a flat, cache-friendly store of encoded
//!    sequences (one concatenated residue buffer + offsets).
//! 2. [`preprocess::SortedDb`] — the database sorted by sequence length
//!    (the paper: *"pre-processing the reference database and sorting its
//!    sequences by length in advance … consecutive alignment operations
//!    take similar time"*), carrying the permutation so results can be
//!    reported against original ids.
//! 3. [`batch::LaneBatcher`] — groups of `L` similar-length sequences,
//!    residues interleaved lane-wise and padded, ready for the inter-task
//!    SIMD kernels (the SWIPE scheme the paper builds on).
//! 4. [`profile`] — the paper's two substitution-score layouts: the *query
//!    profile* (QP, built once per query) and the *sequence profile* (SP,
//!    built per batch).
//! 5. [`chunk`] — contiguous batch ranges for scheduling and for the
//!    CPU/accelerator split of Algorithm 2.
//! 6. [`stats`] — the database statistics the paper reports in §V-B.
//! 7. [`snapshot`] — a compact binary snapshot format so a preprocessed
//!    database can be built once and reloaded by tools, with per-section
//!    CRC32s and a content digest ([`integrity`]) so durable searches can
//!    verify a checkpoint belongs to the database they reloaded.

#![warn(missing_docs)]
#![deny(unsafe_code)] // `allow`ed only in `aligned`, with SAFETY comments

pub mod aligned;
pub mod batch;
pub mod chunk;
pub mod db;
pub mod integrity;
pub mod preprocess;
pub mod profile;
pub mod shard;
pub mod snapshot;
pub mod stats;
pub mod volumes;

pub use batch::{LaneBatch, LaneBatcher};
pub use chunk::{split_batches, split_by_cells, BatchRange};
pub use db::SequenceDatabase;
pub use preprocess::SortedDb;
pub use profile::{QueryProfile, QueryProfileI8, SequenceProfile, SequenceProfileI8};
pub use shard::{PlacementEntry, PlacementPlan, ShardManifest, ShardMeta};
pub use stats::DbStats;
pub use volumes::VolumePlan;
