//! Flat, cache-friendly storage for an encoded sequence database.
//!
//! All residues live in one contiguous buffer with an offsets table — the
//! layout every kernel and the snapshot format share. Headers are kept in
//! a parallel `Vec<Arc<str>>` so cloning a database (e.g. to hand one copy
//! to the accelerator runtime) is cheap.

use serde::{Deserialize, Serialize};
use std::sync::Arc;
use sw_seq::{EncodedSeq, SeqId, SeqView};

/// A read-only database of encoded sequences in flat storage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SequenceDatabase {
    /// All residues, concatenated in id order.
    residues: Vec<u8>,
    /// `offsets[i]..offsets[i+1]` is sequence `i`; length = n_seqs + 1.
    offsets: Vec<u64>,
    /// Headers, parallel to sequences.
    headers: Vec<Arc<str>>,
}

impl SequenceDatabase {
    /// Build from owned encoded sequences.
    pub fn from_sequences(seqs: Vec<EncodedSeq>) -> Self {
        let total: usize = seqs.iter().map(EncodedSeq::len).sum();
        let mut residues = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(seqs.len() + 1);
        let mut headers = Vec::with_capacity(seqs.len());
        offsets.push(0u64);
        for s in seqs {
            residues.extend_from_slice(&s.residues);
            offsets.push(residues.len() as u64);
            headers.push(s.header);
        }
        SequenceDatabase {
            residues,
            offsets,
            headers,
        }
    }

    /// Reassemble from raw parts (used by the snapshot loader).
    ///
    /// # Panics
    /// Panics if the offsets table is malformed.
    pub fn from_raw_parts(residues: Vec<u8>, offsets: Vec<u64>, headers: Vec<Arc<str>>) -> Self {
        assert!(
            !offsets.is_empty(),
            "offsets must contain at least the initial 0"
        );
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert_eq!(
            offsets.len(),
            headers.len() + 1,
            "offsets/headers length mismatch"
        );
        assert_eq!(
            *offsets.last().expect("non-empty") as usize,
            residues.len(),
            "last offset must equal residue buffer length"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        SequenceDatabase {
            residues,
            offsets,
            headers,
        }
    }

    /// Number of sequences.
    #[inline]
    pub fn len(&self) -> usize {
        self.headers.len()
    }

    /// True when the database holds no sequences.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.headers.is_empty()
    }

    /// Total residue count across all sequences.
    #[inline]
    pub fn total_residues(&self) -> u64 {
        *self.offsets.last().expect("offsets never empty")
    }

    /// Length of sequence `id` in residues.
    #[inline]
    pub fn seq_len(&self, id: SeqId) -> usize {
        let i = id.0 as usize;
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Borrow the residues of sequence `id`.
    #[inline]
    pub fn seq(&self, id: SeqId) -> SeqView<'_> {
        let i = id.0 as usize;
        SeqView::new(&self.residues[self.offsets[i] as usize..self.offsets[i + 1] as usize])
    }

    /// Header of sequence `id`.
    #[inline]
    pub fn header(&self, id: SeqId) -> &str {
        &self.headers[id.0 as usize]
    }

    /// Iterate `(SeqId, SeqView)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (SeqId, SeqView<'_>)> + '_ {
        (0..self.len() as u32).map(move |i| (SeqId(i), self.seq(SeqId(i))))
    }

    /// The raw concatenated residue buffer (snapshot writer).
    pub fn raw_residues(&self) -> &[u8] {
        &self.residues
    }

    /// The raw offsets table (snapshot writer).
    pub fn raw_offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The headers table (snapshot writer).
    pub fn raw_headers(&self) -> &[Arc<str>] {
        &self.headers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_seq::Alphabet;

    fn sample_db() -> SequenceDatabase {
        let a = Alphabet::protein();
        SequenceDatabase::from_sequences(vec![
            EncodedSeq::from_text("s0", b"ARND", &a).unwrap(),
            EncodedSeq::from_text("s1", b"WW", &a).unwrap(),
            EncodedSeq::from_text("s2", b"MKVLITR", &a).unwrap(),
        ])
    }

    #[test]
    fn lengths_and_totals() {
        let db = sample_db();
        assert_eq!(db.len(), 3);
        assert_eq!(db.total_residues(), 13);
        assert_eq!(db.seq_len(SeqId(0)), 4);
        assert_eq!(db.seq_len(SeqId(1)), 2);
        assert_eq!(db.seq_len(SeqId(2)), 7);
    }

    #[test]
    fn seq_views_are_correct_slices() {
        let db = sample_db();
        let a = Alphabet::protein();
        assert_eq!(a.decode(db.seq(SeqId(1)).residues), b"WW".to_vec());
        assert_eq!(a.decode(db.seq(SeqId(2)).residues), b"MKVLITR".to_vec());
    }

    #[test]
    fn headers_preserved() {
        let db = sample_db();
        assert_eq!(db.header(SeqId(0)), "s0");
        assert_eq!(db.header(SeqId(2)), "s2");
    }

    #[test]
    fn iteration_in_id_order() {
        let db = sample_db();
        let ids: Vec<u32> = db.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn empty_database() {
        let db = SequenceDatabase::from_sequences(vec![]);
        assert!(db.is_empty());
        assert_eq!(db.total_residues(), 0);
        assert_eq!(db.iter().count(), 0);
    }

    #[test]
    fn raw_parts_roundtrip() {
        let db = sample_db();
        let rebuilt = SequenceDatabase::from_raw_parts(
            db.raw_residues().to_vec(),
            db.raw_offsets().to_vec(),
            db.raw_headers().to_vec(),
        );
        assert_eq!(rebuilt, db);
    }

    #[test]
    #[should_panic(expected = "offsets must start at 0")]
    fn raw_parts_validates_first_offset() {
        SequenceDatabase::from_raw_parts(vec![0, 1], vec![1, 2], vec!["x".into()]);
    }

    #[test]
    #[should_panic(expected = "last offset")]
    fn raw_parts_validates_last_offset() {
        SequenceDatabase::from_raw_parts(vec![0, 1], vec![0, 3], vec!["x".into()]);
    }
}
