//! Lane batching for inter-task SIMD parallelism.
//!
//! The paper (§IV) adopts the inter-task scheme of Rognes' SWIPE: *"when
//! aligning several pairs in parallel, we avoid the data dependences that
//! limit the performance of intra-task approaches."* A [`LaneBatch`] packs
//! `L` similar-length database sequences (L = vector lane count: 16 for
//! 256-bit AVX, 32 for the Phi's 512-bit unit, at 16-bit scores), residues
//! interleaved position-major so that the `L` residues needed at database
//! position `j` are one contiguous, aligned vector load.
//!
//! Shorter sequences within a batch are padded with [`pad_code`], a
//! sentinel residue whose substitution score ([`PAD_SCORE`]) is so negative
//! that `H` stays clamped at zero throughout the padded region — padded
//! lanes can therefore never influence a reported score.

use crate::preprocess::SortedDb;
use serde::{Deserialize, Serialize};
use sw_seq::{Alphabet, SeqId};

/// The pad code is `alphabet.len() + PAD_CODE_OFFSET` (i.e. one past the
/// last real residue code).
pub const PAD_CODE_OFFSET: u8 = 0;

/// Substitution score assigned to the pad residue against everything.
///
/// Any value `≤ -(max substitution score)` works because `H ≥ 0` clamps the
/// recurrence; -128 also fits an `i8` for narrow-score kernels.
pub const PAD_SCORE: i32 = -128;

/// Pad residue code for a given alphabet (one past the last real code).
#[inline]
pub fn pad_code(alphabet: &Alphabet) -> u8 {
    alphabet.len() as u8 + PAD_CODE_OFFSET
}

/// Number of residue codes a profile must cover (alphabet + pad).
#[inline]
pub fn profile_codes(alphabet: &Alphabet) -> usize {
    alphabet.len() + 1
}

/// `L` similar-length sequences packed lane-wise.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaneBatch {
    /// Vector lane count `L`.
    lanes: u32,
    /// Padded (maximum) sequence length in this batch.
    padded_len: u32,
    /// Interleaved residues: `interleaved[j * lanes + lane]` is the residue
    /// of lane `lane` at position `j` (or the pad code).
    interleaved: Vec<u8>,
    /// Original ids of the real sequences (≤ `lanes` entries; the last
    /// batch of a database may not fill every lane).
    ids: Vec<SeqId>,
    /// Real lengths, parallel to `ids`.
    lens: Vec<u32>,
}

impl LaneBatch {
    /// Pack `seqs` (id, residues) into one batch of `lanes` lanes.
    ///
    /// # Panics
    /// Panics if `seqs` is empty or holds more than `lanes` sequences.
    pub fn pack(lanes: usize, seqs: &[(SeqId, &[u8])], pad: u8) -> Self {
        assert!(!seqs.is_empty(), "a batch needs at least one sequence");
        assert!(seqs.len() <= lanes, "more sequences than lanes");
        let padded_len = seqs.iter().map(|(_, r)| r.len()).max().expect("non-empty");
        let mut interleaved = vec![pad; padded_len * lanes];
        for (lane, (_, residues)) in seqs.iter().enumerate() {
            for (j, &r) in residues.iter().enumerate() {
                interleaved[j * lanes + lane] = r;
            }
        }
        LaneBatch {
            lanes: lanes as u32,
            padded_len: padded_len as u32,
            interleaved,
            ids: seqs.iter().map(|(id, _)| *id).collect(),
            lens: seqs.iter().map(|(_, r)| r.len() as u32).collect(),
        }
    }

    /// Vector lane count `L`.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes as usize
    }

    /// Padded sequence length (`N_pad`).
    #[inline]
    pub fn padded_len(&self) -> usize {
        self.padded_len as usize
    }

    /// Number of real (non-pad) sequences.
    #[inline]
    pub fn real_lanes(&self) -> usize {
        self.ids.len()
    }

    /// Original ids of the real sequences.
    #[inline]
    pub fn ids(&self) -> &[SeqId] {
        &self.ids
    }

    /// Real lengths, parallel to [`Self::ids`].
    #[inline]
    pub fn lens(&self) -> &[u32] {
        &self.lens
    }

    /// The interleaved residue buffer.
    #[inline]
    pub fn interleaved(&self) -> &[u8] {
        &self.interleaved
    }

    /// The `L` residues at database position `j` (one per lane).
    #[inline]
    pub fn row(&self, j: usize) -> &[u8] {
        let s = j * self.lanes as usize;
        &self.interleaved[s..s + self.lanes as usize]
    }

    /// Residue of `lane` at position `j`.
    #[inline]
    pub fn residue(&self, j: usize, lane: usize) -> u8 {
        self.interleaved[j * self.lanes as usize + lane]
    }

    /// Real DP cells for a query of length `m` (what GCUPS counts).
    #[inline]
    pub fn real_cells(&self, m: usize) -> u64 {
        m as u64 * self.lens.iter().map(|&l| l as u64).sum::<u64>()
    }

    /// Padded DP cells for a query of length `m` (what the kernel actually
    /// computes and what execution time is proportional to).
    #[inline]
    pub fn padded_cells(&self, m: usize) -> u64 {
        m as u64 * self.padded_len as u64 * self.lanes as u64
    }

    /// Padding efficiency: real / padded cells (1.0 = no waste). When no
    /// cells are computed at all (`m == 0` or an empty batch) there is no
    /// waste to report, so the ratio is 1.0 rather than NaN.
    pub fn pad_efficiency(&self, m: usize) -> f64 {
        let padded = self.padded_cells(m);
        if padded == 0 {
            return 1.0;
        }
        self.real_cells(m) as f64 / padded as f64
    }
}

/// Splits a sorted database into consecutive [`LaneBatch`]es.
#[derive(Debug, Clone)]
pub struct LaneBatcher {
    lanes: usize,
    pad: u8,
}

impl LaneBatcher {
    /// A batcher producing `lanes`-wide batches for `alphabet`.
    pub fn new(lanes: usize, alphabet: &Alphabet) -> Self {
        assert!(lanes >= 1, "need at least one lane");
        LaneBatcher {
            lanes,
            pad: pad_code(alphabet),
        }
    }

    /// Batch the whole sorted database. Because the input is length-sorted,
    /// each batch packs similar lengths and padding waste is minimal.
    pub fn batch(&self, sorted: &SortedDb) -> Vec<LaneBatch> {
        let n = sorted.len();
        let mut out = Vec::with_capacity(n.div_ceil(self.lanes));
        let mut rank = 0usize;
        while rank < n {
            let end = (rank + self.lanes).min(n);
            let group: Vec<(SeqId, &[u8])> = (rank..end)
                .map(|r| (sorted.id_at(r), sorted.seq_at(r).residues))
                .collect();
            out.push(LaneBatch::pack(self.lanes, &group, self.pad));
            rank = end;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::SequenceDatabase;
    use sw_seq::EncodedSeq;

    fn sorted_db(lens: &[usize]) -> SortedDb {
        let a = Alphabet::protein();
        SortedDb::new(SequenceDatabase::from_sequences(
            lens.iter()
                .enumerate()
                .map(|(i, &l)| {
                    // Use distinct residues per sequence so interleaving is testable.
                    let c = b"ARNDCQEGHILKMFPSTWYV"[i % 20];
                    EncodedSeq::from_text(&format!("s{i}"), &vec![c; l], &a).unwrap()
                })
                .collect(),
        ))
    }

    #[test]
    fn pack_interleaves_and_pads() {
        let a = Alphabet::protein();
        let pad = pad_code(&a);
        let s0 = [0u8, 1, 2];
        let s1 = [5u8, 6];
        let b = LaneBatch::pack(4, &[(SeqId(0), &s0[..]), (SeqId(1), &s1[..])], pad);
        assert_eq!(b.lanes(), 4);
        assert_eq!(b.padded_len(), 3);
        assert_eq!(b.real_lanes(), 2);
        assert_eq!(b.row(0), &[0, 5, pad, pad]);
        assert_eq!(b.row(1), &[1, 6, pad, pad]);
        assert_eq!(b.row(2), &[2, pad, pad, pad]);
        assert_eq!(b.residue(1, 1), 6);
    }

    #[test]
    fn cells_accounting() {
        let a = Alphabet::protein();
        let pad = pad_code(&a);
        let s0 = [0u8; 10];
        let s1 = [1u8; 6];
        let b = LaneBatch::pack(2, &[(SeqId(0), &s0[..]), (SeqId(1), &s1[..])], pad);
        assert_eq!(b.real_cells(100), 100 * (10 + 6));
        assert_eq!(b.padded_cells(100), 100 * 10 * 2);
        let eff = b.pad_efficiency(100);
        assert!((eff - 16.0 / 20.0).abs() < 1e-12);
        // A zero-length query computes no cells: efficiency is the neutral
        // 1.0, not NaN (regression for the 0/0 division).
        assert_eq!(b.pad_efficiency(0), 1.0);
    }

    #[test]
    fn batcher_covers_every_sequence_once() {
        let sorted = sorted_db(&[9, 2, 5, 7, 3, 1, 8]);
        let batches = LaneBatcher::new(4, &Alphabet::protein()).batch(&sorted);
        assert_eq!(batches.len(), 2);
        let mut ids: Vec<u32> = batches
            .iter()
            .flat_map(|b| b.ids().iter().map(|id| id.0))
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn sorted_batching_minimises_padding() {
        let sorted = sorted_db(&[1, 2, 3, 4, 100, 101, 102, 103]);
        let batches = LaneBatcher::new(4, &Alphabet::protein()).batch(&sorted);
        // Lengths 1-4 land together, 100-103 together: padded lens 4 and 103.
        assert_eq!(batches[0].padded_len(), 4);
        assert_eq!(batches[1].padded_len(), 103);
        assert!(batches[0].pad_efficiency(1) >= 0.6);
        assert!(batches[1].pad_efficiency(1) >= 0.98);
    }

    #[test]
    fn last_batch_may_be_partial() {
        let sorted = sorted_db(&[5, 5, 5, 5, 5]);
        let batches = LaneBatcher::new(4, &Alphabet::protein()).batch(&sorted);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[1].real_lanes(), 1);
        // Pad lanes are entirely pad code.
        let pad = pad_code(&Alphabet::protein());
        for j in 0..batches[1].padded_len() {
            for lane in 1..4 {
                assert_eq!(batches[1].residue(j, lane), pad);
            }
        }
    }

    #[test]
    fn batch_lengths_match_source() {
        let sorted = sorted_db(&[9, 2, 5]);
        let batches = LaneBatcher::new(8, &Alphabet::protein()).batch(&sorted);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].lens(), &[2, 5, 9]);
    }

    #[test]
    #[should_panic(expected = "at least one sequence")]
    fn empty_pack_panics() {
        LaneBatch::pack(4, &[], 24);
    }

    #[test]
    fn pad_score_bounds() {
        // PAD_SCORE must be at least as negative as any bundled matrix's
        // maximum is positive, so one padded step can never lift H above 0.
        let m = sw_seq::SubstMatrix::blosum62();
        assert!(PAD_SCORE <= -m.max_score());
    }

    #[test]
    fn empty_database_yields_no_batches() {
        let sorted = sorted_db(&[]);
        let batches = LaneBatcher::new(4, &Alphabet::protein()).batch(&sorted);
        assert!(batches.is_empty());
    }
}
