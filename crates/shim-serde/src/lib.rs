//! No-op stand-ins for `serde`'s `Serialize`/`Deserialize` derives.
//!
//! This workspace builds in environments with no crates.io access, so the
//! real serde cannot be fetched. The codebase only uses serde for derive
//! annotations (structured output is hand-rolled — see `sw_swdb::snapshot`
//! and `sw_bench::table`), so an empty derive keeps every annotation
//! compiling without generating any code. If real serialization is ever
//! needed, swap the workspace `serde` entry back to the real crate; the
//! annotations are already in place.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
