//! # sw-sched — loop scheduling, simulated and real
//!
//! The paper distributes alignment batches across threads with OpenMP's
//! `parallel for` and observes (§IV): *"dynamic outperforms static
//! significantly. The performance difference with guided is slightly
//! minor."* This crate owns both halves of reproducing that:
//!
//! * [`policy`] — the three OpenMP scheduling policies as explicit chunk
//!   generators.
//! * [`desim`] — a discrete-event simulator that replays a policy over
//!   per-task costs (from `sw-device`'s cost model) and returns makespan
//!   and per-worker utilisation. This is what regenerates the paper's
//!   thread-scaling figures on hardware we don't have.
//! * [`executor`] — a real multi-threaded executor (crossbeam scoped
//!   threads + atomics, per the session's concurrency guides) implementing
//!   the same policies for actually running kernels on the host.
//! * [`metrics`] — load-imbalance statistics.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod desim;
pub mod executor;
pub mod metrics;
pub mod policy;

pub use desim::{simulate, SimResult};
pub use executor::{run_parallel, ExecutorConfig};
pub use policy::Policy;
