//! # sw-sched — loop scheduling, simulated and real
//!
//! The paper distributes alignment batches across threads with OpenMP's
//! `parallel for` and observes (§IV): *"dynamic outperforms static
//! significantly. The performance difference with guided is slightly
//! minor."* This crate owns both halves of reproducing that:
//!
//! * [`policy`] — the three OpenMP scheduling policies as explicit chunk
//!   generators, plus the dual-pool primitives ([`policy::DualQueue`],
//!   [`policy::SplitEstimator`], [`policy::adaptive_chunk`]) shared by
//!   the simulator and the real executor.
//! * [`desim`] — a discrete-event simulator that replays a policy over
//!   per-task costs (from `sw-device`'s cost model) and returns makespan
//!   and per-worker utilisation. This is what regenerates the paper's
//!   thread-scaling figures on hardware we don't have.
//!   [`desim::simulate_dual_pool`] replays the heterogeneous dual-pool
//!   policy deterministically, and [`desim::simulate_dual_pool_traced`]
//!   emits the same `sw-trace` event schema as the real executor,
//!   stamped at the simulated clock.
//! * [`executor`] — a real multi-threaded executor (std scoped threads +
//!   atomics) implementing the same policies for actually running kernels
//!   on the host, and [`executor::run_dual_pool`] /
//!   [`executor::run_dual_pool_supervised`], the instrumented two-device
//!   scheduler with lease-based recovery (requeue, retry with backoff,
//!   per-device failure budget, graceful degradation to one pool).
//!   [`executor::run_dual_pool_durable`] adds the durability hooks —
//!   resume prefill, periodic checkpoint callbacks, graceful drain —
//!   that back crash-safe searches.
//! * [`drain`] — the cooperative stop signal ([`DrainSignal`]) flipped
//!   by the CLI's SIGINT/SIGTERM handler and honoured by the executor's
//!   worker pools.
//! * [`fault`] — deterministic, seeded fault injection (kill / delay /
//!   wedge / pool-kill) for exercising the recovery paths, plus the
//!   whole-process kill switch the crash-resume harness uses.
//! * [`metrics`] — load-imbalance statistics and the per-device /
//!   per-worker [`MetricsSink`] the dual-pool executor reports through,
//!   including recovery counters (retries, requeues, lost leases,
//!   degraded).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod desim;
pub mod drain;
pub mod executor;
pub mod fault;
pub mod metrics;
pub mod policy;

pub use desim::{
    simulate, simulate_dual_pool, simulate_dual_pool_traced, DualPoolSimConfig, DualPoolSimResult,
    SimResult,
};
pub use drain::DrainSignal;
pub use executor::{
    run_dual_pool, run_dual_pool_durable, run_dual_pool_supervised, run_dual_pool_traced,
    run_parallel, try_run_parallel, CheckpointView, DualPoolConfig, DualPoolOutcome,
    DurableControl, DurableOutcome, ExecError, ExecutorConfig, TaskError,
};
pub use fault::{
    FaultInjector, FaultKind, FaultPlan, FaultSpec, NetFaultInjector, NetFaultKind, NetFaultPlan,
    NetFaultSpec,
};
pub use metrics::{imbalance, DeviceMetrics, Imbalance, MetricsSink, RecoveryEvent, WorkerSample};
pub use policy::{
    adaptive_chunk, DualQueue, Policy, RequeueQueue, SplitEstimator, DEVICE_ACCEL, DEVICE_CPU,
};
