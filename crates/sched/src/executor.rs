//! Real multi-threaded loop executors.
//!
//! Two executors share this module:
//!
//! * [`run_parallel`] / [`try_run_parallel`] — run a task closure over
//!   `0..n_tasks` with the same scheduling policies the simulator models,
//!   on actual OS threads: `std::thread::scope` plus an atomic chunk
//!   counter (dynamic/guided) or a pre-partition (static). This is what
//!   the single-device search engine uses; results are collected in task
//!   order. A panicking task no longer poisons the result slots: the
//!   panic is captured per task and surfaced as a structured
//!   [`ExecError`] naming the failed task indices.
//! * [`run_dual_pool`] / [`run_dual_pool_supervised`] — the heterogeneous
//!   executor: two device worker pools (CPU share and accelerator share)
//!   pull lane batches from the two ends of one shared work queue, with
//!   an adaptive feedback estimator re-balancing the remaining queue from
//!   observed per-device throughput. Every claimed chunk is covered by a
//!   *lease*; a chunk whose holder dies (panic, injected kill) is
//!   requeued and re-executed by a surviving worker, a chunk whose holder
//!   wedges is reclaimed after `accel_timeout_ms`, and a pool that
//!   exhausts its failure budget is retired so the run *degrades* to the
//!   other pool instead of hanging or crashing. Per-worker metrics and
//!   recovery events are recorded through a [`MetricsSink`].
//!
//! Built on std scoped threads + atomics rather than a work-stealing pool
//! so the *policy* is exactly the one being studied — a generic pool
//! would silently replace the schedule under test. Workers buffer each
//! chunk's results locally and commit them under a single lock
//! acquisition, so the slot mutex is taken once per chunk, not per task.
//!
//! Because task results are pure functions of the task index, re-executing
//! a requeued chunk (or double-executing one whose slow holder finished
//! after its lease was reclaimed) commits identical values — recovery
//! never changes the output, only who computed it.

use crate::drain::DrainSignal;
use crate::fault::{FaultInjector, FaultKind};
use crate::metrics::{MetricsSink, RecoveryEvent, WorkerSample};
use crate::policy::{
    adaptive_chunk, static_partition, DualQueue, Policy, RequeueQueue, SplitEstimator,
    DEVICE_ACCEL, DEVICE_CPU,
};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};
use sw_trace::{EventKind, Tracer, WorkerJournal};

/// How long an idle worker sleeps while waiting for requeued work or
/// outstanding leases to resolve.
const LINGER_POLL: Duration = Duration::from_micros(200);
/// How often a wedged worker checks whether its lease was reclaimed.
const WEDGE_POLL: Duration = Duration::from_millis(1);

/// Executor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutorConfig {
    /// Worker thread count.
    pub workers: usize,
    /// Scheduling policy (the paper's winner is `dynamic`).
    pub policy: Policy,
}

impl ExecutorConfig {
    /// `workers` threads with dynamic(1) scheduling.
    pub fn dynamic(workers: usize) -> Self {
        ExecutorConfig {
            workers,
            policy: Policy::dynamic(),
        }
    }
}

/// One task that failed (panicked) during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskError {
    /// Device pool the failing worker belonged to (`None` for the
    /// single-device executor).
    pub device: Option<usize>,
    /// The task index whose execution panicked.
    pub task: usize,
    /// The captured panic message.
    pub message: String,
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.device {
            Some(DEVICE_CPU) => write!(f, "task {} (cpu pool): {}", self.task, self.message),
            Some(DEVICE_ACCEL) => write!(f, "task {} (accel pool): {}", self.task, self.message),
            Some(d) => write!(f, "task {} (device {d}): {}", self.task, self.message),
            None => write!(f, "task {}: {}", self.task, self.message),
        }
    }
}

/// Structured failure of a parallel region: which tasks panicked (with
/// captured messages) and which task ranges were left unexecuted.
///
/// Replaces the old behaviour where one panicking task poisoned the
/// result-slot mutex and every other worker died with an opaque
/// `PoisonError` cascade.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    /// Tasks whose execution panicked (terminally — retries exhausted,
    /// where retries apply).
    pub failures: Vec<TaskError>,
    /// `[start, end)` task ranges that were never successfully executed.
    pub missing: Vec<(usize, usize)>,
}

impl ExecError {
    /// Total number of tasks left without a result.
    pub fn unexecuted_tasks(&self) -> usize {
        self.missing.iter().map(|(s, e)| e - s).sum()
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} task failure(s)", self.failures.len())?;
        if let Some(first) = self.failures.first() {
            write!(f, " (first: {first})")?;
        }
        if !self.missing.is_empty() {
            write!(f, "; {} task(s) left unexecuted", self.unexecuted_tasks())?;
        }
        Ok(())
    }
}

impl std::error::Error for ExecError {}

/// Locks never stay poisoned here: a panicking task is captured *inside*
/// the worker, and the shared tables hold only plain data that is mutated
/// in whole-record steps, so the value behind a poisoned lock is still
/// coherent.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Render a captured panic payload as text for [`TaskError::message`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "task panicked with a non-string payload".to_string()
    }
}

/// Grab the next chunk for dynamic/guided policies from the shared
/// counter. Returns `None` when the loop is exhausted.
///
/// Memory-ordering audit (satellite of the fault-tolerance PR): the
/// `Relaxed` initial load is only an *optimistic read* — the claim itself
/// is the CAS, which is atomic on the counter's modification order under
/// every ordering, so two grabbers can never both succeed from the same
/// `start` and claims can never overlap or skip indices. No cross-thread
/// data is published through this counter (results travel through the
/// `Slots` mutex, task inputs are read-only and published by the scoped
/// spawn), so even fully `Relaxed` orderings would be correct; `AcqRel`
/// on success is kept as cheap belt-and-braces. The stress test
/// `grab_chunk_stress_every_index_exactly_once` hammers this with more
/// threads than cores.
fn grab_chunk(
    next: &AtomicUsize,
    n_tasks: usize,
    workers: usize,
    policy: Policy,
) -> Option<(usize, usize)> {
    loop {
        let start = next.load(Ordering::Relaxed);
        if start >= n_tasks {
            return None;
        }
        let remaining = n_tasks - start;
        let size = match policy {
            Policy::Dynamic { chunk } => chunk.max(1),
            Policy::Guided { min_chunk } => (remaining / (2 * workers)).max(min_chunk.max(1)),
            Policy::Static => unreachable!("static handled by pre-partition"),
        }
        .min(remaining);
        // CAS so concurrent grabbers never overlap.
        if next
            .compare_exchange_weak(start, start + size, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            return Some((start, start + size));
        }
    }
}

/// Result slot table: workers buffer one chunk locally, then commit the
/// whole chunk under a single lock acquisition.
struct Slots<T> {
    slots: Mutex<Vec<Option<T>>>,
}

impl<T> Slots<T> {
    fn new(n: usize) -> Self {
        Slots {
            slots: Mutex::new((0..n).map(|_| None).collect()),
        }
    }

    /// Commit the results of chunk `[start, start + buf.len())`.
    fn commit(&self, start: usize, buf: Vec<T>) {
        let mut guard = lock_unpoisoned(&self.slots);
        for (offset, r) in buf.into_iter().enumerate() {
            guard[start + offset] = Some(r);
        }
    }

    /// Commit an explicitly-indexed (possibly non-contiguous) batch of
    /// results — the dual-pool path, where a resumed run skips the
    /// indices a checkpoint already holds and a chunk's executed set can
    /// therefore have holes.
    fn commit_sparse(&self, buf: Vec<(usize, T)>) {
        let mut guard = lock_unpoisoned(&self.slots);
        for (i, r) in buf {
            guard[i] = Some(r);
        }
    }

    /// Run `f` over the current slot table (held under the lock). Used by
    /// the checkpoint callback so a checkpoint observes a consistent
    /// whole-chunk view — commits are whole-chunk under the same lock.
    fn with_slots<R>(&self, f: impl FnOnce(&[Option<T>]) -> R) -> R {
        f(&lock_unpoisoned(&self.slots))
    }

    /// The raw slot table (filled and unfilled).
    fn into_slots(self) -> Vec<Option<T>> {
        self.slots
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Results in task order, or the `[start, end)` ranges that were
    /// never filled.
    fn try_into_results(self) -> Result<Vec<T>, Vec<(usize, usize)>> {
        slots_into_results(self.into_slots())
    }
}

/// Split a slot table into results in task order, or the `[start, end)`
/// ranges that were never filled.
fn slots_into_results<T>(slots: Vec<Option<T>>) -> Result<Vec<T>, Vec<(usize, usize)>> {
    let mut out = Vec::with_capacity(slots.len());
    let mut missing: Vec<(usize, usize)> = Vec::new();
    for (i, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(v) => out.push(v),
            None => match missing.last_mut() {
                Some(last) if last.1 == i => last.1 = i + 1,
                _ => missing.push((i, i + 1)),
            },
        }
    }
    if missing.is_empty() {
        Ok(out)
    } else {
        Err(missing)
    }
}

/// Execute `[s, e)` with per-task panic capture: contiguous successful
/// runs are committed, each panicking task is recorded as a [`TaskError`]
/// and its slot left empty. Used by the single-device worker loops.
fn run_range_captured<T, F>(
    range: (usize, usize),
    task: &F,
    slots: &Slots<T>,
    failures: &Mutex<Vec<TaskError>>,
) where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let (s, e) = range;
    let mut start = s;
    let mut buf: Vec<T> = Vec::with_capacity(e - s);
    for i in s..e {
        match catch_unwind(AssertUnwindSafe(|| task(i))) {
            Ok(v) => buf.push(v),
            Err(p) => {
                if !buf.is_empty() {
                    slots.commit(start, std::mem::take(&mut buf));
                }
                start = i + 1;
                lock_unpoisoned(failures).push(TaskError {
                    device: None,
                    task: i,
                    message: panic_message(p),
                });
            }
        }
    }
    if !buf.is_empty() {
        slots.commit(start, buf);
    }
}

/// Run `task(i)` for every `i in 0..n_tasks` under `config`, returning
/// results in task order, or a structured [`ExecError`] naming every task
/// whose execution panicked.
///
/// A panicking task only loses its own slot: the worker that caught it
/// keeps pulling chunks, so all other tasks still execute.
///
/// # Panics
/// Panics if `config.workers == 0`.
pub fn try_run_parallel<T, F>(
    n_tasks: usize,
    config: ExecutorConfig,
    task: F,
) -> Result<Vec<T>, ExecError>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(config.workers >= 1, "need at least one worker");
    if n_tasks == 0 {
        return Ok(Vec::new());
    }

    let slots: Slots<T> = Slots::new(n_tasks);
    let failures: Mutex<Vec<TaskError>> = Mutex::new(Vec::new());

    if config.workers == 1 {
        run_range_captured((0, n_tasks), &task, &slots, &failures);
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let task = &task;
            let slots = &slots;
            let failures = &failures;
            let next = &next;
            let parts = if matches!(config.policy, Policy::Static) {
                static_partition(n_tasks, config.workers)
            } else {
                Vec::new()
            };
            for w in 0..config.workers {
                let my_range = parts.get(w).copied();
                scope.spawn(move || match config.policy {
                    Policy::Static => {
                        let range = my_range.expect("partition has one range per worker");
                        run_range_captured(range, task, slots, failures);
                    }
                    _ => {
                        while let Some(range) =
                            grab_chunk(next, n_tasks, config.workers, config.policy)
                        {
                            run_range_captured(range, task, slots, failures);
                        }
                    }
                });
            }
        });
    }

    let failures = failures
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    match slots.try_into_results() {
        Ok(results) if failures.is_empty() => Ok(results),
        Ok(_) => Err(ExecError {
            failures,
            missing: Vec::new(),
        }),
        Err(missing) => Err(ExecError { failures, missing }),
    }
}

/// Run `task(i)` for every `i in 0..n_tasks` under `config`, returning
/// results in task order.
///
/// `task` must be `Sync` (shared read-only state) and is invoked exactly
/// once per index. Infallible wrapper over [`try_run_parallel`].
///
/// # Panics
/// Panics if `config.workers == 0`, or with the structured failure
/// summary when any task panicked.
pub fn run_parallel<T, F>(n_tasks: usize, config: ExecutorConfig, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    try_run_parallel(n_tasks, config, task)
        .unwrap_or_else(|e| panic!("parallel execution failed: {e}"))
}

/// Run `task(i)` for every `i in 0..n_tasks` on a self-scheduling thread
/// pool (atomic-counter work pulling), returning results in task order.
///
/// This is the policy-agnostic data-parallel path for callers that do not
/// need a *specific* OpenMP schedule — free workers pull single tasks,
/// which behaves like dynamic scheduling with the finest grain. (It
/// replaces an earlier rayon-based path; the dependency budget is now
/// zero external crates.) The policy-faithful executor above remains the
/// one used for the paper's scheduling experiments.
pub fn run_work_stealing<T, F>(n_tasks: usize, workers: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(workers >= 1, "need at least one worker");
    run_parallel(n_tasks, ExecutorConfig::dynamic(workers), task)
}

/// Configuration of the dual-pool heterogeneous executor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DualPoolConfig {
    /// Worker threads in the CPU-share pool (front of the queue).
    pub cpu_workers: usize,
    /// Worker threads in the accelerator-share pool (back of the queue).
    pub accel_workers: usize,
    /// The static plan's accelerator share — the estimator's seed until
    /// both pools have observed throughput.
    pub initial_accel_fraction: f64,
    /// Smallest chunk either pool grabs.
    pub min_chunk: usize,
    /// Lease timeout for chunks held by the accelerator pool: a chunk
    /// whose holder makes no progress for this long is reclaimed and
    /// requeued. `None` disables reclamation (a wedge fault then
    /// degenerates to a kill so runs still terminate).
    pub accel_timeout_ms: Option<u64>,
    /// Failures a device pool tolerates before it is retired and the run
    /// degrades to the other pool.
    pub failure_budget: u32,
    /// Base backoff before re-executing a requeued chunk, doubled per
    /// prior attempt (`backoff · 2^(attempts-1)`). Zero disables backoff.
    pub retry_backoff_ms: u64,
    /// Times a failing chunk is re-executed before its failing task is
    /// reported terminally and the rest of the chunk salvaged.
    pub max_chunk_retries: u32,
}

impl DualPoolConfig {
    /// A dual-pool configuration with an even initial split and default
    /// recovery settings (no lease timeout, budget 3, 1 ms backoff, 2
    /// retries per chunk).
    pub fn new(cpu_workers: usize, accel_workers: usize) -> Self {
        DualPoolConfig {
            cpu_workers,
            accel_workers,
            initial_accel_fraction: 0.5,
            min_chunk: 1,
            accel_timeout_ms: None,
            failure_budget: 3,
            retry_backoff_ms: 1,
            max_chunk_retries: 2,
        }
    }

    /// Total workers across both pools.
    pub fn total_workers(&self) -> usize {
        self.cpu_workers + self.accel_workers
    }

    /// The lease timeout applying to chunks held by `device`, if any.
    /// Only accelerator-held leases time out: CPU workers are in-process
    /// threads whose failures surface as captured panics immediately,
    /// while an accelerator dispatch can silently wedge.
    pub fn lease_timeout(&self, device: usize) -> Option<Duration> {
        if device == DEVICE_ACCEL {
            self.accel_timeout_ms.map(Duration::from_millis)
        } else {
            None
        }
    }
}

/// Observed progress of one device pool, shared across its workers for
/// the feedback estimator.
#[derive(Default)]
struct DeviceProgress {
    cells: AtomicU64,
    busy_nanos: AtomicU64,
}

/// Result of a supervised dual-pool run.
#[derive(Debug)]
pub struct DualPoolOutcome<T> {
    /// Task results in task order.
    pub results: Vec<T>,
    /// Whether each device pool (`[cpu, accel]`) was retired before the
    /// queue drained — the run *degraded* to the surviving pool.
    pub degraded: [bool; 2],
}

/// Consistent view of a run's progress handed to the checkpoint
/// callback. The slot table is observed under its lock, so every chunk
/// is either fully present or fully absent — a checkpoint can never see
/// half a chunk.
pub struct CheckpointView<'v, T> {
    /// Result slots in task order; `None` = not yet executed.
    pub slots: &'v [Option<T>],
    /// Tasks committed so far (including any resume prefill).
    pub tasks_done: u64,
    /// The split estimator's current accelerator share — persisted so a
    /// resumed run starts from the learned split instead of the static
    /// seed.
    pub accel_share: f64,
}

/// Durability hooks for [`run_dual_pool_durable`]: resume prefill, a
/// drain signal, and a periodic checkpoint callback.
///
/// The default value ([`DurableControl::none`]) disables all three, which
/// makes the durable executor behave exactly like
/// [`run_dual_pool_traced`] (the traced entry point is now a thin wrapper
/// over it).
pub struct DurableControl<'a, T> {
    /// Task results a checkpoint already holds: `(task index, result)`.
    /// Prefilled indices are skipped by the workers (no execution, no
    /// cost accounting) and appear verbatim in the outcome's slots.
    pub prefill: Vec<(usize, T)>,
    /// Cooperative stop: when requested, workers finish the chunks they
    /// hold, commit them, and exit; the outcome is marked drained and
    /// carries whatever completed.
    pub drain: Option<&'a DrainSignal>,
    /// Invoke `on_checkpoint` every this many committed chunks
    /// (0 = never).
    pub checkpoint_every_chunks: u64,
    /// Checkpoint writer: receives a consistent [`CheckpointView`] and
    /// returns the number of bytes persisted (for the trace event). At
    /// most one invocation runs at a time; an interval that fires while a
    /// checkpoint is still being written is skipped, not queued.
    #[allow(clippy::type_complexity)]
    pub on_checkpoint: Option<&'a (dyn Fn(CheckpointView<'_, T>) -> u64 + Sync)>,
    /// Per-task cancellation probe, checked immediately before each task
    /// executes. A `true` answer drops the task — no execution, no commit,
    /// no cost accounting — leaving its slot `None` while the rest of the
    /// region runs to completion. This is what lets one query in a shared
    /// multi-query region be cancelled without draining its batch-mates:
    /// the region-level [`DurableControl::drain`] stops *everything*, the
    /// probe removes *one query's* tasks.
    #[allow(clippy::type_complexity)]
    pub task_cancelled: Option<&'a (dyn Fn(usize) -> bool + Sync)>,
}

impl<T> DurableControl<'_, T> {
    /// No prefill, no drain, no checkpoints.
    pub fn none() -> Self {
        DurableControl {
            prefill: Vec::new(),
            drain: None,
            checkpoint_every_chunks: 0,
            on_checkpoint: None,
            task_cancelled: None,
        }
    }
}

impl<T> Default for DurableControl<'_, T> {
    fn default() -> Self {
        DurableControl::none()
    }
}

/// Result of a durable dual-pool run. Unlike [`DualPoolOutcome`] this is
/// returned even when tasks are left unexecuted — a drained run is a
/// *successful partial* run, and the caller decides whether holes are an
/// error (they are, when not drained).
#[derive(Debug)]
pub struct DurableOutcome<T> {
    /// Result slots in task order; `None` = never executed (drained away,
    /// or lost to terminal task failure).
    pub slots: Vec<Option<T>>,
    /// Whether each device pool (`[cpu, accel]`) was retired.
    pub degraded: [bool; 2],
    /// True when the run stopped because its [`DrainSignal`] fired.
    pub drained: bool,
    /// Tasks that failed terminally (retries exhausted).
    pub failures: Vec<TaskError>,
}

impl<T> DurableOutcome<T> {
    /// Number of tasks with a committed result.
    pub fn tasks_done(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Results in task order, or the structured [`ExecError`] naming the
    /// failed and unexecuted tasks. For a *completed* run this is the
    /// conversion to [`DualPoolOutcome`] semantics; a drained run with
    /// holes returns `Err`, so only call it when `!drained`.
    pub fn try_into_results(self) -> Result<Vec<T>, ExecError> {
        match slots_into_results(self.slots) {
            Ok(results) => Ok(results),
            Err(missing) => Err(ExecError {
                failures: self.failures,
                missing,
            }),
        }
    }
}

/// An active chunk lease: `device`'s pool claimed `range` and has not yet
/// committed or released it.
struct Lease {
    id: u64,
    device: usize,
    range: (usize, usize),
    attempts: u32,
    started: Instant,
}

/// Shared recovery bookkeeping of one dual-pool region. The double-ended
/// queue lives under the same lock as the lease table so "claim a range"
/// and "lease it" are one atomic step — a worker deciding the region is
/// done (queue drained, no leases, no requeues) can never race a claim
/// that has not been leased yet.
struct RecoveryState {
    queue: DualQueue,
    requeue: RequeueQueue,
    leases: Vec<Lease>,
    next_lease: u64,
    failures: [u32; 2],
    retired: [bool; 2],
    errors: Vec<TaskError>,
}

/// What a worker got back from [`Supervisor::acquire`].
enum Acquire {
    /// A leased range to execute.
    Work(Work),
    /// The region is complete: queue drained, no leases, no requeues.
    Done,
    /// The worker's pool was retired; the worker must exit.
    Retired,
    /// Nothing to do right now but leases are outstanding — poll again.
    Linger,
}

struct Work {
    range: (usize, usize),
    attempts: u32,
    lease: u64,
    retried: bool,
}

/// The lease/requeue/budget supervisor shared by all workers of one
/// dual-pool region.
struct Supervisor<'a> {
    config: DualPoolConfig,
    estimator: SplitEstimator,
    progress: [DeviceProgress; 2],
    state: Mutex<RecoveryState>,
    sink: &'a MetricsSink,
}

impl<'a> Supervisor<'a> {
    fn new(n_tasks: usize, config: DualPoolConfig, sink: &'a MetricsSink) -> Self {
        Supervisor {
            config,
            estimator: SplitEstimator::new(config.initial_accel_fraction),
            progress: [DeviceProgress::default(), DeviceProgress::default()],
            state: Mutex::new(RecoveryState {
                queue: DualQueue::new(n_tasks),
                requeue: RequeueQueue::new(),
                leases: Vec::new(),
                next_lease: 0,
                failures: [0, 0],
                retired: [false, false],
                errors: Vec::new(),
            }),
            sink,
        }
    }

    fn lock(&self) -> MutexGuard<'_, RecoveryState> {
        lock_unpoisoned(&self.state)
    }

    /// The estimator's current accelerator share given observed progress.
    fn current_accel_share(&self) -> f64 {
        self.estimator.accel_share(
            self.progress[DEVICE_CPU].cells.load(Ordering::Relaxed),
            self.progress[DEVICE_CPU].busy_nanos.load(Ordering::Relaxed),
            self.progress[DEVICE_ACCEL].cells.load(Ordering::Relaxed),
            self.progress[DEVICE_ACCEL]
                .busy_nanos
                .load(Ordering::Relaxed),
        )
    }

    fn register(
        st: &mut RecoveryState,
        device: usize,
        range: (usize, usize),
        attempts: u32,
    ) -> u64 {
        let id = st.next_lease;
        st.next_lease += 1;
        st.leases.push(Lease {
            id,
            device,
            range,
            attempts,
            started: Instant::now(),
        });
        id
    }

    /// Charge one failure against `device`'s budget, retiring the pool
    /// (degraded) once the budget is exceeded. Events land on the journal
    /// of the worker that observed the failure.
    fn charge_failure(&self, st: &mut RecoveryState, device: usize, jr: &mut WorkerJournal) {
        st.failures[device] += 1;
        self.sink.record_recovery(device, RecoveryEvent::Failure);
        if st.failures[device] > self.config.failure_budget && !st.retired[device] {
            st.retired[device] = true;
            self.sink.record_recovery(device, RecoveryEvent::Degraded);
            jr.emit(EventKind::PoolRetired { device });
        }
    }

    /// Retire `device`'s pool immediately (injected pool kill).
    fn retire(&self, device: usize, jr: &mut WorkerJournal) {
        let mut st = self.lock();
        if !st.retired[device] {
            st.retired[device] = true;
            self.sink.record_recovery(device, RecoveryEvent::Degraded);
            jr.emit(EventKind::PoolRetired { device });
        }
    }

    /// True while lease `id` is still held (not reclaimed).
    fn holds(&self, id: u64) -> bool {
        self.lock().leases.iter().any(|l| l.id == id)
    }

    /// Acquire the next unit of work for a worker of `device`:
    /// requeued ranges first, then a fresh adaptive chunk from the
    /// device's end of the queue; once the queue drains, reclaim expired
    /// leases, report completion, or ask the worker to linger.
    fn acquire(&self, device: usize, pool_workers: usize, jr: &mut WorkerJournal) -> Acquire {
        let mut st = self.lock();
        loop {
            if st.retired[device] {
                return Acquire::Retired;
            }
            if let Some((range, attempts)) = st.requeue.pop() {
                let lease = Self::register(&mut st, device, range, attempts);
                jr.emit(EventKind::LeaseGranted {
                    lease,
                    lo: range.0,
                    hi: range.1,
                });
                return Acquire::Work(Work {
                    range,
                    attempts,
                    lease,
                    retried: true,
                });
            }
            if st.queue.remaining() > 0 {
                let accel_share = self.current_accel_share();
                let my_share = if device == DEVICE_CPU {
                    1.0 - accel_share
                } else {
                    accel_share
                };
                let k = adaptive_chunk(
                    st.queue.remaining(),
                    my_share,
                    pool_workers.max(1),
                    self.config.min_chunk,
                );
                let range = if device == DEVICE_CPU {
                    st.queue.take_front(k)
                } else {
                    st.queue.take_back(k)
                }
                .expect("non-empty queue yields a range");
                let lease = Self::register(&mut st, device, range, 0);
                jr.emit(EventKind::SplitRebalance { share: accel_share });
                jr.emit(EventKind::LeaseGranted {
                    lease,
                    lo: range.0,
                    hi: range.1,
                });
                return Acquire::Work(Work {
                    range,
                    attempts: 0,
                    lease,
                    retried: false,
                });
            }
            // Queue drained: reclaim a lease whose holder exceeded its
            // timeout, finish, or wait for in-flight work to resolve.
            let now = Instant::now();
            let expired = st.leases.iter().position(|l| {
                self.config
                    .lease_timeout(l.device)
                    .is_some_and(|t| now.duration_since(l.started) > t)
            });
            if let Some(pos) = expired {
                let lease = st.leases.swap_remove(pos);
                st.requeue.push(lease.range, lease.attempts + 1);
                self.sink
                    .record_recovery(lease.device, RecoveryEvent::LostLease);
                jr.emit(EventKind::LeaseLost {
                    lease: lease.id,
                    victim: lease.device,
                });
                jr.emit(EventKind::LeaseRequeued {
                    lease: lease.id,
                    lo: lease.range.0,
                    hi: lease.range.1,
                    attempts: lease.attempts + 1,
                });
                self.charge_failure(&mut st, lease.device, jr);
                continue; // the requeued range is available now
            }
            if st.leases.is_empty() && st.requeue.is_empty() {
                return Acquire::Done;
            }
            return Acquire::Linger;
        }
    }

    /// Mark lease `id` committed. A lease already reclaimed by timeout is
    /// a no-op: the slow holder's duplicate commit wrote the same
    /// deterministic values the re-execution produces, and the reclaim
    /// was already counted as a lost lease.
    fn complete(&self, id: u64) {
        let mut st = self.lock();
        if let Some(pos) = st.leases.iter().position(|l| l.id == id) {
            st.leases.swap_remove(pos);
        }
    }

    /// Release a lease whose execution panicked at task `failed_at`
    /// (everything before it was committed). The unexecuted tail is
    /// requeued with an incremented attempt count, or — once retries are
    /// exhausted — the failing task is reported terminally and the rest
    /// of the chunk salvaged.
    fn release_failed(
        &self,
        id: u64,
        device: usize,
        failed_at: usize,
        message: String,
        jr: &mut WorkerJournal,
    ) {
        let mut st = self.lock();
        let Some(pos) = st.leases.iter().position(|l| l.id == id) else {
            // Already reclaimed by timeout: the reclaimer charged the
            // failure and requeued the full range.
            return;
        };
        let lease = st.leases.swap_remove(pos);
        jr.emit(EventKind::LeaseLost {
            lease: id,
            victim: device,
        });
        self.charge_failure(&mut st, device, jr);
        let end = lease.range.1;
        if lease.attempts >= self.config.max_chunk_retries {
            st.errors.push(TaskError {
                device: Some(device),
                task: failed_at,
                message,
            });
            if failed_at + 1 < end {
                st.requeue.push((failed_at + 1, end), 0);
                self.sink.record_recovery(device, RecoveryEvent::Requeue);
                jr.emit(EventKind::LeaseRequeued {
                    lease: id,
                    lo: failed_at + 1,
                    hi: end,
                    attempts: 0,
                });
            }
        } else {
            st.requeue.push((failed_at, end), lease.attempts + 1);
            self.sink.record_recovery(device, RecoveryEvent::Requeue);
            jr.emit(EventKind::LeaseRequeued {
                lease: id,
                lo: failed_at,
                hi: end,
                attempts: lease.attempts + 1,
            });
        }
    }
}

/// Run `task(device, i)` for every `i in 0..n_tasks` on two device worker
/// pools pulling from one shared double-ended queue, with fault injection
/// and lease-based recovery. Returns results in task order plus per-pool
/// degradation flags, or a structured [`ExecError`] when tasks failed
/// terminally or every pool died with work outstanding.
///
/// The CPU pool (device [`DEVICE_CPU`]) consumes from the front of the
/// queue, the accelerator pool ([`DEVICE_ACCEL`]) from the back — with a
/// length-sorted database this preserves Algorithm 2's assignment of long
/// sequences to the accelerator, but the boundary is wherever the pools
/// *meet*, not a precomputed split point. Chunk sizes follow the
/// [`SplitEstimator`]'s view of each device's share of the remaining
/// work, seeded from `config.initial_accel_fraction` (the static plan)
/// and re-balanced from observed per-device throughput.
///
/// Recovery semantics: every claimed chunk is leased; a worker that dies
/// (task panic or injected kill) releases the unexecuted tail of its
/// chunk to a shared requeue list that *either* pool re-executes (with
/// exponential backoff); a wedged accelerator chunk is reclaimed after
/// `config.accel_timeout_ms`; a pool whose failures exceed
/// `config.failure_budget` — or that is pool-killed by the `injector` —
/// is retired, and the run degrades to the surviving pool. All recovery
/// is observable in `sink` (retries, requeues, lost leases, failures,
/// degraded).
///
/// `cost(i)` is the workload of task `i` in DP cells — used for the
/// estimator and the per-worker metrics recorded into `sink`.
///
/// `tracer` collects a per-worker event journal (chunk spans, queue
/// waits, lease lifecycle, retire/rebalance) when enabled; pass
/// [`Tracer::disabled`] for the zero-cost path. During each task the
/// worker's journal is installed as the thread's ambient journal
/// (`sw_trace::install`), so lower layers (kernels) can emit overflow
/// recompute events without any signature threading.
///
/// Durability hooks ([`DurableControl`]):
///
/// * **prefill** — results a checkpoint already holds are committed
///   before any worker starts and their indices are skipped (no
///   execution, no cost/throughput accounting), so a resumed run spends
///   time only on the remaining work; a `resume_loaded` trace event is
///   emitted.
/// * **drain** — once the [`DrainSignal`] fires, workers finish and
///   commit the chunks they hold, then exit; the first to observe the
///   request emits `drain_started`. The outcome is a successful partial
///   run (`drained = true`).
/// * **checkpoint** — every `checkpoint_every_chunks` committed chunks,
///   one worker invokes `on_checkpoint` with a consistent
///   [`CheckpointView`] (slot lock held, so checkpoints are whole-chunk
///   atomic) and emits `checkpoint_written`.
///
/// Unlike [`run_dual_pool_traced`] this returns the raw slot table:
/// unexecuted tasks are `None`, and deciding whether holes are an error
/// is the caller's job (a drained run legitimately has them).
///
/// # Panics
/// Panics when both pools are empty, when `initial_accel_fraction` is
/// NaN or outside `[0, 1]`, or when a prefill index is out of range.
#[allow(clippy::too_many_arguments)]
pub fn run_dual_pool_durable<T, F, C>(
    n_tasks: usize,
    config: DualPoolConfig,
    injector: &FaultInjector,
    durable: DurableControl<'_, T>,
    cost: C,
    task: F,
    sink: &MetricsSink,
    tracer: &Tracer,
) -> DurableOutcome<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
    C: Fn(usize) -> u64 + Sync,
{
    assert!(
        config.total_workers() >= 1,
        "need at least one worker across the two pools"
    );
    let sup = Supervisor::new(n_tasks, config, sink);
    if n_tasks == 0 {
        return DurableOutcome {
            slots: Vec::new(),
            degraded: [false, false],
            drained: durable.drain.is_some_and(|d| d.is_requested()),
            failures: Vec::new(),
        };
    }

    let slots: Slots<T> = Slots::new(n_tasks);
    let mut skip = vec![false; n_tasks];
    let prefilled = durable.prefill.len() as u64;
    if prefilled > 0 {
        for &(i, _) in &durable.prefill {
            skip[i] = true;
        }
        slots.commit_sparse(durable.prefill);
        // The resume event lands on a supervisor track (worker id past
        // the real pools) so it never interleaves a worker's spans.
        let mut journal = tracer.worker(DEVICE_CPU, config.total_workers());
        journal.emit(EventKind::ResumeLoaded {
            tasks_done: prefilled,
        });
        journal.flush();
    }
    let drain = durable.drain;
    let every = durable.checkpoint_every_chunks;
    let on_checkpoint = durable.on_checkpoint;
    let task_cancelled = durable.task_cancelled;
    let tasks_done = AtomicU64::new(prefilled);
    let chunks_done = AtomicU64::new(0);
    // Next checkpoint sequence number; doubles as the "one checkpoint at
    // a time" gate (try_lock).
    let ckpt_seq: Mutex<u64> = Mutex::new(0);

    std::thread::scope(|scope| {
        let task = &task;
        let cost = &cost;
        let slots = &slots;
        let sup = &sup;
        let skip = &skip;
        let tasks_done = &tasks_done;
        let chunks_done = &chunks_done;
        let ckpt_seq = &ckpt_seq;
        let pools = [
            (DEVICE_CPU, config.cpu_workers),
            (DEVICE_ACCEL, config.accel_workers),
        ];
        for (device, workers) in pools {
            for w in 0..workers {
                scope.spawn(move || {
                    let mut sample = WorkerSample::new(device, w);
                    let mut journal = tracer.worker(device, w);
                    'work: loop {
                        if let Some(d) = drain {
                            if d.is_requested() {
                                if d.announce_once() {
                                    journal.emit(EventKind::DrainStarted);
                                }
                                break 'work; // in-flight chunks already committed
                            }
                        }
                        if injector.pool_dead(device) {
                            sup.retire(device, &mut journal);
                        }
                        let wait_start = Instant::now();
                        let wait_stamp = journal.stamp();
                        let work = loop {
                            match sup.acquire(device, workers, &mut journal) {
                                Acquire::Work(wk) => break wk,
                                Acquire::Done | Acquire::Retired => break 'work,
                                Acquire::Linger => {
                                    if drain.is_some_and(|d| d.is_requested()) {
                                        // Back to the loop top, which
                                        // announces and exits.
                                        continue 'work;
                                    }
                                    std::thread::sleep(LINGER_POLL)
                                }
                            }
                        };
                        sample.queue_wait += wait_start.elapsed();
                        let wait_us = journal.since_us(wait_stamp);
                        journal.span_from(
                            wait_stamp,
                            EventKind::QueueWaitBegin,
                            EventKind::QueueWaitEnd { us: wait_us },
                        );
                        let (s, e) = work.range;
                        journal.emit(EventKind::ChunkClaim {
                            lease: work.lease,
                            lo: s,
                            hi: e,
                            attempts: work.attempts,
                        });

                        let mut fault = injector.on_chunk_start(device);
                        if matches!(fault, Some(FaultKind::Wedge))
                            && config.lease_timeout(device).is_none()
                        {
                            // No timeout means no reclamation: a wedge
                            // would hang the run, so it degrades to kill.
                            fault = Some(FaultKind::Kill);
                        }
                        if matches!(fault, Some(FaultKind::KillPool)) {
                            sup.retire(device, &mut journal);
                        }
                        match fault {
                            Some(FaultKind::Delay(d)) => std::thread::sleep(d),
                            Some(FaultKind::Wedge) => {
                                // Hold the lease without progress until it
                                // is reclaimed, then die (the reclaimer
                                // charges the failure).
                                while sup.holds(work.lease) {
                                    std::thread::sleep(WEDGE_POLL);
                                }
                                break 'work;
                            }
                            _ => {}
                        }
                        let kill = matches!(fault, Some(FaultKind::Kill | FaultKind::KillPool));

                        if work.attempts > 0 && config.retry_backoff_ms > 0 {
                            let factor = 1u64 << (work.attempts - 1).min(6);
                            let backoff_ms = config.retry_backoff_ms.saturating_mul(factor);
                            journal.emit(EventKind::RetryBackoff {
                                attempts: work.attempts,
                                backoff_ms,
                            });
                            std::thread::sleep(Duration::from_millis(backoff_ms));
                        }

                        let exec_start = Instant::now();
                        let chunk_stamp = journal.stamp();
                        // Hand the journal to the thread-local slot so the
                        // task's lower layers (kernel overflow rescue) can
                        // emit into the same track; recovered below even if
                        // the task panics. The scoped guard keeps whatever
                        // journal a caller higher on this thread had
                        // installed and puts it back afterwards — without
                        // it, an engine nested inside another search (a
                        // daemon worker) would silently flush the outer
                        // search's journal mid-run.
                        let traced = journal.enabled();
                        let ambient =
                            traced.then(|| sw_trace::install_scoped(std::mem::take(&mut journal)));
                        let mut buf: Vec<(usize, T)> = Vec::with_capacity(e - s);
                        let mut chunk_cells = 0u64;
                        let mut failed: Option<(usize, String)> = None;
                        for (i, &already_done) in skip.iter().enumerate().take(e).skip(s) {
                            if already_done {
                                continue; // a checkpoint already holds this task
                            }
                            if task_cancelled.is_some_and(|c| c(i)) {
                                continue; // cancelled out of the shared region
                            }
                            let run = catch_unwind(AssertUnwindSafe(|| {
                                if kill {
                                    panic!("injected fault: worker killed");
                                }
                                if injector.pool_dead(device) {
                                    panic!("injected fault: device pool killed");
                                }
                                task(device, i)
                            }));
                            match run {
                                Ok(v) => {
                                    buf.push((i, v));
                                    chunk_cells += cost(i);
                                }
                                Err(p) => {
                                    failed = Some((i, panic_message(p)));
                                    break;
                                }
                            }
                        }
                        if let Some(scope) = ambient {
                            journal = scope.take();
                        }
                        journal.span_from(
                            chunk_stamp,
                            EventKind::ChunkStart {
                                lease: work.lease,
                                lo: s,
                                hi: e,
                            },
                            EventKind::ChunkFinish {
                                lease: work.lease,
                                lo: s,
                                hi: e,
                                cells: chunk_cells,
                            },
                        );
                        let busy = exec_start.elapsed();
                        sample.busy += busy;
                        sample.tasks += buf.len() as u64;
                        sample.cells += chunk_cells;
                        sup.progress[device]
                            .cells
                            .fetch_add(chunk_cells, Ordering::Relaxed);
                        sup.progress[device]
                            .busy_nanos
                            .fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
                        let n_committed = buf.len() as u64;
                        if !buf.is_empty() {
                            let commit_start = Instant::now();
                            slots.commit_sparse(buf);
                            sample.queue_wait += commit_start.elapsed();
                        }
                        match failed {
                            None => {
                                sample.chunks += 1;
                                if work.retried {
                                    sample.retries += 1;
                                }
                                sup.complete(work.lease);
                                let total_tasks = tasks_done
                                    .fetch_add(n_committed, Ordering::AcqRel)
                                    + n_committed;
                                if let Some(d) = drain {
                                    d.note_tasks_done(total_tasks);
                                }
                                let total_chunks = chunks_done.fetch_add(1, Ordering::AcqRel) + 1;
                                if every > 0 && total_chunks.is_multiple_of(every) {
                                    if let Some(write) = on_checkpoint {
                                        // try_lock: a tick that collides
                                        // with an in-flight checkpoint is
                                        // dropped, not queued.
                                        if let Ok(mut seq) = ckpt_seq.try_lock() {
                                            let share = sup.current_accel_share();
                                            let now = tasks_done.load(Ordering::Acquire);
                                            let bytes = slots.with_slots(|view| {
                                                write(CheckpointView {
                                                    slots: view,
                                                    tasks_done: now,
                                                    accel_share: share,
                                                })
                                            });
                                            journal.emit(EventKind::CheckpointWritten {
                                                seq: *seq,
                                                tasks_done: now,
                                                bytes,
                                            });
                                            *seq += 1;
                                        }
                                    }
                                }
                                // Crash-harness switch: abort the process
                                // only after this chunk (and any due
                                // checkpoint) is durable.
                                injector.on_chunk_committed();
                            }
                            Some((at, message)) => {
                                sup.release_failed(work.lease, device, at, message, &mut journal);
                                if kill {
                                    break 'work; // injected kill: worker is dead
                                }
                            }
                        }
                    }
                    sink.record(sample);
                    journal.flush();
                });
            }
        }
    });

    let state = sup
        .state
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    DurableOutcome {
        slots: slots.into_slots(),
        degraded: state.retired,
        drained: drain.is_some_and(|d| d.is_requested()),
        failures: state.errors,
    }
}

/// [`run_dual_pool_durable`] with the durability hooks disabled: a
/// complete run or a structured [`ExecError`]. This is the entry point
/// for non-resumable searches.
///
/// # Panics
/// Panics when both pools are empty or when `initial_accel_fraction` is
/// NaN or outside `[0, 1]`.
pub fn run_dual_pool_traced<T, F, C>(
    n_tasks: usize,
    config: DualPoolConfig,
    injector: &FaultInjector,
    cost: C,
    task: F,
    sink: &MetricsSink,
    tracer: &Tracer,
) -> Result<DualPoolOutcome<T>, ExecError>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
    C: Fn(usize) -> u64 + Sync,
{
    let out = run_dual_pool_durable(
        n_tasks,
        config,
        injector,
        DurableControl::none(),
        cost,
        task,
        sink,
        tracer,
    );
    match slots_into_results(out.slots) {
        Ok(results) => Ok(DualPoolOutcome {
            results,
            degraded: out.degraded,
        }),
        Err(missing) => Err(ExecError {
            failures: out.failures,
            missing,
        }),
    }
}

/// [`run_dual_pool_traced`] without tracing — the pre-observability
/// entry point, kept for callers that don't collect a timeline.
///
/// # Panics
/// Panics when both pools are empty or when `initial_accel_fraction` is
/// NaN or outside `[0, 1]`.
pub fn run_dual_pool_supervised<T, F, C>(
    n_tasks: usize,
    config: DualPoolConfig,
    injector: &FaultInjector,
    cost: C,
    task: F,
    sink: &MetricsSink,
) -> Result<DualPoolOutcome<T>, ExecError>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
    C: Fn(usize) -> u64 + Sync,
{
    run_dual_pool_traced(
        n_tasks,
        config,
        injector,
        cost,
        task,
        sink,
        &Tracer::disabled(),
    )
}

/// Run `task(device, i)` for every `i in 0..n_tasks` on two device worker
/// pools, returning results in task order.
///
/// Infallible, fault-free wrapper over [`run_dual_pool_supervised`].
///
/// # Panics
/// Panics when both pools are empty, when `initial_accel_fraction` is NaN
/// or outside `[0, 1]`, or with the structured failure summary when tasks
/// failed terminally.
pub fn run_dual_pool<T, F, C>(
    n_tasks: usize,
    config: DualPoolConfig,
    cost: C,
    task: F,
    sink: &MetricsSink,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
    C: Fn(usize) -> u64 + Sync,
{
    match run_dual_pool_supervised(n_tasks, config, &FaultInjector::none(), cost, task, sink) {
        Ok(outcome) => outcome.results,
        Err(e) => panic!("dual-pool execution failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultSpec};
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_in_task_order() {
        let cfg = ExecutorConfig::dynamic(4);
        let out = run_parallel(100, cfg, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicU64::new(0);
        let cfg = ExecutorConfig {
            workers: 8,
            policy: Policy::Dynamic { chunk: 3 },
        };
        let out = run_parallel(1000, cfg, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn static_policy_works() {
        let cfg = ExecutorConfig {
            workers: 3,
            policy: Policy::Static,
        };
        let out = run_parallel(10, cfg, |i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn guided_policy_works() {
        let cfg = ExecutorConfig {
            workers: 4,
            policy: Policy::guided(),
        };
        let out = run_parallel(57, cfg, |i| i);
        assert_eq!(out.len(), 57);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn results_in_task_order_under_all_policies() {
        // The chunk-buffered commit must preserve task order for every
        // policy and several worker counts (regression for the one-lock-
        // per-task hot loop, which masked ordering bugs by serialising).
        let expect: Vec<usize> = (0..503).map(|i| i * 7 + 1).collect();
        for policy in [
            Policy::Static,
            Policy::Dynamic { chunk: 5 },
            Policy::guided(),
        ] {
            for workers in [2, 3, 8] {
                let cfg = ExecutorConfig { workers, policy };
                let out = run_parallel(503, cfg, |i| i * 7 + 1);
                assert_eq!(out, expect, "{policy:?} with {workers} workers");
            }
        }
    }

    #[test]
    fn single_worker_sequential_path() {
        let cfg = ExecutorConfig::dynamic(1);
        let out = run_parallel(5, cfg, |i| i * i);
        assert_eq!(out, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn empty_loop() {
        let cfg = ExecutorConfig::dynamic(4);
        let out: Vec<usize> = run_parallel(0, cfg, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_tasks() {
        let cfg = ExecutorConfig::dynamic(16);
        let out = run_parallel(3, cfg, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn work_stealing_path_matches_policy_executor() {
        let via_pool = run_work_stealing(200, 3, |i| i * 3);
        let via_policy = run_parallel(200, ExecutorConfig::dynamic(3), |i| i * 3);
        assert_eq!(via_pool, via_policy);
    }

    #[test]
    fn work_stealing_empty_and_single() {
        let empty: Vec<usize> = run_work_stealing(0, 2, |i| i);
        assert!(empty.is_empty());
        assert_eq!(run_work_stealing(4, 1, |i| i + 1), vec![1, 2, 3, 4]);
    }

    #[test]
    fn heavy_shared_state_is_safe() {
        // Workers summing into results; validated against the closed form.
        let cfg = ExecutorConfig {
            workers: 6,
            policy: Policy::Guided { min_chunk: 2 },
        };
        let out = run_parallel(500, cfg, |i| i as u64);
        let total: u64 = out.iter().sum();
        assert_eq!(total, 499 * 500 / 2);
    }

    #[test]
    fn grab_chunk_stress_every_index_exactly_once() {
        // Satellite audit of the Relaxed-load + CAS claim loop: more
        // threads than cores hammering the counter must still claim every
        // index exactly once, for both chunked-dynamic and guided sizing.
        for policy in [Policy::Dynamic { chunk: 3 }, Policy::guided()] {
            let n = 10_007; // prime, so chunk edges never line up
            let counts: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..16 {
                    scope.spawn(|| {
                        while let Some((a, b)) = grab_chunk(&next, n, 16, policy) {
                            for c in &counts[a..b] {
                                c.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    });
                }
            });
            assert!(
                counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "{policy:?}: some index executed zero or multiple times"
            );
        }
    }

    #[test]
    fn task_panic_returns_structured_error() {
        let err = try_run_parallel(100, ExecutorConfig::dynamic(4), |i| {
            if i == 37 {
                panic!("task 37 exploded");
            }
            i
        })
        .unwrap_err();
        assert_eq!(err.failures.len(), 1);
        assert_eq!(err.failures[0].task, 37);
        assert_eq!(err.failures[0].device, None);
        assert!(err.failures[0].message.contains("task 37 exploded"));
        assert_eq!(err.missing, vec![(37, 38)]);
        assert_eq!(err.unexecuted_tasks(), 1);
        let rendered = err.to_string();
        assert!(rendered.contains("task 37"), "got: {rendered}");
    }

    #[test]
    fn task_panic_captured_on_single_worker_and_static() {
        for cfg in [
            ExecutorConfig::dynamic(1),
            ExecutorConfig {
                workers: 3,
                policy: Policy::Static,
            },
        ] {
            let err = try_run_parallel(30, cfg, |i| {
                if i % 10 == 4 {
                    panic!("boom {i}");
                }
                i
            })
            .unwrap_err();
            let mut failed: Vec<usize> = err.failures.iter().map(|f| f.task).collect();
            failed.sort_unstable();
            assert_eq!(failed, vec![4, 14, 24], "{cfg:?}");
            assert_eq!(err.missing, vec![(4, 5), (14, 15), (24, 25)], "{cfg:?}");
        }
    }

    #[test]
    #[should_panic(expected = "parallel execution failed")]
    fn run_parallel_panics_with_structured_message() {
        run_parallel(10, ExecutorConfig::dynamic(2), |i| {
            if i == 3 {
                panic!("inner failure");
            }
            i
        });
    }

    #[test]
    fn dual_pool_results_in_task_order() {
        let sink = MetricsSink::new();
        let out = run_dual_pool(
            200,
            DualPoolConfig::new(3, 2),
            |_| 1,
            |_device, i| i * 2,
            &sink,
        );
        assert_eq!(out, (0..200).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn dual_pool_every_task_exactly_once() {
        let counter = AtomicU64::new(0);
        let sink = MetricsSink::new();
        let out = run_dual_pool(
            977,
            DualPoolConfig::new(4, 4),
            |_| 1,
            |_d, i| {
                counter.fetch_add(1, Ordering::Relaxed);
                i
            },
            &sink,
        );
        assert_eq!(counter.load(Ordering::Relaxed), 977);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
        // Metrics conservation: the pools together did all the work.
        let total: u64 = sink.devices().iter().map(|d| d.tasks).sum();
        assert_eq!(total, 977);
    }

    #[test]
    fn dual_pool_cpu_takes_prefix_accel_takes_suffix() {
        // Record which device ran each task: device 0's tasks must all be
        // below device 1's (the pools meet at one boundary).
        let owners: Vec<AtomicU64> = (0..300).map(|_| AtomicU64::new(u64::MAX)).collect();
        let sink = MetricsSink::new();
        run_dual_pool(
            300,
            DualPoolConfig::new(2, 2),
            |_| 1,
            |device, i| owners[i].store(device as u64, Ordering::Relaxed),
            &sink,
        );
        let owned: Vec<u64> = owners.iter().map(|o| o.load(Ordering::Relaxed)).collect();
        assert!(
            owned.iter().all(|&d| d == 0 || d == 1),
            "every task claimed"
        );
        let boundary = owned.iter().position(|&d| d == 1).unwrap_or(owned.len());
        assert!(
            owned[..boundary].iter().all(|&d| d == 0) && owned[boundary..].iter().all(|&d| d == 1),
            "CPU owns a contiguous prefix, accel a contiguous suffix"
        );
    }

    #[test]
    fn dual_pool_single_sided_pools() {
        let sink = MetricsSink::new();
        let out = run_dual_pool(50, DualPoolConfig::new(2, 0), |_| 1, |_d, i| i, &sink);
        assert_eq!(out.len(), 50);
        assert_eq!(sink.device(DEVICE_CPU).tasks, 50);
        assert_eq!(sink.device(DEVICE_ACCEL).tasks, 0);

        let sink2 = MetricsSink::new();
        let out2 = run_dual_pool(50, DualPoolConfig::new(0, 3), |_| 1, |_d, i| i, &sink2);
        assert_eq!(out2.len(), 50);
        assert_eq!(sink2.device(DEVICE_ACCEL).tasks, 50);
    }

    #[test]
    fn dual_pool_empty_loop() {
        let sink = MetricsSink::new();
        let out: Vec<usize> = run_dual_pool(0, DualPoolConfig::new(2, 2), |_| 1, |_d, i| i, &sink);
        assert!(out.is_empty());
    }

    #[test]
    fn dual_pool_more_workers_than_tasks() {
        let sink = MetricsSink::new();
        let out = run_dual_pool(3, DualPoolConfig::new(8, 8), |_| 1, |_d, i| i, &sink);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn dual_pool_metrics_cells_accounted() {
        let sink = MetricsSink::new();
        run_dual_pool(
            100,
            DualPoolConfig::new(2, 2),
            |i| i as u64,
            |_d, i| i,
            &sink,
        );
        let cells: u64 = sink.devices().iter().map(|d| d.cells).sum();
        assert_eq!(cells, (0..100u64).sum::<u64>());
        // Chunks were grabbed and each pool reports one sample per worker.
        let samples = sink.samples();
        assert_eq!(samples.len(), 4);
        assert!(sink.devices().iter().map(|d| d.chunks).sum::<u64>() >= 2);
    }

    #[test]
    #[should_panic(expected = "finite fraction")]
    fn dual_pool_rejects_nan_fraction() {
        let sink = MetricsSink::new();
        let cfg = DualPoolConfig {
            initial_accel_fraction: f64::NAN,
            ..DualPoolConfig::new(1, 1)
        };
        run_dual_pool(10, cfg, |_| 1, |_d, i| i, &sink);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn dual_pool_rejects_empty_pools() {
        let sink = MetricsSink::new();
        run_dual_pool(10, DualPoolConfig::new(0, 0), |_| 1, |_d, i| i, &sink);
    }

    fn injected(kind: FaultKind, chunk: u64) -> FaultInjector {
        FaultInjector::new(FaultPlan::single(FaultSpec {
            device: DEVICE_ACCEL,
            chunk,
            kind,
        }))
    }

    /// CPU tasks block until every planned fault has fired, so the
    /// accelerator pool is guaranteed to reach its triggering chunk
    /// before the CPU pool can drain the queue — making the fault tests
    /// deterministic instead of racing the (fast) CPU workers.
    fn gate_cpu_on(inj: &FaultInjector, device: usize) {
        if device == DEVICE_CPU {
            while !inj.all_fired() {
                std::thread::sleep(Duration::from_micros(50));
            }
        }
    }

    #[test]
    fn dual_pool_injected_kill_recovers() {
        let sink = MetricsSink::new();
        let inj = injected(FaultKind::Kill, 0);
        let out = run_dual_pool_supervised(
            200,
            DualPoolConfig::new(2, 2),
            &inj,
            |_| 1,
            |d, i| {
                gate_cpu_on(&inj, d);
                i * 3
            },
            &sink,
        )
        .expect("kill of one worker must be recovered");
        assert_eq!(out.results, (0..200).map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(out.degraded, [false, false], "one kill is under budget");
        let accel = sink.device(DEVICE_ACCEL);
        assert_eq!(accel.failures, 1);
        assert_eq!(accel.requeues, 1);
        let retries: u64 = sink.devices().iter().map(|d| d.retries).sum();
        assert!(retries >= 1, "the requeued chunk was re-executed");
    }

    #[test]
    fn dual_pool_kill_pool_degrades_to_cpu() {
        let sink = MetricsSink::new();
        let inj = injected(FaultKind::KillPool, 0);
        // A single accel worker so the pool's first chunk is the trigger:
        // no second accel worker can race a chunk to completion before
        // the pool-dead flag is set.
        let out = run_dual_pool_supervised(
            300,
            DualPoolConfig::new(2, 1),
            &inj,
            |_| 1,
            |d, i| {
                gate_cpu_on(&inj, d);
                i + 7
            },
            &sink,
        )
        .expect("CPU pool must absorb the dead accelerator's share");
        assert_eq!(out.results, (0..300).map(|i| i + 7).collect::<Vec<_>>());
        assert!(out.degraded[DEVICE_ACCEL], "accel pool was retired");
        assert!(!out.degraded[DEVICE_CPU]);
        let accel = sink.device(DEVICE_ACCEL);
        assert!(accel.degraded);
        assert!(accel.requeues >= 1, "the killed chunk was requeued");
        assert_eq!(sink.device(DEVICE_CPU).tasks, 300, "CPU pool did it all");
    }

    #[test]
    fn dual_pool_wedge_reclaimed_by_timeout() {
        let sink = MetricsSink::new();
        let inj = injected(FaultKind::Wedge, 0);
        let cfg = DualPoolConfig {
            accel_timeout_ms: Some(40),
            ..DualPoolConfig::new(2, 1)
        };
        let out = run_dual_pool_supervised(
            120,
            cfg,
            &inj,
            |_| 1,
            |d, i| {
                gate_cpu_on(&inj, d);
                i
            },
            &sink,
        )
        .expect("wedged chunk must be reclaimed and re-executed");
        assert!(out.results.iter().enumerate().all(|(i, &v)| v == i));
        let accel = sink.device(DEVICE_ACCEL);
        assert_eq!(accel.lost_leases, 1, "exactly one lease reclaimed");
        assert_eq!(accel.failures, 1);
        assert!(!out.degraded[DEVICE_ACCEL], "one timeout is under budget");
    }

    #[test]
    fn dual_pool_wedge_without_timeout_degenerates_to_kill() {
        let sink = MetricsSink::new();
        let inj = injected(FaultKind::Wedge, 0);
        let out = run_dual_pool_supervised(
            80,
            DualPoolConfig::new(2, 1),
            &inj,
            |_| 1,
            |d, i| {
                gate_cpu_on(&inj, d);
                i
            },
            &sink,
        )
        .expect("wedge without a timeout must behave like a kill");
        assert!(out.results.iter().enumerate().all(|(i, &v)| v == i));
        let accel = sink.device(DEVICE_ACCEL);
        assert_eq!(accel.failures, 1);
        assert_eq!(accel.lost_leases, 0, "no lease reclaim happened");
    }

    #[test]
    fn dual_pool_delay_fault_only_slows() {
        let sink = MetricsSink::new();
        let inj = injected(FaultKind::Delay(Duration::from_millis(5)), 0);
        let out = run_dual_pool_supervised(
            60,
            DualPoolConfig::new(2, 1),
            &inj,
            |_| 1,
            |d, i| {
                gate_cpu_on(&inj, d);
                i
            },
            &sink,
        )
        .expect("a delay is not a failure");
        assert!(out.results.iter().enumerate().all(|(i, &v)| v == i));
        let accel = sink.device(DEVICE_ACCEL);
        assert_eq!(accel.failures, 0);
        assert_eq!(accel.requeues, 0);
        assert_eq!(out.degraded, [false, false]);
    }

    #[test]
    fn dual_pool_task_panic_exhausts_retries() {
        // Task 13 fails deterministically: after max_chunk_retries
        // re-executions it is reported terminally, everything else is
        // salvaged.
        let sink = MetricsSink::new();
        let cfg = DualPoolConfig {
            failure_budget: 10,
            retry_backoff_ms: 0,
            ..DualPoolConfig::new(1, 0)
        };
        let err = run_dual_pool_supervised(
            40,
            cfg,
            &FaultInjector::none(),
            |_| 1,
            |_d, i| {
                if i == 13 {
                    panic!("task 13 always fails");
                }
                i
            },
            &sink,
        )
        .unwrap_err();
        assert_eq!(err.missing, vec![(13, 14)], "only task 13 is missing");
        assert_eq!(err.failures.len(), 1);
        assert_eq!(err.failures[0].task, 13);
        assert_eq!(err.failures[0].device, Some(DEVICE_CPU));
        assert!(err.failures[0].message.contains("always fails"));
        // 1 initial failure + max_chunk_retries re-execution failures.
        assert_eq!(sink.device(DEVICE_CPU).failures, 3);
    }

    #[test]
    fn traced_kill_shows_lease_loss_requeue_and_reexecution_in_order() {
        let sink = MetricsSink::new();
        let inj = injected(FaultKind::Kill, 0);
        let tracer = Tracer::full();
        let out = run_dual_pool_traced(
            200,
            DualPoolConfig::new(2, 2),
            &inj,
            |_| 1,
            |d, i| {
                gate_cpu_on(&inj, d);
                i
            },
            &sink,
            &tracer,
        )
        .expect("kill must be recovered");
        assert!(out.results.iter().enumerate().all(|(i, &v)| v == i));
        let tl = tracer.timeline();
        // Workers that never claimed work flush nothing, so the track
        // count is at most one per worker — but both pools must appear:
        // the killed accel worker claimed a chunk before dying, and a CPU
        // worker re-executed it.
        assert!(tl.tracks.len() <= 4, "at most one track per worker");
        assert!(tl.tracks.iter().any(|t| t.device == DEVICE_ACCEL));
        assert!(tl.tracks.iter().any(|t| t.device == DEVICE_CPU));
        assert!(tl.count("lease_lost") >= 1, "kill shows a lost lease");
        assert!(tl.count("lease_requeued") >= 1);
        let evs = tl.events_sorted();
        let lost_t = evs
            .iter()
            .find_map(|(_, _, e)| match e.kind {
                EventKind::LeaseLost { .. } => Some(e.t_us),
                _ => None,
            })
            .expect("lease_lost event");
        let requeue_t = evs
            .iter()
            .find_map(|(_, _, e)| match e.kind {
                EventKind::LeaseRequeued { .. } => Some(e.t_us),
                _ => None,
            })
            .expect("lease_requeued event");
        let reexec_t = evs
            .iter()
            .find_map(|(_, _, e)| match e.kind {
                EventKind::ChunkClaim { attempts, .. } if attempts > 0 => Some(e.t_us),
                _ => None,
            })
            .expect("re-execution claim with attempts > 0");
        assert!(lost_t <= requeue_t, "loss precedes requeue");
        assert!(requeue_t <= reexec_t, "requeue precedes re-execution");
        // The lost lease landed on the accel pool's track.
        assert!(evs.iter().any(|(d, _, e)| {
            matches!(e.kind, EventKind::LeaseLost { victim, .. } if victim == DEVICE_ACCEL)
                && *d < 2
        }));
        // The full export round-trips through the schema validator.
        let text = sw_trace::export::jsonl(&tl);
        let report = sw_trace::validate::validate_jsonl(&text).expect("schema-valid trace");
        assert!(report.spans > 0, "chunk spans present and balanced");
    }

    #[test]
    fn untraced_run_produces_no_timeline() {
        let sink = MetricsSink::new();
        let tracer = Tracer::disabled();
        let out = run_dual_pool_traced(
            64,
            DualPoolConfig::new(2, 1),
            &FaultInjector::none(),
            |_| 1,
            |_d, i| i,
            &sink,
            &tracer,
        )
        .expect("clean run");
        assert_eq!(out.results.len(), 64);
        assert_eq!(tracer.timeline().total_events(), 0);
    }

    #[test]
    fn durable_prefill_skips_completed_tasks() {
        // A "resumed" run: half the tasks already committed. The workers
        // must not re-execute them, and the slot table must carry the
        // prefilled values verbatim.
        let executed = AtomicU64::new(0);
        let sink = MetricsSink::new();
        let prefill: Vec<(usize, usize)> = (0..100).step_by(2).map(|i| (i, i * 10)).collect();
        let out = run_dual_pool_durable(
            100,
            DualPoolConfig::new(2, 1),
            &FaultInjector::none(),
            DurableControl {
                prefill,
                ..DurableControl::none()
            },
            |_| 1,
            |_d, i| {
                executed.fetch_add(1, Ordering::Relaxed);
                i * 10
            },
            &sink,
            &Tracer::disabled(),
        );
        assert!(!out.drained);
        assert_eq!(out.tasks_done(), 100);
        let results: Vec<usize> = out.slots.into_iter().map(Option::unwrap).collect();
        assert_eq!(results, (0..100).map(|i| i * 10).collect::<Vec<_>>());
        assert_eq!(
            executed.load(Ordering::Relaxed),
            50,
            "only the odd (non-checkpointed) half was executed"
        );
        // Skipped tasks contribute no throughput accounting.
        assert_eq!(sink.devices().iter().map(|d| d.tasks).sum::<u64>(), 50);
    }

    #[test]
    fn durable_resume_emits_trace_event() {
        let sink = MetricsSink::new();
        let tracer = Tracer::full();
        let out = run_dual_pool_durable(
            20,
            DualPoolConfig::new(1, 1),
            &FaultInjector::none(),
            DurableControl {
                prefill: vec![(0, 0usize), (1, 1)],
                ..DurableControl::none()
            },
            |_| 1,
            |_d, i| i,
            &sink,
            &tracer,
        );
        assert_eq!(out.tasks_done(), 20);
        let tl = tracer.timeline();
        assert_eq!(tl.count("resume_loaded"), 1);
        let text = sw_trace::export::jsonl(&tl);
        sw_trace::validate::validate_jsonl(&text).expect("schema-valid trace with resume event");
    }

    #[test]
    fn durable_drain_stops_with_partial_results() {
        // Drain after ~half the tasks: the run must stop early, report
        // drained, and every committed slot must hold the right value —
        // in-flight chunks finish, nothing is torn.
        let drain = DrainSignal::after_tasks(32);
        let sink = MetricsSink::new();
        let tracer = Tracer::full();
        let out = run_dual_pool_durable(
            1000,
            DualPoolConfig {
                min_chunk: 4,
                ..DualPoolConfig::new(2, 2)
            },
            &FaultInjector::none(),
            DurableControl {
                drain: Some(&drain),
                ..DurableControl::none()
            },
            |_| 1,
            |_d, i| {
                // Slow tasks so the drain lands mid-run, not after it.
                std::thread::sleep(Duration::from_micros(300));
                i * 2
            },
            &sink,
            &tracer,
        );
        assert!(out.drained, "drain signal must mark the outcome");
        let done = out.tasks_done();
        assert!(done >= 32, "drain fires only after the threshold");
        assert!(done < 1000, "drain must stop the run early");
        for (i, slot) in out.slots.iter().enumerate() {
            if let Some(v) = slot {
                assert_eq!(*v, i * 2, "committed slot {i} is intact");
            }
        }
        assert!(out.failures.is_empty());
        assert_eq!(tracer.timeline().count("drain_started"), 1);
    }

    #[test]
    fn durable_task_cancel_drops_only_probed_tasks() {
        // Two interleaved "queries" share one region: even tasks belong
        // to query A, odd tasks to query B. B is cancelled before the
        // region starts. A must complete fully, B's slots must stay
        // empty, and the region must NOT report drained — a per-task
        // cancel is not a region drain.
        let executed = AtomicU64::new(0);
        let sink = MetricsSink::new();
        let cancelled = |i: usize| i % 2 == 1;
        let out = run_dual_pool_durable(
            100,
            DualPoolConfig {
                min_chunk: 4,
                ..DualPoolConfig::new(2, 1)
            },
            &FaultInjector::none(),
            DurableControl {
                task_cancelled: Some(&cancelled),
                ..DurableControl::none()
            },
            |_| 1,
            |_d, i| {
                executed.fetch_add(1, Ordering::Relaxed);
                i * 7
            },
            &sink,
            &Tracer::disabled(),
        );
        assert!(!out.drained, "task cancel must not mark the region drained");
        assert!(out.failures.is_empty());
        assert_eq!(out.tasks_done(), 50);
        for (i, slot) in out.slots.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(slot.as_ref(), Some(&(i * 7)), "batch-mate task {i} intact");
            } else {
                assert!(slot.is_none(), "cancelled task {i} must not run");
            }
        }
        assert_eq!(executed.load(Ordering::Relaxed), 50);
        // Dropped tasks contribute nothing to throughput accounting.
        assert_eq!(sink.devices().iter().map(|d| d.tasks).sum::<u64>(), 50);
    }

    #[test]
    fn durable_checkpoint_callback_fires_at_interval() {
        let sink = MetricsSink::new();
        let tracer = Tracer::full();
        let calls = AtomicU64::new(0);
        let max_seen = AtomicU64::new(0);
        let on_ckpt = |view: CheckpointView<'_, usize>| {
            calls.fetch_add(1, Ordering::Relaxed);
            max_seen.fetch_max(view.tasks_done, Ordering::Relaxed);
            // The view is whole-chunk consistent: every present slot
            // holds its deterministic value.
            for (i, slot) in view.slots.iter().enumerate() {
                if let Some(v) = slot {
                    assert_eq!(*v, i + 1);
                }
            }
            assert!((0.0..=1.0).contains(&view.accel_share));
            view.tasks_done // "bytes written"
        };
        let out = run_dual_pool_durable(
            200,
            DualPoolConfig {
                min_chunk: 2,
                ..DualPoolConfig::new(2, 1)
            },
            &FaultInjector::none(),
            DurableControl {
                checkpoint_every_chunks: 1,
                on_checkpoint: Some(&on_ckpt),
                ..DurableControl::none()
            },
            |_| 1,
            |_d, i| i + 1,
            &sink,
            &tracer,
        );
        assert_eq!(out.tasks_done(), 200);
        let n = calls.load(Ordering::Relaxed);
        assert!(n >= 1, "interval 1 must checkpoint at least once");
        assert_eq!(
            max_seen.load(Ordering::Relaxed),
            200,
            "final view sees all tasks"
        );
        let tl = tracer.timeline();
        assert_eq!(
            tl.count("checkpoint_written") as u64,
            n,
            "one trace event per invocation"
        );
    }

    #[test]
    fn durable_without_hooks_matches_traced() {
        let sink_a = MetricsSink::new();
        let out_a = run_dual_pool_durable(
            150,
            DualPoolConfig::new(2, 2),
            &FaultInjector::none(),
            DurableControl::none(),
            |_| 1,
            |_d, i| i * 3,
            &sink_a,
            &Tracer::disabled(),
        );
        assert!(!out_a.drained);
        let a: Vec<usize> = out_a.slots.into_iter().map(Option::unwrap).collect();
        let sink_b = MetricsSink::new();
        let out_b = run_dual_pool_supervised(
            150,
            DualPoolConfig::new(2, 2),
            &FaultInjector::none(),
            |_| 1,
            |_d, i| i * 3,
            &sink_b,
        )
        .expect("clean run");
        assert_eq!(a, out_b.results);
    }

    #[test]
    fn durable_drain_with_faults_keeps_committed_slots_sound() {
        // Recovery and drain compose: a kill fault fires, its chunk is
        // requeued, and a drain lands while the run is in flight. All
        // committed slots must still be correct.
        let drain = DrainSignal::after_tasks(40);
        let sink = MetricsSink::new();
        let inj = injected(FaultKind::Kill, 0);
        let out = run_dual_pool_durable(
            500,
            DualPoolConfig {
                min_chunk: 4,
                ..DualPoolConfig::new(2, 2)
            },
            &inj,
            DurableControl {
                drain: Some(&drain),
                ..DurableControl::none()
            },
            |_| 1,
            |d, i| {
                gate_cpu_on(&inj, d);
                std::thread::sleep(Duration::from_micros(200));
                i + 11
            },
            &sink,
            &Tracer::disabled(),
        );
        assert!(out.drained);
        for (i, slot) in out.slots.iter().enumerate() {
            if let Some(v) = slot {
                assert_eq!(*v, i + 11);
            }
        }
    }

    #[test]
    fn dual_pool_seeded_fault_matrix_recovers() {
        // The CI fault matrix in miniature: several seeds, each a random
        // kill/delay plan against the accelerator pool; every run must
        // still produce complete, correct results.
        for seed in 0..4u64 {
            let plan = FaultPlan::seeded(seed, 2, DEVICE_ACCEL, 6);
            let inj = FaultInjector::new(plan);
            let sink = MetricsSink::new();
            let cfg = DualPoolConfig {
                accel_timeout_ms: Some(200),
                ..DualPoolConfig::new(2, 2)
            };
            let out = run_dual_pool_supervised(150, cfg, &inj, |_| 1, |_d, i| i * 5, &sink)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(
                out.results,
                (0..150).map(|i| i * 5).collect::<Vec<_>>(),
                "seed {seed}"
            );
        }
    }
}
