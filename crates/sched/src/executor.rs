//! Real multi-threaded loop executors.
//!
//! Two executors share this module:
//!
//! * [`run_parallel`] — runs a task closure over `0..n_tasks` with the
//!   same scheduling policies the simulator models, on actual OS threads:
//!   `std::thread::scope` plus an atomic chunk counter (dynamic/guided)
//!   or a pre-partition (static). This is what the single-device search
//!   engine uses; results are collected in task order.
//! * [`run_dual_pool`] — the heterogeneous executor: two device worker
//!   pools (CPU share and accelerator share) pull lane batches from the
//!   two ends of one shared work queue, with an adaptive feedback
//!   estimator re-balancing the remaining queue from observed per-device
//!   throughput. Per-worker metrics are recorded through a
//!   [`MetricsSink`].
//!
//! Built on std scoped threads + atomics rather than a work-stealing pool
//! so the *policy* is exactly the one being studied — a generic pool
//! would silently replace the schedule under test. Workers buffer each
//! chunk's results locally and commit them under a single lock
//! acquisition, so the slot mutex is taken once per chunk, not per task.

use crate::metrics::{MetricsSink, WorkerSample};
use crate::policy::{
    adaptive_chunk, static_partition, Policy, SplitEstimator, DEVICE_ACCEL, DEVICE_CPU,
};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Executor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutorConfig {
    /// Worker thread count.
    pub workers: usize,
    /// Scheduling policy (the paper's winner is `dynamic`).
    pub policy: Policy,
}

impl ExecutorConfig {
    /// `workers` threads with dynamic(1) scheduling.
    pub fn dynamic(workers: usize) -> Self {
        ExecutorConfig {
            workers,
            policy: Policy::dynamic(),
        }
    }
}

/// Grab the next chunk for dynamic/guided policies from the shared
/// counter. Returns `None` when the loop is exhausted.
fn grab_chunk(
    next: &AtomicUsize,
    n_tasks: usize,
    workers: usize,
    policy: Policy,
) -> Option<(usize, usize)> {
    loop {
        let start = next.load(Ordering::Relaxed);
        if start >= n_tasks {
            return None;
        }
        let remaining = n_tasks - start;
        let size = match policy {
            Policy::Dynamic { chunk } => chunk.max(1),
            Policy::Guided { min_chunk } => (remaining / (2 * workers)).max(min_chunk.max(1)),
            Policy::Static => unreachable!("static handled by pre-partition"),
        }
        .min(remaining);
        // CAS so concurrent grabbers never overlap.
        if next
            .compare_exchange_weak(start, start + size, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            return Some((start, start + size));
        }
    }
}

/// Result slot table: workers buffer one chunk locally, then commit the
/// whole chunk under a single lock acquisition.
struct Slots<T> {
    slots: Mutex<Vec<Option<T>>>,
}

impl<T> Slots<T> {
    fn new(n: usize) -> Self {
        Slots {
            slots: Mutex::new((0..n).map(|_| None).collect()),
        }
    }

    /// Commit the results of chunk `[start, start + buf.len())`.
    fn commit(&self, start: usize, buf: Vec<T>) {
        let mut guard = self.slots.lock().expect("result slots poisoned");
        for (offset, r) in buf.into_iter().enumerate() {
            guard[start + offset] = Some(r);
        }
    }

    fn into_results(self) -> Vec<T> {
        self.slots
            .into_inner()
            .expect("result slots poisoned")
            .into_iter()
            .map(|slot| slot.expect("every task index executed exactly once"))
            .collect()
    }
}

/// Run `task(i)` for every `i in 0..n_tasks` under `config`, returning
/// results in task order.
///
/// `task` must be `Sync` (shared read-only state) and is invoked exactly
/// once per index.
///
/// # Panics
/// Panics if `config.workers == 0`, or propagates a panic from `task`.
pub fn run_parallel<T, F>(n_tasks: usize, config: ExecutorConfig, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(config.workers >= 1, "need at least one worker");
    if n_tasks == 0 {
        return Vec::new();
    }
    if config.workers == 1 {
        return (0..n_tasks).map(task).collect();
    }

    let slots: Slots<T> = Slots::new(n_tasks);
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let task = &task;
        let slots = &slots;
        let next = &next;
        let parts = if matches!(config.policy, Policy::Static) {
            static_partition(n_tasks, config.workers)
        } else {
            Vec::new()
        };
        for w in 0..config.workers {
            let my_range = parts.get(w).copied();
            scope.spawn(move || match config.policy {
                Policy::Static => {
                    let (s, e) = my_range.expect("partition has one range per worker");
                    let buf: Vec<T> = (s..e).map(task).collect();
                    slots.commit(s, buf);
                }
                _ => {
                    while let Some((s, e)) =
                        grab_chunk(next, n_tasks, config.workers, config.policy)
                    {
                        let buf: Vec<T> = (s..e).map(task).collect();
                        slots.commit(s, buf);
                    }
                }
            });
        }
    });

    slots.into_results()
}

/// Run `task(i)` for every `i in 0..n_tasks` on a self-scheduling thread
/// pool (atomic-counter work pulling), returning results in task order.
///
/// This is the policy-agnostic data-parallel path for callers that do not
/// need a *specific* OpenMP schedule — free workers pull single tasks,
/// which behaves like dynamic scheduling with the finest grain. (It
/// replaces an earlier rayon-based path; the dependency budget is now
/// zero external crates.) The policy-faithful executor above remains the
/// one used for the paper's scheduling experiments.
pub fn run_work_stealing<T, F>(n_tasks: usize, workers: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(workers >= 1, "need at least one worker");
    run_parallel(n_tasks, ExecutorConfig::dynamic(workers), task)
}

/// Configuration of the dual-pool heterogeneous executor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DualPoolConfig {
    /// Worker threads in the CPU-share pool (front of the queue).
    pub cpu_workers: usize,
    /// Worker threads in the accelerator-share pool (back of the queue).
    pub accel_workers: usize,
    /// The static plan's accelerator share — the estimator's seed until
    /// both pools have observed throughput.
    pub initial_accel_fraction: f64,
    /// Smallest chunk either pool grabs.
    pub min_chunk: usize,
}

impl DualPoolConfig {
    /// A dual-pool configuration with an even initial split.
    pub fn new(cpu_workers: usize, accel_workers: usize) -> Self {
        DualPoolConfig {
            cpu_workers,
            accel_workers,
            initial_accel_fraction: 0.5,
            min_chunk: 1,
        }
    }

    /// Total workers across both pools.
    pub fn total_workers(&self) -> usize {
        self.cpu_workers + self.accel_workers
    }
}

/// Two atomic cursors packed into one word: `front` (next CPU task) in
/// the high 32 bits, `back` (one past the last accelerator task) in the
/// low 32. A single CAS claims from either end without overlap.
struct AtomicDualQueue {
    state: AtomicU64,
}

impl AtomicDualQueue {
    fn new(n_tasks: usize) -> Self {
        assert!(
            n_tasks <= u32::MAX as usize,
            "dual-pool queue holds at most u32::MAX tasks"
        );
        AtomicDualQueue {
            state: AtomicU64::new(n_tasks as u64),
        }
    }

    #[inline]
    fn unpack(state: u64) -> (usize, usize) {
        ((state >> 32) as usize, (state & 0xFFFF_FFFF) as usize)
    }

    fn remaining(&self) -> usize {
        let (front, back) = Self::unpack(self.state.load(Ordering::Relaxed));
        back.saturating_sub(front)
    }

    fn take(&self, k: usize, from_front: bool) -> Option<(usize, usize)> {
        loop {
            let state = self.state.load(Ordering::Relaxed);
            let (front, back) = Self::unpack(state);
            if front >= back {
                return None;
            }
            let k = k.max(1).min(back - front);
            let (claim, new_state) = if from_front {
                (
                    (front, front + k),
                    (((front + k) as u64) << 32) | back as u64,
                )
            } else {
                ((back - k, back), ((front as u64) << 32) | (back - k) as u64)
            };
            if self
                .state
                .compare_exchange_weak(state, new_state, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return Some(claim);
            }
        }
    }
}

/// Observed progress of one device pool, shared across its workers for
/// the feedback estimator.
#[derive(Default)]
struct DeviceProgress {
    cells: AtomicU64,
    busy_nanos: AtomicU64,
}

/// Run `task(device, i)` for every `i in 0..n_tasks` on two device worker
/// pools pulling from one shared double-ended queue, returning results in
/// task order.
///
/// The CPU pool (device [`DEVICE_CPU`]) consumes from the front of the
/// queue, the accelerator pool ([`DEVICE_ACCEL`]) from the back — with a
/// length-sorted database this preserves Algorithm 2's assignment of long
/// sequences to the accelerator, but the boundary is wherever the pools
/// *meet*, not a precomputed split point. Chunk sizes follow the
/// [`SplitEstimator`]'s view of each device's share of the remaining
/// work, seeded from `config.initial_accel_fraction` (the static plan)
/// and re-balanced from observed per-device throughput.
///
/// `cost(i)` is the workload of task `i` in DP cells — used for the
/// estimator and the per-worker metrics recorded into `sink`.
///
/// # Panics
/// Panics when both pools are empty, when `initial_accel_fraction` is
/// NaN or outside `[0, 1]`, or propagates a panic from `task`.
pub fn run_dual_pool<T, F, C>(
    n_tasks: usize,
    config: DualPoolConfig,
    cost: C,
    task: F,
    sink: &MetricsSink,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
    C: Fn(usize) -> u64 + Sync,
{
    assert!(
        config.total_workers() >= 1,
        "need at least one worker across the two pools"
    );
    let estimator = SplitEstimator::new(config.initial_accel_fraction);
    if n_tasks == 0 {
        return Vec::new();
    }

    let slots: Slots<T> = Slots::new(n_tasks);
    let queue = AtomicDualQueue::new(n_tasks);
    let progress = [DeviceProgress::default(), DeviceProgress::default()];

    std::thread::scope(|scope| {
        let task = &task;
        let cost = &cost;
        let slots = &slots;
        let queue = &queue;
        let progress = &progress;
        let pools = [
            (DEVICE_CPU, config.cpu_workers),
            (DEVICE_ACCEL, config.accel_workers),
        ];
        for (device, workers) in pools {
            for w in 0..workers {
                scope.spawn(move || {
                    let mut sample = WorkerSample::new(device, w);
                    loop {
                        let wait_start = Instant::now();
                        let accel_share = estimator.accel_share(
                            progress[DEVICE_CPU].cells.load(Ordering::Relaxed),
                            progress[DEVICE_CPU].busy_nanos.load(Ordering::Relaxed),
                            progress[DEVICE_ACCEL].cells.load(Ordering::Relaxed),
                            progress[DEVICE_ACCEL].busy_nanos.load(Ordering::Relaxed),
                        );
                        let my_share = if device == DEVICE_CPU {
                            1.0 - accel_share
                        } else {
                            accel_share
                        };
                        let k = adaptive_chunk(
                            queue.remaining(),
                            my_share,
                            workers.max(1),
                            config.min_chunk,
                        );
                        let Some((s, e)) = queue.take(k, device == DEVICE_CPU) else {
                            break;
                        };
                        sample.queue_wait += wait_start.elapsed();

                        let exec_start = Instant::now();
                        let mut buf = Vec::with_capacity(e - s);
                        let mut chunk_cells = 0u64;
                        for i in s..e {
                            buf.push(task(device, i));
                            chunk_cells += cost(i);
                        }
                        let busy = exec_start.elapsed();
                        sample.busy += busy;
                        sample.tasks += (e - s) as u64;
                        sample.chunks += 1;
                        sample.cells += chunk_cells;
                        progress[device]
                            .cells
                            .fetch_add(chunk_cells, Ordering::Relaxed);
                        progress[device]
                            .busy_nanos
                            .fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);

                        let commit_start = Instant::now();
                        slots.commit(s, buf);
                        sample.queue_wait += commit_start.elapsed();
                    }
                    sink.record(sample);
                });
            }
        }
    });

    slots.into_results()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_in_task_order() {
        let cfg = ExecutorConfig::dynamic(4);
        let out = run_parallel(100, cfg, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicU64::new(0);
        let cfg = ExecutorConfig {
            workers: 8,
            policy: Policy::Dynamic { chunk: 3 },
        };
        let out = run_parallel(1000, cfg, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn static_policy_works() {
        let cfg = ExecutorConfig {
            workers: 3,
            policy: Policy::Static,
        };
        let out = run_parallel(10, cfg, |i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn guided_policy_works() {
        let cfg = ExecutorConfig {
            workers: 4,
            policy: Policy::guided(),
        };
        let out = run_parallel(57, cfg, |i| i);
        assert_eq!(out.len(), 57);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn results_in_task_order_under_all_policies() {
        // The chunk-buffered commit must preserve task order for every
        // policy and several worker counts (regression for the one-lock-
        // per-task hot loop, which masked ordering bugs by serialising).
        let expect: Vec<usize> = (0..503).map(|i| i * 7 + 1).collect();
        for policy in [
            Policy::Static,
            Policy::Dynamic { chunk: 5 },
            Policy::guided(),
        ] {
            for workers in [2, 3, 8] {
                let cfg = ExecutorConfig { workers, policy };
                let out = run_parallel(503, cfg, |i| i * 7 + 1);
                assert_eq!(out, expect, "{policy:?} with {workers} workers");
            }
        }
    }

    #[test]
    fn single_worker_sequential_path() {
        let cfg = ExecutorConfig::dynamic(1);
        let out = run_parallel(5, cfg, |i| i * i);
        assert_eq!(out, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn empty_loop() {
        let cfg = ExecutorConfig::dynamic(4);
        let out: Vec<usize> = run_parallel(0, cfg, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_tasks() {
        let cfg = ExecutorConfig::dynamic(16);
        let out = run_parallel(3, cfg, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn work_stealing_path_matches_policy_executor() {
        let via_pool = run_work_stealing(200, 3, |i| i * 3);
        let via_policy = run_parallel(200, ExecutorConfig::dynamic(3), |i| i * 3);
        assert_eq!(via_pool, via_policy);
    }

    #[test]
    fn work_stealing_empty_and_single() {
        let empty: Vec<usize> = run_work_stealing(0, 2, |i| i);
        assert!(empty.is_empty());
        assert_eq!(run_work_stealing(4, 1, |i| i + 1), vec![1, 2, 3, 4]);
    }

    #[test]
    fn heavy_shared_state_is_safe() {
        // Workers summing into results; validated against the closed form.
        let cfg = ExecutorConfig {
            workers: 6,
            policy: Policy::Guided { min_chunk: 2 },
        };
        let out = run_parallel(500, cfg, |i| i as u64);
        let total: u64 = out.iter().sum();
        assert_eq!(total, 499 * 500 / 2);
    }

    #[test]
    fn dual_pool_results_in_task_order() {
        let sink = MetricsSink::new();
        let out = run_dual_pool(
            200,
            DualPoolConfig::new(3, 2),
            |_| 1,
            |_device, i| i * 2,
            &sink,
        );
        assert_eq!(out, (0..200).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn dual_pool_every_task_exactly_once() {
        let counter = AtomicU64::new(0);
        let sink = MetricsSink::new();
        let out = run_dual_pool(
            977,
            DualPoolConfig::new(4, 4),
            |_| 1,
            |_d, i| {
                counter.fetch_add(1, Ordering::Relaxed);
                i
            },
            &sink,
        );
        assert_eq!(counter.load(Ordering::Relaxed), 977);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
        // Metrics conservation: the pools together did all the work.
        let total: u64 = sink.devices().iter().map(|d| d.tasks).sum();
        assert_eq!(total, 977);
    }

    #[test]
    fn dual_pool_cpu_takes_prefix_accel_takes_suffix() {
        // Record which device ran each task: device 0's tasks must all be
        // below device 1's (the pools meet at one boundary).
        let owners: Vec<AtomicU64> = (0..300).map(|_| AtomicU64::new(u64::MAX)).collect();
        let sink = MetricsSink::new();
        run_dual_pool(
            300,
            DualPoolConfig::new(2, 2),
            |_| 1,
            |device, i| owners[i].store(device as u64, Ordering::Relaxed),
            &sink,
        );
        let owned: Vec<u64> = owners.iter().map(|o| o.load(Ordering::Relaxed)).collect();
        assert!(
            owned.iter().all(|&d| d == 0 || d == 1),
            "every task claimed"
        );
        let boundary = owned.iter().position(|&d| d == 1).unwrap_or(owned.len());
        assert!(
            owned[..boundary].iter().all(|&d| d == 0) && owned[boundary..].iter().all(|&d| d == 1),
            "CPU owns a contiguous prefix, accel a contiguous suffix"
        );
    }

    #[test]
    fn dual_pool_single_sided_pools() {
        let sink = MetricsSink::new();
        let out = run_dual_pool(
            50,
            DualPoolConfig {
                cpu_workers: 2,
                accel_workers: 0,
                ..DualPoolConfig::new(2, 0)
            },
            |_| 1,
            |_d, i| i,
            &sink,
        );
        assert_eq!(out.len(), 50);
        assert_eq!(sink.device(DEVICE_CPU).tasks, 50);
        assert_eq!(sink.device(DEVICE_ACCEL).tasks, 0);

        let sink2 = MetricsSink::new();
        let out2 = run_dual_pool(
            50,
            DualPoolConfig {
                cpu_workers: 0,
                accel_workers: 3,
                ..DualPoolConfig::new(0, 3)
            },
            |_| 1,
            |_d, i| i,
            &sink2,
        );
        assert_eq!(out2.len(), 50);
        assert_eq!(sink2.device(DEVICE_ACCEL).tasks, 50);
    }

    #[test]
    fn dual_pool_empty_loop() {
        let sink = MetricsSink::new();
        let out: Vec<usize> = run_dual_pool(0, DualPoolConfig::new(2, 2), |_| 1, |_d, i| i, &sink);
        assert!(out.is_empty());
    }

    #[test]
    fn dual_pool_metrics_cells_accounted() {
        let sink = MetricsSink::new();
        run_dual_pool(
            100,
            DualPoolConfig::new(2, 2),
            |i| i as u64,
            |_d, i| i,
            &sink,
        );
        let cells: u64 = sink.devices().iter().map(|d| d.cells).sum();
        assert_eq!(cells, (0..100u64).sum::<u64>());
        // Chunks were grabbed and each pool reports one sample per worker.
        let samples = sink.samples();
        assert_eq!(samples.len(), 4);
        assert!(sink.devices().iter().map(|d| d.chunks).sum::<u64>() >= 2);
    }

    #[test]
    #[should_panic(expected = "finite fraction")]
    fn dual_pool_rejects_nan_fraction() {
        let sink = MetricsSink::new();
        let cfg = DualPoolConfig {
            initial_accel_fraction: f64::NAN,
            ..DualPoolConfig::new(1, 1)
        };
        run_dual_pool(10, cfg, |_| 1, |_d, i| i, &sink);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn dual_pool_rejects_empty_pools() {
        let sink = MetricsSink::new();
        run_dual_pool(10, DualPoolConfig::new(0, 0), |_| 1, |_d, i| i, &sink);
    }
}
