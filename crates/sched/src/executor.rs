//! Real multi-threaded loop executor.
//!
//! Runs a task closure over `0..n_tasks` with the same scheduling
//! policies the simulator models, on actual OS threads: crossbeam scoped
//! threads plus an atomic chunk counter (dynamic/guided) or a
//! pre-partition (static). This is what the search engine uses to execute
//! kernels on the host; results are collected in task order.
//!
//! Built on crossbeam + atomics rather than rayon's work-stealing pool so
//! the *policy* is exactly the one being studied — rayon would silently
//! replace the schedule under test.

use crate::policy::{static_partition, Policy};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Executor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutorConfig {
    /// Worker thread count.
    pub workers: usize,
    /// Scheduling policy (the paper's winner is `dynamic`).
    pub policy: Policy,
}

impl ExecutorConfig {
    /// `workers` threads with dynamic(1) scheduling.
    pub fn dynamic(workers: usize) -> Self {
        ExecutorConfig { workers, policy: Policy::dynamic() }
    }
}

/// Grab the next chunk for dynamic/guided policies from the shared
/// counter. Returns `None` when the loop is exhausted.
fn grab_chunk(
    next: &AtomicUsize,
    n_tasks: usize,
    workers: usize,
    policy: Policy,
) -> Option<(usize, usize)> {
    loop {
        let start = next.load(Ordering::Relaxed);
        if start >= n_tasks {
            return None;
        }
        let remaining = n_tasks - start;
        let size = match policy {
            Policy::Dynamic { chunk } => chunk.max(1),
            Policy::Guided { min_chunk } => (remaining / (2 * workers)).max(min_chunk.max(1)),
            Policy::Static => unreachable!("static handled by pre-partition"),
        }
        .min(remaining);
        // CAS so concurrent grabbers never overlap.
        if next
            .compare_exchange_weak(start, start + size, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            return Some((start, start + size));
        }
    }
}

/// Run `task(i)` for every `i in 0..n_tasks` under `config`, returning
/// results in task order.
///
/// `task` must be `Sync` (shared read-only state) and is invoked exactly
/// once per index.
///
/// # Panics
/// Panics if `config.workers == 0`, or propagates a panic from `task`.
pub fn run_parallel<T, F>(n_tasks: usize, config: ExecutorConfig, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(config.workers >= 1, "need at least one worker");
    if n_tasks == 0 {
        return Vec::new();
    }
    if config.workers == 1 {
        return (0..n_tasks).map(task).collect();
    }

    // Results land in a pre-sized slot table guarded by a mutex; tasks are
    // coarse (whole lane batches), so contention on the lock is trivial
    // next to kernel time.
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n_tasks).map(|_| None).collect());
    let next = AtomicUsize::new(0);

    crossbeam::thread::scope(|scope| {
        let task = &task;
        let slots = &slots;
        let next = &next;
        let parts = if matches!(config.policy, Policy::Static) {
            static_partition(n_tasks, config.workers)
        } else {
            Vec::new()
        };
        for w in 0..config.workers {
            let my_range = parts.get(w).copied();
            scope.spawn(move |_| match config.policy {
                Policy::Static => {
                    let (s, e) = my_range.expect("partition has one range per worker");
                    for i in s..e {
                        let r = task(i);
                        slots.lock()[i] = Some(r);
                    }
                }
                _ => {
                    while let Some((s, e)) =
                        grab_chunk(next, n_tasks, config.workers, config.policy)
                    {
                        for i in s..e {
                            let r = task(i);
                            slots.lock()[i] = Some(r);
                        }
                    }
                }
            });
        }
    })
    .expect("worker thread panicked");

    slots
        .into_inner()
        .into_iter()
        .map(|slot| slot.expect("every task index executed exactly once"))
        .collect()
}

/// Run `task(i)` for every `i in 0..n_tasks` on rayon's work-stealing
/// pool, returning results in task order.
///
/// This is the idiomatic data-parallel path (per the session's Rayon
/// guide) for callers that do not need a *specific* OpenMP policy —
/// work-stealing behaves like dynamic scheduling with adaptive chunking.
/// The policy-faithful executor above remains the one used for the
/// paper's scheduling experiments.
pub fn run_rayon<T, F>(n_tasks: usize, workers: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync + Send,
{
    assert!(workers >= 1, "need at least one worker");
    use rayon::prelude::*;
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(workers)
        .build()
        .expect("rayon pool construction");
    pool.install(|| (0..n_tasks).into_par_iter().map(task).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_in_task_order() {
        let cfg = ExecutorConfig::dynamic(4);
        let out = run_parallel(100, cfg, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicU64::new(0);
        let cfg = ExecutorConfig { workers: 8, policy: Policy::Dynamic { chunk: 3 } };
        let out = run_parallel(1000, cfg, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn static_policy_works() {
        let cfg = ExecutorConfig { workers: 3, policy: Policy::Static };
        let out = run_parallel(10, cfg, |i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn guided_policy_works() {
        let cfg = ExecutorConfig { workers: 4, policy: Policy::guided() };
        let out = run_parallel(57, cfg, |i| i);
        assert_eq!(out.len(), 57);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn single_worker_sequential_path() {
        let cfg = ExecutorConfig::dynamic(1);
        let out = run_parallel(5, cfg, |i| i * i);
        assert_eq!(out, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn empty_loop() {
        let cfg = ExecutorConfig::dynamic(4);
        let out: Vec<usize> = run_parallel(0, cfg, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_tasks() {
        let cfg = ExecutorConfig::dynamic(16);
        let out = run_parallel(3, cfg, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn rayon_path_matches_policy_executor() {
        let via_rayon = run_rayon(200, 3, |i| i * 3);
        let via_policy = run_parallel(200, ExecutorConfig::dynamic(3), |i| i * 3);
        assert_eq!(via_rayon, via_policy);
    }

    #[test]
    fn rayon_empty_and_single() {
        let empty: Vec<usize> = run_rayon(0, 2, |i| i);
        assert!(empty.is_empty());
        assert_eq!(run_rayon(4, 1, |i| i + 1), vec![1, 2, 3, 4]);
    }

    #[test]
    fn heavy_shared_state_is_safe() {
        // Workers summing into results; validated against the closed form.
        let cfg = ExecutorConfig { workers: 6, policy: Policy::Guided { min_chunk: 2 } };
        let out = run_parallel(500, cfg, |i| i as u64);
        let total: u64 = out.iter().sum();
        assert_eq!(total, 499 * 500 / 2);
    }
}
