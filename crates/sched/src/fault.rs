//! Deterministic fault injection for the dual-pool executor.
//!
//! An accelerator in a production search service can stall, time out, or
//! die mid-run; SWAPHI and the KNL follow-up both treat device dispatch
//! as fallible and size work so it can be re-issued. This module is the
//! *test harness* for that failure model: a [`FaultPlan`] describes which
//! device fails at which chunk and how, and a [`FaultInjector`] arms the
//! plan inside a real `run_dual_pool_supervised` region. Plans are plain
//! data (seeded generation via the in-tree `rand` shim), so every
//! recovery path is reproducible from a single `u64`.
//!
//! Faults trigger on a per-device *chunk counter*: the Nth chunk started
//! by that device's pool fires the fault, whichever worker grabs it.
//! Task results are deterministic per index, so recovered runs produce
//! hit lists identical to a fault-free run even though the chunk→worker
//! assignment is not itself deterministic.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// What an injected fault does to the worker that trips it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker dies (panics) while holding its chunk lease. The lease
    /// is requeued and the worker never returns.
    Kill,
    /// The worker stalls for the given duration, then continues normally
    /// (a transient hiccup — may trip the lease timeout if long enough).
    Delay(Duration),
    /// The worker wedges: it holds its lease without progressing until
    /// the lease is reclaimed by timeout, then dies. Requires a lease
    /// timeout on the device; with no timeout configured it degenerates
    /// to [`FaultKind::Kill`] so runs always terminate.
    Wedge,
    /// The whole device pool dies: every worker of the device abandons
    /// its work and exits, and the pool is retired immediately (the
    /// surviving pool absorbs the remaining queue).
    KillPool,
}

/// One scheduled fault: `kind` fires when `device`'s pool starts its
/// `chunk`-th chunk (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Device pool the fault targets (0 = CPU, 1 = accelerator).
    pub device: usize,
    /// 0-based index of the triggering chunk in the device's grab order.
    pub chunk: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic set of faults to inject into one parallel region.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled faults.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// The empty plan (no faults).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan with a single fault.
    pub fn single(spec: FaultSpec) -> Self {
        FaultPlan { specs: vec![spec] }
    }

    /// A seeded random plan: `n_faults` kill/delay faults against
    /// `device`, at chunk indices below `max_chunk`. Deterministic per
    /// seed — the CI fault matrix replays the same plans on every push.
    pub fn seeded(seed: u64, n_faults: usize, device: usize, max_chunk: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let specs = (0..n_faults)
            .map(|_| {
                let chunk = rng.gen_range(0..max_chunk.max(1));
                let kind = if rng.gen_bool(0.5) {
                    FaultKind::Kill
                } else {
                    FaultKind::Delay(Duration::from_millis(rng.gen_range(1..=20u64)))
                };
                FaultSpec {
                    device,
                    chunk,
                    kind,
                }
            })
            .collect();
        FaultPlan { specs }
    }
}

/// Armed runtime form of a [`FaultPlan`]: thread-safe, consumed once per
/// spec, shared by every worker of one parallel region.
#[derive(Debug)]
pub struct FaultInjector {
    specs: Vec<FaultSpec>,
    fired: Vec<AtomicBool>,
    chunk_counter: [AtomicU64; 2],
    pool_dead: [AtomicBool; 2],
    /// Hard process abort once this many chunks (across both devices)
    /// have been *committed*: the crash-resume harness's "pull the plug"
    /// switch. `0` disables it.
    kill_after_chunks: u64,
    committed: AtomicU64,
}

impl FaultInjector {
    /// An injector that never fires.
    pub fn none() -> Self {
        FaultInjector::new(FaultPlan::none())
    }

    /// Arm a plan.
    pub fn new(plan: FaultPlan) -> Self {
        let fired = plan.specs.iter().map(|_| AtomicBool::new(false)).collect();
        FaultInjector {
            specs: plan.specs,
            fired,
            chunk_counter: [AtomicU64::new(0), AtomicU64::new(0)],
            pool_dead: [AtomicBool::new(false), AtomicBool::new(false)],
            kill_after_chunks: 0,
            committed: AtomicU64::new(0),
        }
    }

    /// Arm a whole-process kill: the run calls [`std::process::abort`]
    /// the moment its `n`-th chunk is committed (counted across both
    /// device pools). Unlike [`FaultKind::Kill`] — which the supervisor
    /// recovers from *within* the run — this simulates a power cut: no
    /// destructors, no final checkpoint flush. Only the checkpoint/resume
    /// path can save such a search, which is exactly what the subprocess
    /// crash harness asserts.
    #[must_use]
    pub fn with_kill_after_chunks(mut self, n: u64) -> Self {
        self.kill_after_chunks = n;
        self
    }

    /// True when the plan holds no faults (the hot path skips all
    /// bookkeeping).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Called by a worker of `device` as it starts a chunk; returns the
    /// fault to apply to this chunk, if any. Each spec fires at most
    /// once.
    pub fn on_chunk_start(&self, device: usize) -> Option<FaultKind> {
        if self.specs.is_empty() {
            return None;
        }
        let n = self.chunk_counter[device].fetch_add(1, Ordering::Relaxed);
        for (spec, fired) in self.specs.iter().zip(&self.fired) {
            if spec.device == device
                && spec.chunk == n
                && fired
                    .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            {
                if matches!(spec.kind, FaultKind::KillPool) {
                    self.pool_dead[device].store(true, Ordering::Release);
                }
                return Some(spec.kind);
            }
        }
        None
    }

    /// Called by a worker right after it commits a chunk. Aborts the
    /// whole process when an armed [`Self::with_kill_after_chunks`]
    /// threshold is reached — the committed results up to and including
    /// this chunk are on disk (if checkpointing is on), everything else
    /// is lost, exactly like a real crash.
    pub fn on_chunk_committed(&self) {
        if self.kill_after_chunks == 0 {
            return;
        }
        let n = self.committed.fetch_add(1, Ordering::AcqRel) + 1;
        if n >= self.kill_after_chunks {
            std::process::abort();
        }
    }

    /// True once a [`FaultKind::KillPool`] has fired against `device`:
    /// every worker of the pool must abandon its work and exit.
    pub fn pool_dead(&self, device: usize) -> bool {
        !self.specs.is_empty() && self.pool_dead[device].load(Ordering::Acquire)
    }

    /// Number of faults from the plan that have fired so far.
    pub fn fired_count(&self) -> usize {
        self.fired
            .iter()
            .filter(|f| f.load(Ordering::Relaxed))
            .count()
    }

    /// True once every fault in the plan has fired (vacuously true for an
    /// empty plan). Tests and drills gate on this to make fault timing
    /// deterministic relative to other workers' progress.
    pub fn all_fired(&self) -> bool {
        self.fired.iter().all(|f| f.load(Ordering::Acquire))
    }
}

/// What an injected *network* fault does to one coordinator→worker
/// exchange. Where [`FaultKind`] models a device worker dying inside a
/// parallel region, this models the wire to a remote shard worker
/// misbehaving — the failure domain the multi-node fabric must survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFaultKind {
    /// The connect is refused (worker not listening / port closed).
    Refuse,
    /// The reply stream dies after this many lines (mid-stream cut).
    Drop(u64),
    /// The connection opens but no bytes ever arrive — the classic
    /// black-holed peer, detected only by heartbeat or lease timeout.
    BlackHole,
    /// Every reply line is delayed by this long (a drip-feeding peer;
    /// long enough drips trip the lease).
    SlowDrip(Duration),
}

impl NetFaultKind {
    /// True when this fault kills the attempt it fires on, forcing a
    /// requeue. A slow drip merely shapes the stream — the attempt
    /// still succeeds unless the drip outlasts the lease.
    pub fn forces_retry(&self) -> bool {
        !matches!(self, NetFaultKind::SlowDrip(_))
    }
}

/// One scheduled network fault: `kind` fires against `shard` on its
/// `attempt`-th execution (0-based), at most once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetFaultSpec {
    /// Shard index the fault targets.
    pub shard: u64,
    /// 0-based attempt of that shard that trips the fault.
    pub attempt: u32,
    /// What the wire does.
    pub kind: NetFaultKind,
}

/// A deterministic set of network faults for one sharded search.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetFaultPlan {
    /// The scheduled faults.
    pub specs: Vec<NetFaultSpec>,
}

impl NetFaultPlan {
    /// The empty plan.
    pub fn none() -> Self {
        NetFaultPlan::default()
    }

    /// A plan with a single fault.
    pub fn single(spec: NetFaultSpec) -> Self {
        NetFaultPlan { specs: vec![spec] }
    }

    /// Parse a comma-separated CLI drill string. Forms:
    /// `refuse@SHARD`, `drop@SHARD:LINES`, `blackhole@SHARD`,
    /// `slowdrip@SHARD:MS`; an optional `#ATTEMPT` suffix targets a
    /// later attempt (`refuse@1#1` refuses shard 1's first *retry*).
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut specs = Vec::new();
        for part in s.split(',').filter(|p| !p.is_empty()) {
            let bad = || {
                format!(
                    "bad net-fault '{part}': want refuse@S | drop@S:N | \
                     blackhole@S | slowdrip@S:MS (optionally #ATTEMPT)"
                )
            };
            let (kind_name, rest) = part.split_once('@').ok_or_else(bad)?;
            let (target, attempt) = match rest.split_once('#') {
                Some((t, a)) => (t, a.parse::<u32>().map_err(|_| bad())?),
                None => (rest, 0),
            };
            let (shard_s, arg) = match target.split_once(':') {
                Some((s, a)) => (s, Some(a)),
                None => (target, None),
            };
            let shard: u64 = shard_s.parse().map_err(|_| bad())?;
            let kind = match (kind_name, arg) {
                ("refuse", None) => NetFaultKind::Refuse,
                ("drop", Some(n)) => NetFaultKind::Drop(n.parse().map_err(|_| bad())?),
                ("blackhole", None) => NetFaultKind::BlackHole,
                ("slowdrip", Some(ms)) => {
                    NetFaultKind::SlowDrip(Duration::from_millis(ms.parse().map_err(|_| bad())?))
                }
                _ => return Err(bad()),
            };
            specs.push(NetFaultSpec {
                shard,
                attempt,
                kind,
            });
        }
        if specs.is_empty() {
            return Err("empty net-fault spec".into());
        }
        Ok(NetFaultPlan { specs })
    }

    /// A seeded random plan: `n_faults` network faults spread over
    /// `n_shards` shards, all on the first attempt (the retry then runs
    /// clean — every seeded drill terminates). Deterministic per seed.
    pub fn seeded(seed: u64, n_faults: usize, n_shards: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let specs = (0..n_faults)
            .map(|_| {
                let shard = rng.gen_range(0..n_shards.max(1));
                let kind = match rng.gen_range(0..4u64) {
                    0 => NetFaultKind::Refuse,
                    1 => NetFaultKind::Drop(rng.gen_range(0..3u64)),
                    2 => NetFaultKind::BlackHole,
                    _ => NetFaultKind::SlowDrip(Duration::from_millis(rng.gen_range(5..40u64))),
                };
                NetFaultSpec {
                    shard,
                    attempt: 0,
                    kind,
                }
            })
            .collect();
        NetFaultPlan { specs }
    }
}

/// Armed runtime form of a [`NetFaultPlan`]: shared by every
/// coordinator thread, each spec fires at most once.
#[derive(Debug)]
pub struct NetFaultInjector {
    specs: Vec<NetFaultSpec>,
    fired: Vec<AtomicBool>,
}

impl NetFaultInjector {
    /// Arm a plan.
    pub fn new(plan: NetFaultPlan) -> Self {
        let fired = plan.specs.iter().map(|_| AtomicBool::new(false)).collect();
        NetFaultInjector {
            specs: plan.specs,
            fired,
        }
    }

    /// An injector that never fires.
    pub fn none() -> Self {
        NetFaultInjector::new(NetFaultPlan::none())
    }

    /// True when the plan holds no faults.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Called as the coordinator starts `attempt` of `shard`; returns
    /// the fault to apply to this exchange, if any.
    pub fn on_shard_attempt(&self, shard: u64, attempt: u32) -> Option<NetFaultKind> {
        for (spec, fired) in self.specs.iter().zip(&self.fired) {
            if spec.shard == shard
                && spec.attempt == attempt
                && fired
                    .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            {
                return Some(spec.kind);
            }
        }
        None
    }

    /// Number of faults that have fired so far.
    pub fn fired_count(&self) -> usize {
        self.fired
            .iter()
            .filter(|f| f.load(Ordering::Relaxed))
            .count()
    }

    /// The specs that have fired so far, in plan order. Drills use this
    /// to predict the exact retry cost of a run (a spec scheduled for an
    /// attempt that never happens stays unfired).
    pub fn fired_specs(&self) -> Vec<NetFaultSpec> {
        self.specs
            .iter()
            .zip(&self.fired)
            .filter(|(_, f)| f.load(Ordering::Relaxed))
            .map(|(s, _)| *s)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(7, 4, 1, 100);
        let b = FaultPlan::seeded(7, 4, 1, 100);
        assert_eq!(a, b);
        assert_eq!(a.specs.len(), 4);
        assert!(a.specs.iter().all(|s| s.device == 1 && s.chunk < 100));
        let c = FaultPlan::seeded(8, 4, 1, 100);
        assert_ne!(a, c, "different seeds give different plans");
    }

    #[test]
    fn fault_fires_once_at_the_right_chunk() {
        let inj = FaultInjector::new(FaultPlan::single(FaultSpec {
            device: 1,
            chunk: 2,
            kind: FaultKind::Kill,
        }));
        assert_eq!(inj.on_chunk_start(1), None); // chunk 0
        assert_eq!(inj.on_chunk_start(0), None); // CPU chunk, other counter
        assert_eq!(inj.on_chunk_start(1), None); // chunk 1
        assert!(!inj.all_fired());
        assert_eq!(inj.on_chunk_start(1), Some(FaultKind::Kill)); // chunk 2
        assert_eq!(inj.on_chunk_start(1), None, "fires at most once");
        assert_eq!(inj.fired_count(), 1);
        assert!(inj.all_fired());
    }

    #[test]
    fn kill_pool_marks_device_dead() {
        let inj = FaultInjector::new(FaultPlan::single(FaultSpec {
            device: 1,
            chunk: 0,
            kind: FaultKind::KillPool,
        }));
        assert!(!inj.pool_dead(1));
        assert_eq!(inj.on_chunk_start(1), Some(FaultKind::KillPool));
        assert!(inj.pool_dead(1));
        assert!(!inj.pool_dead(0));
    }

    #[test]
    fn unarmed_process_kill_is_inert() {
        // With no threshold armed, committing chunks must never abort.
        // (The armed path can only be exercised from a subprocess; the
        // CLI crash harness covers it end to end.)
        let inj = FaultInjector::none();
        for _ in 0..100 {
            inj.on_chunk_committed();
        }
    }

    #[test]
    fn empty_injector_is_inert() {
        let inj = FaultInjector::none();
        assert!(inj.is_empty());
        for _ in 0..10 {
            assert_eq!(inj.on_chunk_start(0), None);
            assert_eq!(inj.on_chunk_start(1), None);
        }
        assert!(!inj.pool_dead(0) && !inj.pool_dead(1));
    }

    #[test]
    fn net_fault_parse_accepts_all_forms() {
        let plan = NetFaultPlan::parse("refuse@0,drop@1:2,blackhole@2,slowdrip@3:15,refuse@1#1")
            .expect("parse");
        assert_eq!(
            plan.specs,
            vec![
                NetFaultSpec {
                    shard: 0,
                    attempt: 0,
                    kind: NetFaultKind::Refuse
                },
                NetFaultSpec {
                    shard: 1,
                    attempt: 0,
                    kind: NetFaultKind::Drop(2)
                },
                NetFaultSpec {
                    shard: 2,
                    attempt: 0,
                    kind: NetFaultKind::BlackHole
                },
                NetFaultSpec {
                    shard: 3,
                    attempt: 0,
                    kind: NetFaultKind::SlowDrip(Duration::from_millis(15))
                },
                NetFaultSpec {
                    shard: 1,
                    attempt: 1,
                    kind: NetFaultKind::Refuse
                },
            ]
        );
        for bad in [
            "",
            "refuse",
            "refuse@x",
            "drop@1",
            "slowdrip@1",
            "wedge@0",
            "refuse@0#x",
        ] {
            assert!(
                NetFaultPlan::parse(bad).is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn net_seeded_plans_are_deterministic_and_first_attempt_only() {
        let a = NetFaultPlan::seeded(99, 6, 4);
        let b = NetFaultPlan::seeded(99, 6, 4);
        assert_eq!(a, b);
        assert_eq!(a.specs.len(), 6);
        for spec in &a.specs {
            assert!(spec.shard < 4);
            assert_eq!(spec.attempt, 0, "seeded faults hit the first attempt");
        }
        assert_ne!(a, NetFaultPlan::seeded(100, 6, 4), "seed must matter");
    }

    #[test]
    fn net_injector_fires_each_spec_once() {
        let inj = NetFaultInjector::new(NetFaultPlan::parse("refuse@1,drop@1:0#1").unwrap());
        assert!(!inj.is_empty());
        assert_eq!(inj.on_shard_attempt(0, 0), None);
        assert_eq!(inj.on_shard_attempt(1, 0), Some(NetFaultKind::Refuse));
        assert_eq!(inj.on_shard_attempt(1, 0), None, "fires at most once");
        assert_eq!(inj.on_shard_attempt(1, 1), Some(NetFaultKind::Drop(0)));
        assert_eq!(inj.fired_count(), 2);
        assert!(NetFaultInjector::none().is_empty());
    }
}
