//! Discrete-event scheduler simulation.
//!
//! Replays a scheduling [`Policy`] over a list of per-task costs (seconds,
//! typically from `sw-device::CostModel::task_seconds`) for `W` workers
//! and reports the makespan. Because the simulation executes the *same
//! chunk-assignment algorithm* a real OpenMP runtime would, it reproduces
//! genuine load-imbalance effects — the long-tail batches of a
//! length-sorted database, the static-vs-dynamic gap the paper reports,
//! and the thread-scaling curves of Figs. 3 and 5.

use crate::policy::{
    adaptive_chunk, static_partition, ChunkDispenser, DualQueue, Policy, RequeueQueue,
    SplitEstimator, DEVICE_ACCEL, DEVICE_CPU,
};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use sw_trace::{EventKind, Tracer, WorkerJournal};

/// Result of one simulated parallel loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Wall-clock of the loop: when the last worker finishes.
    pub makespan: f64,
    /// Busy seconds per worker.
    pub busy: Vec<f64>,
    /// Number of chunks dispatched.
    pub chunks: usize,
}

impl SimResult {
    /// Total work across workers (= sum of task costs; conservation).
    pub fn total_busy(&self) -> f64 {
        self.busy.iter().sum()
    }

    /// Parallel efficiency: total work / (workers × makespan).
    pub fn efficiency(&self) -> f64 {
        if self.makespan == 0.0 {
            1.0
        } else {
            self.total_busy() / (self.busy.len() as f64 * self.makespan)
        }
    }
}

/// Non-NaN f64 wrapper for the worker heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Time(f64);

impl Eq for Time {}
impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("task costs are finite")
    }
}

/// Simulate a parallel loop over `costs` with `workers` workers.
///
/// ```
/// use sw_sched::{simulate, Policy};
///
/// // 16 unit tasks on 4 workers: any policy balances perfectly.
/// let r = simulate(&[1.0; 16], 4, Policy::dynamic());
/// assert_eq!(r.makespan, 4.0);
/// assert!((r.efficiency() - 1.0).abs() < 1e-12);
///
/// // Skewed tasks: dynamic beats a block-static schedule.
/// let costs: Vec<f64> = (1..=32).map(f64::from).collect();
/// let dyn_ = simulate(&costs, 8, Policy::dynamic());
/// let stat = simulate(&costs, 8, Policy::Static);
/// assert!(dyn_.makespan < stat.makespan);
/// ```
///
/// # Panics
/// Panics if `workers == 0` or any cost is negative/non-finite.
pub fn simulate(costs: &[f64], workers: usize, policy: Policy) -> SimResult {
    assert!(workers >= 1, "need at least one worker");
    assert!(
        costs.iter().all(|c| c.is_finite() && *c >= 0.0),
        "task costs must be finite and non-negative"
    );
    match policy {
        Policy::Static => {
            let mut busy = Vec::with_capacity(workers);
            for (s, e) in static_partition(costs.len(), workers) {
                busy.push(costs[s..e].iter().sum());
            }
            let makespan = busy.iter().cloned().fold(0.0, f64::max);
            SimResult {
                makespan,
                busy,
                chunks: workers.min(costs.len()).max(1),
            }
        }
        Policy::Dynamic { .. } | Policy::Guided { .. } => {
            let mut dispenser = ChunkDispenser::new(policy, costs.len(), workers);
            // Min-heap of (available_time, worker_id).
            let mut heap: BinaryHeap<Reverse<(Time, usize)>> =
                (0..workers).map(|w| Reverse((Time(0.0), w))).collect();
            let mut busy = vec![0.0f64; workers];
            let mut chunks = 0usize;
            while let Some(Reverse((Time(t), w))) = heap.pop() {
                match dispenser.grab() {
                    Some((s, e)) => {
                        let work: f64 = costs[s..e].iter().sum();
                        busy[w] += work;
                        chunks += 1;
                        heap.push(Reverse((Time(t + work), w)));
                    }
                    None => {
                        // Worker retires at time t; drain the rest.
                        let mut makespan = t;
                        while let Some(Reverse((Time(t2), _))) = heap.pop() {
                            makespan = makespan.max(t2);
                        }
                        return SimResult {
                            makespan,
                            busy,
                            chunks,
                        };
                    }
                }
            }
            unreachable!("heap always holds a worker")
        }
    }
}

/// Simulate a parallel loop over `costs` where worker `w` runs at
/// `speeds[w]` × base speed — the heterogeneous-worker generalisation
/// needed to model a *dynamic* CPU+accelerator distribution (the paper's
/// §VI: "analyze other workload distribution strategies").
///
/// Task `i` on worker `w` takes `costs[i] / speeds[w]` seconds. Only
/// dynamic/guided policies make sense here (a static pre-partition
/// ignores speeds); static is rejected.
///
/// # Panics
/// Panics on empty/non-positive speeds, non-finite costs, or
/// [`Policy::Static`].
pub fn simulate_heterogeneous(costs: &[f64], speeds: &[f64], policy: Policy) -> SimResult {
    assert!(!speeds.is_empty(), "need at least one worker");
    assert!(
        speeds.iter().all(|s| s.is_finite() && *s > 0.0),
        "speeds must be positive"
    );
    assert!(
        !matches!(policy, Policy::Static),
        "static scheduling cannot account for worker speeds; use dynamic or guided"
    );
    assert!(
        costs.iter().all(|c| c.is_finite() && *c >= 0.0),
        "task costs must be finite and non-negative"
    );
    let workers = speeds.len();
    let mut dispenser = ChunkDispenser::new(policy, costs.len(), workers);
    let mut heap: BinaryHeap<Reverse<(Time, usize)>> =
        (0..workers).map(|w| Reverse((Time(0.0), w))).collect();
    let mut busy = vec![0.0f64; workers];
    let mut chunks = 0usize;
    while let Some(Reverse((Time(t), w))) = heap.pop() {
        match dispenser.grab() {
            Some((s, e)) => {
                let work: f64 = costs[s..e].iter().sum::<f64>() / speeds[w];
                busy[w] += work;
                chunks += 1;
                heap.push(Reverse((Time(t + work), w)));
            }
            None => {
                let mut makespan = t;
                while let Some(Reverse((Time(t2), _))) = heap.pop() {
                    makespan = makespan.max(t2);
                }
                return SimResult {
                    makespan,
                    busy,
                    chunks,
                };
            }
        }
    }
    unreachable!("heap always holds a worker")
}

/// Configuration of a simulated dual-pool run — mirrors the real
/// executor's `DualPoolConfig` plus the per-device speeds the simulator
/// needs in place of wall clocks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DualPoolSimConfig {
    /// Workers in the CPU pool (front of the queue).
    pub cpu_workers: usize,
    /// Workers in the accelerator pool (back of the queue).
    pub accel_workers: usize,
    /// CPU throughput in cells per second.
    pub cpu_speed: f64,
    /// Accelerator throughput in cells per second.
    pub accel_speed: f64,
    /// The static plan's accelerator share seeding the estimator.
    pub initial_accel_fraction: f64,
    /// Smallest chunk either pool grabs.
    pub min_chunk: usize,
    /// Injected failure, mirroring the executor's `KillPool` fault: the
    /// accelerator pool dies as it starts its Nth chunk (0-based). The
    /// claimed chunk is released to the requeue list and the surviving
    /// CPU pool absorbs it plus everything left in the queue. `None`
    /// simulates a fault-free run.
    pub accel_fail_after_chunks: Option<usize>,
}

/// Result of one simulated dual-pool loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DualPoolSimResult {
    /// Wall-clock of the loop.
    pub makespan: f64,
    /// Busy seconds per device pool (index [`DEVICE_CPU`] / [`DEVICE_ACCEL`]).
    pub device_busy: [f64; 2],
    /// Tasks executed per device pool.
    pub device_tasks: [usize; 2],
    /// Cells processed per device pool.
    pub device_cells: [f64; 2],
    /// Chunks grabbed per device pool.
    pub device_chunks: [usize; 2],
    /// Where the pools met: the CPU pool executed tasks `0..boundary`,
    /// the accelerator pool `boundary..n_tasks`. Requeued ranges a CPU
    /// worker re-executes after an accelerator failure are *not* folded
    /// into the boundary — they lie beyond it by construction.
    pub boundary: usize,
    /// Chunks released back to the requeue list by the injected failure.
    pub requeued_chunks: usize,
    /// Tasks inside those requeued chunks.
    pub requeued_tasks: usize,
    /// Per-device degraded flag (a pool died and was retired) — mirrors
    /// the executor's `DualPoolOutcome::degraded`.
    pub degraded: [bool; 2],
    /// Tasks left unexecuted because no live worker remained to drain the
    /// requeue list (only possible when the surviving pool is empty).
    /// This is the simulated analogue of the executor's `ExecError`.
    pub unrecovered_tasks: usize,
}

impl DualPoolSimResult {
    /// Fraction of the total cells the accelerator pool processed — the
    /// *emergent* split, comparable with a static plan's
    /// `accel_cell_fraction`.
    pub fn accel_cell_fraction(&self) -> f64 {
        let total = self.device_cells[DEVICE_CPU] + self.device_cells[DEVICE_ACCEL];
        if total == 0.0 {
            0.0
        } else {
            self.device_cells[DEVICE_ACCEL] / total
        }
    }
}

/// Simulate the dual-pool heterogeneous executor over per-task `cells`
/// workloads: the CPU pool pulls from the front of one shared queue, the
/// accelerator pool from the back, with chunk sizes steered by the same
/// [`SplitEstimator`] + [`adaptive_chunk`] feedback policy the real
/// executor runs. Deterministic, so tests can compare a simulated split
/// against a real run's metrics.
///
/// The failure model mirrors the executor's recovery algorithm: when
/// [`DualPoolSimConfig::accel_fail_after_chunks`] fires, the claimed
/// chunk goes back on a [`RequeueQueue`], the accelerator pool is
/// retired (degraded), and idle CPU workers — which *linger* rather than
/// retire while a failure is still possible — wake up to absorb it.
///
/// # Panics
/// Panics when both pools are empty, speeds are non-positive, cells are
/// non-finite/negative, or the initial fraction is NaN/outside `[0, 1]`.
pub fn simulate_dual_pool(cells: &[f64], config: DualPoolSimConfig) -> DualPoolSimResult {
    simulate_dual_pool_traced(cells, config, &Tracer::disabled())
}

/// Convert simulated seconds to the journal's microsecond clock.
fn sim_us(t: f64) -> u64 {
    (t * 1e6).round() as u64
}

/// [`simulate_dual_pool`] with an event journal: every claim, execution
/// span, requeue, retirement and rebalance is emitted into `tracer` with
/// the *same schema* the real executor produces, stamped at the simulated
/// clock via `emit_at`. A simulated trace and a real trace of the same
/// workload are therefore directly comparable in the same tooling
/// (JSONL diff, Perfetto side-by-side). A disabled tracer makes this
/// identical to [`simulate_dual_pool`].
pub fn simulate_dual_pool_traced(
    cells: &[f64],
    config: DualPoolSimConfig,
    tracer: &Tracer,
) -> DualPoolSimResult {
    assert!(
        config.cpu_workers + config.accel_workers >= 1,
        "need at least one worker across the two pools"
    );
    assert!(
        config.cpu_speed.is_finite()
            && config.cpu_speed > 0.0
            && config.accel_speed.is_finite()
            && config.accel_speed > 0.0,
        "device speeds must be positive"
    );
    assert!(
        cells.iter().all(|c| c.is_finite() && *c >= 0.0),
        "task cells must be finite and non-negative"
    );
    let estimator = SplitEstimator::new(config.initial_accel_fraction);

    let mut queue = DualQueue::new(cells.len());
    let speeds = [config.cpu_speed, config.accel_speed];
    let pool_workers = [config.cpu_workers, config.accel_workers];
    let mut device_busy = [0.0f64; 2];
    let mut device_tasks = [0usize; 2];
    let mut device_cells = [0.0f64; 2];
    let mut device_chunks = [0usize; 2];
    let mut boundary = 0usize;

    // One journal per simulated worker, stamped at the simulated clock.
    // Empty when tracing is disabled so the hot loop pays one map miss.
    let mut journals: HashMap<(usize, usize), WorkerJournal> = HashMap::new();
    if tracer.is_enabled() {
        for device in [DEVICE_CPU, DEVICE_ACCEL] {
            for w in 0..pool_workers[device] {
                journals.insert((device, w), tracer.worker(device, w));
            }
        }
    }
    let mut next_lease = 0u64;
    // Park times of lingering workers; their queue-wait span is emitted
    // in one balanced B/E pair when they wake.
    let mut parked_since: HashMap<(usize, usize), f64> = HashMap::new();

    // Min-heap of (available_time, device, worker) — deterministic tie
    // order: CPU workers before accelerator workers at equal times.
    let mut heap: BinaryHeap<Reverse<(Time, usize, usize)>> = BinaryHeap::new();
    for device in [DEVICE_CPU, DEVICE_ACCEL] {
        for w in 0..pool_workers[device] {
            heap.push(Reverse((Time(0.0), device, w)));
        }
    }

    let mut requeue = RequeueQueue::new();
    // Workers idling on an empty queue. They cannot retire while a
    // pool-kill could still orphan a claimed chunk, so they park here
    // (the real executor's linger state) and wake when a requeue lands.
    let mut parked: Vec<(f64, usize, usize)> = Vec::new();
    let mut accel_chunk_counter = 0usize;
    let mut degraded = [false; 2];
    let mut requeued_chunks = 0usize;
    let mut requeued_tasks = 0usize;

    let mut makespan = 0.0f64;
    while let Some(Reverse((Time(t), device, w))) = heap.pop() {
        if let Some(t0) = parked_since.remove(&(device, w)) {
            if let Some(jr) = journals.get_mut(&(device, w)) {
                jr.emit_at(sim_us(t0), EventKind::QueueWaitBegin);
                jr.emit_at(
                    sim_us(t),
                    EventKind::QueueWaitEnd {
                        us: sim_us(t) - sim_us(t0),
                    },
                );
            }
        }
        if degraded[device] {
            // Retired pool: the worker exits without grabbing.
            makespan = makespan.max(t);
            continue;
        }
        // Requeued ranges take priority over fresh chunks, exactly like
        // the executor's acquire path.
        let (grabbed, from_requeue, attempts) = match requeue.pop() {
            Some((range, attempts)) => (Some(range), true, attempts),
            None => {
                let accel_share = estimator.accel_share(
                    device_cells[DEVICE_CPU].round() as u64,
                    (device_busy[DEVICE_CPU] * 1e9).round() as u64,
                    device_cells[DEVICE_ACCEL].round() as u64,
                    (device_busy[DEVICE_ACCEL] * 1e9).round() as u64,
                );
                let my_share = if device == DEVICE_CPU {
                    1.0 - accel_share
                } else {
                    accel_share
                };
                let k = adaptive_chunk(
                    queue.remaining(),
                    my_share,
                    pool_workers[device],
                    config.min_chunk,
                );
                let g = if device == DEVICE_CPU {
                    queue.take_front(k)
                } else {
                    queue.take_back(k)
                };
                if g.is_some() {
                    if let Some(jr) = journals.get_mut(&(device, w)) {
                        jr.emit_at(sim_us(t), EventKind::SplitRebalance { share: accel_share });
                    }
                }
                (g, false, 0)
            }
        };
        match grabbed {
            Some((s, e)) => {
                let lease = next_lease;
                next_lease += 1;
                if let Some(jr) = journals.get_mut(&(device, w)) {
                    jr.emit_at(
                        sim_us(t),
                        EventKind::LeaseGranted {
                            lease,
                            lo: s,
                            hi: e,
                        },
                    );
                    jr.emit_at(
                        sim_us(t),
                        EventKind::ChunkClaim {
                            lease,
                            lo: s,
                            hi: e,
                            attempts,
                        },
                    );
                }
                if device == DEVICE_ACCEL {
                    let n = accel_chunk_counter;
                    accel_chunk_counter += 1;
                    if config.accel_fail_after_chunks == Some(n) {
                        // Pool-kill fires as this chunk starts: the claimed
                        // range is released to the requeue list and the
                        // whole accelerator pool retires. Parked workers
                        // wake to absorb the orphaned chunk.
                        requeue.push((s, e), 1);
                        requeued_chunks += 1;
                        requeued_tasks += e - s;
                        degraded[DEVICE_ACCEL] = true;
                        if let Some(jr) = journals.get_mut(&(device, w)) {
                            jr.emit_at(
                                sim_us(t),
                                EventKind::LeaseLost {
                                    lease,
                                    victim: DEVICE_ACCEL,
                                },
                            );
                            jr.emit_at(
                                sim_us(t),
                                EventKind::LeaseRequeued {
                                    lease,
                                    lo: s,
                                    hi: e,
                                    attempts: 1,
                                },
                            );
                            jr.emit_at(
                                sim_us(t),
                                EventKind::PoolRetired {
                                    device: DEVICE_ACCEL,
                                },
                            );
                        }
                        makespan = makespan.max(t);
                        for (pt, pd, pw) in parked.drain(..) {
                            heap.push(Reverse((Time(pt.max(t)), pd, pw)));
                        }
                        continue;
                    }
                }
                let chunk_cells: f64 = cells[s..e].iter().sum();
                let work = chunk_cells / speeds[device];
                if let Some(jr) = journals.get_mut(&(device, w)) {
                    jr.emit_at(
                        sim_us(t),
                        EventKind::ChunkStart {
                            lease,
                            lo: s,
                            hi: e,
                        },
                    );
                    jr.emit_at(
                        sim_us(t + work),
                        EventKind::ChunkFinish {
                            lease,
                            lo: s,
                            hi: e,
                            cells: chunk_cells.round() as u64,
                        },
                    );
                }
                device_busy[device] += work;
                device_tasks[device] += e - s;
                device_cells[device] += chunk_cells;
                device_chunks[device] += 1;
                if device == DEVICE_CPU && !from_requeue {
                    boundary = boundary.max(e);
                }
                heap.push(Reverse((Time(t + work), device, w)));
            }
            None => {
                makespan = makespan.max(t);
                if config.accel_fail_after_chunks.is_some() && !degraded[DEVICE_ACCEL] {
                    // A kill may still orphan a chunk: linger instead of
                    // retiring. Woken at most once, so this terminates.
                    parked.push((t, device, w));
                    parked_since.insert((device, w), t);
                }
            }
        }
    }
    // CPU never grabbed anything: the pools met at task 0.
    if device_tasks[DEVICE_CPU] == 0 {
        boundary = 0;
    }
    // Anything still on the requeue list had no live worker left to run
    // it — the simulated analogue of the executor returning `ExecError`.
    let mut unrecovered_tasks = 0usize;
    while let Some(((s, e), _)) = requeue.pop() {
        unrecovered_tasks += e - s;
    }
    DualPoolSimResult {
        makespan,
        device_busy,
        device_tasks,
        device_cells,
        device_chunks,
        boundary,
        requeued_chunks,
        requeued_tasks,
        degraded,
        unrecovered_tasks,
    }
}

/// Theoretical lower bound on any schedule's makespan:
/// `max(total / workers, longest task)`.
pub fn makespan_lower_bound(costs: &[f64], workers: usize) -> f64 {
    let total: f64 = costs.iter().sum();
    let longest = costs.iter().cloned().fold(0.0, f64::max);
    (total / workers as f64).max(longest)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn uniform_tasks_perfectly_balanced() {
        let costs = vec![1.0; 16];
        for policy in [Policy::Static, Policy::dynamic(), Policy::guided()] {
            let r = simulate(&costs, 4, policy);
            assert!((r.makespan - 4.0).abs() < EPS, "{policy:?}: {}", r.makespan);
            assert!((r.efficiency() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn work_is_conserved() {
        let costs: Vec<f64> = (1..=37).map(|i| i as f64 * 0.1).collect();
        let total: f64 = costs.iter().sum();
        for policy in [
            Policy::Static,
            Policy::dynamic(),
            Policy::Guided { min_chunk: 2 },
        ] {
            let r = simulate(&costs, 5, policy);
            assert!((r.total_busy() - total).abs() < 1e-6, "{policy:?}");
            assert!(r.makespan >= makespan_lower_bound(&costs, 5) - EPS);
        }
    }

    #[test]
    fn dynamic_beats_static_on_skewed_work() {
        // The paper: "dynamic outperforms static significantly" because the
        // workload per iteration differs. Sorted costs are the worst case
        // for a block-static schedule: the last block holds all the giants.
        let costs: Vec<f64> = (1..=64).map(|i| i as f64).collect();
        let stat = simulate(&costs, 8, Policy::Static);
        let dyn_ = simulate(&costs, 8, Policy::dynamic());
        let guided = simulate(&costs, 8, Policy::guided());
        assert!(
            dyn_.makespan < 0.8 * stat.makespan,
            "dynamic {} vs static {}",
            dyn_.makespan,
            stat.makespan
        );
        // "The performance difference with guided is slightly minor":
        // guided lands between dynamic and static, close to dynamic.
        assert!(dyn_.makespan <= guided.makespan + EPS);
        assert!(guided.makespan < stat.makespan);
    }

    #[test]
    fn single_worker_makespan_is_total() {
        let costs = vec![2.0, 3.0, 5.0];
        for policy in [Policy::Static, Policy::dynamic(), Policy::guided()] {
            let r = simulate(&costs, 1, policy);
            assert!((r.makespan - 10.0).abs() < EPS);
        }
    }

    #[test]
    fn more_workers_never_slower() {
        let costs: Vec<f64> = (0..100).map(|i| ((i * 7919) % 13 + 1) as f64).collect();
        let mut last = f64::INFINITY;
        for w in [1, 2, 4, 8, 16, 32] {
            let r = simulate(&costs, w, Policy::dynamic());
            assert!(r.makespan <= last + EPS, "workers {w}");
            last = r.makespan;
        }
    }

    #[test]
    fn empty_loop_is_instant() {
        let r = simulate(&[], 4, Policy::dynamic());
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.total_busy(), 0.0);
    }

    #[test]
    fn giant_task_bounds_makespan() {
        let mut costs = vec![0.1; 50];
        costs.push(100.0);
        let r = simulate(&costs, 8, Policy::dynamic());
        let lb = makespan_lower_bound(&costs, 8);
        assert!((lb - 100.0).abs() < EPS);
        assert!(r.makespan >= 100.0 - EPS);
        assert!(
            r.makespan < 106.0,
            "dynamic must hide the small tasks behind the giant"
        );
    }

    #[test]
    fn chunked_dynamic_fewer_chunks() {
        let costs = vec![1.0; 100];
        let unit = simulate(&costs, 4, Policy::Dynamic { chunk: 1 });
        let chunked = simulate(&costs, 4, Policy::Dynamic { chunk: 10 });
        assert_eq!(unit.chunks, 100);
        assert_eq!(chunked.chunks, 10);
    }

    #[test]
    fn efficiency_in_unit_range() {
        let costs: Vec<f64> = (0..333).map(|i| ((i * 31) % 17) as f64 + 0.5).collect();
        for w in [1, 3, 7, 32] {
            for p in [Policy::Static, Policy::dynamic(), Policy::guided()] {
                let r = simulate(&costs, w, p);
                assert!(r.efficiency() > 0.0 && r.efficiency() <= 1.0 + EPS);
            }
        }
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_cost_rejected() {
        simulate(&[1.0, f64::NAN], 2, Policy::dynamic());
    }

    #[test]
    fn heterogeneous_uniform_speeds_match_homogeneous() {
        let costs: Vec<f64> = (1..=50).map(|i| i as f64 * 0.3).collect();
        let hom = simulate(&costs, 4, Policy::dynamic());
        let het = simulate_heterogeneous(&costs, &[1.0; 4], Policy::dynamic());
        assert!((hom.makespan - het.makespan).abs() < EPS);
        assert_eq!(hom.chunks, het.chunks);
    }

    #[test]
    fn faster_worker_takes_more_work() {
        let costs = vec![1.0; 100];
        // One 3x worker + one 1x worker: the fast one should finish ~75
        // of the 100 tasks.
        let r = simulate_heterogeneous(&costs, &[3.0, 1.0], Policy::dynamic());
        // Busy time is roughly equal (both work until the pool drains).
        assert!((r.busy[0] - r.busy[1]).abs() < 2.0, "busy {:?}", r.busy);
        // Makespan ≈ total / (3 + 1) = 25.
        assert!((r.makespan - 25.0).abs() < 1.5, "makespan {}", r.makespan);
    }

    #[test]
    fn dynamic_hetero_beats_any_static_split_under_skew() {
        // Tasks of mixed size, two device "speeds": dynamic pulling gets
        // within a task of the ideal; a bad static split cannot.
        let costs: Vec<f64> = (0..200).map(|i| ((i * 13) % 29 + 1) as f64).collect();
        let total: f64 = costs.iter().sum();
        let speeds = [2.0, 1.0];
        let r = simulate_heterogeneous(&costs, &speeds, Policy::dynamic());
        let ideal = total / 3.0;
        assert!(
            r.makespan < ideal + 30.0,
            "{} vs ideal {}",
            r.makespan,
            ideal
        );
    }

    #[test]
    #[should_panic(expected = "static scheduling cannot")]
    fn heterogeneous_rejects_static() {
        simulate_heterogeneous(&[1.0], &[1.0], Policy::Static);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn heterogeneous_rejects_zero_speed() {
        simulate_heterogeneous(&[1.0], &[0.0], Policy::dynamic());
    }

    fn dual_cfg() -> DualPoolSimConfig {
        DualPoolSimConfig {
            cpu_workers: 4,
            accel_workers: 2,
            cpu_speed: 1e9,
            accel_speed: 4e9,
            initial_accel_fraction: 0.5,
            min_chunk: 1,
            accel_fail_after_chunks: None,
        }
    }

    #[test]
    fn dual_pool_covers_all_tasks_once() {
        let cells: Vec<f64> = (1..=200).map(|i| i as f64 * 1e6).collect();
        let r = simulate_dual_pool(&cells, dual_cfg());
        assert_eq!(r.device_tasks[0] + r.device_tasks[1], 200);
        let total: f64 = cells.iter().sum();
        assert!((r.device_cells[0] + r.device_cells[1] - total).abs() < 1.0);
        // Pools met at one boundary: CPU cells are exactly the prefix sum.
        let prefix: f64 = cells[..r.boundary].iter().sum();
        assert!((r.device_cells[0] - prefix).abs() < 1.0);
    }

    #[test]
    fn dual_pool_faster_accel_claims_larger_share() {
        // Accelerator is 4x faster per worker; the emergent split should
        // give it well over half the cells even from a 0.5 seed.
        let cells = vec![1e6; 400];
        let r = simulate_dual_pool(&cells, dual_cfg());
        assert!(
            r.accel_cell_fraction() > 0.5,
            "accel took {} of the cells",
            r.accel_cell_fraction()
        );
        // And the makespan beats giving everything to either pool alone.
        let total: f64 = cells.iter().sum();
        assert!(r.makespan < total / (4.0 * 1e9));
    }

    #[test]
    fn dual_pool_estimator_converges_toward_speed_ratio() {
        // 4 CPU workers at 1 GCUPS vs 2 accel workers at 4 GCUPS: pool
        // throughput is 4 vs 8, so the ideal accel share is 2/3. Start
        // from a bad seed and check the feedback converges near it.
        let cells = vec![1e6; 2000];
        let mut cfg = dual_cfg();
        cfg.initial_accel_fraction = 0.1;
        let r = simulate_dual_pool(&cells, cfg);
        assert!(
            (r.accel_cell_fraction() - 2.0 / 3.0).abs() < 0.15,
            "emergent split {} should approach 2/3",
            r.accel_cell_fraction()
        );
    }

    #[test]
    fn dual_pool_single_sided() {
        let cells = vec![1e6; 50];
        let mut cfg = dual_cfg();
        cfg.accel_workers = 0;
        let r = simulate_dual_pool(&cells, cfg);
        assert_eq!(r.device_tasks[0], 50);
        assert_eq!(r.boundary, 50);
        assert_eq!(r.device_tasks[1], 0);

        let mut cfg = dual_cfg();
        cfg.cpu_workers = 0;
        let r = simulate_dual_pool(&cells, cfg);
        assert_eq!(r.device_tasks[1], 50);
        assert_eq!(r.boundary, 0);
        assert_eq!(r.accel_cell_fraction(), 1.0);
    }

    #[test]
    fn dual_pool_empty_loop() {
        let r = simulate_dual_pool(&[], dual_cfg());
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.device_tasks, [0, 0]);
        assert_eq!(r.accel_cell_fraction(), 0.0);
    }

    #[test]
    fn dual_pool_deterministic() {
        let cells: Vec<f64> = (0..300).map(|i| ((i * 13) % 37 + 1) as f64 * 1e5).collect();
        let a = simulate_dual_pool(&cells, dual_cfg());
        let b = simulate_dual_pool(&cells, dual_cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn dual_pool_kill_recovers_all_tasks() {
        let cells: Vec<f64> = (1..=200).map(|i| i as f64 * 1e6).collect();
        let mut cfg = dual_cfg();
        cfg.accel_fail_after_chunks = Some(2);
        let r = simulate_dual_pool(&cells, cfg);
        assert_eq!(r.degraded, [false, true]);
        assert_eq!(r.requeued_chunks, 1);
        assert!(r.requeued_tasks >= 1);
        assert_eq!(r.unrecovered_tasks, 0, "CPU pool absorbs the orphan");
        assert_eq!(r.device_tasks[0] + r.device_tasks[1], 200);
        let total: f64 = cells.iter().sum();
        assert!((r.device_cells[0] + r.device_cells[1] - total).abs() < 1.0);
        // The accel pool completed exactly the chunks before the kill.
        assert_eq!(r.device_chunks[DEVICE_ACCEL], 2);
    }

    #[test]
    fn dual_pool_kill_at_first_chunk_degrades_to_cpu_only() {
        let cells = vec![1e6; 120];
        let mut cfg = dual_cfg();
        cfg.accel_fail_after_chunks = Some(0);
        let r = simulate_dual_pool(&cells, cfg);
        assert_eq!(r.degraded, [false, true]);
        assert_eq!(r.device_tasks[DEVICE_ACCEL], 0);
        assert_eq!(r.device_tasks[DEVICE_CPU], 120);
        assert_eq!(r.unrecovered_tasks, 0);
        // Degraded makespan matches a CPU-only run to first order: all
        // cells at CPU speed across the CPU workers.
        let cpu_only: f64 = 120.0 * 1e6 / 1e9 / 4.0;
        assert!(r.makespan >= cpu_only - 1e-9, "{}", r.makespan);
    }

    #[test]
    fn dual_pool_kill_never_reached_matches_clean_run() {
        let cells: Vec<f64> = (0..300).map(|i| ((i * 13) % 37 + 1) as f64 * 1e5).collect();
        let clean = simulate_dual_pool(&cells, dual_cfg());
        let mut cfg = dual_cfg();
        cfg.accel_fail_after_chunks = Some(1_000_000);
        let armed = simulate_dual_pool(&cells, cfg);
        assert_eq!(clean, armed, "unfired fault must not perturb the run");
        assert_eq!(clean.degraded, [false, false]);
        assert_eq!(clean.requeued_chunks, 0);
    }

    #[test]
    fn dual_pool_kill_with_no_survivors_loses_tasks() {
        let cells = vec![1e6; 80];
        let mut cfg = dual_cfg();
        cfg.cpu_workers = 0;
        cfg.accel_fail_after_chunks = Some(1);
        let r = simulate_dual_pool(&cells, cfg);
        assert_eq!(r.degraded, [false, true]);
        assert_eq!(r.device_tasks[DEVICE_CPU], 0);
        assert_eq!(
            r.device_chunks[DEVICE_ACCEL], 1,
            "one chunk before the kill"
        );
        assert_eq!(
            r.unrecovered_tasks, r.requeued_tasks,
            "no pool left to drain the requeue: the orphan stays orphaned"
        );
        assert!(r.unrecovered_tasks > 0);
        assert!(r.device_tasks[DEVICE_ACCEL] + r.unrecovered_tasks <= 80);
    }

    #[test]
    fn dual_pool_degraded_run_is_deterministic() {
        let cells: Vec<f64> = (0..250).map(|i| ((i * 7) % 23 + 1) as f64 * 2e5).collect();
        let mut cfg = dual_cfg();
        cfg.accel_fail_after_chunks = Some(3);
        let a = simulate_dual_pool(&cells, cfg);
        let b = simulate_dual_pool(&cells, cfg);
        assert_eq!(a, b);
        assert_eq!(a.degraded, [false, true]);
    }

    #[test]
    fn traced_sim_matches_untraced_and_validates() {
        let cells: Vec<f64> = (1..=150).map(|i| i as f64 * 1e6).collect();
        let plain = simulate_dual_pool(&cells, dual_cfg());
        let tracer = Tracer::full();
        let traced = simulate_dual_pool_traced(&cells, dual_cfg(), &tracer);
        assert_eq!(plain, traced, "tracing must not perturb the simulation");
        let tl = tracer.timeline();
        assert_eq!(
            tl.count("chunk_claim"),
            plain.device_chunks[0] + plain.device_chunks[1]
        );
        let text = sw_trace::export::jsonl(&tl);
        let rep = sw_trace::validate::validate_jsonl(&text).expect("sim trace validates");
        assert!(rep.spans >= plain.device_chunks[0] + plain.device_chunks[1]);
    }

    #[test]
    fn traced_sim_kill_emits_recovery_events() {
        let cells: Vec<f64> = (1..=120).map(|i| i as f64 * 1e6).collect();
        let mut cfg = dual_cfg();
        cfg.accel_fail_after_chunks = Some(1);
        let tracer = Tracer::full();
        let r = simulate_dual_pool_traced(&cells, cfg, &tracer);
        assert_eq!(r.degraded, [false, true]);
        let tl = tracer.timeline();
        assert_eq!(tl.count("lease_lost"), 1);
        assert_eq!(tl.count("lease_requeued"), 1);
        assert_eq!(tl.count("pool_retired"), 1);
        // The requeued range is re-claimed with a non-zero attempt count.
        let retry_claims = tl
            .events_sorted()
            .iter()
            .filter(|(_, _, ev)| {
                matches!(ev.kind, EventKind::ChunkClaim { attempts, .. } if attempts > 0)
            })
            .count();
        assert_eq!(retry_claims, 1);
        sw_trace::validate::validate_jsonl(&sw_trace::export::jsonl(&tl)).expect("valid");
    }

    #[test]
    #[should_panic(expected = "finite fraction")]
    fn dual_pool_rejects_bad_fraction() {
        let mut cfg = dual_cfg();
        cfg.initial_accel_fraction = 1.5;
        simulate_dual_pool(&[1.0], cfg);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn dual_pool_rejects_no_workers() {
        let mut cfg = dual_cfg();
        cfg.cpu_workers = 0;
        cfg.accel_workers = 0;
        simulate_dual_pool(&[1.0], cfg);
    }
}
