//! Scheduling metrics: load-imbalance statistics and the instrumented
//! per-worker/per-device sink the dual-pool executor reports through.
//!
//! §VI of the paper: *"The key to have good scalability in a heterogeneous
//! system is to find an optimal distribution workload."* These statistics
//! quantify how far a schedule (simulated or real) is from that optimum,
//! and [`MetricsSink`] records what each worker actually did so the engine
//! and the CLI can report the realised distribution.

use serde::{Deserialize, Serialize};
use std::sync::Mutex;
use std::time::Duration;

/// Imbalance statistics over per-worker busy times.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Imbalance {
    /// Longest worker busy time.
    pub max: f64,
    /// Shortest worker busy time.
    pub min: f64,
    /// Mean busy time.
    pub mean: f64,
    /// `max / mean` — 1.0 is perfect balance; the classic λ metric.
    pub lambda: f64,
    /// Coefficient of variation (stddev / mean).
    pub cv: f64,
}

/// Compute imbalance statistics. Returns `None` for an empty slice —
/// zero workers have no distribution to measure (this used to panic;
/// callers aggregating a retired or never-started pool hit the empty
/// case legitimately).
pub fn imbalance(busy: &[f64]) -> Option<Imbalance> {
    if busy.is_empty() {
        return None;
    }
    let n = busy.len() as f64;
    let max = busy.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = busy.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = busy.iter().sum::<f64>() / n;
    let var = busy.iter().map(|b| (b - mean) * (b - mean)).sum::<f64>() / n;
    let lambda = if mean == 0.0 { 1.0 } else { max / mean };
    let cv = if mean == 0.0 { 0.0 } else { var.sqrt() / mean };
    Some(Imbalance {
        max,
        min,
        mean,
        lambda,
        cv,
    })
}

/// What one worker did over one parallel region: recorded once, at worker
/// exit, into a [`MetricsSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerSample {
    /// Device the worker belongs to (0 = CPU share, 1 = accelerator
    /// share in the dual-pool executor).
    pub device: usize,
    /// Worker index within the device pool.
    pub worker: usize,
    /// Tasks executed.
    pub tasks: u64,
    /// Chunks grabbed from the shared queue.
    pub chunks: u64,
    /// Time spent executing tasks.
    pub busy: Duration,
    /// Time spent contending on the shared queue (grab + commit).
    pub queue_wait: Duration,
    /// DP cells processed (per the caller's cost function).
    pub cells: u64,
    /// Chunks this worker re-executed from the requeue list (work another
    /// worker failed, timed out on, or abandoned).
    pub retries: u64,
}

impl WorkerSample {
    /// A zeroed sample for `(device, worker)`.
    pub fn new(device: usize, worker: usize) -> Self {
        WorkerSample {
            device,
            worker,
            tasks: 0,
            chunks: 0,
            busy: Duration::ZERO,
            queue_wait: Duration::ZERO,
            cells: 0,
            retries: 0,
        }
    }
}

/// One recovery event charged to a device pool, recorded by the executor
/// as it happens (as opposed to [`WorkerSample`]s, recorded at exit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryEvent {
    /// A chunk held by the device was released un-executed and pushed to
    /// the requeue list (worker died or abandoned the lease).
    Requeue,
    /// A lease held by the device was reclaimed by another worker after
    /// exceeding its timeout (the holder wedged or stalled).
    LostLease,
    /// A failure charged against the device's failure budget (worker
    /// panic, injected kill, or lease timeout).
    Failure,
    /// The device's pool was retired before the queue drained (budget
    /// exhausted or pool killed) — the run degraded to the other pool.
    Degraded,
}

/// Aggregated view of one device's pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceMetrics {
    /// Device id.
    pub device: usize,
    /// Workers that reported.
    pub workers: usize,
    /// Total tasks executed by the pool.
    pub tasks: u64,
    /// Total chunks grabbed by the pool.
    pub chunks: u64,
    /// Summed busy time across the pool's workers.
    pub busy: Duration,
    /// Summed queue-contention time.
    pub queue_wait: Duration,
    /// Total DP cells processed.
    pub cells: u64,
    /// Chunks the pool re-executed from the requeue list.
    pub retries: u64,
    /// Chunks the pool released un-executed for others to re-run.
    pub requeues: u64,
    /// Leases reclaimed from the pool by timeout.
    pub lost_leases: u64,
    /// Failures charged against the pool's failure budget.
    pub failures: u64,
    /// True when the pool was retired before the queue drained.
    pub degraded: bool,
}

impl DeviceMetrics {
    /// Running throughput over the pool's busy time, in GCUPS. Zero when
    /// nothing was recorded (an idle pool has no throughput).
    pub fn gcups(&self) -> f64 {
        let secs = self.busy.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.cells as f64 / secs / 1e9
        }
    }

    /// Mean busy seconds per worker (0 for an empty pool).
    pub fn mean_busy_secs(&self) -> f64 {
        if self.workers == 0 {
            0.0
        } else {
            self.busy.as_secs_f64() / self.workers as f64
        }
    }

    /// Bridge to the trace exporters' counter struct. The Prometheus
    /// snapshot is built from the *same* aggregate the CLI prints, so
    /// exported counters match printed ones exactly.
    /// `overflow_recomputes` rides along because lane rescues are counted
    /// by the engine, not by this sink.
    pub fn counters(&self, overflow_recomputes: u64) -> sw_trace::DeviceCounters {
        sw_trace::DeviceCounters {
            device: self.device,
            workers: self.workers,
            tasks: self.tasks,
            chunks: self.chunks,
            cells: self.cells,
            busy_secs: self.busy.as_secs_f64(),
            queue_wait_secs: self.queue_wait.as_secs_f64(),
            retries: self.retries,
            requeues: self.requeues,
            lost_leases: self.lost_leases,
            failures: self.failures,
            degraded: self.degraded,
            overflow_recomputes,
        }
    }
}

/// Thread-safe collector of [`WorkerSample`]s for one parallel region.
///
/// Workers record exactly once at exit, so contention is negligible; the
/// engine and the CLI read the aggregate afterwards.
#[derive(Debug, Default)]
pub struct MetricsSink {
    samples: Mutex<Vec<WorkerSample>>,
    events: Mutex<Vec<(usize, RecoveryEvent)>>,
}

/// Locks never stay poisoned: a sink only stores plain data, so the value
/// inside a poisoned lock is still coherent (the panicking thread died
/// between whole-record pushes, not mid-write).
fn unpoison<T>(
    r: std::sync::LockResult<std::sync::MutexGuard<'_, T>>,
) -> std::sync::MutexGuard<'_, T> {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl MetricsSink {
    /// An empty sink.
    pub fn new() -> Self {
        MetricsSink::default()
    }

    /// Record one worker's sample.
    pub fn record(&self, sample: WorkerSample) {
        unpoison(self.samples.lock()).push(sample);
    }

    /// Record one recovery event against `device`.
    pub fn record_recovery(&self, device: usize, event: RecoveryEvent) {
        unpoison(self.events.lock()).push((device, event));
    }

    /// All recorded samples, ordered by `(device, worker)`.
    pub fn samples(&self) -> Vec<WorkerSample> {
        let mut v = unpoison(self.samples.lock()).clone();
        v.sort_by_key(|s| (s.device, s.worker));
        v
    }

    /// All recovery events in record order.
    pub fn recovery_events(&self) -> Vec<(usize, RecoveryEvent)> {
        unpoison(self.events.lock()).clone()
    }

    /// Aggregate the samples and recovery events of one device.
    pub fn device(&self, device: usize) -> DeviceMetrics {
        let mut out = DeviceMetrics {
            device,
            workers: 0,
            tasks: 0,
            chunks: 0,
            busy: Duration::ZERO,
            queue_wait: Duration::ZERO,
            cells: 0,
            retries: 0,
            requeues: 0,
            lost_leases: 0,
            failures: 0,
            degraded: false,
        };
        for s in unpoison(self.samples.lock()).iter() {
            if s.device == device {
                out.workers += 1;
                out.tasks += s.tasks;
                out.chunks += s.chunks;
                out.busy += s.busy;
                out.queue_wait += s.queue_wait;
                out.cells += s.cells;
                out.retries += s.retries;
            }
        }
        for &(d, event) in unpoison(self.events.lock()).iter() {
            if d == device {
                match event {
                    RecoveryEvent::Requeue => out.requeues += 1,
                    RecoveryEvent::LostLease => out.lost_leases += 1,
                    RecoveryEvent::Failure => out.failures += 1,
                    RecoveryEvent::Degraded => out.degraded = true,
                }
            }
        }
        out
    }

    /// Aggregates for every device that recorded at least one sample or
    /// recovery event, ordered by device id.
    pub fn devices(&self) -> Vec<DeviceMetrics> {
        let mut ids: Vec<usize> = unpoison(self.samples.lock())
            .iter()
            .map(|s| s.device)
            .chain(unpoison(self.events.lock()).iter().map(|&(d, _)| d))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter().map(|d| self.device(d)).collect()
    }

    /// Per-worker busy seconds of one device (for [`imbalance`]).
    pub fn busy_seconds(&self, device: usize) -> Vec<f64> {
        let mut v: Vec<(usize, f64)> = unpoison(self.samples.lock())
            .iter()
            .filter(|s| s.device == device)
            .map(|s| (s.worker, s.busy.as_secs_f64()))
            .collect();
        v.sort_by_key(|&(w, _)| w);
        v.into_iter().map(|(_, b)| b).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_balance() {
        let s = imbalance(&[2.0, 2.0, 2.0, 2.0]).expect("non-empty");
        assert_eq!(s.lambda, 1.0);
        assert_eq!(s.cv, 0.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.min, 2.0);
    }

    #[test]
    fn skewed_balance() {
        let s = imbalance(&[1.0, 3.0]).expect("non-empty");
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.lambda, 1.5);
        assert!((s.cv - 0.5).abs() < 1e-12);
    }

    #[test]
    fn all_idle_workers() {
        let s = imbalance(&[0.0, 0.0]).expect("non-empty");
        assert_eq!(s.lambda, 1.0);
        assert_eq!(s.cv, 0.0);
    }

    #[test]
    fn empty_yields_none() {
        // Previously a panic; an empty pool (retired before starting, or
        // a device that never reported) is a legitimate aggregation input.
        assert_eq!(imbalance(&[]), None);
    }

    #[test]
    fn integrates_with_simulator() {
        use crate::desim::simulate;
        use crate::policy::Policy;
        let costs: Vec<f64> = (1..=64).map(|i| i as f64).collect();
        let stat = imbalance(&simulate(&costs, 8, Policy::Static).busy).expect("8 workers");
        let dynm = imbalance(&simulate(&costs, 8, Policy::dynamic()).busy).expect("8 workers");
        assert!(dynm.lambda < stat.lambda, "dynamic must balance better");
    }

    #[test]
    fn sink_aggregates_per_device() {
        let sink = MetricsSink::new();
        sink.record(WorkerSample {
            tasks: 10,
            chunks: 3,
            busy: Duration::from_secs(2),
            queue_wait: Duration::from_millis(5),
            cells: 1_000_000_000,
            ..WorkerSample::new(0, 0)
        });
        sink.record(WorkerSample {
            tasks: 6,
            chunks: 2,
            busy: Duration::from_secs(2),
            cells: 3_000_000_000,
            retries: 2,
            ..WorkerSample::new(0, 1)
        });
        sink.record(WorkerSample {
            tasks: 4,
            chunks: 4,
            busy: Duration::from_secs(1),
            cells: 500_000_000,
            ..WorkerSample::new(1, 0)
        });
        let cpu = sink.device(0);
        assert_eq!(cpu.workers, 2);
        assert_eq!(cpu.tasks, 16);
        assert_eq!(cpu.chunks, 5);
        assert_eq!(cpu.cells, 4_000_000_000);
        assert_eq!(cpu.retries, 2);
        assert!(!cpu.degraded);
        assert!(
            (cpu.gcups() - 1.0).abs() < 1e-9,
            "4e9 cells over 4 busy seconds"
        );
        let accel = sink.device(1);
        assert_eq!(accel.tasks, 4);
        assert!((accel.gcups() - 0.5).abs() < 1e-9);
        assert_eq!(sink.devices().len(), 2);
        assert_eq!(sink.busy_seconds(0), vec![2.0, 2.0]);
    }

    #[test]
    fn idle_device_reports_zero_gcups() {
        let sink = MetricsSink::new();
        sink.record(WorkerSample::new(0, 0));
        let m = sink.device(0);
        assert_eq!(m.gcups(), 0.0);
        assert_eq!(m.tasks, 0);
        assert_eq!(m.mean_busy_secs(), 0.0);
    }

    #[test]
    fn recovery_events_aggregate_per_device() {
        let sink = MetricsSink::new();
        sink.record(WorkerSample::new(0, 0));
        sink.record_recovery(1, RecoveryEvent::Failure);
        sink.record_recovery(1, RecoveryEvent::Requeue);
        sink.record_recovery(1, RecoveryEvent::LostLease);
        sink.record_recovery(1, RecoveryEvent::Failure);
        sink.record_recovery(1, RecoveryEvent::Degraded);
        let accel = sink.device(1);
        assert_eq!(accel.failures, 2);
        assert_eq!(accel.requeues, 1);
        assert_eq!(accel.lost_leases, 1);
        assert!(accel.degraded);
        assert_eq!(accel.workers, 0, "no samples, only events");
        let cpu = sink.device(0);
        assert_eq!(cpu.failures, 0);
        assert!(!cpu.degraded);
        // devices() lists a device known only through events.
        assert_eq!(sink.devices().len(), 2);
        assert_eq!(sink.recovery_events().len(), 5);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        // N threads × M samples (plus recovery events) hammering one
        // sink: nothing may be lost and device() aggregation must be
        // exactly the closed-form totals.
        const THREADS: usize = 8;
        const SAMPLES: u64 = 250;
        let sink = MetricsSink::new();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let sink = &sink;
                scope.spawn(move || {
                    let device = t % 2;
                    for m in 0..SAMPLES {
                        sink.record(WorkerSample {
                            tasks: 1,
                            chunks: 1,
                            cells: m + 1,
                            busy: Duration::from_micros(10),
                            ..WorkerSample::new(device, t)
                        });
                        if m.is_multiple_of(50) {
                            sink.record_recovery(device, RecoveryEvent::Requeue);
                        }
                    }
                });
            }
        });
        let all = sink.samples();
        assert_eq!(all.len(), THREADS * SAMPLES as usize, "no lost samples");
        let per_thread_cells: u64 = (1..=SAMPLES).sum();
        let cpu = sink.device(0);
        let accel = sink.device(1);
        for d in [&cpu, &accel] {
            assert_eq!(d.tasks, (THREADS as u64 / 2) * SAMPLES);
            assert_eq!(d.chunks, (THREADS as u64 / 2) * SAMPLES);
            assert_eq!(d.cells, (THREADS as u64 / 2) * per_thread_cells);
            assert_eq!(d.requeues, (THREADS as u64 / 2) * SAMPLES.div_ceil(50));
            assert_eq!(d.workers, THREADS * SAMPLES as usize / 2);
        }
        // Aggregation is stable: repeated reads see the same totals.
        assert_eq!(sink.device(0), cpu);
        assert_eq!(sink.device(1), accel);
        assert_eq!(sink.devices(), vec![cpu, accel]);
    }

    #[test]
    fn samples_sorted_by_device_then_worker() {
        let sink = MetricsSink::new();
        sink.record(WorkerSample::new(1, 1));
        sink.record(WorkerSample::new(0, 1));
        sink.record(WorkerSample::new(1, 0));
        sink.record(WorkerSample::new(0, 0));
        let order: Vec<(usize, usize)> = sink
            .samples()
            .iter()
            .map(|s| (s.device, s.worker))
            .collect();
        assert_eq!(order, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }
}
