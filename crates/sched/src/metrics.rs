//! Scheduling metrics: load-imbalance statistics and the instrumented
//! per-worker/per-device sink the dual-pool executor reports through.
//!
//! §VI of the paper: *"The key to have good scalability in a heterogeneous
//! system is to find an optimal distribution workload."* These statistics
//! quantify how far a schedule (simulated or real) is from that optimum,
//! and [`MetricsSink`] records what each worker actually did so the engine
//! and the CLI can report the realised distribution.

use serde::{Deserialize, Serialize};
use std::sync::Mutex;
use std::time::Duration;

/// Imbalance statistics over per-worker busy times.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Imbalance {
    /// Longest worker busy time.
    pub max: f64,
    /// Shortest worker busy time.
    pub min: f64,
    /// Mean busy time.
    pub mean: f64,
    /// `max / mean` — 1.0 is perfect balance; the classic λ metric.
    pub lambda: f64,
    /// Coefficient of variation (stddev / mean).
    pub cv: f64,
}

/// Compute imbalance statistics.
///
/// # Panics
/// Panics on an empty slice.
pub fn imbalance(busy: &[f64]) -> Imbalance {
    assert!(!busy.is_empty(), "need at least one worker");
    let n = busy.len() as f64;
    let max = busy.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = busy.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = busy.iter().sum::<f64>() / n;
    let var = busy.iter().map(|b| (b - mean) * (b - mean)).sum::<f64>() / n;
    let lambda = if mean == 0.0 { 1.0 } else { max / mean };
    let cv = if mean == 0.0 { 0.0 } else { var.sqrt() / mean };
    Imbalance {
        max,
        min,
        mean,
        lambda,
        cv,
    }
}

/// What one worker did over one parallel region: recorded once, at worker
/// exit, into a [`MetricsSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerSample {
    /// Device the worker belongs to (0 = CPU share, 1 = accelerator
    /// share in the dual-pool executor).
    pub device: usize,
    /// Worker index within the device pool.
    pub worker: usize,
    /// Tasks executed.
    pub tasks: u64,
    /// Chunks grabbed from the shared queue.
    pub chunks: u64,
    /// Time spent executing tasks.
    pub busy: Duration,
    /// Time spent contending on the shared queue (grab + commit).
    pub queue_wait: Duration,
    /// DP cells processed (per the caller's cost function).
    pub cells: u64,
}

impl WorkerSample {
    /// A zeroed sample for `(device, worker)`.
    pub fn new(device: usize, worker: usize) -> Self {
        WorkerSample {
            device,
            worker,
            tasks: 0,
            chunks: 0,
            busy: Duration::ZERO,
            queue_wait: Duration::ZERO,
            cells: 0,
        }
    }
}

/// Aggregated view of one device's pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceMetrics {
    /// Device id.
    pub device: usize,
    /// Workers that reported.
    pub workers: usize,
    /// Total tasks executed by the pool.
    pub tasks: u64,
    /// Total chunks grabbed by the pool.
    pub chunks: u64,
    /// Summed busy time across the pool's workers.
    pub busy: Duration,
    /// Summed queue-contention time.
    pub queue_wait: Duration,
    /// Total DP cells processed.
    pub cells: u64,
}

impl DeviceMetrics {
    /// Running throughput over the pool's busy time, in GCUPS. Zero when
    /// nothing was recorded (an idle pool has no throughput).
    pub fn gcups(&self) -> f64 {
        let secs = self.busy.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.cells as f64 / secs / 1e9
        }
    }

    /// Mean busy seconds per worker (0 for an empty pool).
    pub fn mean_busy_secs(&self) -> f64 {
        if self.workers == 0 {
            0.0
        } else {
            self.busy.as_secs_f64() / self.workers as f64
        }
    }
}

/// Thread-safe collector of [`WorkerSample`]s for one parallel region.
///
/// Workers record exactly once at exit, so contention is negligible; the
/// engine and the CLI read the aggregate afterwards.
#[derive(Debug, Default)]
pub struct MetricsSink {
    samples: Mutex<Vec<WorkerSample>>,
}

impl MetricsSink {
    /// An empty sink.
    pub fn new() -> Self {
        MetricsSink::default()
    }

    /// Record one worker's sample.
    pub fn record(&self, sample: WorkerSample) {
        self.samples
            .lock()
            .expect("metrics sink poisoned")
            .push(sample);
    }

    /// All recorded samples, ordered by `(device, worker)`.
    pub fn samples(&self) -> Vec<WorkerSample> {
        let mut v = self.samples.lock().expect("metrics sink poisoned").clone();
        v.sort_by_key(|s| (s.device, s.worker));
        v
    }

    /// Aggregate the samples of one device.
    pub fn device(&self, device: usize) -> DeviceMetrics {
        let mut out = DeviceMetrics {
            device,
            workers: 0,
            tasks: 0,
            chunks: 0,
            busy: Duration::ZERO,
            queue_wait: Duration::ZERO,
            cells: 0,
        };
        for s in self.samples.lock().expect("metrics sink poisoned").iter() {
            if s.device == device {
                out.workers += 1;
                out.tasks += s.tasks;
                out.chunks += s.chunks;
                out.busy += s.busy;
                out.queue_wait += s.queue_wait;
                out.cells += s.cells;
            }
        }
        out
    }

    /// Aggregates for every device that recorded at least one sample,
    /// ordered by device id.
    pub fn devices(&self) -> Vec<DeviceMetrics> {
        let mut ids: Vec<usize> = self
            .samples
            .lock()
            .expect("metrics sink poisoned")
            .iter()
            .map(|s| s.device)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter().map(|d| self.device(d)).collect()
    }

    /// Per-worker busy seconds of one device (for [`imbalance`]).
    pub fn busy_seconds(&self, device: usize) -> Vec<f64> {
        let mut v: Vec<(usize, f64)> = self
            .samples
            .lock()
            .expect("metrics sink poisoned")
            .iter()
            .filter(|s| s.device == device)
            .map(|s| (s.worker, s.busy.as_secs_f64()))
            .collect();
        v.sort_by_key(|&(w, _)| w);
        v.into_iter().map(|(_, b)| b).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_balance() {
        let s = imbalance(&[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(s.lambda, 1.0);
        assert_eq!(s.cv, 0.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.min, 2.0);
    }

    #[test]
    fn skewed_balance() {
        let s = imbalance(&[1.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.lambda, 1.5);
        assert!((s.cv - 0.5).abs() < 1e-12);
    }

    #[test]
    fn all_idle_workers() {
        let s = imbalance(&[0.0, 0.0]);
        assert_eq!(s.lambda, 1.0);
        assert_eq!(s.cv, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_rejected() {
        imbalance(&[]);
    }

    #[test]
    fn integrates_with_simulator() {
        use crate::desim::simulate;
        use crate::policy::Policy;
        let costs: Vec<f64> = (1..=64).map(|i| i as f64).collect();
        let stat = imbalance(&simulate(&costs, 8, Policy::Static).busy);
        let dynm = imbalance(&simulate(&costs, 8, Policy::dynamic()).busy);
        assert!(dynm.lambda < stat.lambda, "dynamic must balance better");
    }

    #[test]
    fn sink_aggregates_per_device() {
        let sink = MetricsSink::new();
        sink.record(WorkerSample {
            device: 0,
            worker: 0,
            tasks: 10,
            chunks: 3,
            busy: Duration::from_secs(2),
            queue_wait: Duration::from_millis(5),
            cells: 1_000_000_000,
        });
        sink.record(WorkerSample {
            device: 0,
            worker: 1,
            tasks: 6,
            chunks: 2,
            busy: Duration::from_secs(2),
            queue_wait: Duration::ZERO,
            cells: 3_000_000_000,
        });
        sink.record(WorkerSample {
            device: 1,
            worker: 0,
            tasks: 4,
            chunks: 4,
            busy: Duration::from_secs(1),
            queue_wait: Duration::ZERO,
            cells: 500_000_000,
        });
        let cpu = sink.device(0);
        assert_eq!(cpu.workers, 2);
        assert_eq!(cpu.tasks, 16);
        assert_eq!(cpu.chunks, 5);
        assert_eq!(cpu.cells, 4_000_000_000);
        assert!(
            (cpu.gcups() - 1.0).abs() < 1e-9,
            "4e9 cells over 4 busy seconds"
        );
        let accel = sink.device(1);
        assert_eq!(accel.tasks, 4);
        assert!((accel.gcups() - 0.5).abs() < 1e-9);
        assert_eq!(sink.devices().len(), 2);
        assert_eq!(sink.busy_seconds(0), vec![2.0, 2.0]);
    }

    #[test]
    fn idle_device_reports_zero_gcups() {
        let sink = MetricsSink::new();
        sink.record(WorkerSample::new(0, 0));
        let m = sink.device(0);
        assert_eq!(m.gcups(), 0.0);
        assert_eq!(m.tasks, 0);
        assert_eq!(m.mean_busy_secs(), 0.0);
    }

    #[test]
    fn samples_sorted_by_device_then_worker() {
        let sink = MetricsSink::new();
        sink.record(WorkerSample::new(1, 1));
        sink.record(WorkerSample::new(0, 1));
        sink.record(WorkerSample::new(1, 0));
        sink.record(WorkerSample::new(0, 0));
        let order: Vec<(usize, usize)> = sink
            .samples()
            .iter()
            .map(|s| (s.device, s.worker))
            .collect();
        assert_eq!(order, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }
}
