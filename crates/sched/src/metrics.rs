//! Load-imbalance metrics.
//!
//! §VI of the paper: *"The key to have good scalability in a heterogeneous
//! system is to find an optimal distribution workload."* These statistics
//! quantify how far a schedule (simulated or real) is from that optimum.

use serde::{Deserialize, Serialize};

/// Imbalance statistics over per-worker busy times.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Imbalance {
    /// Longest worker busy time.
    pub max: f64,
    /// Shortest worker busy time.
    pub min: f64,
    /// Mean busy time.
    pub mean: f64,
    /// `max / mean` — 1.0 is perfect balance; the classic λ metric.
    pub lambda: f64,
    /// Coefficient of variation (stddev / mean).
    pub cv: f64,
}

/// Compute imbalance statistics.
///
/// # Panics
/// Panics on an empty slice.
pub fn imbalance(busy: &[f64]) -> Imbalance {
    assert!(!busy.is_empty(), "need at least one worker");
    let n = busy.len() as f64;
    let max = busy.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = busy.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = busy.iter().sum::<f64>() / n;
    let var = busy.iter().map(|b| (b - mean) * (b - mean)).sum::<f64>() / n;
    let lambda = if mean == 0.0 { 1.0 } else { max / mean };
    let cv = if mean == 0.0 { 0.0 } else { var.sqrt() / mean };
    Imbalance { max, min, mean, lambda, cv }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_balance() {
        let s = imbalance(&[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(s.lambda, 1.0);
        assert_eq!(s.cv, 0.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.min, 2.0);
    }

    #[test]
    fn skewed_balance() {
        let s = imbalance(&[1.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.lambda, 1.5);
        assert!((s.cv - 0.5).abs() < 1e-12);
    }

    #[test]
    fn all_idle_workers() {
        let s = imbalance(&[0.0, 0.0]);
        assert_eq!(s.lambda, 1.0);
        assert_eq!(s.cv, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_rejected() {
        imbalance(&[]);
    }

    #[test]
    fn integrates_with_simulator() {
        use crate::desim::simulate;
        use crate::policy::Policy;
        let costs: Vec<f64> = (1..=64).map(|i| i as f64).collect();
        let stat = imbalance(&simulate(&costs, 8, Policy::Static).busy);
        let dynm = imbalance(&simulate(&costs, 8, Policy::dynamic()).busy);
        assert!(dynm.lambda < stat.lambda, "dynamic must balance better");
    }
}
