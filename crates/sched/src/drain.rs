//! Graceful drain signalling for the dual-pool executor.
//!
//! A durable search must be stoppable without corrupting its results: on
//! SIGINT/SIGTERM the CLI flips a [`DrainSignal`] and the executor's
//! workers finish the chunks they already hold, commit them, write a
//! final checkpoint, and exit — no half-aligned batch is ever recorded.
//! The signal is a plain set of atomics with a `const fn` constructor so
//! a signal handler can flip a `static DRAIN: DrainSignal` without any
//! allocation or locking (signal handlers may only do async-signal-safe
//! work).
//!
//! Tests drive the same path deterministically through
//! [`DrainSignal::after_tasks`]: the executor reports committed-task
//! counts via [`DrainSignal::note_tasks_done`] and the signal requests
//! itself once the threshold is crossed, which makes "drain at 50% of
//! the search" a reproducible scenario rather than a timing race.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A cooperative stop request shared between a signal handler (or test)
/// and the executor's worker pools.
///
/// Signals can be *scoped*: [`DrainSignal::scoped`] links a per-search
/// signal to a `'static` process-wide parent (typically the one flipped
/// by the SIGINT/SIGTERM handler). A scoped signal observes its own
/// request **or** the parent's, so a daemon can drain one job via the
/// job's own signal while a process-level signal still drains every job
/// at once. Requesting a scoped signal never propagates upward.
#[derive(Debug)]
pub struct DrainSignal {
    requested: AtomicBool,
    /// Auto-request once this many tasks have been committed (0 = never).
    after_tasks: AtomicU64,
    /// Set by the first worker to observe the request, so the
    /// `drain_started` trace event is emitted exactly once.
    announced: AtomicBool,
    /// Optional process-wide parent; `is_requested` ORs it in.
    parent: Option<&'static DrainSignal>,
}

impl Default for DrainSignal {
    fn default() -> Self {
        DrainSignal::new()
    }
}

impl DrainSignal {
    /// A signal that never fires on its own (`const` so it can back a
    /// `static` flipped from a signal handler).
    pub const fn new() -> Self {
        DrainSignal {
            requested: AtomicBool::new(false),
            after_tasks: AtomicU64::new(0),
            announced: AtomicBool::new(false),
            parent: None,
        }
    }

    /// A per-search signal linked to a process-wide parent: it reports
    /// requested when either it *or* the parent has been requested, so a
    /// single job can be drained without stopping the process while a
    /// process-level drain (SIGTERM) still stops every linked job.
    pub const fn scoped(parent: &'static DrainSignal) -> Self {
        DrainSignal {
            requested: AtomicBool::new(false),
            after_tasks: AtomicU64::new(0),
            announced: AtomicBool::new(false),
            parent: Some(parent),
        }
    }

    /// A signal that auto-requests once `n` tasks have been committed.
    /// `n = 0` disables the threshold. Used by tests and the crash
    /// harness to stop a run at a deterministic point.
    pub fn after_tasks(n: u64) -> Self {
        let s = DrainSignal::new();
        s.after_tasks.store(n, Ordering::Relaxed);
        s
    }

    /// Request a drain. Async-signal-safe (a single atomic store).
    pub fn request(&self) {
        self.requested.store(true, Ordering::Release);
    }

    /// True once a drain has been requested on this signal or, for a
    /// scoped signal, on its process-wide parent.
    pub fn is_requested(&self) -> bool {
        self.requested.load(Ordering::Acquire) || self.parent.is_some_and(|p| p.is_requested())
    }

    /// Executor hook: called with the cumulative committed-task count;
    /// trips the request once the `after_tasks` threshold is reached.
    pub fn note_tasks_done(&self, done: u64) {
        let thr = self.after_tasks.load(Ordering::Relaxed);
        if thr > 0 && done >= thr {
            self.request();
        }
    }

    /// Returns true exactly once, for the first caller after the request
    /// — the winner emits the `drain_started` trace event.
    pub fn announce_once(&self) -> bool {
        self.is_requested()
            && self
                .announced
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_request_and_single_announce() {
        let s = DrainSignal::new();
        assert!(!s.is_requested());
        assert!(!s.announce_once(), "no announce before a request");
        s.request();
        assert!(s.is_requested());
        assert!(s.announce_once());
        assert!(!s.announce_once(), "announce fires exactly once");
    }

    #[test]
    fn task_threshold_trips_the_request() {
        let s = DrainSignal::after_tasks(10);
        s.note_tasks_done(9);
        assert!(!s.is_requested());
        s.note_tasks_done(10);
        assert!(s.is_requested());
    }

    #[test]
    fn zero_threshold_never_fires() {
        let s = DrainSignal::new();
        s.note_tasks_done(u64::MAX);
        assert!(!s.is_requested());
    }

    #[test]
    fn const_new_backs_a_static() {
        static S: DrainSignal = DrainSignal::new();
        assert!(!S.is_requested());
    }

    #[test]
    fn scoped_signal_drains_alone_without_touching_parent() {
        static PARENT: DrainSignal = DrainSignal::new();
        let job_a = DrainSignal::scoped(&PARENT);
        let job_b = DrainSignal::scoped(&PARENT);
        job_a.request();
        assert!(job_a.is_requested());
        assert!(!job_b.is_requested(), "sibling job keeps running");
        assert!(!PARENT.is_requested(), "child request never propagates up");
    }

    #[test]
    fn parent_request_drains_every_scoped_child() {
        static PARENT2: DrainSignal = DrainSignal::new();
        let job_a = DrainSignal::scoped(&PARENT2);
        let job_b = DrainSignal::scoped(&PARENT2);
        PARENT2.request();
        assert!(job_a.is_requested());
        assert!(job_b.is_requested());
        // Each child still announces independently (one trace event per job).
        assert!(job_a.announce_once());
        assert!(job_b.announce_once());
        assert!(!job_a.announce_once());
    }
}
