//! OpenMP-style scheduling policies as explicit chunk generators.
//!
//! A policy answers one question: *when a worker becomes free, which
//! contiguous range of loop iterations does it take next?* Modelling this
//! explicitly lets the simulator and the real executor share semantics
//! exactly.

use serde::{Deserialize, Serialize};

/// The three `schedule(...)` kinds the paper evaluates (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// `schedule(static)`: iterations pre-partitioned into one contiguous
    /// block per worker.
    Static,
    /// `schedule(dynamic, chunk)`: free workers grab `chunk` iterations
    /// from a shared counter. The paper's winner.
    Dynamic {
        /// Iterations per grab (OpenMP default 1).
        chunk: usize,
    },
    /// `schedule(guided, min_chunk)`: grab size decays with remaining
    /// work: `max(remaining / (2·workers), min_chunk)`.
    Guided {
        /// Smallest grab (OpenMP default 1).
        min_chunk: usize,
    },
}

impl Policy {
    /// Dynamic with the OpenMP default chunk of 1.
    pub fn dynamic() -> Self {
        Policy::Dynamic { chunk: 1 }
    }

    /// Guided with the OpenMP default minimum chunk of 1.
    pub fn guided() -> Self {
        Policy::Guided { min_chunk: 1 }
    }

    /// Paper-style label for tables.
    pub fn label(&self) -> String {
        match self {
            Policy::Static => "static".to_string(),
            Policy::Dynamic { chunk } => format!("dynamic({chunk})"),
            Policy::Guided { min_chunk } => format!("guided({min_chunk})"),
        }
    }
}

/// The static pre-partition: contiguous ranges, remainder spread over the
/// first workers (OpenMP-conformant block schedule).
pub fn static_partition(n_tasks: usize, workers: usize) -> Vec<(usize, usize)> {
    assert!(workers >= 1, "need at least one worker");
    let base = n_tasks / workers;
    let extra = n_tasks % workers;
    let mut out = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Shared-counter chunk dispenser used by dynamic/guided scheduling.
#[derive(Debug)]
pub struct ChunkDispenser {
    policy: Policy,
    workers: usize,
    n_tasks: usize,
    next: usize,
}

impl ChunkDispenser {
    /// A dispenser over `n_tasks` iterations for `workers` workers.
    ///
    /// # Panics
    /// Panics for [`Policy::Static`] (static scheduling has no shared
    /// counter — use [`static_partition`]).
    pub fn new(policy: Policy, n_tasks: usize, workers: usize) -> Self {
        assert!(
            !matches!(policy, Policy::Static),
            "static scheduling is a pre-partition, not a dispenser"
        );
        assert!(workers >= 1, "need at least one worker");
        ChunkDispenser { policy, workers, n_tasks, next: 0 }
    }

    /// Next chunk `[start, end)`, or `None` when the loop is exhausted.
    pub fn grab(&mut self) -> Option<(usize, usize)> {
        if self.next >= self.n_tasks {
            return None;
        }
        let remaining = self.n_tasks - self.next;
        let size = match self.policy {
            Policy::Dynamic { chunk } => chunk.max(1),
            Policy::Guided { min_chunk } => {
                (remaining / (2 * self.workers)).max(min_chunk.max(1))
            }
            Policy::Static => unreachable!("rejected in new()"),
        }
        .min(remaining);
        let start = self.next;
        self.next += size;
        Some((start, start + size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_partition_covers_everything() {
        let parts = static_partition(10, 3);
        assert_eq!(parts, vec![(0, 4), (4, 7), (7, 10)]);
        let total: usize = parts.iter().map(|(s, e)| e - s).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn static_partition_more_workers_than_tasks() {
        let parts = static_partition(2, 5);
        assert_eq!(parts.iter().filter(|(s, e)| e > s).count(), 2);
        assert_eq!(parts.len(), 5);
    }

    #[test]
    fn dynamic_dispenser_unit_chunks() {
        let mut d = ChunkDispenser::new(Policy::dynamic(), 3, 8);
        assert_eq!(d.grab(), Some((0, 1)));
        assert_eq!(d.grab(), Some((1, 2)));
        assert_eq!(d.grab(), Some((2, 3)));
        assert_eq!(d.grab(), None);
    }

    #[test]
    fn dynamic_dispenser_chunked() {
        let mut d = ChunkDispenser::new(Policy::Dynamic { chunk: 4 }, 10, 2);
        assert_eq!(d.grab(), Some((0, 4)));
        assert_eq!(d.grab(), Some((4, 8)));
        assert_eq!(d.grab(), Some((8, 10)), "tail chunk is truncated");
        assert_eq!(d.grab(), None);
    }

    #[test]
    fn guided_chunks_decay() {
        let mut d = ChunkDispenser::new(Policy::guided(), 100, 4);
        let first = d.grab().unwrap();
        assert_eq!(first, (0, 12)); // 100 / (2·4) = 12
        let second = d.grab().unwrap();
        assert_eq!(second.1 - second.0, 11); // 88 / 8 = 11
        // Drain; sizes never grow and everything is covered exactly once.
        let mut covered = second.1;
        let mut last = second.1 - second.0;
        while let Some((s, e)) = d.grab() {
            assert_eq!(s, covered);
            assert!(e - s <= last);
            last = (e - s).max(1);
            covered = e;
        }
        assert_eq!(covered, 100);
    }

    #[test]
    fn guided_respects_min_chunk() {
        let mut d = ChunkDispenser::new(Policy::Guided { min_chunk: 7 }, 20, 10);
        let (s, e) = d.grab().unwrap();
        assert_eq!((s, e), (0, 7));
    }

    #[test]
    #[should_panic(expected = "pre-partition")]
    fn static_dispenser_rejected() {
        ChunkDispenser::new(Policy::Static, 10, 2);
    }

    #[test]
    fn labels() {
        assert_eq!(Policy::Static.label(), "static");
        assert_eq!(Policy::dynamic().label(), "dynamic(1)");
        assert_eq!(Policy::Guided { min_chunk: 2 }.label(), "guided(2)");
    }

    #[test]
    fn empty_loop() {
        let mut d = ChunkDispenser::new(Policy::dynamic(), 0, 4);
        assert_eq!(d.grab(), None);
        assert!(static_partition(0, 3).iter().all(|(s, e)| s == e));
    }
}
