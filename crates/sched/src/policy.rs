//! OpenMP-style scheduling policies as explicit chunk generators.
//!
//! A policy answers one question: *when a worker becomes free, which
//! contiguous range of loop iterations does it take next?* Modelling this
//! explicitly lets the simulator and the real executor share semantics
//! exactly.

use serde::{Deserialize, Serialize};

/// The three `schedule(...)` kinds the paper evaluates (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// `schedule(static)`: iterations pre-partitioned into one contiguous
    /// block per worker.
    Static,
    /// `schedule(dynamic, chunk)`: free workers grab `chunk` iterations
    /// from a shared counter. The paper's winner.
    Dynamic {
        /// Iterations per grab (OpenMP default 1).
        chunk: usize,
    },
    /// `schedule(guided, min_chunk)`: grab size decays with remaining
    /// work: `max(remaining / (2·workers), min_chunk)`.
    Guided {
        /// Smallest grab (OpenMP default 1).
        min_chunk: usize,
    },
}

impl Policy {
    /// Dynamic with the OpenMP default chunk of 1.
    pub fn dynamic() -> Self {
        Policy::Dynamic { chunk: 1 }
    }

    /// Guided with the OpenMP default minimum chunk of 1.
    pub fn guided() -> Self {
        Policy::Guided { min_chunk: 1 }
    }

    /// Paper-style label for tables.
    pub fn label(&self) -> String {
        match self {
            Policy::Static => "static".to_string(),
            Policy::Dynamic { chunk } => format!("dynamic({chunk})"),
            Policy::Guided { min_chunk } => format!("guided({min_chunk})"),
        }
    }
}

/// The static pre-partition: contiguous ranges, remainder spread over the
/// first workers (OpenMP-conformant block schedule).
pub fn static_partition(n_tasks: usize, workers: usize) -> Vec<(usize, usize)> {
    assert!(workers >= 1, "need at least one worker");
    let base = n_tasks / workers;
    let extra = n_tasks % workers;
    let mut out = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Shared-counter chunk dispenser used by dynamic/guided scheduling.
#[derive(Debug)]
pub struct ChunkDispenser {
    policy: Policy,
    workers: usize,
    n_tasks: usize,
    next: usize,
}

impl ChunkDispenser {
    /// A dispenser over `n_tasks` iterations for `workers` workers.
    ///
    /// # Panics
    /// Panics for [`Policy::Static`] (static scheduling has no shared
    /// counter — use [`static_partition`]).
    pub fn new(policy: Policy, n_tasks: usize, workers: usize) -> Self {
        assert!(
            !matches!(policy, Policy::Static),
            "static scheduling is a pre-partition, not a dispenser"
        );
        assert!(workers >= 1, "need at least one worker");
        ChunkDispenser {
            policy,
            workers,
            n_tasks,
            next: 0,
        }
    }

    /// Next chunk `[start, end)`, or `None` when the loop is exhausted.
    pub fn grab(&mut self) -> Option<(usize, usize)> {
        if self.next >= self.n_tasks {
            return None;
        }
        let remaining = self.n_tasks - self.next;
        let size = match self.policy {
            Policy::Dynamic { chunk } => chunk.max(1),
            Policy::Guided { min_chunk } => (remaining / (2 * self.workers)).max(min_chunk.max(1)),
            Policy::Static => unreachable!("rejected in new()"),
        }
        .min(remaining);
        let start = self.next;
        self.next += size;
        Some((start, start + size))
    }
}

/// The two device pools of the heterogeneous dual-pool scheduler.
///
/// Device 0 is the CPU share (pulls short sequences from the *front* of
/// the length-sorted task list), device 1 the accelerator share (pulls
/// long sequences from the *back*, which amortise per-task overheads
/// best — the same assignment Algorithm 2 makes statically).
pub const DEVICE_CPU: usize = 0;
/// The accelerator-share device id. See [`DEVICE_CPU`].
pub const DEVICE_ACCEL: usize = 1;

/// A double-ended index queue over `0..n` tasks: the CPU pool consumes
/// from the front, the accelerator pool from the back, and the pools meet
/// wherever observed throughput puts the boundary — the *dynamic*
/// replacement for Algorithm 2's static split point.
///
/// This sequential form is what the discrete-event simulator replays; the
/// real executor packs the same two cursors into one atomic word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DualQueue {
    front: usize,
    back: usize,
}

impl DualQueue {
    /// A queue over `0..n_tasks`.
    pub fn new(n_tasks: usize) -> Self {
        DualQueue {
            front: 0,
            back: n_tasks,
        }
    }

    /// Tasks not yet claimed by either pool.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.back - self.front
    }

    /// Claim up to `k` tasks from the front (CPU side). Returns the
    /// claimed `[start, end)` range, or `None` when the queue is drained.
    pub fn take_front(&mut self, k: usize) -> Option<(usize, usize)> {
        if self.front >= self.back {
            return None;
        }
        let k = k.max(1).min(self.remaining());
        let start = self.front;
        self.front += k;
        Some((start, start + k))
    }

    /// Claim up to `k` tasks from the back (accelerator side).
    pub fn take_back(&mut self, k: usize) -> Option<(usize, usize)> {
        if self.front >= self.back {
            return None;
        }
        let k = k.max(1).min(self.remaining());
        let end = self.back;
        self.back -= k;
        Some((end - k, end))
    }
}

/// Adaptive feedback estimator for the dual-pool scheduler.
///
/// Starts from the static plan's accelerator share (`plan_split` stays
/// the *initial* assignment) and, once both devices have measured
/// throughput, re-balances the remaining queue from the observed
/// cells-per-second of each pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitEstimator {
    initial_accel_share: f64,
}

impl SplitEstimator {
    /// An estimator seeded with the static plan's accelerator share.
    ///
    /// # Panics
    /// Panics when `initial_accel_share` is NaN or outside `[0, 1]` — a
    /// nonsense seed would silently mis-size every chunk.
    pub fn new(initial_accel_share: f64) -> Self {
        assert!(
            initial_accel_share.is_finite() && (0.0..=1.0).contains(&initial_accel_share),
            "initial accelerator share must be a finite fraction in [0, 1], got \
             {initial_accel_share}"
        );
        SplitEstimator {
            initial_accel_share,
        }
    }

    /// The accelerator's share of the *remaining* work, from observed
    /// per-device progress (cells processed over busy nanoseconds). Until
    /// both devices have measurements, the static plan's share is used.
    /// The result is clamped to `[0.02, 0.98]` so neither pool's chunk
    /// size collapses to zero on a transient estimate.
    pub fn accel_share(
        &self,
        cpu_cells: u64,
        cpu_busy_nanos: u64,
        accel_cells: u64,
        accel_busy_nanos: u64,
    ) -> f64 {
        if cpu_busy_nanos == 0 || accel_busy_nanos == 0 {
            return self.initial_accel_share;
        }
        let cpu_rate = cpu_cells as f64 / cpu_busy_nanos as f64;
        let accel_rate = accel_cells as f64 / accel_busy_nanos as f64;
        if cpu_rate + accel_rate <= 0.0 {
            return self.initial_accel_share;
        }
        (accel_rate / (cpu_rate + accel_rate)).clamp(0.02, 0.98)
    }
}

/// Chunk ranges released by failed, timed-out, or killed workers, waiting
/// to be re-executed by a surviving worker.
///
/// Requeued ranges take priority over fresh queue grabs, and each carries
/// an attempt count so a deterministically-failing chunk cannot ping-pong
/// forever. This is the recovery primitive shared by the real executor
/// (wrapped in a mutex inside its lease table) and the discrete-event
/// simulator, so both replay the same recovery algorithm.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RequeueQueue {
    ranges: Vec<((usize, usize), u32)>,
}

impl RequeueQueue {
    /// An empty requeue list.
    pub fn new() -> Self {
        RequeueQueue::default()
    }

    /// Push a released `[start, end)` range with its attempt count (the
    /// number of times execution of this range has already failed).
    pub fn push(&mut self, range: (usize, usize), attempts: u32) {
        debug_assert!(range.0 < range.1, "empty range requeued");
        self.ranges.push((range, attempts));
    }

    /// Pop the most recently released range (LIFO keeps the working set
    /// warm), or `None` when nothing awaits re-execution.
    pub fn pop(&mut self) -> Option<((usize, usize), u32)> {
        self.ranges.pop()
    }

    /// True when nothing awaits re-execution.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Ranges currently awaiting re-execution.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Push a single-task unit. Callers that lease whole *units* rather
    /// than chunk ranges — the shard coordinator requeues one shard at
    /// a time — use this instead of spelling `(task, task + 1)`.
    pub fn push_task(&mut self, task: usize, attempts: u32) {
        self.push((task, task + 1), attempts);
    }

    /// Pop a single-task unit pushed by [`push_task`](Self::push_task).
    /// Same LIFO order as [`pop`](Self::pop).
    pub fn pop_task(&mut self) -> Option<(usize, u32)> {
        self.pop().map(|((start, _), attempts)| (start, attempts))
    }
}

/// Chunk size for a dual-pool worker: the device's estimated share of the
/// remaining queue, spread over twice its worker count (the same decay
/// shape as guided scheduling, so chunks shrink as the pools converge on
/// the boundary), never below `min_chunk` or one task.
pub fn adaptive_chunk(
    remaining: usize,
    device_share: f64,
    workers: usize,
    min_chunk: usize,
) -> usize {
    assert!(workers >= 1, "need at least one worker");
    let target = (remaining as f64 * device_share / (2.0 * workers as f64)).floor() as usize;
    target.max(min_chunk.max(1)).min(remaining.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_partition_covers_everything() {
        let parts = static_partition(10, 3);
        assert_eq!(parts, vec![(0, 4), (4, 7), (7, 10)]);
        let total: usize = parts.iter().map(|(s, e)| e - s).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn static_partition_more_workers_than_tasks() {
        let parts = static_partition(2, 5);
        assert_eq!(parts.iter().filter(|(s, e)| e > s).count(), 2);
        assert_eq!(parts.len(), 5);
    }

    #[test]
    fn dynamic_dispenser_unit_chunks() {
        let mut d = ChunkDispenser::new(Policy::dynamic(), 3, 8);
        assert_eq!(d.grab(), Some((0, 1)));
        assert_eq!(d.grab(), Some((1, 2)));
        assert_eq!(d.grab(), Some((2, 3)));
        assert_eq!(d.grab(), None);
    }

    #[test]
    fn dynamic_dispenser_chunked() {
        let mut d = ChunkDispenser::new(Policy::Dynamic { chunk: 4 }, 10, 2);
        assert_eq!(d.grab(), Some((0, 4)));
        assert_eq!(d.grab(), Some((4, 8)));
        assert_eq!(d.grab(), Some((8, 10)), "tail chunk is truncated");
        assert_eq!(d.grab(), None);
    }

    #[test]
    fn guided_chunks_decay() {
        let mut d = ChunkDispenser::new(Policy::guided(), 100, 4);
        let first = d.grab().unwrap();
        assert_eq!(first, (0, 12)); // 100 / (2·4) = 12
        let second = d.grab().unwrap();
        assert_eq!(second.1 - second.0, 11); // 88 / 8 = 11
                                             // Drain; sizes never grow and everything is covered exactly once.
        let mut covered = second.1;
        let mut last = second.1 - second.0;
        while let Some((s, e)) = d.grab() {
            assert_eq!(s, covered);
            assert!(e - s <= last);
            last = (e - s).max(1);
            covered = e;
        }
        assert_eq!(covered, 100);
    }

    #[test]
    fn guided_respects_min_chunk() {
        let mut d = ChunkDispenser::new(Policy::Guided { min_chunk: 7 }, 20, 10);
        let (s, e) = d.grab().unwrap();
        assert_eq!((s, e), (0, 7));
    }

    #[test]
    #[should_panic(expected = "pre-partition")]
    fn static_dispenser_rejected() {
        ChunkDispenser::new(Policy::Static, 10, 2);
    }

    #[test]
    fn labels() {
        assert_eq!(Policy::Static.label(), "static");
        assert_eq!(Policy::dynamic().label(), "dynamic(1)");
        assert_eq!(Policy::Guided { min_chunk: 2 }.label(), "guided(2)");
    }

    #[test]
    fn empty_loop() {
        let mut d = ChunkDispenser::new(Policy::dynamic(), 0, 4);
        assert_eq!(d.grab(), None);
        assert!(static_partition(0, 3).iter().all(|(s, e)| s == e));
    }

    #[test]
    fn dual_queue_meets_in_the_middle() {
        let mut q = DualQueue::new(10);
        assert_eq!(q.take_front(3), Some((0, 3)));
        assert_eq!(q.take_back(4), Some((6, 10)));
        assert_eq!(q.remaining(), 3);
        // Over-ask is truncated to what's left.
        assert_eq!(q.take_front(100), Some((3, 6)));
        assert_eq!(q.take_front(1), None);
        assert_eq!(q.take_back(1), None);
    }

    #[test]
    fn dual_queue_covers_every_task_exactly_once() {
        let mut q = DualQueue::new(37);
        let mut seen = [false; 37];
        let mut from_front = true;
        loop {
            let grab = if from_front {
                q.take_front(2)
            } else {
                q.take_back(3)
            };
            from_front = !from_front;
            match grab {
                None => break,
                Some((s, e)) => {
                    for (i, slot) in seen.iter_mut().enumerate().take(e).skip(s) {
                        assert!(!*slot, "task {i} claimed twice");
                        *slot = true;
                    }
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn dual_queue_empty() {
        let mut q = DualQueue::new(0);
        assert_eq!(q.take_front(1), None);
        assert_eq!(q.take_back(1), None);
        assert_eq!(q.remaining(), 0);
    }

    #[test]
    fn estimator_uses_initial_share_until_measured() {
        let e = SplitEstimator::new(0.7);
        assert_eq!(e.accel_share(0, 0, 0, 0), 0.7);
        assert_eq!(
            e.accel_share(100, 50, 0, 0),
            0.7,
            "one-sided measurement is not enough"
        );
    }

    #[test]
    fn estimator_follows_observed_rates() {
        let e = SplitEstimator::new(0.5);
        // Accelerator observed 3× the CPU's cells/nanosecond.
        let share = e.accel_share(1_000, 1_000, 3_000, 1_000);
        assert!((share - 0.75).abs() < 1e-12);
        // Extreme rates are clamped away from 0/1.
        let clamped = e.accel_share(1, 1_000_000, 1_000_000, 1);
        assert!(clamped <= 0.98);
    }

    #[test]
    #[should_panic(expected = "finite fraction")]
    fn estimator_rejects_nan() {
        SplitEstimator::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite fraction")]
    fn estimator_rejects_out_of_range() {
        SplitEstimator::new(1.5);
    }

    #[test]
    fn requeue_queue_is_lifo_and_tracks_attempts() {
        let mut q = RequeueQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        q.push((0, 4), 1);
        q.push((10, 12), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(((10, 12), 2)));
        assert_eq!(q.pop(), Some(((0, 4), 1)));
        assert!(q.is_empty());
    }

    #[test]
    fn requeue_queue_task_units() {
        let mut q = RequeueQueue::new();
        q.push_task(3, 0);
        q.push_task(7, 2);
        assert_eq!(q.pop_task(), Some((7, 2)));
        assert_eq!(q.pop(), Some(((3, 4), 0)), "unit is the range [t, t+1)");
        assert_eq!(q.pop_task(), None);
    }

    #[test]
    fn adaptive_chunk_decays_with_remaining() {
        let big = adaptive_chunk(1000, 0.5, 4, 1);
        assert_eq!(big, 62); // 1000 · 0.5 / 8
        let small = adaptive_chunk(10, 0.5, 4, 1);
        assert_eq!(small, 1, "floors at min_chunk");
        assert_eq!(
            adaptive_chunk(0, 0.5, 4, 1),
            1,
            "degenerate remaining still asks for one"
        );
        assert_eq!(adaptive_chunk(100, 1.0, 1, 3), 50);
        assert!(
            adaptive_chunk(5, 1.0, 1, 100) <= 5,
            "never exceeds remaining"
        );
    }
}
