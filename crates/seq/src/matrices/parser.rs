//! Parser for NCBI-format substitution matrix files.
//!
//! The format (as shipped with BLAST and used by `ftp.ncbi.nlm.nih.gov/blast/matrices/`):
//!
//! ```text
//! # comment lines
//!    A  R  N  D ...          <- column header: one symbol per column
//! A  4 -1 -2 -2 ...          <- row: symbol then one score per column
//! R -1  5  0 -2 ...
//! ```
//!
//! Symbols may appear in any order; the parser re-indexes them into the
//! target [`Alphabet`]'s encoding. Symbols in the file but not in the
//! alphabet are ignored; alphabet symbols missing from the file are an
//! error.

use crate::alphabet::Alphabet;
use crate::error::SeqError;
use crate::matrices::SubstMatrix;

/// Parse NCBI-format matrix text into a [`SubstMatrix`] over `alphabet`.
pub fn parse_ncbi(name: &str, text: &str, alphabet: &Alphabet) -> Result<SubstMatrix, SeqError> {
    let mut lines = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));

    let header = lines
        .next()
        .ok_or_else(|| SeqError::Matrix("matrix file has no header row".into()))?;

    // Column symbol -> file column index.
    let col_syms: Vec<u8> = header
        .split_ascii_whitespace()
        .map(|tok| {
            if tok.len() == 1 {
                Ok(tok.as_bytes()[0])
            } else {
                Err(SeqError::Matrix(format!(
                    "header token '{tok}' is not a single symbol"
                )))
            }
        })
        .collect::<Result<_, _>>()?;

    let n = alphabet.len();
    let mut scores = vec![i32::MIN; n * n];
    let mut rows_seen = vec![false; n];

    for line in lines {
        let mut toks = line.split_ascii_whitespace();
        let row_tok = toks.next().expect("non-empty line has a first token");
        if row_tok.len() != 1 {
            return Err(SeqError::Matrix(format!(
                "row label '{row_tok}' is not a single symbol"
            )));
        }
        let row_sym = row_tok.as_bytes()[0];
        let Some(row_code) = alphabet.encode_byte(row_sym) else {
            continue; // symbol not in our alphabet (e.g. U/O rows in some files)
        };
        rows_seen[row_code as usize] = true;

        let values: Vec<i32> = toks
            .map(|v| {
                v.parse::<i32>()
                    .map_err(|_| SeqError::Matrix(format!("bad score value '{v}'")))
            })
            .collect::<Result<_, _>>()?;
        if values.len() != col_syms.len() {
            return Err(SeqError::Matrix(format!(
                "row '{}' has {} values but header has {} columns",
                row_sym as char,
                values.len(),
                col_syms.len()
            )));
        }
        for (col_idx, &col_sym) in col_syms.iter().enumerate() {
            if let Some(col_code) = alphabet.encode_byte(col_sym) {
                scores[row_code as usize * n + col_code as usize] = values[col_idx];
            }
        }
    }

    for (code, seen) in rows_seen.iter().enumerate() {
        if !seen {
            return Err(SeqError::Matrix(format!(
                "matrix is missing a row for alphabet symbol '{}'",
                alphabet.decode_byte(code as u8) as char
            )));
        }
    }
    debug_assert!(scores.iter().all(|&s| s != i32::MIN), "all cells filled");

    Ok(SubstMatrix::from_flat(name, n, scores))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny 3-symbol "alphabet" exercised through the DNA alphabet subset.
    const TINY: &str = "\
# toy matrix
   A  C  G  T  N
A  2 -1 -1 -1  0
C -1  2 -1 -1  0
G -1 -1  2 -1  0
T -1 -1 -1  2  0
N  0  0  0  0  0
";

    #[test]
    fn parses_toy_matrix() {
        let a = Alphabet::dna();
        let m = parse_ncbi("toy", TINY, &a).unwrap();
        assert_eq!(m.score(0, 0), 2);
        assert_eq!(m.score(0, 1), -1);
        assert_eq!(m.score(4, 4), 0);
        assert!(m.is_symmetric());
    }

    #[test]
    fn column_order_independent() {
        // Shuffled columns/rows must still land in canonical encoding order.
        let shuffled = "\
   T  A  N  G  C
T  2 -1  0 -1 -1
N  0  0  0  0  0
A -1  2  0 -1 -1
G -1 -1  0  2 -1
C -1 -1  0 -1  2
";
        let a = Alphabet::dna();
        let m = parse_ncbi("shuffled", shuffled, &a).unwrap();
        let canon = parse_ncbi("toy", TINY, &a).unwrap();
        assert_eq!(m.flat(), canon.flat());
    }

    #[test]
    fn missing_row_is_error() {
        let broken = "\
   A  C  G  T  N
A  2 -1 -1 -1  0
C -1  2 -1 -1  0
";
        let a = Alphabet::dna();
        let err = parse_ncbi("broken", broken, &a).unwrap_err();
        assert!(err.to_string().contains("missing a row"));
    }

    #[test]
    fn wrong_column_count_is_error() {
        let broken = "\
   A  C  G  T  N
A  2 -1 -1
C -1  2 -1 -1  0
G -1 -1  2 -1  0
T -1 -1 -1  2  0
N  0  0  0  0  0
";
        let a = Alphabet::dna();
        assert!(parse_ncbi("broken", broken, &a).is_err());
    }

    #[test]
    fn bad_value_is_error() {
        let broken = "\
   A  C  G  T  N
A  2 -1 -1 -1  x
C -1  2 -1 -1  0
G -1 -1  2 -1  0
T -1 -1 -1  2  0
N  0  0  0  0  0
";
        let a = Alphabet::dna();
        assert!(matches!(
            parse_ncbi("b", broken, &a),
            Err(SeqError::Matrix(_))
        ));
    }

    #[test]
    fn extra_file_symbols_ignored() {
        // 'U' is not in the DNA alphabet: the row and column are skipped.
        let extra = "\
   A  C  G  T  N  U
A  2 -1 -1 -1  0  9
C -1  2 -1 -1  0  9
G -1 -1  2 -1  0  9
T -1 -1 -1  2  0  9
N  0  0  0  0  0  9
U  9  9  9  9  9  9
";
        let a = Alphabet::dna();
        let m = parse_ncbi("extra", extra, &a).unwrap();
        assert_eq!(m.len(), 5);
        assert_eq!(m.score(0, 0), 2);
    }

    #[test]
    fn empty_input_is_error() {
        let a = Alphabet::dna();
        assert!(parse_ncbi("empty", "# only comments\n", &a).is_err());
    }
}
