//! Substitution matrices — the `V(ai, bj)` of the paper's Eq. 2.
//!
//! A [`SubstMatrix`] is a dense `len × len` score table over an encoded
//! alphabet, stored flat so that `scores[a * len + b]` is one indexed load
//! in the kernels. The bundled standard matrices (BLOSUM/PAM families) are
//! embedded in NCBI text format and parsed on construction by
//! [`parser::parse_ncbi`] — this keeps a single source of truth and
//! exercises the same code path a user-supplied matrix file takes.
//!
//! The paper's evaluation uses **BLOSUM62** with gap penalties 10/2.

pub mod data;
pub mod parser;

use crate::alphabet::Alphabet;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A dense substitution matrix over an encoded alphabet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubstMatrix {
    /// Display name, e.g. `BLOSUM62`.
    pub name: Arc<str>,
    /// Alphabet size (row/column count).
    len: usize,
    /// Flat row-major scores: `scores[a * len + b]`.
    scores: Vec<i32>,
}

impl SubstMatrix {
    /// Build from a flat row-major score table.
    ///
    /// # Panics
    /// Panics if `scores.len() != len * len`.
    pub fn from_flat(name: &str, len: usize, scores: Vec<i32>) -> Self {
        assert_eq!(
            scores.len(),
            len * len,
            "flat score table must be len × len"
        );
        SubstMatrix {
            name: name.into(),
            len,
            scores,
        }
    }

    /// The matrix used throughout the paper's evaluation.
    pub fn blosum62() -> Self {
        parser::parse_ncbi("BLOSUM62", data::BLOSUM62, &Alphabet::protein())
            .expect("bundled BLOSUM62 parses")
    }

    /// BLOSUM45 (more divergent sequences).
    pub fn blosum45() -> Self {
        parser::parse_ncbi("BLOSUM45", data::BLOSUM45, &Alphabet::protein())
            .expect("bundled BLOSUM45 parses")
    }

    /// BLOSUM50 (the SSEARCH default).
    pub fn blosum50() -> Self {
        parser::parse_ncbi("BLOSUM50", data::BLOSUM50, &Alphabet::protein())
            .expect("bundled BLOSUM50 parses")
    }

    /// BLOSUM80 (closely related sequences).
    pub fn blosum80() -> Self {
        parser::parse_ncbi("BLOSUM80", data::BLOSUM80, &Alphabet::protein())
            .expect("bundled BLOSUM80 parses")
    }

    /// PAM250 (classic Dayhoff matrix).
    pub fn pam250() -> Self {
        parser::parse_ncbi("PAM250", data::PAM250, &Alphabet::protein())
            .expect("bundled PAM250 parses")
    }

    /// Look up a bundled matrix by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_uppercase().as_str() {
            "BLOSUM62" => Some(Self::blosum62()),
            "BLOSUM45" => Some(Self::blosum45()),
            "BLOSUM50" => Some(Self::blosum50()),
            "BLOSUM80" => Some(Self::blosum80()),
            "PAM250" => Some(Self::pam250()),
            _ => None,
        }
    }

    /// Simple match/mismatch matrix (useful for DNA and for tests).
    pub fn match_mismatch(alphabet: &Alphabet, matches: i32, mismatch: i32) -> Self {
        let len = alphabet.len();
        let mut scores = vec![mismatch; len * len];
        for i in 0..len {
            scores[i * len + i] = matches;
        }
        SubstMatrix {
            name: format!("match/mismatch({matches}/{mismatch})").into(),
            len,
            scores,
        }
    }

    /// Alphabet size.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Matrices are never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Score of aligning encoded residues `a` and `b`.
    #[inline]
    pub fn score(&self, a: u8, b: u8) -> i32 {
        self.scores[a as usize * self.len + b as usize]
    }

    /// Borrow the flat row-major table.
    #[inline]
    pub fn flat(&self) -> &[i32] {
        &self.scores
    }

    /// One row of the table (scores of residue `a` against every residue).
    #[inline]
    pub fn row(&self, a: u8) -> &[i32] {
        let s = a as usize * self.len;
        &self.scores[s..s + self.len]
    }

    /// The flat table narrowed to `i16` — the element type of the vector
    /// kernels.
    ///
    /// # Panics
    /// Panics if any score is outside `i16` range (never for the bundled
    /// matrices, whose scores are single digits).
    pub fn flat_i16(&self) -> Vec<i16> {
        self.scores
            .iter()
            .map(|&s| i16::try_from(s).expect("substitution score fits in i16"))
            .collect()
    }

    /// Maximum score in the table (used for overflow-bound analysis).
    pub fn max_score(&self) -> i32 {
        *self.scores.iter().max().expect("non-empty")
    }

    /// Minimum score in the table.
    pub fn min_score(&self) -> i32 {
        *self.scores.iter().min().expect("non-empty")
    }

    /// True when the table is symmetric (all standard matrices are).
    pub fn is_symmetric(&self) -> bool {
        for a in 0..self.len {
            for b in (a + 1)..self.len {
                if self.scores[a * self.len + b] != self.scores[b * self.len + a] {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn enc(a: &Alphabet, c: u8) -> u8 {
        a.encode_byte(c).unwrap()
    }

    #[test]
    fn blosum62_known_values() {
        let a = Alphabet::protein();
        let m = SubstMatrix::blosum62();
        // Spot-check against the canonical NCBI table.
        assert_eq!(m.score(enc(&a, b'A'), enc(&a, b'A')), 4);
        assert_eq!(m.score(enc(&a, b'W'), enc(&a, b'W')), 11);
        assert_eq!(m.score(enc(&a, b'A'), enc(&a, b'R')), -1);
        assert_eq!(m.score(enc(&a, b'N'), enc(&a, b'B')), 3);
        assert_eq!(m.score(enc(&a, b'E'), enc(&a, b'Z')), 4);
        assert_eq!(m.score(enc(&a, b'C'), enc(&a, b'C')), 9);
        assert_eq!(m.score(enc(&a, b'*'), enc(&a, b'*')), 1);
        assert_eq!(m.score(enc(&a, b'A'), enc(&a, b'*')), -4);
    }

    #[test]
    fn all_bundled_matrices_parse_and_are_symmetric() {
        for m in [
            SubstMatrix::blosum62(),
            SubstMatrix::blosum45(),
            SubstMatrix::blosum50(),
            SubstMatrix::blosum80(),
            SubstMatrix::pam250(),
        ] {
            assert_eq!(m.len(), 24, "{}", m.name);
            assert!(m.is_symmetric(), "{} must be symmetric", m.name);
            assert!(m.max_score() > 0, "{} has a positive max", m.name);
            assert!(m.min_score() < 0, "{} has a negative min", m.name);
        }
    }

    #[test]
    fn diagonal_dominant_for_standard_residues() {
        // Self-alignment must beat any substitution for the 20 standard
        // amino acids in every bundled matrix (a property of log-odds
        // matrices that our kernels' self-alignment tests rely on).
        for m in [SubstMatrix::blosum62(), SubstMatrix::blosum50()] {
            for a in 0..20u8 {
                let diag = m.score(a, a);
                assert!(
                    diag > 0,
                    "{}: diagonal of residue {a} must be positive",
                    m.name
                );
            }
        }
    }

    #[test]
    fn by_name_lookup() {
        assert!(SubstMatrix::by_name("blosum62").is_some());
        assert!(SubstMatrix::by_name("BLOSUM50").is_some());
        assert!(SubstMatrix::by_name("BLOSUM31415").is_none());
    }

    #[test]
    fn match_mismatch_matrix() {
        let dna = Alphabet::dna();
        let m = SubstMatrix::match_mismatch(&dna, 5, -4);
        assert_eq!(m.score(0, 0), 5);
        assert_eq!(m.score(0, 1), -4);
        assert!(m.is_symmetric());
    }

    #[test]
    fn row_matches_score() {
        let m = SubstMatrix::blosum62();
        for a in 0..24u8 {
            let row = m.row(a);
            for b in 0..24u8 {
                assert_eq!(row[b as usize], m.score(a, b));
            }
        }
    }

    #[test]
    fn flat_i16_preserves_values() {
        let m = SubstMatrix::blosum62();
        let t = m.flat_i16();
        for (i, &v) in m.flat().iter().enumerate() {
            assert_eq!(t[i] as i32, v);
        }
    }

    #[test]
    #[should_panic(expected = "len × len")]
    fn from_flat_validates_shape() {
        SubstMatrix::from_flat("bad", 3, vec![0; 8]);
    }
}
