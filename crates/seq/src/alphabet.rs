//! Residue alphabets and the dense `u8` encoding used by every kernel.
//!
//! All alignment kernels in the workspace operate on *encoded* residues:
//! small dense integers `0..alphabet.len()` so a substitution-matrix lookup
//! is a single indexed load and a query profile is a flat 2-D array. This
//! module defines the canonical encodings.
//!
//! The protein alphabet follows the convention of SWIPE / BLAST: the 20
//! standard amino acids, the ambiguity codes `B` (Asx), `Z` (Glx), `X`
//! (unknown), and `*` (stop/terminator), 24 symbols total. The paper's
//! evaluation uses BLOSUM62 over exactly this alphabet.

use crate::error::SeqError;
use serde::{Deserialize, Serialize};

/// Which family of molecules an [`Alphabet`] encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlphabetKind {
    /// Amino acids (24 symbols: 20 standard + B, Z, X, `*`).
    Protein,
    /// Nucleotides (5 symbols: A, C, G, T, N).
    Dna,
}

/// The canonical protein symbol order: `ARNDCQEGHILKMFPSTWYVBZX*`.
///
/// This matches the row/column order of the bundled BLOSUM/PAM matrices,
/// so `matrix[a * 24 + b]` scores encoded residues directly.
pub const PROTEIN_SYMBOLS: &[u8; 24] = b"ARNDCQEGHILKMFPSTWYVBZX*";

/// The canonical DNA symbol order.
pub const DNA_SYMBOLS: &[u8; 5] = b"ACGTN";

/// Number of *standard* (unambiguous) amino acids.
pub const N_STANDARD_AA: usize = 20;

/// A residue alphabet: a symbol set plus its dense encoding.
///
/// `Alphabet` is a small value type (two lookup tables); clone freely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alphabet {
    kind: AlphabetKind,
    /// Encoded value -> ASCII symbol.
    decode: Vec<u8>,
    /// ASCII byte (uppercased) -> encoded value, 0xFF = invalid.
    encode: [u8; 256],
    /// Code used for unknown/ambiguous residues when parsing leniently.
    unknown_code: u8,
}

impl Alphabet {
    /// The 24-symbol protein alphabet used throughout the paper.
    pub fn protein() -> Self {
        Self::from_symbols(AlphabetKind::Protein, PROTEIN_SYMBOLS, b'X')
    }

    /// The 5-symbol DNA alphabet (`ACGTN`).
    pub fn dna() -> Self {
        Self::from_symbols(AlphabetKind::Dna, DNA_SYMBOLS, b'N')
    }

    fn from_symbols(kind: AlphabetKind, symbols: &[u8], unknown: u8) -> Self {
        let mut encode = [0xFFu8; 256];
        for (code, &sym) in symbols.iter().enumerate() {
            encode[sym as usize] = code as u8;
            encode[sym.to_ascii_lowercase() as usize] = code as u8;
        }
        let unknown_code = encode[unknown as usize];
        debug_assert_ne!(unknown_code, 0xFF, "unknown symbol must be in the alphabet");
        Alphabet {
            kind,
            decode: symbols.to_vec(),
            encode,
            unknown_code,
        }
    }

    /// Which molecule family this alphabet encodes.
    #[inline]
    pub fn kind(&self) -> AlphabetKind {
        self.kind
    }

    /// Number of symbols (24 for protein, 5 for DNA).
    #[inline]
    pub fn len(&self) -> usize {
        self.decode.len()
    }

    /// Alphabets are never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The dense code for unknown residues (`X` for protein, `N` for DNA).
    #[inline]
    pub fn unknown_code(&self) -> u8 {
        self.unknown_code
    }

    /// Encode one ASCII residue, case-insensitively.
    #[inline]
    pub fn encode_byte(&self, b: u8) -> Option<u8> {
        let code = self.encode[b as usize];
        (code != 0xFF).then_some(code)
    }

    /// Decode one dense code back to its (uppercase) ASCII symbol.
    ///
    /// # Panics
    /// Panics if `code` is out of range; encoded sequences produced by this
    /// crate are always in range.
    #[inline]
    pub fn decode_byte(&self, code: u8) -> u8 {
        self.decode[code as usize]
    }

    /// Encode a full residue string strictly: any byte outside the alphabet
    /// is an error (whitespace is *not* tolerated here — FASTA parsing strips
    /// it earlier).
    pub fn encode_strict(&self, text: &[u8]) -> Result<Vec<u8>, SeqError> {
        let mut out = Vec::with_capacity(text.len());
        for (position, &b) in text.iter().enumerate() {
            match self.encode_byte(b) {
                Some(c) => out.push(c),
                None => return Err(SeqError::InvalidResidue { byte: b, position }),
            }
        }
        Ok(out)
    }

    /// Encode leniently: unknown letters map to the unknown code, and
    /// non-alphabetic bytes are an error. Mirrors how production search
    /// tools (SWIPE, BLAST) tolerate rare non-standard residues (U, O, J)
    /// in real Swiss-Prot entries.
    pub fn encode_lenient(&self, text: &[u8]) -> Result<Vec<u8>, SeqError> {
        let mut out = Vec::with_capacity(text.len());
        for (position, &b) in text.iter().enumerate() {
            match self.encode_byte(b) {
                Some(c) => out.push(c),
                None if b.is_ascii_alphabetic() => out.push(self.unknown_code),
                None => return Err(SeqError::InvalidResidue { byte: b, position }),
            }
        }
        Ok(out)
    }

    /// Decode an encoded sequence back to ASCII.
    pub fn decode(&self, codes: &[u8]) -> Vec<u8> {
        codes.iter().map(|&c| self.decode_byte(c)).collect()
    }

    /// All symbols in encoding order.
    pub fn symbols(&self) -> &[u8] {
        &self.decode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protein_roundtrip_all_symbols() {
        let a = Alphabet::protein();
        assert_eq!(a.len(), 24);
        for (i, &s) in PROTEIN_SYMBOLS.iter().enumerate() {
            assert_eq!(a.encode_byte(s), Some(i as u8));
            assert_eq!(a.decode_byte(i as u8), s);
        }
    }

    #[test]
    fn protein_case_insensitive() {
        let a = Alphabet::protein();
        assert_eq!(a.encode_byte(b'a'), a.encode_byte(b'A'));
        assert_eq!(a.encode_byte(b'w'), a.encode_byte(b'W'));
    }

    #[test]
    fn dna_alphabet() {
        let a = Alphabet::dna();
        assert_eq!(a.len(), 5);
        assert_eq!(a.kind(), AlphabetKind::Dna);
        assert_eq!(a.encode_byte(b'G'), Some(2));
        assert_eq!(a.unknown_code(), 4); // N
    }

    #[test]
    fn strict_rejects_nonstandard() {
        let a = Alphabet::protein();
        // 'U' (selenocysteine) is not one of the 24 canonical symbols.
        let err = a.encode_strict(b"ARU").unwrap_err();
        assert_eq!(
            err,
            SeqError::InvalidResidue {
                byte: b'U',
                position: 2
            }
        );
    }

    #[test]
    fn lenient_maps_nonstandard_to_unknown() {
        let a = Alphabet::protein();
        let enc = a.encode_lenient(b"ARU").unwrap();
        assert_eq!(enc[2], a.unknown_code());
        assert_eq!(a.decode_byte(enc[2]), b'X');
    }

    #[test]
    fn lenient_still_rejects_digits() {
        let a = Alphabet::protein();
        assert!(a.encode_lenient(b"AR3").is_err());
    }

    #[test]
    fn decode_roundtrip() {
        let a = Alphabet::protein();
        let text = b"MKVLITRAW";
        let enc = a.encode_strict(text).unwrap();
        assert_eq!(a.decode(&enc), text.to_vec());
    }

    #[test]
    fn unknown_code_is_x_for_protein() {
        let a = Alphabet::protein();
        assert_eq!(a.decode_byte(a.unknown_code()), b'X');
    }

    #[test]
    fn symbols_accessor() {
        assert_eq!(Alphabet::protein().symbols(), PROTEIN_SYMBOLS);
    }
}
