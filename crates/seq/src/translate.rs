//! Genetic-code translation — DNA → protein, all six reading frames.
//!
//! Lets a nucleotide query be searched against a protein database
//! (BLASTX-style) with the exact Smith-Waterman engine: translate the six
//! frames, search each as a protein query, report the best frame.

use crate::alphabet::Alphabet;
use crate::dna::reverse_complement;

/// The standard genetic code, indexed by `base1·16 + base2·4 + base3`
/// with bases encoded A=0, C=1, G=2, T=3. `*` marks stop codons.
const CODON_TABLE: [u8; 64] = *b"KNKNTTTTRSRSIIMIQHQHPPPPRRRRLLLLEDEDAAAAGGGGVVVV*Y*YSSSS*CWCLFLF";

/// Translate one codon (three encoded DNA residues) to an amino-acid
/// ASCII letter (`*` for stop). Codons containing `N` translate to `X`.
pub fn translate_codon(b1: u8, b2: u8, b3: u8) -> u8 {
    if b1 > 3 || b2 > 3 || b3 > 3 {
        return b'X';
    }
    CODON_TABLE[(b1 as usize) * 16 + (b2 as usize) * 4 + b3 as usize]
}

/// Translate an encoded DNA sequence in the given frame offset (0, 1, 2)
/// into an **encoded protein** sequence under `protein` (stops become the
/// `*` residue, ambiguous codons become `X`).
pub fn translate_frame(dna: &[u8], frame: usize, protein: &Alphabet) -> Vec<u8> {
    assert!(frame < 3, "frame offset must be 0, 1 or 2");
    dna[frame..]
        .chunks_exact(3)
        .map(|c| {
            let aa = translate_codon(c[0], c[1], c[2]);
            protein
                .encode_byte(aa)
                .expect("codon table emits canonical symbols")
        })
        .collect()
}

/// All six reading frames of an encoded DNA sequence: three forward,
/// three on the reverse complement. Returned as `(label, protein)` pairs
/// with labels `+1 +2 +3 -1 -2 -3`.
pub fn six_frames(dna: &[u8], protein: &Alphabet) -> Vec<(&'static str, Vec<u8>)> {
    let rc = reverse_complement(dna);
    vec![
        ("+1", translate_frame(dna, 0, protein)),
        ("+2", translate_frame(dna, 1, protein)),
        ("+3", translate_frame(dna, 2, protein)),
        ("-1", translate_frame(&rc, 0, protein)),
        ("-2", translate_frame(&rc, 1, protein)),
        ("-3", translate_frame(&rc, 2, protein)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dna(s: &[u8]) -> Vec<u8> {
        Alphabet::dna().encode_strict(s).unwrap()
    }

    fn protein_text(codes: &[u8]) -> String {
        String::from_utf8(Alphabet::protein().decode(codes)).unwrap()
    }

    #[test]
    fn canonical_codons() {
        // Spot-check well-known codons: ATG=M, TGG=W, TAA=stop, AAA=K,
        // GGC=G, TTT=F.
        let d = Alphabet::dna();
        let c = |s: &[u8]| {
            let e = d.encode_strict(s).unwrap();
            translate_codon(e[0], e[1], e[2])
        };
        assert_eq!(c(b"ATG"), b'M');
        assert_eq!(c(b"TGG"), b'W');
        assert_eq!(c(b"TAA"), b'*');
        assert_eq!(c(b"TAG"), b'*');
        assert_eq!(c(b"TGA"), b'*');
        assert_eq!(c(b"AAA"), b'K');
        assert_eq!(c(b"GGC"), b'G');
        assert_eq!(c(b"TTT"), b'F');
        assert_eq!(c(b"GCT"), b'A');
        assert_eq!(c(b"CGA"), b'R');
    }

    #[test]
    fn codon_table_is_complete_and_canonical() {
        let p = Alphabet::protein();
        for b1 in 0..4u8 {
            for b2 in 0..4u8 {
                for b3 in 0..4u8 {
                    let aa = translate_codon(b1, b2, b3);
                    assert!(
                        p.encode_byte(aa).is_some(),
                        "codon {b1}{b2}{b3} -> '{}' must be encodable",
                        aa as char
                    );
                }
            }
        }
        // 61 coding codons + 3 stops.
        let stops = CODON_TABLE.iter().filter(|&&c| c == b'*').count();
        assert_eq!(stops, 3);
    }

    #[test]
    fn ambiguous_codon_is_x() {
        assert_eq!(translate_codon(0, 4, 0), b'X'); // A N A
    }

    #[test]
    fn frame_translation() {
        let p = Alphabet::protein();
        // ATG AAA TGG = M K W
        let d = dna(b"ATGAAATGG");
        assert_eq!(protein_text(&translate_frame(&d, 0, &p)), "MKW");
        // Frame +2 drops the first base: TGA AAT GG -> * N (trailing GG dropped)
        assert_eq!(protein_text(&translate_frame(&d, 1, &p)), "*N");
        // Frame +3: GAA ATG G -> E M
        assert_eq!(protein_text(&translate_frame(&d, 2, &p)), "EM");
    }

    #[test]
    fn six_frames_cover_reverse_strand() {
        let p = Alphabet::protein();
        // Reverse complement of ATGAAATGG is CCATTTCAT: CCA TTT CAT = P F H.
        let d = dna(b"ATGAAATGG");
        let frames = six_frames(&d, &p);
        assert_eq!(frames.len(), 6);
        assert_eq!(frames[0].0, "+1");
        assert_eq!(protein_text(&frames[3].1), "PFH");
        // A protein encoded on the minus strand is found in a minus frame.
        let minus_encoded = dna(b"CCATTTCAT"); // rev-comp encodes M K W on -1
        let f = six_frames(&minus_encoded, &p);
        assert_eq!(protein_text(&f[3].1), "MKW");
    }

    #[test]
    fn short_input_translates_empty() {
        let p = Alphabet::protein();
        assert!(translate_frame(&dna(b"AT"), 0, &p).is_empty());
        assert!(translate_frame(&dna(b"ATG"), 1, &p).is_empty());
    }

    #[test]
    #[should_panic(expected = "frame offset")]
    fn bad_frame_rejected() {
        translate_frame(&dna(b"ATG"), 3, &Alphabet::protein());
    }
}
