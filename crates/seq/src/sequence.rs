//! Encoded sequences and zero-copy views.

use crate::alphabet::Alphabet;
use crate::error::SeqError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Identifier of a sequence within a database or query set.
///
/// A `SeqId` is the *original* (pre-sorting) index; the preprocessing stage
/// in `sw-swdb` permutes sequences by length but always carries `SeqId`s so
/// results can be reported in terms the user supplied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SeqId(pub u32);

impl fmt::Display for SeqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An owned, encoded sequence with its human-visible header.
///
/// Residues are dense codes (see [`Alphabet`]), not ASCII. The header is
/// shared via `Arc<str>` because databases copy headers into result lists.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodedSeq {
    /// FASTA header (without the leading `>`), e.g. `sp|P02232|...`.
    pub header: Arc<str>,
    /// Dense residue codes.
    pub residues: Vec<u8>,
}

impl EncodedSeq {
    /// Encode `text` under `alphabet` (lenient mode: unknown letters become
    /// the alphabet's unknown code).
    pub fn from_text(header: &str, text: &[u8], alphabet: &Alphabet) -> Result<Self, SeqError> {
        if text.is_empty() {
            return Err(SeqError::EmptySequence);
        }
        Ok(EncodedSeq {
            header: header.into(),
            residues: alphabet.encode_lenient(text)?,
        })
    }

    /// Residue count.
    #[inline]
    pub fn len(&self) -> usize {
        self.residues.len()
    }

    /// True when the sequence holds no residues (never constructed this way).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.residues.is_empty()
    }

    /// Borrow the residues as a [`SeqView`].
    #[inline]
    pub fn view(&self) -> SeqView<'_> {
        SeqView {
            residues: &self.residues,
        }
    }

    /// Decode back to ASCII for display.
    pub fn to_text(&self, alphabet: &Alphabet) -> String {
        String::from_utf8(alphabet.decode(&self.residues)).expect("alphabet symbols are ASCII")
    }
}

/// A borrowed slice of encoded residues — what kernels actually consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqView<'a> {
    /// Dense residue codes.
    pub residues: &'a [u8],
}

impl<'a> SeqView<'a> {
    /// Wrap a pre-encoded residue slice.
    #[inline]
    pub fn new(residues: &'a [u8]) -> Self {
        SeqView { residues }
    }

    /// Residue count.
    #[inline]
    pub fn len(&self) -> usize {
        self.residues.len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.residues.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_text_encodes() {
        let a = Alphabet::protein();
        let s = EncodedSeq::from_text("q1", b"ARND", &a).unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.residues, vec![0, 1, 2, 3]);
        assert_eq!(s.to_text(&a), "ARND");
    }

    #[test]
    fn empty_rejected() {
        let a = Alphabet::protein();
        assert_eq!(
            EncodedSeq::from_text("q", b"", &a).unwrap_err(),
            SeqError::EmptySequence
        );
    }

    #[test]
    fn view_borrows() {
        let a = Alphabet::protein();
        let s = EncodedSeq::from_text("q", b"WWW", &a).unwrap();
        let v = s.view();
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        assert_eq!(v.residues, &s.residues[..]);
    }

    #[test]
    fn seqid_display() {
        assert_eq!(SeqId(42).to_string(), "#42");
    }

    #[test]
    fn lenient_unknown_in_from_text() {
        let a = Alphabet::protein();
        let s = EncodedSeq::from_text("q", b"AUA", &a).unwrap();
        assert_eq!(s.to_text(&a), "AXA");
    }
}
